// Deterministic fault injection for the simulated network.
//
// A FaultPlan is the supported adversary API for chaos experiments: message
// drop / duplication / reordering (by probability or by link predicate),
// link-level and cut-based partitions with scheduled heal times, and a
// crash-restart schedule.  It plugs into net::Network as a first-class
// stage of the send path: every message the network would deliver is first
// submitted to FaultPlan::on_send, which returns what actually happens to
// it.  With no plan attached the send path costs one pointer test.
//
// Determinism: every probabilistic decision is drawn from the plan's own
// explicitly seeded Rng, and the plan is consulted in network send order —
// which the discrete-event simulator makes a pure function of the run's
// configuration and seed.  Parallel sweeps give each task its own plan
// seeded from the task seed (util::splitmix64(base, index)), so chaos
// experiments are byte-identical for any thread count, exactly like the
// fault-free sweeps of the exec subsystem.
//
// The paper's protocols assume reliable links (Definition 2); a FaultPlan
// deliberately breaks that assumption so the recovery machinery (Figure 1's
// value-selection rule, Lemma 7 / Lemma C.2) can be exercised adversarially.
// net::ReliableChannel restores the reliable-link abstraction on top of the
// lossy link via retransmission, which is what lets every protocol run
// unmodified under chaos.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "consensus/types.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace twostep::faults {

/// Why a traced message was never delivered.  kNone on a trace entry with
/// deliver_time < 0 means the message was still in flight when the run
/// ended (previously conflated with "recipient crashed").
enum class DropReason : std::uint8_t {
  kNone = 0,    ///< delivered, or still in flight at end of run
  kCrashed,     ///< sender or recipient was crashed (crash-stop semantics)
  kInjected,    ///< dropped by a FaultPlan drop rule
  kPartition,   ///< severed by an active FaultPlan partition
};

/// Stable lowercase name ("none", "crashed", "injected", "partition").
[[nodiscard]] const char* drop_reason_name(DropReason reason) noexcept;

/// Static trace-event label ("drop.crashed", "drop.injected", ...).
[[nodiscard]] const char* drop_event_label(DropReason reason) noexcept;

class FaultPlan {
 public:
  using ProcessId = consensus::ProcessId;

  /// Link predicate over (now, from, to).  Message payloads are opaque to
  /// the (non-template) plan; payload-sensitive rules use a DelayRule.
  using LinkPredicate = std::function<bool(sim::Tick, ProcessId, ProcessId)>;

  /// Delivery-time override: may return an absolute delivery time for a
  /// message, or nullopt to defer to the latency model.  The payload is
  /// passed as a type-erased pointer (null for control signals such as the
  /// reliable channel's acks); typed_delay_rule() builds a safely typed
  /// rule from a lambda over the concrete message type.
  using DelayRule = std::function<std::optional<sim::Tick>(sim::Tick, ProcessId, ProcessId,
                                                           const void*)>;

  explicit FaultPlan(std::uint64_t seed = 1) : rng_(seed) {}

  // ---- rule construction (named setters, chainable) ----

  /// Drops each message independently with probability `rate`.
  FaultPlan& drop(double rate);

  /// Duplicates each message with probability `rate`; a duplicated message
  /// is scheduled 1 + extra_copies times, each copy drawing its own
  /// delivery time from the latency model.
  FaultPlan& duplicate(double rate, int extra_copies = 1);

  /// With probability `rate`, delays a message by a uniform extra
  /// [1, max_extra] ticks on top of the latency model — the standard way to
  /// force reordering past later messages on the same link.
  FaultPlan& reorder(double rate, sim::Tick max_extra);

  /// Drops every message matching the predicate (checked before the
  /// probabilistic rules; no randomness involved).
  FaultPlan& drop_if(LinkPredicate pred);

  /// Duplicates every message matching the predicate.
  FaultPlan& duplicate_if(LinkPredicate pred, int extra_copies = 1);

  /// Severs the (symmetric) link a <-> b during [since, heal_at); heal_at
  /// < 0 means the link never heals.
  FaultPlan& partition_link(ProcessId a, ProcessId b, sim::Tick since, sim::Tick heal_at);

  /// Cut-based partition: messages crossing the cut between `island` and
  /// its complement are dropped during [since, heal_at); heal_at < 0 means
  /// the partition never heals.
  FaultPlan& partition_cut(std::vector<ProcessId> island, sim::Tick since, sim::Tick heal_at);

  /// Schedules a crash of p at absolute time `when` (crash-stop until a
  /// later restart_at).  Applied by the harness that owns the network (the
  /// Cluster), which routes it through its monitors.
  FaultPlan& crash_at(sim::Tick when, ProcessId p);

  /// Schedules a restart of p at absolute time `when`.  The simulated
  /// process resumes with its pre-crash protocol state (crash-recovery with
  /// durable state); messages sent to p while it was down are lost unless a
  /// ReliableChannel retransmits them.
  FaultPlan& restart_at(sim::Tick when, ProcessId p);

  /// Installs the delivery-time override (at most one; replaces any
  /// previous rule).  typed_delay_rule() adapts a typed
  /// (now, from, to, msg) -> optional<Tick> callable into this shape.
  FaultPlan& delay_rule(DelayRule rule);

  /// Replaces the plan's random stream (e.g. with a per-task sweep seed).
  void reseed(std::uint64_t seed) { rng_ = util::Rng{seed}; }

  // ---- the decision interface the network consumes ----

  /// What happens to one message.  copies >= 1 when delivered; every copy
  /// beyond the first is an injected duplicate.
  struct Decision {
    DropReason drop = DropReason::kNone;
    int copies = 1;
    sim::Tick extra_delay = 0;                ///< reordering jitter
    std::optional<sim::Tick> forced_time;     ///< absolute override (delay rule)

    [[nodiscard]] bool dropped() const noexcept { return drop != DropReason::kNone; }
  };

  /// Decides the fate of a message sent now from -> to.  `msg` is the
  /// type-erased payload for the delay rule (null for control signals).
  /// Deterministic in the call sequence for a fixed seed.
  Decision on_send(sim::Tick now, ProcessId from, ProcessId to, const void* msg);

  /// True iff an active partition severs a -> b at `now`.
  [[nodiscard]] bool partitioned(sim::Tick now, ProcessId a, ProcessId b) const;

  /// One entry of the crash-restart schedule.
  struct CrashEvent {
    sim::Tick when = 0;
    ProcessId p = consensus::kNoProcess;
    bool restart = false;
  };
  [[nodiscard]] const std::vector<CrashEvent>& crash_schedule() const noexcept {
    return crash_schedule_;
  }

  // ---- lifetime statistics (deterministic, per plan instance) ----
  [[nodiscard]] std::uint64_t injected_drops() const noexcept { return injected_drops_; }
  [[nodiscard]] std::uint64_t injected_duplicates() const noexcept { return injected_dups_; }
  [[nodiscard]] std::uint64_t injected_reorders() const noexcept { return injected_reorders_; }

 private:
  struct Partition {
    std::vector<ProcessId> island;  ///< empty for link partitions
    ProcessId a = consensus::kNoProcess;
    ProcessId b = consensus::kNoProcess;
    sim::Tick since = 0;
    sim::Tick heal_at = -1;  ///< < 0: never heals

    [[nodiscard]] bool active(sim::Tick now) const noexcept {
      return now >= since && (heal_at < 0 || now < heal_at);
    }
    [[nodiscard]] bool severs(ProcessId from, ProcessId to) const;
  };

  double drop_rate_ = 0;
  double dup_rate_ = 0;
  int dup_extra_copies_ = 1;
  double reorder_rate_ = 0;
  sim::Tick reorder_max_extra_ = 0;
  std::vector<LinkPredicate> drop_preds_;
  std::vector<std::pair<LinkPredicate, int>> dup_preds_;
  std::vector<Partition> partitions_;
  std::vector<CrashEvent> crash_schedule_;
  DelayRule delay_rule_;
  util::Rng rng_;
  std::uint64_t injected_drops_ = 0;
  std::uint64_t injected_dups_ = 0;
  std::uint64_t injected_reorders_ = 0;
};

/// Builds a DelayRule from a lambda over the concrete message type:
///   plan.delay_rule(faults::typed_delay_rule<Message>(
///       [](sim::Tick now, ProcessId from, ProcessId to, const Message& m)
///           -> std::optional<sim::Tick> { ... }));
/// Control signals (null payloads) defer to the latency model.
template <typename Msg, typename F>
[[nodiscard]] FaultPlan::DelayRule typed_delay_rule(F fn) {
  return [fn = std::move(fn)](sim::Tick now, consensus::ProcessId from,
                              consensus::ProcessId to,
                              const void* msg) -> std::optional<sim::Tick> {
    if (msg == nullptr) return std::nullopt;
    return fn(now, from, to, *static_cast<const Msg*>(msg));
  };
}

}  // namespace twostep::faults
