#include "faults/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace twostep::faults {

const char* drop_reason_name(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kCrashed: return "crashed";
    case DropReason::kInjected: return "injected";
    case DropReason::kPartition: return "partition";
  }
  return "?";
}

const char* drop_event_label(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNone: return "drop.none";
    case DropReason::kCrashed: return "drop.crashed";
    case DropReason::kInjected: return "drop.injected";
    case DropReason::kPartition: return "drop.partition";
  }
  return "drop.?";
}

namespace {
void check_rate(double rate, const char* what) {
  if (rate < 0.0 || rate > 1.0) throw std::invalid_argument(std::string(what) + ": rate must be in [0, 1]");
}
}  // namespace

FaultPlan& FaultPlan::drop(double rate) {
  check_rate(rate, "FaultPlan::drop");
  drop_rate_ = rate;
  return *this;
}

FaultPlan& FaultPlan::duplicate(double rate, int extra_copies) {
  check_rate(rate, "FaultPlan::duplicate");
  if (extra_copies < 1) throw std::invalid_argument("FaultPlan::duplicate: need extra_copies >= 1");
  dup_rate_ = rate;
  dup_extra_copies_ = extra_copies;
  return *this;
}

FaultPlan& FaultPlan::reorder(double rate, sim::Tick max_extra) {
  check_rate(rate, "FaultPlan::reorder");
  if (max_extra < 1) throw std::invalid_argument("FaultPlan::reorder: need max_extra >= 1");
  reorder_rate_ = rate;
  reorder_max_extra_ = max_extra;
  return *this;
}

FaultPlan& FaultPlan::drop_if(LinkPredicate pred) {
  if (!pred) throw std::invalid_argument("FaultPlan::drop_if: null predicate");
  drop_preds_.push_back(std::move(pred));
  return *this;
}

FaultPlan& FaultPlan::duplicate_if(LinkPredicate pred, int extra_copies) {
  if (!pred) throw std::invalid_argument("FaultPlan::duplicate_if: null predicate");
  if (extra_copies < 1)
    throw std::invalid_argument("FaultPlan::duplicate_if: need extra_copies >= 1");
  dup_preds_.emplace_back(std::move(pred), extra_copies);
  return *this;
}

FaultPlan& FaultPlan::partition_link(ProcessId a, ProcessId b, sim::Tick since,
                                     sim::Tick heal_at) {
  Partition p;
  p.a = a;
  p.b = b;
  p.since = since;
  p.heal_at = heal_at;
  partitions_.push_back(std::move(p));
  return *this;
}

FaultPlan& FaultPlan::partition_cut(std::vector<ProcessId> island, sim::Tick since,
                                    sim::Tick heal_at) {
  if (island.empty()) throw std::invalid_argument("FaultPlan::partition_cut: empty island");
  Partition p;
  p.island = std::move(island);
  p.since = since;
  p.heal_at = heal_at;
  partitions_.push_back(std::move(p));
  return *this;
}

FaultPlan& FaultPlan::crash_at(sim::Tick when, ProcessId p) {
  crash_schedule_.push_back(CrashEvent{when, p, /*restart=*/false});
  return *this;
}

FaultPlan& FaultPlan::restart_at(sim::Tick when, ProcessId p) {
  crash_schedule_.push_back(CrashEvent{when, p, /*restart=*/true});
  return *this;
}

FaultPlan& FaultPlan::delay_rule(DelayRule rule) {
  delay_rule_ = std::move(rule);
  return *this;
}

bool FaultPlan::Partition::severs(ProcessId from, ProcessId to) const {
  if (island.empty()) return (from == a && to == b) || (from == b && to == a);
  const bool from_in = std::find(island.begin(), island.end(), from) != island.end();
  const bool to_in = std::find(island.begin(), island.end(), to) != island.end();
  return from_in != to_in;
}

bool FaultPlan::partitioned(sim::Tick now, ProcessId a, ProcessId b) const {
  for (const Partition& p : partitions_)
    if (p.active(now) && p.severs(a, b)) return true;
  return false;
}

FaultPlan::Decision FaultPlan::on_send(sim::Tick now, ProcessId from, ProcessId to,
                                       const void* msg) {
  Decision d;
  if (partitioned(now, from, to)) {
    d.drop = DropReason::kPartition;
    ++injected_drops_;
    return d;
  }
  for (const LinkPredicate& pred : drop_preds_) {
    if (pred(now, from, to)) {
      d.drop = DropReason::kInjected;
      ++injected_drops_;
      return d;
    }
  }
  if (drop_rate_ > 0 && rng_.next_bool(drop_rate_)) {
    d.drop = DropReason::kInjected;
    ++injected_drops_;
    return d;
  }
  for (const auto& [pred, extra] : dup_preds_) {
    if (pred(now, from, to)) d.copies = std::max(d.copies, 1 + extra);
  }
  if (d.copies == 1 && dup_rate_ > 0 && rng_.next_bool(dup_rate_))
    d.copies = 1 + dup_extra_copies_;
  if (d.copies > 1) injected_dups_ += static_cast<std::uint64_t>(d.copies - 1);
  if (reorder_rate_ > 0 && rng_.next_bool(reorder_rate_)) {
    d.extra_delay = rng_.next_in(1, reorder_max_extra_);
    ++injected_reorders_;
  }
  if (delay_rule_) d.forced_time = delay_rule_(now, from, to, msg);
  return d;
}

}  // namespace twostep::faults
