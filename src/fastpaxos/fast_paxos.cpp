#include "fastpaxos/fast_paxos.hpp"

#include <stdexcept>

namespace twostep::fastpaxos {

using consensus::Ballot;
using consensus::ProcessId;
using consensus::TimerId;
using consensus::Value;

FastPaxosProcess::FastPaxosProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                                   Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("FastPaxosProcess: delta must be > 0");
  if (obs::MetricsRegistry* reg = options_.probe.metrics) {
    stats_.decisions_fast = &reg->counter("decisions.fast");
    stats_.decisions_slow = &reg->counter("decisions.slow");
    stats_.ballots_started = &reg->counter("ballots.started");
    stats_.decision_latency = &reg->histogram("decision_latency");
  }
}

void FastPaxosProcess::start() {
  if (started_) return;
  started_ = true;
  if (options_.enable_ballot_timer) env_.set_timer(2 * options_.delta);
}

void FastPaxosProcess::restore(const AcceptorState& s) {
  bal_ = s.bal;
  vbal_ = s.vbal;
  vval_ = s.vval;
  my_value_ = s.my_value;
  decided_ = s.decided;
  decide_notified_ = !decided_.is_bottom();
}

void FastPaxosProcess::propose(Value v) {
  if (v.is_bottom()) throw std::invalid_argument("propose: value must not be bottom");
  if (!my_value_.is_bottom()) return;
  my_value_ = v;
  // Fast round: the proposal goes straight to all acceptors (incl. self; the
  // self-delivery registers our own round-0 vote).
  env_.broadcast_all(FastProposeMsg{v});
}

ProcessId FastPaxosProcess::omega_leader() const {
  return options_.leader_of ? options_.leader_of() : ProcessId{0};
}

Ballot FastPaxosProcess::next_owned_ballot() const {
  const auto n = static_cast<Ballot>(config_.n);
  const auto self = static_cast<Ballot>(env_.self());
  const Ballot base = bal_ + 1;
  const Ballot shift = ((self - base) % n + n) % n;
  return base + shift;
}

void FastPaxosProcess::on_timer(TimerId) {
  if (has_decided()) return;
  if (!options_.enable_ballot_timer) return;
  env_.set_timer(5 * options_.delta);
  if (omega_leader() != env_.self()) return;
  const Ballot b = next_owned_ballot();
  if (stats_.ballots_started) stats_.ballots_started->add();
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kBallotStart, .at = env_.now(),
                           .process = env_.self(), .ballot = b};
  });
  env_.broadcast_all(PrepareMsg{b});
}

void FastPaxosProcess::on_message(ProcessId from, const Message& m) {
  std::visit([&](const auto& msg) { handle(from, msg); }, m);
}

void FastPaxosProcess::handle(ProcessId, const FastProposeMsg& m) {
  // An acceptor votes for the first round-0 proposal it receives, provided
  // it is still in the fast round and has not voted.
  if (bal_ != 0 || vbal_ >= 0) return;
  vbal_ = 0;
  vval_ = m.v;
  env_.broadcast_all(AcceptedMsg{0, m.v});
}

void FastPaxosProcess::handle(ProcessId from, const PrepareMsg& m) {
  if (m.b <= bal_) return;
  bal_ = m.b;
  env_.send(from, PromiseMsg{m.b, vbal_, vval_, my_value_});
}

void FastPaxosProcess::handle(ProcessId from, const PromiseMsg& m) {
  if (m.b <= 0 || m.b % config_.n != static_cast<Ballot>(env_.self())) return;
  auto& led = led_[m.b];
  if (led.sent_accept) return;
  led.promises.emplace(from, m);
  if (static_cast<int>(led.promises.size()) < config_.classic_quorum()) return;

  // Value-picking rule.  Slow-ballot votes supersede; otherwise any value
  // with >= n-e-f round-0 votes in the quorum may have been fast-chosen.
  Ballot bmax = -1;
  for (const auto& [q, p] : led.promises) bmax = std::max(bmax, p.vbal);

  Value v;
  if (bmax > 0) {
    for (const auto& [q, p] : led.promises)
      if (p.vbal == bmax) {
        v = p.vval;
        break;
      }
  } else if (bmax == 0) {
    std::map<Value, int> votes;
    for (const auto& [q, p] : led.promises)
      if (p.vbal == 0 && !p.vval.is_bottom()) ++votes[p.vval];
    const int threshold = config_.n - config_.e - config_.f;
    // With n >= 2e+f+1 at most one value reaches the threshold; taking the
    // best-supported one keeps the (deliberately) below-bound instantiations
    // used by the T4 experiment deterministic.
    int best_count = 0;
    for (const auto& [cand, count] : votes) {
      if (count >= threshold && count > best_count) {
        best_count = count;
        v = cand;
      }
    }
  }
  if (v.is_bottom()) v = my_value_;
  if (v.is_bottom()) {
    // Liveness completion: once no value reaches the recovery threshold in
    // a full quorum, no fast decision exists or can arise, so any proposed
    // value (surviving as a vote or as a proposer's own value) is safe.
    for (const auto& [q, p] : led.promises) {
      v = std::max(v, p.vval);
      v = std::max(v, p.initial);
    }
  }
  if (v.is_bottom()) return;  // nothing to propose; wait
  led.sent_accept = true;
  env_.broadcast_all(AcceptMsg{m.b, v});
}

void FastPaxosProcess::handle(ProcessId, const AcceptMsg& m) {
  if (m.b < bal_) return;
  bal_ = m.b;
  vbal_ = m.b;
  vval_ = m.v;
  env_.broadcast_all(AcceptedMsg{m.b, m.v});
}

void FastPaxosProcess::handle(ProcessId from, const AcceptedMsg& m) {
  auto& voters = accepted_[{m.b, m.v}];
  voters.insert(from);
  const int needed = m.b == 0 ? config_.fast_quorum() : config_.classic_quorum();
  if (static_cast<int>(voters.size()) >= needed) decide(m.b, m.v);
}

void FastPaxosProcess::decide(Ballot b, Value v) {
  if (decide_notified_) return;
  decided_ = v;
  decide_notified_ = true;
  obs::Counter* counter = b == 0 ? stats_.decisions_fast : stats_.decisions_slow;
  if (counter) counter->add();
  if (stats_.decision_latency) stats_.decision_latency->add(static_cast<double>(env_.now()));
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kDecision, .at = env_.now(),
                           .process = env_.self(), .ballot = b, .value = v,
                           .label = b == 0 ? "fast" : "slow"};
  });
  if (on_decide) on_decide(v);
}

}  // namespace twostep::fastpaxos
