// Fast Paxos (Lamport 2006a), single-shot — the classical protocol matching
// Lamport's lower bound max{2e+f+1, 2f+1}.
//
// Round 0 is the fast round: proposers send their value straight to the
// acceptors; an acceptor votes for the *first* proposal it receives (no
// value-ordering condition — that refinement is what the paper's protocol
// adds) and broadcasts its vote.  Any process that observes a fast quorum of
// n-e matching round-0 votes decides — hence every correct process can
// decide at 2Δ, satisfying Lamport's strong fast-decision requirement, but
// only when n >= 2e+f+1.  Coordinated recovery on slow ballots uses the
// standard O4 value-picking rule: with a 1B quorum Q of n-f, a value with at
// least n-e-f round-0 votes in Q may have been fast-chosen and must be
// re-proposed; with n >= 2e+f+1 at most one such value exists.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <variant>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::fastpaxos {

struct FastProposeMsg {  // proposer -> acceptors, round 0
  consensus::Value v;
  friend bool operator==(const FastProposeMsg&, const FastProposeMsg&) = default;
};
struct PrepareMsg {  // 1a
  consensus::Ballot b = 0;
  friend bool operator==(const PrepareMsg&, const PrepareMsg&) = default;
};
struct PromiseMsg {  // 1b
  consensus::Ballot b = 0;
  consensus::Ballot vbal = -1;
  consensus::Value vval;
  /// The sender's own proposal, if any — a liveness completion mirroring the
  /// core protocol's (see core/selection.hpp): it lets a never-proposing
  /// coordinator finish a recovery whose quorum saw no votes.
  consensus::Value initial;
  friend bool operator==(const PromiseMsg&, const PromiseMsg&) = default;
};
struct AcceptMsg {  // 2a (slow ballots)
  consensus::Ballot b = 0;
  consensus::Value v;
  friend bool operator==(const AcceptMsg&, const AcceptMsg&) = default;
};
struct AcceptedMsg {  // 2b, broadcast; b == 0 votes count toward fast quorums
  consensus::Ballot b = 0;
  consensus::Value v;
  friend bool operator==(const AcceptedMsg&, const AcceptedMsg&) = default;
};

using Message =
    std::variant<FastProposeMsg, PrepareMsg, PromiseMsg, AcceptMsg, AcceptedMsg>;

/// Static message-type label (ADL-found by obs::message_label).
[[nodiscard]] constexpr const char* message_name(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return "FastPropose";
    case 1: return "Prepare";
    case 2: return "Promise";
    case 3: return "Accept";
    default: return "Accepted";
  }
}

struct Options {
  sim::Tick delta = 1;
  std::function<consensus::ProcessId()> leader_of;  ///< Ω; defaults to p0
  bool enable_ballot_timer = true;
  obs::Probe probe;  ///< tracing + metrics; off by default
};

class FastPaxosProcess {
 public:
  using Message = fastpaxos::Message;

  FastPaxosProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                   Options options);

  void start();
  void propose(consensus::Value v);
  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  std::function<void(consensus::Value)> on_decide;

  /// Acceptor-critical durable state: the promise (bal), the last vote
  /// (vbal, vval), our own proposal (a restarted proposer must not propose a
  /// different value under the same identity) and the decision.  The
  /// accepted_ vote tallies are leader-side bookkeeping and recoverable
  /// from the network, so they are not part of it.
  struct AcceptorState {
    consensus::Ballot bal = 0;
    consensus::Ballot vbal = -1;
    consensus::Value vval;
    consensus::Value my_value;
    consensus::Value decided;
    friend bool operator==(const AcceptorState&, const AcceptorState&) = default;
  };
  [[nodiscard]] AcceptorState acceptor_state() const noexcept {
    return {bal_, vbal_, vval_, my_value_, decided_};
  }
  /// Crash recovery: reinstates a captured state.  Call before any message;
  /// a restored decision does not re-fire on_decide.
  void restore(const AcceptorState& s);

  [[nodiscard]] bool has_decided() const noexcept { return !decided_.is_bottom(); }
  [[nodiscard]] consensus::Value decided_value() const noexcept { return decided_; }
  [[nodiscard]] consensus::Ballot ballot() const noexcept { return bal_; }

 private:
  void handle(consensus::ProcessId from, const FastProposeMsg& m);
  void handle(consensus::ProcessId from, const PrepareMsg& m);
  void handle(consensus::ProcessId from, const PromiseMsg& m);
  void handle(consensus::ProcessId from, const AcceptMsg& m);
  void handle(consensus::ProcessId from, const AcceptedMsg& m);
  void decide(consensus::Ballot b, consensus::Value v);
  [[nodiscard]] consensus::Ballot next_owned_ballot() const;
  [[nodiscard]] consensus::ProcessId omega_leader() const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;

  consensus::Ballot bal_ = 0;    ///< current ballot (0 = fast round)
  consensus::Ballot vbal_ = -1;  ///< ballot of last vote (-1 = none)
  consensus::Value vval_;
  consensus::Value my_value_;
  consensus::Value decided_;

  struct LedBallot {
    std::map<consensus::ProcessId, PromiseMsg> promises;
    bool sent_accept = false;
  };
  std::map<consensus::Ballot, LedBallot> led_;

  std::map<std::pair<consensus::Ballot, consensus::Value>, std::set<consensus::ProcessId>>
      accepted_;

  // Metric handles resolved once at construction (null when metrics off).
  struct {
    obs::Counter* decisions_fast = nullptr;  ///< fast quorum at round 0
    obs::Counter* decisions_slow = nullptr;
    obs::Counter* ballots_started = nullptr;
    util::Summary* decision_latency = nullptr;
  } stats_;

  bool started_ = false;
  bool decide_notified_ = false;
};

}  // namespace twostep::fastpaxos
