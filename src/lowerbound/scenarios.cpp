#include "lowerbound/scenarios.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/two_step.hpp"
#include "exec/parallel_sweep.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "modelcheck/direct_drive.hpp"
#include "obs/metrics.hpp"

namespace twostep::lowerbound {

namespace {

using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;
using modelcheck::DirectDrive;

const Value kLow{10};
const Value kHigh{20};

template <typename M, typename Variant>
bool holds(const Variant& v) {
  return std::holds_alternative<M>(v);
}

DirectDrive<core::TwoStepProcess>::Factory core_factory(
    SystemConfig cfg, core::Mode mode, ProcessId leader,
    core::SelectionPolicy policy = core::SelectionPolicy::kPaper) {
  return [cfg, mode, leader, policy](consensus::Env<core::Message>& env, ProcessId) {
    core::Options options;
    options.mode = mode;
    options.delta = 100;
    options.leader_of = [leader] { return leader; };
    options.selection_policy = policy;
    return std::make_unique<core::TwoStepProcess>(env, cfg, options);
  };
}

DirectDrive<fastpaxos::FastPaxosProcess>::Factory fastpaxos_factory(SystemConfig cfg,
                                                                    ProcessId leader) {
  return [cfg, leader](consensus::Env<fastpaxos::Message>& env, ProcessId) {
    fastpaxos::Options options;
    options.delta = 100;
    options.leader_of = [leader] { return leader; };
    return std::make_unique<fastpaxos::FastPaxosProcess>(env, cfg, options);
  };
}

void note(AttackOutcome& out, const std::string& line) { out.narrative.push_back(line); }

std::string ids(const std::vector<ProcessId>& ps) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < ps.size(); ++i) os << (i ? "," : "") << "p" << ps[i];
  os << "}";
  return os.str();
}

/// Shared epilogue: run the leader-driven recovery to quiescence and collect
/// the outcome from the monitor.
template <typename P>
void finish(DirectDrive<P>& drive, ProcessId leader, ProcessId fast_decider,
            AttackOutcome& out) {
  drive.fire_next_timer(leader);
  drive.deliver_all();
  out.fast_decision = drive.monitor().decision(fast_decider).value_or(Value::bottom());
  out.late_decision = drive.monitor().decision(leader).value_or(Value::bottom());
  out.agreement_violated = !drive.monitor().safe();
  int crashes = 0;
  for (ProcessId p = 0; p < drive.config().n; ++p) crashes += drive.crashed(p) ? 1 : 0;
  out.crashes_used = crashes;
  std::ostringstream os;
  os << "recovery by p" << leader << " decided "
     << out.late_decision.to_string() << " vs fast decision "
     << out.fast_decision.to_string() << " => "
     << (out.agreement_violated ? "AGREEMENT VIOLATED" : "agreement preserved");
  note(out, os.str());
}

/// Common body for the B.1-style task attack.  `n` decides whether we are
/// below the bound (2e+f-1) or at it (2e+f); `keep_bridge_alive` spares one
/// bridge process so the crash budget f is respected at the bound.
AttackOutcome run_task_attack(int e, int f, int n, bool keep_bridge_alive,
                              core::SelectionPolicy policy = core::SelectionPolicy::kPaper) {
  if (e < 1 || f < 2 || 2 * e < f + 2)
    throw std::invalid_argument("task attack needs e >= 1, f >= 2, 2e >= f+2");
  AttackOutcome out;
  out.n = n;
  const SystemConfig cfg{n, f, e};

  // Roles: E0 = p0..p_{e-1} propose LOW; E1 = p_e..p_{2e-1} propose HIGH
  // (c = p_e is the fast winner); bridges F0 = p_{2e}.. propose LOW
  // (r = p_{2e} is the proposer E0's votes point at).
  const ProcessId c = static_cast<ProcessId>(e);
  const ProcessId r = static_cast<ProcessId>(2 * e);
  const ProcessId leader = 0;
  const int bridges = n - 2 * e;  // f-1 below the bound, f at it

  std::vector<ProcessId> e0, e1_rest, f0;
  for (ProcessId p = 0; p < e; ++p) e0.push_back(p);
  for (ProcessId p = static_cast<ProcessId>(e + 1); p < 2 * e; ++p) e1_rest.push_back(p);
  for (ProcessId p = static_cast<ProcessId>(2 * e); p < n; ++p) f0.push_back(p);

  DirectDrive<core::TwoStepProcess> drive{
      cfg, core_factory(cfg, core::Mode::kTask, leader, policy)};
  drive.start_all();
  for (const ProcessId p : e0) drive.propose(p, kLow);
  drive.propose(c, kHigh);
  for (const ProcessId p : e1_rest) drive.propose(p, kHigh);
  for (const ProcessId p : f0) drive.propose(p, kLow);
  note(out, "initial configuration: " + ids(e0) + " and bridges " + ids(f0) +
                " propose LOW, " + ids({c}) + "+" + ids(e1_rest) + " propose HIGH");

  // Round 2 of sigma': E0 vote LOW for bridge r's proposal.
  auto propose_from_to = [&](ProcessId from, const std::vector<ProcessId>& tos) {
    for (const ProcessId to : tos) {
      drive.deliver_where(
          [&](const auto& m) {
            return m.from == from && m.to == to && holds<core::ProposeMsg>(m.msg);
          },
          1);
    }
  };
  propose_from_to(r, e0);
  note(out, "E0 " + ids(e0) + " vote LOW (proposer p" + std::to_string(r) + ")");

  // Round 2 of sigma: E1\{c} and all bridges vote HIGH for c.
  std::vector<ProcessId> c_voters = e1_rest;
  c_voters.insert(c_voters.end(), f0.begin(), f0.end());
  propose_from_to(c, c_voters);
  note(out, "voters " + ids(c_voters) + " vote HIGH (proposer p" + std::to_string(c) + ")");

  // c collects its fast quorum of n-e (incl. itself) and decides HIGH.
  drive.deliver_where([&](const auto& m) { return m.to == c && holds<core::TwoBMsg>(m.msg); });
  note(out, "p" + std::to_string(c) + " fast-decides HIGH with n-e votes");

  // The decider crashes mid-step (its Decide broadcast is lost), together
  // with the bridges (all below the bound; all but one at it).
  drive.crash_suppressing_outbox(c);
  std::vector<ProcessId> crashed_bridges = f0;
  if (keep_bridge_alive) crashed_bridges.pop_back();
  for (const ProcessId p : crashed_bridges) drive.crash(p);
  note(out, "crash p" + std::to_string(c) + " (suppressing Decide) and bridges " +
                ids(crashed_bridges) + " => " +
                std::to_string(1 + static_cast<int>(crashed_bridges.size())) + " crashes (f=" +
                std::to_string(f) + ", bridges available: " + std::to_string(bridges) + ")");

  finish(drive, leader, c, out);
  return out;
}

/// Common body for the B.2-style object attack.
AttackOutcome run_object_attack(int e, int f, int n, bool keep_bridge_alive) {
  if (e < 1 || f < 2 || 2 * e < f + 3)
    throw std::invalid_argument("object attack needs e >= 1, f >= 2, 2e >= f+3");
  AttackOutcome out;
  out.n = n;
  const SystemConfig cfg{n, f, e};

  // Roles: p = p0 proposes HIGH alone on quorum E0; q = p1 proposes LOW
  // alone on quorum E1; F = the quorum intersection (bridges); E0*, E1* the
  // private parts that survive.
  const ProcessId p = 0;
  const ProcessId q = 1;
  const int bridges = n - 2 * e;  // f-2 below the bound, f-1 at it
  std::vector<ProcessId> f_set, e0_star, e1_star;
  ProcessId next = 2;
  for (int i = 0; i < bridges; ++i) f_set.push_back(next++);
  for (int i = 0; i < e - 1; ++i) e0_star.push_back(next++);
  for (int i = 0; i < e - 1; ++i) e1_star.push_back(next++);
  const ProcessId leader = e0_star.front();

  DirectDrive<core::TwoStepProcess> drive{cfg, core_factory(cfg, core::Mode::kObject, leader)};
  drive.start_all();
  drive.propose(p, kHigh);
  drive.propose(q, kLow);
  note(out, "object mode: only p0 proposes HIGH and p1 proposes LOW; bridges " + ids(f_set) +
                ", E0* " + ids(e0_star) + ", E1* " + ids(e1_star));

  auto deliver_propose = [&](ProcessId from, const std::vector<ProcessId>& tos) {
    for (const ProcessId to : tos) {
      drive.deliver_where(
          [&](const auto& m) {
            return m.from == from && m.to == to && holds<core::ProposeMsg>(m.msg);
          },
          1);
    }
  };
  std::vector<ProcessId> p_voters = f_set;
  p_voters.insert(p_voters.end(), e0_star.begin(), e0_star.end());
  deliver_propose(p, p_voters);
  deliver_propose(q, e1_star);
  note(out, "E0-side " + ids(p_voters) + " vote HIGH; E1* " + ids(e1_star) + " vote LOW");

  drive.deliver_where([&](const auto& m) { return m.to == p && holds<core::TwoBMsg>(m.msg); });
  note(out, "p0 fast-decides HIGH with n-e votes (itself included)");

  drive.crash_suppressing_outbox(p);
  drive.crash(q);
  std::vector<ProcessId> crashed_bridges = f_set;
  if (keep_bridge_alive && !crashed_bridges.empty()) crashed_bridges.pop_back();
  for (const ProcessId b : crashed_bridges) drive.crash(b);
  note(out, "crash p0 (suppressing Decide), p1, and bridges " + ids(crashed_bridges) +
                " => " + std::to_string(2 + static_cast<int>(crashed_bridges.size())) +
                " crashes (f=" + std::to_string(f) + ")");

  finish(drive, leader, p, out);
  return out;
}

/// Common body for the Fast Paxos attack.
AttackOutcome run_fastpaxos_attack(int e, int f, int n) {
  if (e < 1 || f < 1) throw std::invalid_argument("fast paxos attack needs e, f >= 1");
  AttackOutcome out;
  out.n = n;
  const SystemConfig cfg{n, f, e};

  // pA = p0 proposes HIGH, pB = p1 proposes LOW.  A-voters: p0 plus the
  // next n-e-1 processes; B-voters: p1 plus the rest.
  const ProcessId pa = 0;
  const ProcessId pb = 1;
  const ProcessId leader = 0;
  std::vector<ProcessId> a_voters{pa}, b_voters{pb};
  for (ProcessId x = 2; x < n; ++x) {
    if (static_cast<int>(a_voters.size()) < cfg.fast_quorum()) {
      a_voters.push_back(x);
    } else {
      b_voters.push_back(x);
    }
  }
  const ProcessId decider = a_voters.at(1);

  DirectDrive<fastpaxos::FastPaxosProcess> drive{cfg, fastpaxos_factory(cfg, leader)};
  drive.start_all();
  drive.propose(pa, kHigh);
  drive.propose(pb, kLow);
  note(out, "A-voters " + ids(a_voters) + " get HIGH first; B-voters " + ids(b_voters) +
                " get LOW first");

  auto deliver_fast_propose = [&](ProcessId from, const std::vector<ProcessId>& tos) {
    for (const ProcessId to : tos) {
      drive.deliver_where(
          [&](const auto& m) {
            return m.from == from && m.to == to && holds<fastpaxos::FastProposeMsg>(m.msg);
          },
          1);
    }
  };
  deliver_fast_propose(pa, a_voters);
  deliver_fast_propose(pb, b_voters);

  // The decider receives all n-e Accepted(0, HIGH) votes and decides.
  drive.deliver_where([&](const auto& m) {
    return m.to == decider && holds<fastpaxos::AcceptedMsg>(m.msg) &&
           std::get<fastpaxos::AcceptedMsg>(m.msg).b == 0 &&
           std::get<fastpaxos::AcceptedMsg>(m.msg).v == kHigh;
  });
  note(out, "p" + std::to_string(decider) + " observes a fast quorum and decides HIGH");

  // Crash the decider and f-1 further A-voters mid-step, suppressing their
  // still-undelivered Accepted broadcasts.
  std::vector<ProcessId> crashed{decider};
  for (std::size_t i = 2; i < a_voters.size() && static_cast<int>(crashed.size()) < f; ++i)
    crashed.push_back(a_voters[i]);
  for (const ProcessId x : crashed) drive.crash_suppressing_outbox(x);
  note(out, "crash " + ids(crashed) + " mid-step (Accepted broadcasts suppressed)");

  finish(drive, leader, decider, out);
  return out;
}

}  // namespace

AttackOutcome task_below_bound_violation(int e, int f) {
  return run_task_attack(e, f, 2 * e + f - 1, /*keep_bridge_alive=*/false);
}

AttackOutcome task_at_bound_defense(int e, int f) {
  return run_task_attack(e, f, 2 * e + f, /*keep_bridge_alive=*/true);
}

AttackOutcome object_below_bound_violation(int e, int f) {
  return run_object_attack(e, f, 2 * e + f - 2, /*keep_bridge_alive=*/false);
}

AttackOutcome object_at_bound_defense(int e, int f) {
  return run_object_attack(e, f, 2 * e + f - 1, /*keep_bridge_alive=*/true);
}

AttackOutcome fastpaxos_below_bound_violation(int e, int f) {
  return run_fastpaxos_attack(e, f, 2 * e + f);
}

AttackOutcome fastpaxos_at_bound_defense(int e, int f) {
  return run_fastpaxos_attack(e, f, 2 * e + f + 1);
}

AttackOutcome task_at_bound_with_policy(int e, int f, core::SelectionPolicy policy) {
  return run_task_attack(e, f, 2 * e + f, /*keep_bridge_alive=*/true, policy);
}

AttackOutcome object_exclusion_ablation(core::SelectionPolicy policy) {
  // n=5, e=2, f=2 (the object bound).  p0 fast-decides 10 with voters p3,
  // p4; p1 and p2 both propose 20 and p1 votes for p2's copy.  After p0 and
  // p4 crash, the 1B quorum {p1, p2, p3} sees one vote for 10 (proposer p0
  // outside Q) and one for 20 — whose proposer p2 sits INSIDE Q.  The
  // R-exclusion discards the 20-vote; without it both values tie at the
  // threshold and the max tie-break resurrects 20.
  const SystemConfig cfg{5, 2, 2};
  AttackOutcome out;
  out.n = cfg.n;
  const ProcessId leader = 1;
  DirectDrive<core::TwoStepProcess> drive{
      cfg, core_factory(cfg, core::Mode::kObject, leader, policy)};
  drive.start_all();
  drive.propose(0, kLow);   // 10: will be fast-decided
  drive.propose(1, kHigh);  // 20
  drive.propose(2, kHigh);  // 20 (same value, second proposer)
  note(out, "p0 proposes 10; p1 and p2 both propose 20 (object mode)");

  for (const ProcessId to : {3, 4}) {
    drive.deliver_where(
        [&](const auto& m) {
          return m.from == 0 && m.to == to && holds<core::ProposeMsg>(m.msg);
        },
        1);
  }
  drive.deliver_where(
      [&](const auto& m) {
        return m.from == 2 && m.to == 1 && holds<core::ProposeMsg>(m.msg);
      },
      1);
  note(out, "p3, p4 vote 10 (proposer p0); p1 votes 20 (proposer p2, equal to its own)");

  drive.deliver_where([&](const auto& m) { return m.to == 0 && holds<core::TwoBMsg>(m.msg); });
  note(out, "p0 fast-decides 10 with votes from p3, p4 and itself (n-e = 3)");

  drive.crash_suppressing_outbox(0);
  drive.crash(4);
  note(out, "crash p0 (suppressing Decide) and p4: 2 = f crashes");

  finish(drive, leader, /*fast_decider=*/0, out);
  return out;
}

std::vector<BoundSweepRow> sweep_bounds(int e_max, int f_max, int jobs,
                                        obs::MetricsRegistry* metrics) {
  struct Spec {
    const char* construction;
    int e, f;
    AttackOutcome (*below)(int, int);
    AttackOutcome (*at)(int, int);
  };
  // Enumerate (e, f, construction)-lexicographically; the side conditions
  // mirror the constructions' documented requirements, so no task throws.
  // Fast Paxos is additionally gated on 2e >= f: its attack runs at
  // n = 2e+f and its defense at n = 2e+f+1, which is Lamport's bound only
  // when that term (not 2f+1) is binding.
  std::vector<Spec> specs;
  for (int e = 1; e <= e_max; ++e) {
    for (int f = e; f <= f_max; ++f) {
      if (f >= 2 && 2 * e >= f + 2)
        specs.push_back({"task B.1", e, f, &task_below_bound_violation,
                         &task_at_bound_defense});
      if (f >= 2 && 2 * e >= f + 3)
        specs.push_back({"object B.2", e, f, &object_below_bound_violation,
                         &object_at_bound_defense});
      if (2 * e >= f)
        specs.push_back({"fast paxos", e, f, &fastpaxos_below_bound_violation,
                         &fastpaxos_at_bound_defense});
    }
  }

  struct Partial {
    BoundSweepRow row;
    obs::MetricsRegistry metrics;
  };
  exec::SweepOptions options;
  options.jobs = jobs;
  auto partials = exec::parallel_sweep<Partial>(
      specs.size(),
      [&specs](const exec::SweepTask& task) {
        const Spec& spec = specs[task.index];
        Partial out;
        out.row.construction = spec.construction;
        out.row.e = spec.e;
        out.row.f = spec.f;
        out.row.below = spec.below(spec.e, spec.f);
        out.row.at = spec.at(spec.e, spec.f);
        out.metrics.counter("lowerbound.attacks").add(1);
        if (out.row.below.agreement_violated)
          out.metrics.counter("lowerbound.violations_below").add(1);
        if (!out.row.at.agreement_violated)
          out.metrics.counter("lowerbound.defenses_held").add(1);
        out.metrics.histogram("lowerbound.crashes_used")
            .add(static_cast<double>(out.row.below.crashes_used));
        return out;
      },
      options);

  std::vector<BoundSweepRow> rows;
  rows.reserve(partials.size());
  for (Partial& part : partials) {
    if (metrics != nullptr) metrics->merge(part.metrics);
    rows.push_back(std::move(part.row));
  }
  return rows;
}

}  // namespace twostep::lowerbound
