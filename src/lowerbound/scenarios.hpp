// Executable lower-bound constructions (Appendix B).
//
// The "only if" halves of Theorems 5 and 6 are indistinguishability proofs:
// the adversary splices prefixes of two legal runs into one run in which two
// processes decide differently.  This module mechanizes those constructions
// against the concrete protocols in this library, instantiated BELOW their
// bounds, and produces real Agreement violations; run with one more process
// (at the bound) the very same attack is defeated — either the crash budget
// f is exceeded, or the value-selection rule recovers the decided value.
//
// Constructions implemented (parameterized over e, f):
//
//  * task_below_bound_violation     — B.1 base case (k = 0) against the task
//    protocol at n = 2e+f-1 (requires 2e >= f+2 so that n >= 2f+1).  Two
//    proposal camps; the HIGH proposer fast-decides with n-e votes; it and
//    the f-1 "bridge" processes crash; the survivor quorum sees e votes LOW
//    vs e-1 votes HIGH and the recovery rule picks LOW.
//
//  * task_at_bound_defense          — same attack at n = 2e+f: crashing all
//    bridges would need f+1 crashes, so one stays alive; the survivor
//    quorum then ties LOW and HIGH at exactly n-f-e votes and the max-value
//    tie-break (Figure 1 line 29) recovers HIGH.
//
//  * object_below_bound_violation   — B.2 against the object protocol at
//    n = 2e+f-2 (requires 2e >= f+3): two lone proposers p (HIGH) and q
//    (LOW) on overlapping quorums E0, E1; p fast-decides and crashes with
//    the intersection F and q (exactly f crashes); the survivor quorum sees
//    e-1 votes each and picks LOW.
//
//  * object_at_bound_defense        — same attack at n = 2e+f-1: |F∪{p,q}|
//    = f+1 exceeds the budget; leaving one F member alive tips the count to
//    e votes HIGH > threshold and recovery succeeds.
//
//  * fastpaxos_below_bound_violation — Fast Paxos one process below
//    Lamport's bound (n = 2e+f): a fast decision with n-e votes leaves a
//    recovery quorum in which two values tie at the O4 threshold n-e-f.
//
//  * fastpaxos_at_bound_defense     — at n = 2e+f+1 the same attack leaves
//    the decided value strictly above the threshold and recovery succeeds.
#pragma once

#include <string>
#include <vector>

#include "consensus/types.hpp"
#include "core/selection.hpp"

namespace twostep::obs {
class MetricsRegistry;
}

namespace twostep::lowerbound {

/// Outcome of one adversarial construction.
struct AttackOutcome {
  int n = 0;                       ///< processes the protocol ran with
  int crashes_used = 0;            ///< crashes the attack needed
  bool agreement_violated = false; ///< did two processes decide differently?
  consensus::Value fast_decision;  ///< value decided on the fast path
  consensus::Value late_decision;  ///< value decided after recovery
  std::vector<std::string> narrative;  ///< round-by-round account
};

/// B.1 base case against the task protocol at n = 2e+f-1.
/// Requires e >= 1, f >= 1, 2e >= f+2.
AttackOutcome task_below_bound_violation(int e, int f);

/// The same attack shape at n = 2e+f; the recovery rule defends.
AttackOutcome task_at_bound_defense(int e, int f);

/// B.2 against the object protocol at n = 2e+f-2.
/// Requires e >= 1, f >= 2, 2e >= f+3.
AttackOutcome object_below_bound_violation(int e, int f);

/// The same attack shape at n = 2e+f-1; one bridge process survives and the
/// above-threshold branch recovers the decided value.
AttackOutcome object_at_bound_defense(int e, int f);

/// Fast Paxos at n = 2e+f (one below Lamport's bound).
AttackOutcome fastpaxos_below_bound_violation(int e, int f);

/// Fast Paxos at n = 2e+f+1 (Lamport's bound): attack defeated.
AttackOutcome fastpaxos_at_bound_defense(int e, int f);

// ---- Parallel (e, f) grid sweep ----

/// One row of the grid sweep: a construction run both below its bound (the
/// attack must violate Agreement) and at the bound (the defense must hold).
struct BoundSweepRow {
  std::string construction;  ///< "task B.1", "object B.2", "fast paxos"
  int e = 0;
  int f = 0;
  AttackOutcome below;  ///< one process below the bound
  AttackOutcome at;     ///< at the bound
  /// True iff the attack violated Agreement below the bound AND the same
  /// attack shape was defeated at the bound — the paper's "iff" in action.
  [[nodiscard]] bool as_predicted() const {
    return below.agreement_violated && !at.agreement_violated;
  }
};

/// Runs every applicable Appendix B construction over the grid
/// 1 <= e <= e_max, e <= f <= f_max across `jobs` worker threads (<= 0: all
/// hardware threads).  Row order is deterministic and independent of
/// `jobs`: rows are enumerated (e, f, construction)-lexicographically and
/// reduced in task-index order.  When `metrics` is non-null each task
/// records into a private obs::MetricsRegistry (attack counts, crash usage)
/// and the registries are merged into *metrics after the join.
std::vector<BoundSweepRow> sweep_bounds(int e_max, int f_max, int jobs = 1,
                                        obs::MetricsRegistry* metrics = nullptr);

// ---- Ablations (experiment A1): are the novel selection-rule pieces
// ---- load-bearing?  Each scenario is safe under the paper rule and
// ---- violates Agreement under the corresponding weakened policy.

/// The task defense scenario (tie at exactly n-f-e votes) run with an
/// arbitrary selection policy.  kPaper recovers the decided value via the
/// max-value tie-break; kNoMaxTieBreak decides the other candidate.
AttackOutcome task_at_bound_with_policy(int e, int f, core::SelectionPolicy policy);

/// A scenario where a value whose proposer sits inside the 1B quorum ties a
/// genuinely fast-decided value at the threshold (object mode, e=2, f=2,
/// n=5).  kPaper discards it via the R-exclusion; kNoProposerExclusion
/// decides it and violates Agreement.
AttackOutcome object_exclusion_ablation(core::SelectionPolicy policy);

}  // namespace twostep::lowerbound
