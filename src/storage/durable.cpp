#include "storage/durable.hpp"

#include <algorithm>
#include <limits>

#include "codec/codec.hpp"

namespace twostep::storage {

namespace {

using consensus::Ballot;
using consensus::ProcessId;
using consensus::Value;

std::vector<std::uint8_t> encode_core_state(const core::TwoStepProcess::AcceptorState& s) {
  codec::Writer w;
  w.put_i64(s.bal);
  w.put_i64(s.vbal);
  w.put_value(s.val);
  w.put_i64(s.proposer);
  w.put_value(s.initial);
  w.put_value(s.decided);
  return std::move(w).take();
}

bool decode_core_state(codec::Reader& r, core::TwoStepProcess::AcceptorState& out) {
  out.bal = r.get_i64();
  out.vbal = r.get_i64();
  out.val = r.get_value();
  out.proposer = static_cast<ProcessId>(r.get_i64());
  out.initial = r.get_value();
  out.decided = r.get_value();
  return r.ok();
}

void put_config_change(codec::Writer& w, const rsm::ConfigChange& c) {
  w.put_i64(static_cast<std::int64_t>(c.op));
  w.put_i64(c.replica);
  w.put_string(c.host);
  w.put_i64(c.port);
}

bool get_config_change(codec::Reader& r, rsm::ConfigChange& out) {
  const std::int64_t op = r.get_i64();
  const std::int64_t replica = r.get_i64();
  std::string host = r.get_string();
  const std::int64_t port = r.get_i64();
  if (!r.ok()) return false;
  if (op < 0 || op > static_cast<std::int64_t>(rsm::ConfigChange::Op::kRemove)) return false;
  if (replica < 0 || replica > std::numeric_limits<ProcessId>::max()) return false;
  if (port < 0 || port > 65535) return false;
  out.op = static_cast<rsm::ConfigChange::Op>(op);
  out.replica = static_cast<ProcessId>(replica);
  out.host = std::move(host);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

}  // namespace

// ---- core::TwoStepProcess -------------------------------------------------

bool Durable<core::TwoStepProcess>::capture(core::TwoStepProcess& p, Wal& wal) {
  std::vector<std::uint8_t> record = encode_core_state(p.acceptor_state());
  if (record == last_) return false;
  wal.append(record);
  last_ = std::move(record);
  return true;
}

void Durable<core::TwoStepProcess>::replay(core::TwoStepProcess& p,
                                           std::span<const std::uint8_t> record) {
  codec::Reader r{record};
  core::TwoStepProcess::AcceptorState s;
  if (!decode_core_state(r, s) || !r.exhausted()) return;
  p.restore(s);
  last_.assign(record.begin(), record.end());
}

void Durable<core::TwoStepProcess>::note_recovery(const core::TwoStepProcess& p,
                                                  obs::MetricsRegistry& reg) {
  reg.counter("recover.ballot").add(static_cast<std::uint64_t>(std::max<Ballot>(0, p.ballot())));
  reg.counter("recover.vote_ballot")
      .add(static_cast<std::uint64_t>(std::max<Ballot>(0, p.vote_ballot())));
  if (!p.vote_value().is_bottom()) reg.counter("recover.voted").add();
  if (p.has_decided()) reg.counter("recover.decided").add();
}

// ---- fastpaxos::FastPaxosProcess ------------------------------------------

bool Durable<fastpaxos::FastPaxosProcess>::capture(fastpaxos::FastPaxosProcess& p, Wal& wal) {
  const auto s = p.acceptor_state();
  codec::Writer w;
  w.put_i64(s.bal);
  w.put_i64(s.vbal);
  w.put_value(s.vval);
  w.put_value(s.my_value);
  w.put_value(s.decided);
  std::vector<std::uint8_t> record = std::move(w).take();
  if (record == last_) return false;
  wal.append(record);
  last_ = std::move(record);
  return true;
}

void Durable<fastpaxos::FastPaxosProcess>::replay(fastpaxos::FastPaxosProcess& p,
                                                  std::span<const std::uint8_t> record) {
  codec::Reader r{record};
  fastpaxos::FastPaxosProcess::AcceptorState s;
  s.bal = r.get_i64();
  s.vbal = r.get_i64();
  s.vval = r.get_value();
  s.my_value = r.get_value();
  s.decided = r.get_value();
  if (!r.ok() || !r.exhausted()) return;
  p.restore(s);
  last_.assign(record.begin(), record.end());
}

void Durable<fastpaxos::FastPaxosProcess>::note_recovery(const fastpaxos::FastPaxosProcess& p,
                                                         obs::MetricsRegistry& reg) {
  reg.counter("recover.ballot").add(static_cast<std::uint64_t>(std::max<Ballot>(0, p.ballot())));
  if (p.has_decided()) reg.counter("recover.decided").add();
}

// ---- rsm::RsmProcess ------------------------------------------------------

bool Durable<rsm::RsmProcess>::capture(rsm::RsmProcess& p, Wal& wal) {
  bool appended = false;
  // Batch contents first: a decided slot record naming a batch handle must
  // never hit disk ahead of the payloads it stands for, or a replay could
  // stall on our own proposal.  Contents are immutable, so each handle is
  // drained (and therefore logged) exactly once.
  for (const rsm::Command cmd : p.drain_dirty_batches()) {
    const std::vector<std::int64_t>* payloads = p.batch_contents(cmd);
    if (payloads == nullptr) continue;
    codec::Writer w;
    w.put_i64(kBatchRecordTag);
    w.put_i64(cmd);
    w.put_i64(static_cast<std::int64_t>(payloads->size()));
    for (const std::int64_t payload : *payloads) w.put_i64(payload);
    wal.append(std::move(w).take());
    appended = true;
  }
  // Config-change contents, same ordering rule as batches: replaying a
  // decided config slot re-derives the epoch via apply_contiguous, which
  // needs the change on hand.
  for (const rsm::Command cmd : p.drain_dirty_configs()) {
    const rsm::ConfigChange* change = p.config_contents(cmd);
    if (change == nullptr) continue;
    codec::Writer w;
    w.put_i64(kConfigRecordTag);
    w.put_i64(cmd);
    put_config_change(w, *change);
    wal.append(std::move(w).take());
    appended = true;
  }
  for (const std::int32_t slot : p.drain_dirty_slots()) {
    const core::TwoStepProcess* proc = p.slot_process(slot);
    if (proc == nullptr) continue;
    codec::Writer w;
    w.put_i64(slot);
    std::vector<std::uint8_t> state = encode_core_state(proc->acceptor_state());
    for (const std::uint8_t byte : state) w.put_u8(byte);
    std::vector<std::uint8_t> record = std::move(w).take();
    auto& cell = last_[slot];
    if (record == cell) continue;
    wal.append(record);
    cell = std::move(record);
    appended = true;
  }
  return appended;
}

void Durable<rsm::RsmProcess>::replay(rsm::RsmProcess& p, std::span<const std::uint8_t> record) {
  codec::Reader r{record};
  const std::int64_t slot = r.get_i64();
  if (r.ok() && slot == kBatchRecordTag) {
    const rsm::Command cmd = r.get_i64();
    const std::int64_t count = r.get_i64();
    if (!r.ok() || count < 0 || static_cast<std::uint64_t>(count) > record.size()) return;
    std::vector<std::int64_t> payloads;
    payloads.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) payloads.push_back(r.get_i64());
    if (!r.ok() || !r.exhausted()) return;
    p.restore_batch(cmd, std::move(payloads));
    ++replayed_batches_;
    return;
  }
  if (r.ok() && slot == kConfigRecordTag) {
    const rsm::Command cmd = r.get_i64();
    rsm::ConfigChange change;
    if (!r.ok() || !get_config_change(r, change) || !r.exhausted()) return;
    p.restore_config(cmd, change);
    ++replayed_configs_;
    return;
  }
  core::TwoStepProcess::AcceptorState s;
  if (!decode_core_state(r, s) || !r.exhausted()) return;
  if (!r.ok() || slot < 0 || slot > INT32_MAX) return;
  p.restore_slot(static_cast<std::int32_t>(slot), s);
  auto& cell = last_[static_cast<std::int32_t>(slot)];
  const bool fresh = cell.empty();
  cell.assign(record.begin(), record.end());
  if (fresh) ++replayed_slots_;
}

void Durable<rsm::RsmProcess>::compact(std::int32_t floor) {
  last_.erase(last_.begin(), last_.lower_bound(floor));
}

void Durable<rsm::RsmProcess>::note_recovery(const rsm::RsmProcess& p,
                                             obs::MetricsRegistry& reg) {
  reg.counter("recover.slots").add(replayed_slots_);
  reg.counter("recover.batches").add(replayed_batches_);
  reg.counter("recover.configs").add(replayed_configs_);
  reg.counter("recover.decided").add(static_cast<std::uint64_t>(p.decided_slots()));
  reg.counter("recover.applied").add(static_cast<std::uint64_t>(p.applied_prefix()));
  Ballot max_bal = 0;
  for (const auto& [slot, bytes] : last_) {
    const core::TwoStepProcess* proc = p.slot_process(slot);
    if (proc != nullptr) max_bal = std::max(max_bal, proc->ballot());
  }
  reg.counter("recover.max_ballot").add(static_cast<std::uint64_t>(max_bal));
}

// ---- epaxos::EPaxosRsm ----------------------------------------------------

namespace {

std::vector<std::uint8_t> encode_epaxos_instance(const epaxos::InstanceId& id,
                                                 const epaxos::EPaxosReplica::InstanceState& s) {
  codec::Writer w;
  w.put_i64(id.replica);
  w.put_i64(id.index);
  w.put_i64(static_cast<std::int64_t>(s.status));
  w.put_i64(s.ballot);
  w.put_i64(s.cmd.key);
  w.put_i64(s.cmd.payload);
  w.put_i64(s.seq);
  w.put_i64(static_cast<std::int64_t>(s.deps.size()));
  for (const epaxos::InstanceId& dep : s.deps) {
    w.put_i64(dep.replica);
    w.put_i64(dep.index);
  }
  return std::move(w).take();
}

}  // namespace

bool Durable<epaxos::EPaxosRsm>::capture(epaxos::EPaxosRsm& p, Wal& wal) {
  bool appended = false;
  for (const epaxos::InstanceId id : p.replica().drain_dirty_instances()) {
    const auto state = p.replica().instance_state(id);
    if (!state) continue;
    std::vector<std::uint8_t> record = encode_epaxos_instance(id, *state);
    auto& cell = last_[id];
    if (record == cell) continue;
    wal.append(record);
    cell = std::move(record);
    appended = true;
  }
  return appended;
}

void Durable<epaxos::EPaxosRsm>::replay(epaxos::EPaxosRsm& p,
                                        std::span<const std::uint8_t> record) {
  codec::Reader r{record};
  epaxos::InstanceId id;
  id.replica = static_cast<ProcessId>(r.get_i64());
  const std::int64_t index = r.get_i64();
  const std::int64_t status = r.get_i64();
  epaxos::EPaxosReplica::InstanceState s;
  s.ballot = r.get_i64();
  s.cmd.key = r.get_i64();
  s.cmd.payload = r.get_i64();
  s.seq = r.get_i64();
  const std::int64_t dep_count = r.get_i64();
  if (!r.ok() || index < 0 || index > INT32_MAX || dep_count < 0 ||
      static_cast<std::uint64_t>(dep_count) > record.size())
    return;
  id.index = static_cast<std::int32_t>(index);
  if (!id.valid() || status < 0 ||
      status > static_cast<std::int64_t>(epaxos::Status::kExecuted))
    return;
  s.status = static_cast<epaxos::Status>(status);
  for (std::int64_t i = 0; i < dep_count; ++i) {
    epaxos::InstanceId dep;
    dep.replica = static_cast<ProcessId>(r.get_i64());
    const std::int64_t dep_index = r.get_i64();
    if (!r.ok() || dep_index < 0 || dep_index > INT32_MAX) return;
    dep.index = static_cast<std::int32_t>(dep_index);
    if (!dep.valid()) return;
    s.deps.insert(dep);
  }
  if (!r.ok() || !r.exhausted()) return;
  p.replica().restore_instance(id, s);
  auto& cell = last_[id];
  const bool fresh = cell.empty();
  cell.assign(record.begin(), record.end());
  if (fresh) ++replayed_instances_;
}

void Durable<epaxos::EPaxosRsm>::note_recovery(const epaxos::EPaxosRsm& p,
                                               obs::MetricsRegistry& reg) {
  reg.counter("recover.instances").add(replayed_instances_);
  reg.counter("recover.decided")
      .add(static_cast<std::uint64_t>(std::max(0, p.replica().committed_count())));
  reg.counter("recover.applied")
      .add(static_cast<std::uint64_t>(std::max<std::int32_t>(0, p.executed_entries())));
}

// ---- Snapshotable<rsm::RsmProcess> ----------------------------------------

std::vector<std::uint8_t> Snapshotable<rsm::RsmProcess>::capture(const rsm::RsmProcess& p) {
  const rsm::SnapshotState s = p.snapshot_state();
  codec::Writer w;
  w.put_i64(kVersion);
  w.put_i64(s.floor);
  w.put_i64(static_cast<std::int64_t>(s.applied.size()));
  for (const auto& [slot, cmd] : s.applied) {
    w.put_i64(slot);
    w.put_i64(cmd);
  }
  w.put_i64(static_cast<std::int64_t>(s.slots.size()));
  for (const auto& [slot, state] : s.slots) {
    w.put_i64(slot);
    for (const std::uint8_t byte : encode_core_state(state)) w.put_u8(byte);
  }
  w.put_i64(static_cast<std::int64_t>(s.batches.size()));
  for (const auto& [cmd, payloads] : s.batches) {
    w.put_i64(cmd);
    w.put_i64(static_cast<std::int64_t>(payloads.size()));
    for (const std::int64_t payload : payloads) w.put_i64(payload);
  }
  w.put_i64(static_cast<std::int64_t>(s.epochs.size()));
  for (const rsm::ConfigEpoch& e : s.epochs) {
    w.put_i64(e.version);
    w.put_i64(e.boundary);
    w.put_i64(e.universe);
    w.put_i64(static_cast<std::int64_t>(e.members.size()));
    for (const ProcessId m : e.members) w.put_i64(m);
    put_config_change(w, e.change);
  }
  w.put_i64(static_cast<std::int64_t>(s.configs.size()));
  for (const auto& [cmd, change] : s.configs) {
    w.put_i64(cmd);
    put_config_change(w, change);
  }
  return std::move(w).take();
}

bool Snapshotable<rsm::RsmProcess>::install(rsm::RsmProcess& p,
                                            std::span<const std::uint8_t> blob) {
  codec::Reader r{blob};
  if (r.get_i64() != kVersion || !r.ok()) return false;
  rsm::SnapshotState s;
  const std::int64_t floor = r.get_i64();
  if (!r.ok() || floor < 0 || floor > INT32_MAX) return false;
  s.floor = static_cast<std::int32_t>(floor);

  // Counts are sanity-capped against the blob size (every entry costs at
  // least one byte) so a corrupt count cannot drive a huge allocation.
  const auto plausible = [&blob](std::int64_t n) {
    return n >= 0 && static_cast<std::uint64_t>(n) <= blob.size();
  };

  std::int64_t n = r.get_i64();
  if (!r.ok() || !plausible(n)) return false;
  s.applied.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t slot = r.get_i64();
    const std::int64_t cmd = r.get_i64();
    if (!r.ok() || slot < 0 || slot > INT32_MAX) return false;
    s.applied.emplace_back(static_cast<std::int32_t>(slot), cmd);
  }

  n = r.get_i64();
  if (!r.ok() || !plausible(n)) return false;
  s.slots.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t slot = r.get_i64();
    core::TwoStepProcess::AcceptorState state;
    if (!r.ok() || slot < 0 || slot > INT32_MAX || !decode_core_state(r, state)) return false;
    s.slots.emplace_back(static_cast<std::int32_t>(slot), state);
  }

  n = r.get_i64();
  if (!r.ok() || !plausible(n)) return false;
  s.batches.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const rsm::Command cmd = r.get_i64();
    const std::int64_t count = r.get_i64();
    if (!r.ok() || !plausible(count)) return false;
    std::vector<std::int64_t> payloads;
    payloads.reserve(static_cast<std::size_t>(count));
    for (std::int64_t j = 0; j < count; ++j) payloads.push_back(r.get_i64());
    if (!r.ok()) return false;
    s.batches.emplace_back(cmd, std::move(payloads));
  }

  n = r.get_i64();
  if (!r.ok() || n < 1 || !plausible(n)) return false;  // genesis always present
  s.epochs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    rsm::ConfigEpoch e;
    const std::int64_t version = r.get_i64();
    const std::int64_t boundary = r.get_i64();
    const std::int64_t universe = r.get_i64();
    const std::int64_t members = r.get_i64();
    if (!r.ok() || version < 0 || version > INT32_MAX || boundary < 0 || boundary > INT32_MAX ||
        universe < 1 || universe > INT32_MAX || !plausible(members))
      return false;
    e.version = static_cast<std::int32_t>(version);
    e.boundary = static_cast<std::int32_t>(boundary);
    e.universe = static_cast<std::int32_t>(universe);
    e.members.reserve(static_cast<std::size_t>(members));
    for (std::int64_t j = 0; j < members; ++j) {
      const std::int64_t m = r.get_i64();
      if (!r.ok() || m < 0 || m > std::numeric_limits<ProcessId>::max()) return false;
      e.members.push_back(static_cast<ProcessId>(m));
    }
    if (!get_config_change(r, e.change)) return false;
    s.epochs.push_back(std::move(e));
  }

  n = r.get_i64();
  if (!r.ok() || !plausible(n)) return false;
  s.configs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const rsm::Command cmd = r.get_i64();
    rsm::ConfigChange change;
    if (!r.ok() || !get_config_change(r, change)) return false;
    s.configs.emplace_back(cmd, std::move(change));
  }
  if (!r.exhausted()) return false;

  p.install_snapshot_state(s);
  return true;
}

}  // namespace twostep::storage
