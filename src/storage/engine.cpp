#include "storage/engine.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <system_error>
#include <utility>

#include "codec/codec.hpp"

namespace twostep::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t read_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void fsync_dir(const std::string& dir, bool enabled) {
  if (!enabled) return;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Engine::Engine(std::string dir, EngineOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  std::filesystem::create_directories(dir_);
  // An interrupted write_snapshot may leave a temp file; it was never
  // renamed, so it was never promised — the previous snapshot (if any)
  // stays authoritative.
  ::unlink((dir_ + "/snapshot.tmp").c_str());
  load_snapshot();
  wal_.emplace(dir_, WalOptions{options_.fsync, options_.segment_bytes});
  if (snapshot_) {
    const auto& recovered = wal_->recovered();
    while (tail_start_ < recovered.size() &&
           recovered[tail_start_].segment <= snapshot_->covered_segment)
      ++tail_start_;
    // Covered segments still on disk mean a crash hit between rename and
    // truncation; finish the interrupted compaction now.
    if (tail_start_ > 0) wal_->truncate_through(snapshot_->covered_segment);
  }
  appends_at_snapshot_ = -static_cast<std::int64_t>(tail().size());
}

void Engine::load_snapshot() {
  const std::string path = snapshot_path();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;  // no snapshot: fresh node or pre-snapshot layout
  struct stat st{};
  std::vector<std::uint8_t> bytes;
  if (::fstat(fd, &st) == 0) {
    bytes.resize(static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    while (got < bytes.size()) {
      const ssize_t n = ::pread(fd, bytes.data() + got, bytes.size() - got,
                                static_cast<off_t>(got));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      got += static_cast<std::size_t>(n);
    }
    bytes.resize(got);
  }
  ::close(fd);

  // Validate the CRC frame, then the body.  Any failure -> corrupt: fall
  // back to full WAL replay rather than refusing to start.
  snapshot_corrupt_ = true;
  if (bytes.size() < 8) return;
  const std::uint32_t len = read_u32_le(bytes.data());
  const std::uint32_t crc = read_u32_le(bytes.data() + 4);
  if (bytes.size() - 8 != len) return;
  const std::span<const std::uint8_t> body{bytes.data() + 8, len};
  if (crc32(body) != crc) return;
  codec::Reader r{body};
  const std::int64_t covered = r.get_i64();
  const std::int64_t payload_len = r.get_i64();
  if (!r.ok() || covered < 0 || payload_len < 0 ||
      static_cast<std::uint64_t>(payload_len) != body.size() - r.position())
    return;
  Snapshot snap;
  snap.covered_segment = static_cast<std::uint64_t>(covered);
  snap.payload.assign(body.begin() + static_cast<std::ptrdiff_t>(r.position()), body.end());
  snapshot_ = std::move(snap);
  snapshot_corrupt_ = false;
}

std::uint64_t Engine::write_snapshot(std::span<const std::uint8_t> payload) {
  // 1. Barrier: everything logged so far lands in sealed segments; the
  //    payload (captured from state the WAL covers) summarizes all of them.
  const std::uint64_t barrier = wal_->rotate();

  // 2. Frame + write the temp file.
  codec::Writer w;
  w.put_i64(static_cast<std::int64_t>(barrier));
  w.put_i64(static_cast<std::int64_t>(payload.size()));
  std::vector<std::uint8_t> body = std::move(w).take();
  body.insert(body.end(), payload.begin(), payload.end());
  std::vector<std::uint8_t> framed;
  framed.reserve(body.size() + 8);
  put_u32_le(framed, static_cast<std::uint32_t>(body.size()));
  put_u32_le(framed, crc32(body));
  framed.insert(framed.end(), body.begin(), body.end());

  const std::string tmp = dir_ + "/snapshot.tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("snapshot open " + tmp);
  std::size_t done = 0;
  while (done < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + done, framed.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("snapshot write " + tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (options_.fsync && ::fsync(fd) < 0) {
    ::close(fd);
    throw_errno("snapshot fsync " + tmp);
  }
  ::close(fd);
  if (options_.test_hook) options_.test_hook("tmp_written");

  // 3. Atomic replacement; the directory fsync makes the rename durable.
  if (::rename(tmp.c_str(), snapshot_path().c_str()) < 0)
    throw_errno("snapshot rename " + tmp);
  fsync_dir(dir_, options_.fsync);
  if (options_.test_hook) options_.test_hook("renamed");

  // 4. Only now is the WAL prefix redundant.
  const std::uint64_t dropped = wal_->truncate_through(barrier);

  Snapshot snap;
  snap.covered_segment = barrier;
  snap.payload.assign(payload.begin(), payload.end());
  snapshot_ = std::move(snap);
  snapshot_corrupt_ = false;
  snapshot_bytes_ = payload.size();
  ++snapshots_written_;
  appends_at_snapshot_ = static_cast<std::int64_t>(wal_->appends());
  return dropped;
}

}  // namespace twostep::storage
