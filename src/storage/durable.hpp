// Per-protocol durability traits over the WAL.
//
// storage::Durable<P> is the bridge between a protocol instance and its
// write-ahead log: capture() appends a record when (and only when) the
// acceptor-critical state changed since the last capture, and replay()
// applies one recovered record back onto a fresh instance (also seeding the
// change detector, so unchanged state is never re-logged after recovery).
// The records are codec-encoded (zigzag varints, Value presence bytes) —
// the same primitives as the wire format, so a WAL record is as compact as
// the message that revealed the state it protects.
//
// What is durable per protocol, and why it suffices for safety:
//   - TwoStepProcess (task and object mode): the full Figure-1 acceptor
//     tuple (bal, vbal, val, proposer, initial_val, decided).  A 1B reply
//     and a fast vote expose exactly these fields; Lemma 7 / Lemma C.2
//     intersect quorums over them.
//   - FastPaxosProcess: (bal, vbal, vval, my_value, decided) — the classic
//     Paxos promise/vote pair plus the own proposal (a restarted proposer
//     must not re-propose a different value under the same identity).
//   - RsmProcess: one record per touched slot, carrying the slot's inner
//     object-mode acceptor tuple.  Decisions ride in the same record (the
//     `decided` field); the applied prefix is recomputed from the decisions
//     on replay, so it needs no record of its own.
// Leader-side vote tallies (who promised/voted to *us*) are deliberately
// volatile: losing them delays recovery by one ballot but cannot break
// agreement, and logging them would double the write volume.
//
// storage::Snapshotable<P> is the whole-state companion: where Durable
// logs *transitions*, Snapshotable checkpoints the *sum*.  Its blob is
// what storage::Engine frames into the snapshot file and what snapshot
// state transfer ships to a lagging replica; the two traits together are
// the complete durability contract of a protocol (see below).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/two_step.hpp"
#include "epaxos/host.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "obs/metrics.hpp"
#include "rsm/rsm.hpp"
#include "storage/wal.hpp"

namespace twostep::storage {

/// Specialized for every protocol the node runtime can persist.
template <typename P>
struct Durable;

/// True when Durable<P> exists; Runtime uses it to reject StorageOptions
/// for protocols without durability support at construction time.
template <typename P>
inline constexpr bool kHasDurable = false;
template <>
inline constexpr bool kHasDurable<core::TwoStepProcess> = true;
template <>
inline constexpr bool kHasDurable<fastpaxos::FastPaxosProcess> = true;
template <>
inline constexpr bool kHasDurable<rsm::RsmProcess> = true;
template <>
inline constexpr bool kHasDurable<epaxos::EPaxosRsm> = true;

/// Stand-in for protocols without durability support, so Runtime<P> still
/// compiles for them (storage is rejected at runtime before it is reached).
struct NullDurable {
  template <typename P>
  bool capture(P&, Wal&) {
    return false;
  }
  template <typename P>
  void replay(P&, std::span<const std::uint8_t>) {}
  template <typename P>
  void note_recovery(const P&, obs::MetricsRegistry&) {}
};

/// Whole-state checkpointing, specialized per snapshot-capable protocol.
///
/// The contract — what makes Engine's WAL compaction and snapshot state
/// transfer safe:
///   - capture() serializes the instance's COMPLETE state: installed into
///     a fresh instance, the blob must reproduce exactly the state a full
///     WAL replay (all records appended so far) would.  This is why the
///     snapshot barrier can be "rotate, then cover every sealed segment"
///     with no per-record reasoning.
///   - install() must also be safe on a RUNNING instance that is behind
///     (live state transfer): it may only add knowledge — adopt decisions,
///     fill gaps, extend the applied log — never regress promises the
///     local instance already made.
///   - Blobs are versioned: the leading varint is the format version, and
///     install() returns false on a version (or any framing) it does not
///     understand rather than guessing.  The caller then falls back to WAL
///     replay or re-requests the transfer.
template <typename P>
struct Snapshotable;

/// True when Snapshotable<P> exists; Runtime uses it to reject snapshot
/// triggers (StorageOptions::snapshot_every) for protocols that can only
/// log transitions.
template <typename P>
inline constexpr bool kHasSnapshot = false;
template <>
inline constexpr bool kHasSnapshot<rsm::RsmProcess> = true;

/// Stand-in mirroring NullDurable, so Runtime<P> compiles for protocols
/// without snapshot support.
struct NullSnapshotable {
  template <typename P>
  static std::vector<std::uint8_t> capture(const P&) {
    return {};
  }
  template <typename P>
  static bool install(P&, std::span<const std::uint8_t>) {
    return false;
  }
};

template <>
struct Durable<core::TwoStepProcess> {
  /// Appends a record iff the acceptor state changed since the last
  /// capture/replay; returns whether anything was appended (i.e. whether
  /// the caller owes a sync before releasing the buffered messages).
  bool capture(core::TwoStepProcess& p, Wal& wal);
  /// Applies one recovered record; malformed records are ignored (they can
  /// only come from a foreign or future file — CRC already screened rot).
  void replay(core::TwoStepProcess& p, std::span<const std::uint8_t> record);
  /// Publishes what was recovered ("recover.*" counters) so a rejoin from
  /// the WAL — rather than from scratch — is observable in metrics.
  void note_recovery(const core::TwoStepProcess& p, obs::MetricsRegistry& reg);

 private:
  std::vector<std::uint8_t> last_;
};

template <>
struct Durable<fastpaxos::FastPaxosProcess> {
  bool capture(fastpaxos::FastPaxosProcess& p, Wal& wal);
  void replay(fastpaxos::FastPaxosProcess& p, std::span<const std::uint8_t> record);
  void note_recovery(const fastpaxos::FastPaxosProcess& p, obs::MetricsRegistry& reg);

 private:
  std::vector<std::uint8_t> last_;
};

template <>
struct Durable<rsm::RsmProcess> {
  /// Record discriminator for batch-content records.  Slot records start
  /// with a non-negative slot varint; pre-batching replays skip any record
  /// whose leading varint is negative, so the format stays forward- and
  /// backward-compatible.
  static constexpr std::int64_t kBatchRecordTag = -1;
  /// Record discriminator for config-change content records (same negative
  /// tag space as batches).
  static constexpr std::int64_t kConfigRecordTag = -2;

  /// One record per newly-known batch and config change (contents are
  /// immutable, logged once), then one record per dirty slot whose encoded
  /// state changed.  Sidecar contents precede slot records so a replayed
  /// decision can always be expanded.
  bool capture(rsm::RsmProcess& p, Wal& wal);
  void replay(rsm::RsmProcess& p, std::span<const std::uint8_t> record);
  void note_recovery(const rsm::RsmProcess& p, obs::MetricsRegistry& reg);

  /// Forgets the change-detector cells of slots below `floor`; called
  /// alongside RsmProcess::compact_to so the detector does not grow
  /// without bound once snapshots retire old slots.
  void compact(std::int32_t floor);

 private:
  std::map<std::int32_t, std::vector<std::uint8_t>> last_;  ///< slot -> encoded record
  std::uint64_t replayed_slots_ = 0;
  std::uint64_t replayed_batches_ = 0;
  std::uint64_t replayed_configs_ = 0;
};

template <>
struct Durable<epaxos::EPaxosRsm> {
  /// One record per dirty instance whose durable slice changed: the
  /// EPaxosReplica::InstanceState tuple keyed by (replica, index).  Leader
  /// tallies stay volatile (same rationale as the other protocols) and
  /// execution is re-derived from the committed graph on replay, so an
  /// instance's record changes at most a handful of times over its life
  /// (pre-accept, accept, commit).
  bool capture(epaxos::EPaxosRsm& p, Wal& wal);
  void replay(epaxos::EPaxosRsm& p, std::span<const std::uint8_t> record);
  void note_recovery(const epaxos::EPaxosRsm& p, obs::MetricsRegistry& reg);

 private:
  std::map<epaxos::InstanceId, std::vector<std::uint8_t>> last_;  ///< id -> encoded record
  std::uint64_t replayed_instances_ = 0;
};

template <>
struct Snapshotable<rsm::RsmProcess> {
  /// Blob format version (the leading varint).  v2 layout, all zigzag
  /// varints (strings length-prefixed):
  ///   version, floor,
  ///   applied_count, { slot, command } per applied entry,
  ///   slot_count, { slot, core acceptor tuple } per live slot,
  ///   batch_count, { handle, payload_count, payloads... } per batch,
  ///   epoch_count, { version, boundary, universe, member_count, members...,
  ///                  op, replica, host, port } per config epoch,
  ///   config_count, { handle, op, replica, host, port } per pending change.
  static constexpr std::int64_t kVersion = 2;

  /// Encodes RsmProcess::snapshot_state().  Stateless: capture never
  /// mutates the instance (unlike Durable::capture, which drains dirty
  /// sets).
  static std::vector<std::uint8_t> capture(const rsm::RsmProcess& p);

  /// Decodes and installs a blob via install_snapshot_state.  Returns
  /// false (leaving `p` untouched) on unknown version or any framing
  /// error.
  static bool install(rsm::RsmProcess& p, std::span<const std::uint8_t> blob);
};

}  // namespace twostep::storage
