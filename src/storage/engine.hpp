// storage::Engine — the single handle a node holds on its durable state.
//
// PR 6 gave nodes a WAL; PR 8 gave it group commit; this unifies the
// surface and adds the pieces a *long-lived* node needs: snapshots, WAL
// compaction behind the snapshot barrier, and the recovery order that makes
// them safe.  One Engine owns:
//
//   <dir>/wal.000001, wal.000002, …   the segmented WAL (storage::Wal)
//   <dir>/snapshot                    the latest durable checkpoint
//   <dir>/snapshot.tmp                in-flight checkpoint (never read)
//
// Snapshot file format — one CRC-framed record, exactly the WAL's framing:
//
//   u32 length (LE) | u32 CRC-32 (LE) | body
//   body = varint covered_segment | varint payload_len | payload bytes
//
// where `payload` is an opaque blob assembled by the node runtime (its own
// version header, dedup cache and the protocol state captured by
// storage::Snapshotable<P>), and `covered_segment` is the WAL compaction
// barrier: every record in segments <= covered_segment is summarized by
// this snapshot.
//
// Write protocol (write_snapshot), in an order that makes
// truncation-before-durability impossible by construction:
//   1. sync + rotate the WAL — the freshly sealed segment is the barrier,
//      and the snapshot payload (captured from in-memory state covered by
//      the WAL up to that barrier) covers all sealed segments;
//   2. write the framed snapshot to snapshot.tmp, fsync it;
//   3. rename(snapshot.tmp -> snapshot) — atomic replacement: a crash
//      before the rename leaves the previous snapshot authoritative, a
//      crash after it the new one — then fsync the directory;
//   4. only now truncate_through(barrier): delete the covered segments.
// A crash between 3 and 4 leaves covered segments on disk; recovery skips
// their records (tail() filters by covered_segment), so replay never
// resurrects state the snapshot already summarizes.
//
// Recovery (the constructor): load + CRC-check <dir>/snapshot; a missing
// or corrupt snapshot degrades to the PR 6 behavior — replay every
// surviving WAL record from genesis — rather than failing the node (a
// corrupt snapshot can only happen through disk rot or an interrupted
// *install*; the WAL is the ground truth whenever it still reaches back
// far enough).  snapshot.tmp is deleted unread.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/wal.hpp"

namespace twostep::storage {

struct EngineOptions {
  /// Forwarded to the WAL, and applied to snapshot writes (fsync of the
  /// temp file + directory).
  bool fsync = true;
  /// WAL segment rotation threshold (see WalOptions::segment_bytes).
  std::uint64_t segment_bytes = 8ull << 20;
  /// Take a snapshot once this many records have been appended since the
  /// last one (checked by the owner via snapshot_due()).  0 disables the
  /// trigger; write_snapshot still works when called explicitly.
  std::uint64_t snapshot_every = 0;
  /// Test-only crash injection: invoked at named points of write_snapshot
  /// ("tmp_written" after step 2, "renamed" after step 3).  A hook that
  /// throws simulates a crash at that point; the torn-snapshot tests use it
  /// to prove the ordering claims above.  Null in production.
  std::function<void(const char* stage)> test_hook;
};

/// The durable checkpoint loaded at open (or written since).
struct Snapshot {
  std::uint64_t covered_segment = 0;  ///< WAL records in segments <= this are summarized
  std::vector<std::uint8_t> payload;  ///< opaque runtime/protocol blob
};

class Engine {
 public:
  /// Opens (or creates) the storage directory: loads the snapshot, scans
  /// the WAL segments, and computes the replay tail.  Throws
  /// std::system_error on I/O failure.
  explicit Engine(std::string dir, EngineOptions options = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The segmented WAL.  Appends/syncs go straight through this handle —
  /// the Engine only steps in at snapshot boundaries.
  [[nodiscard]] Wal& wal() noexcept { return *wal_; }

  /// The latest durable snapshot; nullopt when none exists (fresh node,
  /// or snapshot corrupt — see snapshot_corrupt()).  Install it *before*
  /// replaying tail().
  [[nodiscard]] const std::optional<Snapshot>& snapshot() const noexcept { return snapshot_; }

  /// True when a snapshot file existed but failed its CRC/framing check at
  /// open: recovery fell back to full WAL replay (tail() is every record).
  [[nodiscard]] bool snapshot_corrupt() const noexcept { return snapshot_corrupt_; }

  /// The WAL records to replay after installing snapshot(): every
  /// recovered record from segments beyond the snapshot's barrier (all of
  /// them when there is no snapshot).  Records from covered segments —
  /// present only when a crash hit between snapshot rename and truncation —
  /// are excluded by construction.
  [[nodiscard]] std::span<const Wal::Recovered> tail() const noexcept {
    return std::span<const Wal::Recovered>(wal_->recovered()).subspan(tail_start_);
  }

  /// True once snapshot_every (> 0) records have been appended since the
  /// last snapshot (the recovered tail counts toward the first one).  The
  /// owner checks this after each sync — when due, it captures its state
  /// and calls write_snapshot.
  [[nodiscard]] bool snapshot_due() const noexcept {
    return options_.snapshot_every > 0 &&
           static_cast<std::int64_t>(wal_->appends()) - appends_at_snapshot_ >=
               static_cast<std::int64_t>(options_.snapshot_every);
  }

  /// Atomically replaces the durable snapshot with `payload` and compacts
  /// the WAL behind it (the write protocol documented above).  Serves both
  /// the periodic checkpoint and snapshot *install* during state transfer —
  /// either way the payload summarizes everything logged so far, so the
  /// barrier is "rotate now, cover all sealed segments".  Returns the
  /// number of WAL records truncated.  Throws std::system_error on I/O
  /// failure (and whatever a test_hook throws).
  std::uint64_t write_snapshot(std::span<const std::uint8_t> payload);

  // --- lifetime statistics (feeding snapshot.* / wal.* metrics) ---
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept { return snapshots_written_; }
  [[nodiscard]] std::uint64_t snapshot_bytes() const noexcept { return snapshot_bytes_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::string snapshot_path() const { return dir_ + "/snapshot"; }

 private:
  void load_snapshot();

  std::string dir_;
  EngineOptions options_;
  std::optional<Wal> wal_;
  std::optional<Snapshot> snapshot_;
  bool snapshot_corrupt_ = false;
  std::size_t tail_start_ = 0;  ///< first recovered() index past the barrier
  /// wal().appends() as of the last snapshot; starts negative so the
  /// recovered tail counts toward the first trigger.
  std::int64_t appends_at_snapshot_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t snapshot_bytes_ = 0;  ///< size of the latest written snapshot
};

}  // namespace twostep::storage
