#include "storage/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

namespace twostep::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

std::uint32_t read_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal write");
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Reads the whole file at `path` (empty on a fresh segment).
std::vector<std::uint8_t> read_file(int fd, const std::string& path) {
  struct stat st{};
  if (::fstat(fd, &st) < 0) throw_errno("wal fstat " + path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n =
        ::pread(fd, bytes.data() + got, bytes.size() - got, static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal read " + path);
    }
    if (n == 0) break;  // racing truncation; treat the shortfall as torn
    got += static_cast<std::size_t>(n);
  }
  bytes.resize(got);
  return bytes;
}

/// Makes a directory entry durable (segment creation/deletion, renames).
void fsync_dir(const std::string& dir, bool enabled) {
  if (!enabled) return;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;  // best effort: the data fsync is the hard guarantee
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::string Wal::segment_path(std::uint64_t segment) const {
  char name[32];
  std::snprintf(name, sizeof name, "wal.%06" PRIu64, segment);
  return dir_ + "/" + name;
}

Wal::Wal(std::string dir, WalOptions options) : dir_(std::move(dir)), options_(options) {
  std::filesystem::create_directories(dir_);
  scan_segments();
}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best effort: anything appended but never synced was not promised.
    if (!buffer_.empty()) {
      try {
        sync();
      } catch (const std::system_error&) {
      }
    }
    ::close(fd_);
  }
}

void Wal::open_active(std::uint64_t segment, std::uint64_t existing_bytes) {
  if (fd_ >= 0) ::close(fd_);
  active_segment_ = segment;
  active_bytes_ = existing_bytes;
  const std::string path = segment_path(segment);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("wal open " + path);
  if (::lseek(fd_, static_cast<off_t>(existing_bytes), SEEK_SET) < 0)
    throw_errno("wal lseek " + path);
  segment_records_.try_emplace(segment, 0);
}

void Wal::scan_segments() {
  // Collect wal.NNNNNN entries.  Compaction deletes a prefix and rotation
  // appends at the end, so whatever is present is replayed in ascending
  // order; a fresh directory starts at segment 1.
  std::vector<std::uint64_t> segments;
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      std::uint64_t seq = 0;
      if (std::sscanf(e->d_name, "wal.%06" PRIu64, &seq) == 1 && seq > 0)
        segments.push_back(seq);
    }
    ::closedir(d);
  }
  std::sort(segments.begin(), segments.end());

  bool torn = false;  // first corruption poisons everything after it
  std::uint64_t last_good_segment = segments.empty() ? 1 : segments.back();
  std::uint64_t last_good_size = 0;
  for (const std::uint64_t seg : segments) {
    const std::string path = segment_path(seg);
    if (torn) {
      // Bytes beyond the first corruption are untrustworthy even if they
      // frame correctly: count and delete the whole segment.
      struct stat st{};
      if (::stat(path.c_str(), &st) == 0)
        truncated_bytes_ += static_cast<std::uint64_t>(st.st_size);
      ::unlink(path.c_str());
      continue;
    }
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) throw_errno("wal open " + path);
    std::vector<std::uint8_t> bytes = read_file(fd, path);
    std::size_t pos = 0;
    std::uint64_t records = 0;
    while (bytes.size() - pos >= 8) {
      const std::uint32_t len = read_u32_le(bytes.data() + pos);
      const std::uint32_t crc = read_u32_le(bytes.data() + pos + 4);
      if (len > kMaxRecordBytes || bytes.size() - pos - 8 < len) break;
      const std::span<const std::uint8_t> payload{bytes.data() + pos + 8, len};
      if (crc32(payload) != crc) break;
      recovered_.push_back(Recovered{seg, {payload.begin(), payload.end()}});
      ++records;
      pos += 8 + len;
    }
    if (pos != bytes.size()) {
      torn = true;
      truncated_bytes_ += bytes.size() - pos;
      if (::ftruncate(fd, static_cast<off_t>(pos)) < 0) throw_errno("wal ftruncate " + path);
    }
    segment_records_[seg] = records;
    last_good_segment = seg;
    last_good_size = pos;
    ::close(fd);
  }
  open_active(last_good_segment, last_good_size);
  if (truncated_bytes_ > 0) fsync_dir(dir_, options_.fsync);
}

void Wal::append(std::span<const std::uint8_t> record) {
  put_u32_le(buffer_, static_cast<std::uint32_t>(record.size()));
  put_u32_le(buffer_, crc32(record));
  buffer_.insert(buffer_.end(), record.begin(), record.end());
  ++appends_;
  ++pending_records_;
}

void Wal::sync() {
  if (!buffer_.empty()) {
    write_all(fd_, buffer_.data(), buffer_.size());
    active_bytes_ += buffer_.size();
    buffer_.clear();
  }
  if (options_.fsync && ::fdatasync(fd_) < 0) throw_errno("wal fdatasync " + segment_path(active_segment_));
  ++syncs_;
  segment_records_[active_segment_] += pending_records_;
  pending_records_ = 0;
  maybe_rotate();
}

void Wal::maybe_rotate() {
  if (options_.segment_bytes == 0 || active_bytes_ < options_.segment_bytes) return;
  open_active(active_segment_ + 1, 0);
  fsync_dir(dir_, options_.fsync);
}

std::uint64_t Wal::rotate() {
  if (has_pending() || !buffer_.empty()) sync();
  const std::uint64_t sealed = active_segment_;
  open_active(active_segment_ + 1, 0);
  fsync_dir(dir_, options_.fsync);
  return sealed;
}

std::uint64_t Wal::truncate_through(std::uint64_t segment) {
  std::uint64_t dropped = 0;
  for (auto it = segment_records_.begin(); it != segment_records_.end();) {
    if (it->first > segment || it->first == active_segment_) break;
    ::unlink(segment_path(it->first).c_str());
    dropped += it->second;
    it = segment_records_.erase(it);
  }
  if (dropped > 0 || segment >= first_segment()) fsync_dir(dir_, options_.fsync);
  truncated_records_ += dropped;
  return dropped;
}

}  // namespace twostep::storage
