#include "storage/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace twostep::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

std::uint32_t read_u32_le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal write");
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Wal::Wal(std::string path, WalOptions options) : path_(std::move(path)), options_(options) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("wal open " + path_);
  scan_and_truncate();
}

Wal::~Wal() {
  if (fd_ >= 0) {
    // Best effort: anything appended but never synced was not promised.
    if (!buffer_.empty()) {
      try {
        sync();
      } catch (const std::system_error&) {
      }
    }
    ::close(fd_);
  }
}

void Wal::scan_and_truncate() {
  struct stat st{};
  if (::fstat(fd_, &st) < 0) throw_errno("wal fstat " + path_);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::pread(fd_, bytes.data() + got, bytes.size() - got,
                              static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal read " + path_);
    }
    if (n == 0) break;  // racing truncation; treat the shortfall as torn
    got += static_cast<std::size_t>(n);
  }

  std::size_t pos = 0;
  while (got - pos >= 8) {
    const std::uint32_t len = read_u32_le(bytes.data() + pos);
    const std::uint32_t crc = read_u32_le(bytes.data() + pos + 4);
    if (len > kMaxRecordBytes || got - pos - 8 < len) break;
    const std::span<const std::uint8_t> payload{bytes.data() + pos + 8, len};
    if (crc32(payload) != crc) break;
    recovered_.emplace_back(payload.begin(), payload.end());
    pos += 8 + len;
  }

  if (pos != got) {
    truncated_bytes_ = got - pos;
    if (::ftruncate(fd_, static_cast<off_t>(pos)) < 0) throw_errno("wal ftruncate " + path_);
  }
  if (::lseek(fd_, static_cast<off_t>(pos), SEEK_SET) < 0) throw_errno("wal lseek " + path_);
}

void Wal::append(std::span<const std::uint8_t> record) {
  put_u32_le(buffer_, static_cast<std::uint32_t>(record.size()));
  put_u32_le(buffer_, crc32(record));
  buffer_.insert(buffer_.end(), record.begin(), record.end());
  ++appends_;
  ++pending_records_;
}

void Wal::sync() {
  if (!buffer_.empty()) {
    write_all(fd_, buffer_.data(), buffer_.size());
    buffer_.clear();
  }
  if (options_.fsync && ::fdatasync(fd_) < 0) throw_errno("wal fdatasync " + path_);
  ++syncs_;
  pending_records_ = 0;
}

}  // namespace twostep::storage
