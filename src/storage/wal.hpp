// Segmented append-only write-ahead log for the live node runtime.
//
// The durability layer under crash recovery: a Runtime with storage enabled
// appends one record per acceptor-state transition *before* the messages
// revealing that state go on the wire, and replays the surviving records on
// construction.  The record format is deliberately minimal — a stream of
//
//   u32 length (LE) | u32 CRC-32 of payload (LE) | payload bytes
//
// records, where the payload is an opaque codec-encoded blob owned by the
// per-protocol storage::Durable traits.
//
// The log is a *directory* of segment files, `wal.000001`, `wal.000002`, …
// Appends go to the highest-numbered (active) segment; once a sync leaves
// the active segment at or past `segment_bytes`, the segment is sealed and
// a fresh one opened.  Sealed segments are immutable, which is what makes
// compaction safe: once a snapshot covering every record up to segment K is
// durable (storage::Engine's job), segments <= K can be deleted without
// rewriting anything — truncate_through(K).
//
// Opening scans the segments in order and truncates the *torn tail*: the
// first record whose header does not fit, whose length is implausible,
// whose payload is short, or whose CRC mismatches ends the scan; that
// segment is cut back to its last intact record and any later segments are
// deleted outright.  Everything after a bad record is discarded even if it
// frames correctly — a WAL cannot trust bytes beyond the first corruption.
//
// Writes are buffered; sync() flushes the buffer and (by default) issues
// fdatasync, so a caller batching several appends per state transition pays
// one disk barrier per transition, not per record.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace twostep::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
/// Exposed for the corruption tests and the snapshot chunk checksums.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

struct WalOptions {
  /// If false, sync() flushes to the OS but skips the fdatasync barrier —
  /// for benchmarks measuring the protocol cost of logging without the
  /// device cost, and for tests on throwaway data.
  bool fsync = true;
  /// Segment rotation threshold: a sync that leaves the active segment at
  /// or past this many bytes seals it and opens the next one.  Small values
  /// make compaction fine-grained; the floor of one record per segment
  /// always holds (a record is never split across segments).
  std::uint64_t segment_bytes = 8ull << 20;
};

class Wal {
 public:
  /// Largest accepted record payload; a scanned length beyond this is
  /// treated as corruption (matches the transport's frame-size sanity cap).
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

  /// One record that survived the open-time scan, tagged with the segment
  /// it was read from so storage::Engine can drop records a snapshot
  /// already covers.
  struct Recovered {
    std::uint64_t segment = 0;
    std::vector<std::uint8_t> bytes;
  };

  /// Opens (or creates) the log directory at `dir`, scans and validates the
  /// existing segments in order, and truncates any torn tail.  Throws
  /// std::system_error on I/O failure.
  explicit Wal(std::string dir, WalOptions options = {});
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// The records that survived the open-time scan, in append order.
  [[nodiscard]] const std::vector<Recovered>& recovered() const noexcept { return recovered_; }

  /// Bytes cut off the torn tail at open (0 for a clean log).
  [[nodiscard]] std::uint64_t truncated_bytes() const noexcept { return truncated_bytes_; }

  /// Buffers one record.  Not durable until sync() returns.
  void append(std::span<const std::uint8_t> record);

  /// True when records are buffered but not yet synced.  Group-commit
  /// callers use this to skip a barrier that would persist nothing.
  [[nodiscard]] bool has_pending() const noexcept { return pending_records_ > 0; }
  /// Records buffered since the last sync (the amortization width of the
  /// next barrier).
  [[nodiscard]] std::uint64_t pending_records() const noexcept { return pending_records_; }

  /// Writes all buffered records and issues the durability barrier
  /// (fdatasync, unless options.fsync is off), then rotates the active
  /// segment if it grew past options.segment_bytes.  Throws
  /// std::system_error on I/O failure — a WAL that cannot persist must
  /// not ack.
  void sync();

  /// Seals the active segment (syncing any pending records first) and
  /// opens the next one, regardless of size.  Returns the sealed segment's
  /// number — the compaction barrier: a snapshot taken now covers every
  /// record in segments <= that number.  The caller (storage::Engine) must
  /// only truncate_through() a barrier whose snapshot is durable.
  std::uint64_t rotate();

  /// Deletes every sealed segment with number <= `segment`.  The active
  /// segment is never deleted (rotate() first).  Returns the number of
  /// records dropped (recovered-at-open counts plus records appended this
  /// process), feeding the wal.truncated_records metric.
  std::uint64_t truncate_through(std::uint64_t segment);

  // --- lifetime statistics ---
  [[nodiscard]] std::uint64_t appends() const noexcept { return appends_; }
  [[nodiscard]] std::uint64_t syncs() const noexcept { return syncs_; }
  /// Records deleted by truncate_through over this Wal's lifetime.
  [[nodiscard]] std::uint64_t truncated_records() const noexcept { return truncated_records_; }
  [[nodiscard]] std::uint64_t active_segment() const noexcept { return active_segment_; }
  /// Lowest segment still on disk (== active_segment() when fully compacted).
  [[nodiscard]] std::uint64_t first_segment() const noexcept {
    return segment_records_.empty() ? active_segment_ : segment_records_.begin()->first;
  }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segment_records_.size(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// Path of a segment file (exposed for the corruption tests).
  [[nodiscard]] std::string segment_path(std::uint64_t segment) const;

 private:
  void open_active(std::uint64_t segment, std::uint64_t existing_bytes);
  void scan_segments();
  void maybe_rotate();

  std::string dir_;
  WalOptions options_;
  int fd_ = -1;  ///< active segment
  std::uint64_t active_segment_ = 1;
  std::uint64_t active_bytes_ = 0;  ///< durable size of the active segment
  std::vector<std::uint8_t> buffer_;  ///< appended but not yet written
  std::vector<Recovered> recovered_;
  /// Record count per on-disk segment (recovered + appended), so
  /// truncate_through can report how many records compaction dropped.
  std::map<std::uint64_t, std::uint64_t> segment_records_;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t truncated_records_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t pending_records_ = 0;  ///< appended since the last sync
};

}  // namespace twostep::storage
