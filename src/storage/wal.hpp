// Append-only write-ahead log for the live node runtime.
//
// The durability layer under crash recovery: a Runtime with StorageOptions
// appends one record per acceptor-state transition *before* the messages
// revealing that state go on the wire, and replays the surviving records on
// construction.  The file format is deliberately minimal — a stream of
//
//   u32 length (LE) | u32 CRC-32 of payload (LE) | payload bytes
//
// records, where the payload is an opaque codec-encoded blob owned by the
// per-protocol storage::Durable traits.  Opening scans the file from the
// start and truncates the *torn tail*: the first record whose header does
// not fit, whose length is implausible, whose payload is short, or whose
// CRC mismatches ends the scan, and the file is cut back to the last intact
// record.  Everything after a bad record is discarded even if it frames
// correctly — a WAL cannot trust bytes beyond the first corruption.
//
// Writes are buffered; sync() flushes the buffer and (by default) issues
// fdatasync, so a caller batching several appends per state transition pays
// one disk barrier per transition, not per record.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace twostep::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
/// Exposed for the corruption tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

struct WalOptions {
  /// If false, sync() flushes to the OS but skips the fdatasync barrier —
  /// for benchmarks measuring the protocol cost of logging without the
  /// device cost, and for tests on throwaway data.
  bool fsync = true;
};

class Wal {
 public:
  /// Largest accepted record payload; a scanned length beyond this is
  /// treated as corruption (matches the transport's frame-size sanity cap).
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

  /// Opens (or creates) the log at `path`, scans and validates the existing
  /// records, and truncates any torn tail.  Throws std::system_error on
  /// I/O failure.
  explicit Wal(std::string path, WalOptions options = {});
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// The records that survived the open-time scan, in append order.
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& recovered() const noexcept {
    return recovered_;
  }

  /// Bytes cut off the tail at open (0 for a clean file).
  [[nodiscard]] std::uint64_t truncated_bytes() const noexcept { return truncated_bytes_; }

  /// Buffers one record.  Not durable until sync() returns.
  void append(std::span<const std::uint8_t> record);

  /// True when records are buffered but not yet synced.  Group-commit
  /// callers use this to skip a barrier that would persist nothing.
  [[nodiscard]] bool has_pending() const noexcept { return pending_records_ > 0; }
  /// Records buffered since the last sync (the amortization width of the
  /// next barrier).
  [[nodiscard]] std::uint64_t pending_records() const noexcept { return pending_records_; }

  /// Writes all buffered records and issues the durability barrier
  /// (fdatasync, unless options.fsync is off).  Throws std::system_error
  /// on I/O failure — a WAL that cannot persist must not ack.
  void sync();

  // --- lifetime statistics ---
  [[nodiscard]] std::uint64_t appends() const noexcept { return appends_; }
  [[nodiscard]] std::uint64_t syncs() const noexcept { return syncs_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void scan_and_truncate();

  std::string path_;
  WalOptions options_;
  int fd_ = -1;
  std::vector<std::uint8_t> buffer_;  ///< appended but not yet written
  std::vector<std::vector<std::uint8_t>> recovered_;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t pending_records_ = 0;  ///< appended since the last sync
};

}  // namespace twostep::storage
