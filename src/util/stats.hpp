// Small statistics helpers used by the benchmark harness: running summaries
// and exact percentiles over recorded samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace twostep::util {

/// Accumulates samples and answers summary queries.  Percentiles are exact
/// (the sample vector is kept); this is intended for benchmark-scale sample
/// counts, not telemetry-scale streams.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double sum() const {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  [[nodiscard]] double mean() const {
    return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// Exact percentile by linear interpolation between closest ranks.
  /// q is in [0, 1]; e.g. percentile(0.99) is p99.
  [[nodiscard]] double percentile(double q) {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    if (q <= 0) return samples_.front();
    if (q >= 1) return samples_.back();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_[lo];
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
  }

  [[nodiscard]] double median() { return percentile(0.5); }

  /// Absorbs all of `other`'s samples.  Summary queries are order-blind, so
  /// merging per-worker partials in task-index order yields exactly the
  /// statistics a sequential run would have produced.
  void merge(const Summary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace twostep::util
