// Jittered exponential backoff, shared by every retry loop in the system.
//
// One policy, three users today: the snapshot state-transfer re-request
// timer (node::Runtime), the client's cluster-redial loop (ClientSession)
// and the failure detector's suspicion-timeout widening.  next() returns a
// delay drawn uniformly from [current/2, current] — the half-open jitter
// that keeps a herd of retriers from synchronizing — then doubles the
// current value up to the cap.  reset() snaps back to the minimum (call it
// after a success).  Deterministic for a fixed seed and call sequence,
// like every other randomized component in the repo.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"

namespace twostep::util {

class Backoff {
 public:
  /// `min_us` is the first delay's upper bound, `max_us` the exponential
  /// cap; both are clamped to >= 1 so a zeroed config cannot spin-loop.
  Backoff(std::int64_t min_us, std::int64_t max_us, std::uint64_t seed = 1)
      : min_us_(std::max<std::int64_t>(1, min_us)),
        max_us_(std::max(std::max<std::int64_t>(1, max_us), std::max<std::int64_t>(1, min_us))),
        current_us_(min_us_),
        rng_(seed) {}

  /// The next delay: uniform in [current/2, current], then current doubles
  /// (capped).  Always >= 1.
  [[nodiscard]] std::int64_t next() {
    const std::int64_t low = std::max<std::int64_t>(1, current_us_ / 2);
    const std::int64_t span = current_us_ - low + 1;
    const std::int64_t delay =
        low + static_cast<std::int64_t>(rng_.next_below(static_cast<std::uint64_t>(span)));
    current_us_ = std::min(current_us_ * 2, max_us_);
    return delay;
  }

  /// Snaps the exponential state back to the minimum (after a success).
  void reset() noexcept { current_us_ = min_us_; }

  /// The undoubled delay the next call will draw from (for tests/metrics).
  [[nodiscard]] std::int64_t current() const noexcept { return current_us_; }
  [[nodiscard]] std::int64_t min() const noexcept { return min_us_; }
  [[nodiscard]] std::int64_t max() const noexcept { return max_us_; }

 private:
  std::int64_t min_us_;
  std::int64_t max_us_;
  std::int64_t current_us_;
  Rng rng_;
};

}  // namespace twostep::util
