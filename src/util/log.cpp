#include "util/log.hpp"

#include <cstdio>

namespace twostep::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogClock g_clock;  // NOLINT: intentionally process-global, like the level

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }

LogLevel set_log_level(LogLevel level) noexcept {
  const LogLevel previous = g_level;
  g_level = level;
  return previous;
}

LogClock set_log_clock(LogClock clock) {
  LogClock previous = std::move(g_clock);
  g_clock = std::move(clock);
  return previous;
}

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_clock) {
    std::fprintf(stderr, "[%s t=%lld] %s\n", level_name(level),
                 static_cast<long long>(g_clock()), message.c_str());
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace twostep::util
