// Minimal leveled logging.  Protocol and simulator code logs through this so
// tests can raise the level to silence output and debugging sessions can
// lower it to trace message flow.  Logging is process-global and not
// thread-safe by design: the simulator is single-threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace twostep::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the current global threshold; messages below it are discarded.
LogLevel log_level() noexcept;

/// Sets the global threshold.  Returns the previous value.
LogLevel set_log_level(LogLevel level) noexcept;

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

/// Optional clock hook: when registered, every emitted line is prefixed
/// with the clock's current reading ("[LEVEL t=1234] ...").  Intended for
/// virtual time — a harness registers a lambda reading its simulator's
/// sim::Tick so interleaved protocol logs line up with trace exports.
/// With no hook registered the output format is unchanged.
using LogClock = std::function<std::int64_t()>;

/// Registers `clock` (empty to unregister).  Returns the previous hook.
LogClock set_log_clock(LogClock clock);

/// RAII guard pairing with ScopedLogLevel: installs a clock hook for a
/// scope (typically one simulated run) and restores the previous one.
class ScopedLogClock {
 public:
  explicit ScopedLogClock(LogClock clock) : previous_(set_log_clock(std::move(clock))) {}
  ~ScopedLogClock() { set_log_clock(std::move(previous_)); }
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;

 private:
  LogClock previous_;
};

/// RAII guard that restores the previous log level on scope exit; used by
/// tests that need to assert on (or suppress) log behaviour.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(set_log_level(level)) {}
  ~ScopedLogLevel() { set_log_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace twostep::util

/// Streaming log macro: TWOSTEP_LOG(kDebug) << "x=" << x;
/// The stream expression is only evaluated when the level is enabled.
#define TWOSTEP_LOG(level_suffix)                                               \
  for (bool twostep_log_once =                                                  \
           ::twostep::util::LogLevel::level_suffix >= ::twostep::util::log_level(); \
       twostep_log_once; twostep_log_once = false)                              \
  ::twostep::util::LogStatement(::twostep::util::LogLevel::level_suffix).stream()

namespace twostep::util {

/// Helper that accumulates a streamed message and flushes it on destruction.
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { log_line(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace twostep::util
