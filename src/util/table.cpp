#include "util/table.hpp"

#include <cstdio>
#include <sstream>

namespace twostep::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& out, const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  if (!title_.empty()) out << "### " << title_ << '\n';
  emit_row(out, header_);
  out << "|";
  for (std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

}  // namespace twostep::util
