// ASCII table formatting for the benchmark harness.  Every bench binary
// prints the rows of the table/figure it regenerates in a uniform layout so
// EXPERIMENTS.md can be assembled directly from bench output.
#pragma once

#include <string>
#include <vector>

namespace twostep::util {

/// A simple column-aligned text table.  Cells are strings; numeric helpers
/// format with fixed precision.  Rendering pads each column to its widest
/// cell and separates the header with a rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row is padded or truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders the table, including the title if set.
  [[nodiscard]] std::string to_string() const;

  void set_title(std::string title) { title_ = std::move(title); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Formats a double with the given number of decimals.
  static std::string num(double v, int decimals = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace twostep::util
