// Subset enumeration used to sweep crash sets E ⊆ Π with |E| = e.
#pragma once

#include <functional>
#include <vector>

namespace twostep::util {

/// Invokes `fn` with every k-element subset of {0, …, n-1}, in lexicographic
/// order.  k = 0 yields the empty subset once.
inline void for_each_combination(int n, int k,
                                 const std::function<void(const std::vector<int>&)>& fn) {
  if (k < 0 || k > n) return;
  std::vector<int> pick(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) pick[static_cast<std::size_t>(i)] = i;
  for (;;) {
    fn(pick);
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && pick[static_cast<std::size_t>(i)] == i + n - k) --i;
    if (i < 0) return;
    ++pick[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j)
      pick[static_cast<std::size_t>(j)] = pick[static_cast<std::size_t>(j - 1)] + 1;
  }
}

/// Materialized variant of for_each_combination.
inline std::vector<std::vector<int>> combinations(int n, int k) {
  std::vector<std::vector<int>> out;
  for_each_combination(n, k, [&](const std::vector<int>& c) { out.push_back(c); });
  return out;
}

}  // namespace twostep::util
