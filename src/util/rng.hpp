// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every stochastic component in the library (latency jitter, workload
// generators, the schedule fuzzer) draws from an explicitly seeded Rng so a
// run is a pure function of (configuration, seed).  We do not use
// std::mt19937 because its state is large and its seeding is easy to get
// wrong; xoshiro256** seeded via splitmix64 is small, fast, and has
// well-understood statistical quality.
#pragma once

#include <cstdint>
#include <limits>

namespace twostep::util {

/// splitmix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256** state.  Also usable directly as a hash/mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Pure two-argument form: hashes (base, index) into an independent 64-bit
/// seed.  This is how parallel sweeps derive a private Rng per task — the
/// derived stream depends only on (base, index), never on which worker ran
/// the task or in what order, which is what makes sharded experiment output
/// byte-identical for any thread count.
constexpr std::uint64_t splitmix64(std::uint64_t base, std::uint64_t index) noexcept {
  std::uint64_t state = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  std::uint64_t mixed = splitmix64(state);
  // A second round decorrelates adjacent indices of adjacent bases.
  return splitmix64(mixed);
}

/// xoshiro256** deterministic generator.  Satisfies the
/// UniformRandomBitGenerator concept so it can be used with <random>
/// distributions when needed, although the convenience members below cover
/// all uses inside this library.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x2a5f3c1d9e8b7a60ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound == 0 is treated as the full range.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return (*this)();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derive an independent child generator; used to give each simulated
  /// process / workload source its own stream.
  constexpr Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace twostep::util
