#include "node/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace twostep::node {

namespace {

/// Blocking loopback dial; -1 on failure.  The Connection ctor sets
/// TCP_NODELAY on the fd, so no socket options are needed here.
int blocking_dial(const transport::Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::int64_t wall_salt() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

OpenLoopLoadgen::OpenLoopLoadgen(std::vector<transport::Endpoint> servers,
                                 LoadgenOptions options)
    : servers_(std::move(servers)),
      options_(options),
      rng_(util::splitmix64(options.seed, 0x10adULL)) {
  if (servers_.empty()) throw std::invalid_argument("loadgen: no servers");
  if (options_.sessions < 1 || options_.sessions > kMaxSessions)
    throw std::invalid_argument("loadgen: sessions must be in [1, 2047]");
  if (options_.connections < 1) throw std::invalid_argument("loadgen: connections must be >= 1");
  if (options_.rate < 1) throw std::invalid_argument("loadgen: rate must be >= 1");
  options_.connections = std::min(options_.connections, options_.sessions);
  // Process-unique positive dedup ids: clock + pid salt mixed per session,
  // so concurrent loadgens against one cluster never collide.
  const auto base = static_cast<std::uint64_t>(wall_salt()) ^
                    (static_cast<std::uint64_t>(::getpid()) << 40);
  client_ids_.resize(static_cast<std::size_t>(options_.sessions));
  for (int s = 0; s < options_.sessions; ++s) {
    const auto id = static_cast<std::int64_t>(
        util::splitmix64(base, static_cast<std::uint64_t>(s)) >> 1);
    client_ids_[static_cast<std::size_t>(s)] = id == 0 ? 1 : id;
  }
  issued_per_session_.assign(static_cast<std::size_t>(options_.sessions), 0);
}

double OpenLoopLoadgen::next_gap_us() {
  const double mean_us = 1e6 / static_cast<double>(options_.rate);
  if (!options_.poisson) return mean_us;
  // Exponential inter-arrival; clamp u away from 0 so log() stays finite.
  const double u = std::max(rng_.next_double(), 1e-12);
  return -std::log(u) * mean_us;
}

void OpenLoopLoadgen::send_request(int session, std::int64_t id, const Pending& p) {
  auto& conn = conns_[static_cast<std::size_t>(session % options_.connections)];
  if (!conn || conn->closed()) return;  // redial in progress; resent on reconnect
  conn->send_frame(transport::FrameKind::kClientRequest,
                   codec::encode(codec::ClientRequest{
                       id, p.payload, client_ids_[static_cast<std::size_t>(session)], {}}));
}

void OpenLoopLoadgen::issue_one() {
  const int session = next_session_;
  next_session_ = (next_session_ + 1) % options_.sessions;
  const std::int64_t seq = issued_per_session_[static_cast<std::size_t>(session)]++;
  const std::int64_t id = (static_cast<std::int64_t>(session) << 32) | seq;
  Pending p{session, (static_cast<std::int64_t>(session) << 28) | seq, loop_.now_us()};
  send_request(session, id, p);
  inflight_.emplace(id, p);
  ++result_.offered;
}

void OpenLoopLoadgen::issue_due_arrivals() {
  if (!offering_) return;
  const std::int64_t now = loop_.now_us();
  // Cap the per-round burst so a stall never freezes the loop catching up;
  // the remainder goes out next round (the open-loop debt is preserved).
  int burst = 0;
  while (offering_ && next_arrival_us_ <= static_cast<double>(now) && burst < 4096) {
    issue_one();
    next_arrival_us_ += next_gap_us();
    ++burst;
  }
  arm_pump();
}

void OpenLoopLoadgen::arm_pump() {
  if (!offering_) return;
  const auto now = static_cast<double>(loop_.now_us());
  const double delay = std::max(0.0, next_arrival_us_ - now);
  loop_.schedule_after(static_cast<std::int64_t>(delay), [this] { issue_due_arrivals(); });
}

void OpenLoopLoadgen::on_reply(const codec::ClientReply& reply) {
  const auto it = inflight_.find(reply.id);
  if (it == inflight_.end()) return;  // duplicate (dedup cache answered a resend twice)
  rtt_.record(loop_.now_us() - it->second.start_us);
  if (reply.ok) {
    ++result_.ok;
    if (offering_) ++result_.ok_in_window;
    acked_payloads_.push_back(it->second.payload);
  } else {
    ++result_.rejected;
  }
  inflight_.erase(it);
  finish_if_drained();
}

void OpenLoopLoadgen::finish_if_drained() {
  if (offering_ || done_ || !inflight_.empty()) return;
  done_ = true;
  loop_.request_stop();
}

void OpenLoopLoadgen::on_conn_closed(int conn_idx) {
  ++result_.reconnects;
  conns_[static_cast<std::size_t>(conn_idx)].reset();
  const std::int64_t backoff_us = options_.reconnect_backoff_ms * 1000;
  const auto jitter =
      static_cast<std::int64_t>(rng_.next_below(static_cast<std::uint64_t>(backoff_us / 2 + 1)));
  loop_.schedule_after(backoff_us + jitter, [this, conn_idx] { redial(conn_idx); });
}

void OpenLoopLoadgen::redial(int conn_idx) {
  const transport::Endpoint& ep =
      options_.spread ? servers_[static_cast<std::size_t>(conn_idx) % servers_.size()]
                      : servers_.front();
  const int fd = blocking_dial(ep);
  if (fd < 0) {
    loop_.schedule_after(options_.reconnect_backoff_ms * 1000,
                         [this, conn_idx] { redial(conn_idx); });
    return;
  }
  auto conn = std::make_shared<transport::Connection>(loop_, fd, &stats_);
  conns_[static_cast<std::size_t>(conn_idx)] = conn;
  conn->start(
      [this](transport::Frame&& frame) {
        if (frame.kind != transport::FrameKind::kClientReply) return;
        if (const auto reply = codec::decode_client_reply(frame.payload)) on_reply(*reply);
      },
      [this, conn_idx] { on_conn_closed(conn_idx); });
  // Replay every in-flight request pinned to this connection, under the
  // original ids (the server's dedup absorbs duplicates) and the original
  // start timestamps (a retried command's RTT includes the outage).
  for (const auto& [id, p] : inflight_) {
    if (p.session % options_.connections != conn_idx) continue;
    send_request(p.session, id, p);
    ++result_.resends;
  }
}

LoadResult OpenLoopLoadgen::run() {
  conns_.resize(static_cast<std::size_t>(options_.connections));
  for (int c = 0; c < options_.connections; ++c) {
    const transport::Endpoint& ep =
        options_.spread ? servers_[static_cast<std::size_t>(c) % servers_.size()]
                        : servers_.front();
    const int fd = blocking_dial(ep);
    if (fd < 0) throw std::runtime_error("loadgen: cannot reach " + ep.to_string());
    auto conn = std::make_shared<transport::Connection>(loop_, fd, &stats_);
    conns_[static_cast<std::size_t>(c)] = conn;
    conn->start(
        [this](transport::Frame&& frame) {
          if (frame.kind != transport::FrameKind::kClientReply) return;
          if (const auto reply = codec::decode_client_reply(frame.payload)) on_reply(*reply);
        },
        [this, c] { on_conn_closed(c); });
  }
  window_start_us_ = loop_.now_us();
  next_arrival_us_ = static_cast<double>(window_start_us_);
  arm_pump();
  loop_.schedule_after(options_.duration_ms * 1000, [this] {
    offering_ = false;
    window_end_us_ = loop_.now_us();
    finish_if_drained();  // nothing in flight: stop without waiting the drain out
    loop_.schedule_after(options_.drain_ms * 1000, [this] { loop_.request_stop(); });
  });
  loop_.run();
  result_.window_us = (window_end_us_ > 0 ? window_end_us_ : loop_.now_us()) - window_start_us_;
  result_.lost = static_cast<std::int64_t>(inflight_.size());
  result_.rtt = rtt_.snapshot();
  for (auto& conn : conns_)
    if (conn) conn->close();
  return result_;
}

std::string LoadResult::to_json() const {
  std::ostringstream os;
  os << "{\"offered\":" << offered << ",\"ok\":" << ok << ",\"ok_in_window\":" << ok_in_window
     << ",\"rejected\":" << rejected << ",\"lost\":" << lost << ",\"resends\":" << resends
     << ",\"reconnects\":" << reconnects << ",\"window_us\":" << window_us
     << ",\"offered_rate\":" << offered_rate() << ",\"achieved_rate\":" << achieved_rate()
     << ",\"rtt_us\":";
  obs::write_json(os, rtt);
  os << "}";
  return os.str();
}

}  // namespace twostep::node
