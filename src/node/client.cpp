#include "node/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace twostep::node {

namespace {

std::int64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1000;
}

}  // namespace

ClientSession::ClientSession(transport::Endpoint server, obs::MetricsRegistry* metrics,
                             Options options)
    : server_(std::move(server)), options_(options), metrics_(metrics) {
  if (metrics_) rtt_us_ = &metrics_->histogram("client.rtt_us");
}

ClientSession::~ClientSession() { close(); }

std::int64_t ClientSession::now_us() const { return monotonic_us(); }

void ClientSession::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ClientSession::connect() {
  const std::int64_t deadline = now_us() + options_.connect_timeout_ms * 1000;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_.port);
  if (::inet_pton(AF_INET, server_.host.c_str(), &addr.sin_addr) != 1) return false;
  // Retry in a tight-ish loop: replicas may still be binding when a client
  // process races them at cluster start.
  do {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      return true;
    }
    ::close(fd);
    ::usleep(10'000);
  } while (now_us() < deadline);
  return false;
}

std::optional<codec::ClientReply> ClientSession::call(std::int64_t payload) {
  if (fd_ < 0) return std::nullopt;
  const std::int64_t id = next_id_++;
  const std::int64_t start = now_us();
  const std::int64_t deadline = start + options_.request_timeout_ms * 1000;
  if (metrics_) metrics_->counter("client.requests").add(1);

  const std::vector<std::uint8_t> frame = transport::make_frame(
      transport::FrameKind::kClientRequest, codec::encode(codec::ClientRequest{id, payload}));
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::uint8_t buf[65536];
  for (;;) {
    // Drain buffered frames before blocking again.
    while (auto f = parser_.next()) {
      if (f->kind != transport::FrameKind::kClientReply) continue;
      const auto reply = codec::decode_client_reply(f->payload);
      if (!reply || reply->id != id) continue;  // stale reply from a timed-out call
      if (rtt_us_) rtt_us_->add(static_cast<double>(now_us() - start));
      if (metrics_) metrics_->counter(reply->ok ? "client.replies" : "client.rejections").add(1);
      return reply;
    }
    if (parser_.failed()) {
      close();
      return std::nullopt;
    }
    const std::int64_t remaining_ms = (deadline - now_us()) / 1000;
    if (remaining_ms <= 0) {
      if (metrics_) metrics_->counter("client.timeouts").add(1);
      return std::nullopt;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      if (ready == 0) {
        if (metrics_) metrics_->counter("client.timeouts").add(1);
        return std::nullopt;
      }
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      return std::nullopt;
    }
    if (!parser_.feed({buf, static_cast<std::size_t>(n)})) {
      close();
      return std::nullopt;
    }
  }
}

ClientSession::WorkloadResult ClientSession::run_closed_loop(
    std::int64_t count, const std::function<std::int64_t(std::int64_t)>& payload_of) {
  WorkloadResult result;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t payload = payload_of ? payload_of(i) : i;
    const auto reply = call(payload);
    if (!reply) {
      ++result.lost;
      if (!connected()) break;
      continue;
    }
    if (reply->ok)
      ++result.ok;
    else
      ++result.rejected;
  }
  return result;
}

}  // namespace twostep::node
