#include "node/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace twostep::node {

namespace {

std::int64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1000;
}

/// Process-unique, nonzero session id.  Mixes the clock, the pid and a
/// process-local counter so two clients created in the same microsecond —
/// or in different processes talking to the same cluster — never collide.
std::int64_t make_client_id() {
  static std::atomic<std::uint64_t> counter{1};
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::uint64_t base =
      (static_cast<std::uint64_t>(ts.tv_sec) << 20) ^ static_cast<std::uint64_t>(ts.tv_nsec) ^
      (static_cast<std::uint64_t>(::getpid()) << 40);
  const std::uint64_t mixed =
      util::splitmix64(base, counter.fetch_add(1, std::memory_order_relaxed));
  const auto id = static_cast<std::int64_t>(mixed >> 1);  // keep it positive
  return id == 0 ? 1 : id;
}

}  // namespace

ClientSession::ClientSession(std::vector<transport::Endpoint> servers,
                             obs::MetricsRegistry* metrics, Options options)
    : servers_(std::move(servers)),
      options_(options),
      metrics_(metrics),
      client_id_(options.client_id != 0 ? options.client_id : make_client_id()),
      redial_backoff_(options.backoff_min_ms * 1000, options.backoff_max_ms * 1000,
                      util::splitmix64(options.seed, static_cast<std::uint64_t>(client_id_))) {
  if (metrics_) {
    rtt_us_ = &metrics_->log_histogram("client.rtt_us");
    failover_rtt_us_ = &metrics_->log_histogram("client.failover_rtt_us");
  }
}

ClientSession::ClientSession(transport::Endpoint server, obs::MetricsRegistry* metrics,
                             Options options)
    : ClientSession(std::vector<transport::Endpoint>{std::move(server)}, metrics, options) {}

ClientSession::~ClientSession() { close(); }

std::int64_t ClientSession::now_us() const { return monotonic_us(); }

void ClientSession::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ClientSession::count(const char* name, std::int64_t& local) {
  ++local;
  if (metrics_) metrics_->counter(name).add(1);
}

void ClientSession::fail_over() {
  close();
  parser_ = transport::FrameParser{};
  current_ = (current_ + 1) % servers_.size();
  count("client.failovers", failovers_);
}

bool ClientSession::dial_current() {
  const transport::Endpoint& ep = servers_[current_];
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  parser_ = transport::FrameParser{};
  return true;
}

bool ClientSession::reconnect(std::int64_t deadline) {
  for (;;) {
    // One pass over the replica list per backoff round: a crashed proxy
    // costs one refused connect, then the next replica answers.
    for (std::size_t tried = 0; tried < servers_.size(); ++tried) {
      if (dial_current()) {
        redial_backoff_.reset();
        return true;
      }
      current_ = (current_ + 1) % servers_.size();
    }
    if (now_us() >= deadline) return false;
    // Whole cluster unreachable right now — back off with jitter so a herd
    // of clients does not redial in lockstep (see util::Backoff).
    const std::int64_t sleep_us = std::min(redial_backoff_.next(), deadline - now_us());
    if (sleep_us > 0) ::usleep(static_cast<useconds_t>(sleep_us));
  }
}

bool ClientSession::connect() {
  if (fd_ >= 0) return true;
  return reconnect(now_us() + options_.connect_timeout_ms * 1000);
}

bool ClientSession::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

ClientSession::Wait ClientSession::await_reply(std::int64_t id, std::int64_t deadline,
                                              codec::ClientReply& out) {
  std::uint8_t buf[65536];
  for (;;) {
    // Drain buffered frames before blocking again.
    while (auto f = parser_.next()) {
      if (f->kind != transport::FrameKind::kClientReply) continue;
      const auto reply = codec::decode_client_reply(f->payload);
      if (!reply || reply->id != id) continue;  // stale reply from a timed-out call
      out = *reply;
      return Wait::kGot;
    }
    if (parser_.failed()) return Wait::kConnLost;
    const std::int64_t remaining_ms = (deadline - now_us()) / 1000;
    if (remaining_ms <= 0) return Wait::kTimeout;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0 && errno == EINTR) continue;
    if (ready == 0) return Wait::kTimeout;
    if (ready < 0) return Wait::kConnLost;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Wait::kConnLost;
    if (!parser_.feed({buf, static_cast<std::size_t>(n)})) return Wait::kConnLost;
  }
}

std::optional<codec::ClientReply> ClientSession::call(std::int64_t payload) {
  const std::int64_t id = next_id_++;
  const std::int64_t start = now_us();
  const std::int64_t deadline = start + options_.request_timeout_ms * 1000;
  const std::int64_t failovers_at_start = failovers_;
  if (metrics_) metrics_->counter("client.requests").add(1);
  // With a flight recorder installed the request carries a fresh trace:
  // (client, id)-derived trace id, the call's root span as parent, and the
  // shared raw monotonic clock as origin (now_us() reads that same clock).
  obs::TraceContext trace;
  std::uint64_t call_span = 0;
  if (options_.flight) {
    call_span = options_.flight->next_span_id();
    trace = obs::TraceContext{
        util::splitmix64(static_cast<std::uint64_t>(client_id_), static_cast<std::uint64_t>(id)) |
            1,
        call_span, start};
  }
  // Same bytes on every attempt: the retry carries the same
  // (client_id, id), which is what lets the server deduplicate it.
  const std::vector<std::uint8_t> frame = transport::make_frame(
      transport::FrameKind::kClientRequest,
      codec::encode(codec::ClientRequest{id, payload, client_id_, trace}));

  for (;;) {
    if (fd_ < 0 && !reconnect(deadline)) return std::nullopt;
    if (!send_all(frame)) {
      count("client.conn_lost", conn_lost_);
      fail_over();
      if (now_us() >= deadline) return std::nullopt;
      continue;
    }
    const std::int64_t attempt_deadline =
        std::min(deadline, now_us() + options_.attempt_timeout_ms * 1000);
    codec::ClientReply reply;
    switch (await_reply(id, attempt_deadline, reply)) {
      case Wait::kGot: {
        const std::int64_t rtt = now_us() - start;
        if (rtt_us_) rtt_us_->record(rtt);
        if (failover_rtt_us_ && failovers_ != failovers_at_start) failover_rtt_us_->record(rtt);
        window_rtt_.record(rtt);
        if (options_.flight)
          options_.flight->record({trace.trace_id, call_span, 0, "client.call", start, rtt, id});
        if (metrics_)
          metrics_->counter(reply.ok ? "client.replies" : "client.rejections").add(1);
        return reply;
      }
      case Wait::kConnLost:
        count("client.conn_lost", conn_lost_);
        fail_over();
        break;
      case Wait::kTimeout:
        count("client.timeouts", timeouts_);
        if (attempt_deadline >= deadline) return std::nullopt;  // budget exhausted
        fail_over();  // this proxy is not answering; try another replica
        break;
    }
    if (now_us() >= deadline) return std::nullopt;
  }
}

ClientSession::WorkloadResult ClientSession::run_closed_loop(
    std::int64_t count, const std::function<std::int64_t(std::int64_t)>& payload_of) {
  WorkloadResult result;
  window_rtt_.reset();
  const std::int64_t timeouts0 = timeouts_;
  const std::int64_t conn_lost0 = conn_lost_;
  const std::int64_t failovers0 = failovers_;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t payload = payload_of ? payload_of(i) : i;
    const auto reply = call(payload);
    if (!reply) {
      ++result.lost;
      if (!connected()) break;  // cluster unreachable even after failover
      continue;
    }
    if (reply->ok)
      ++result.ok;
    else
      ++result.rejected;
  }
  result.timeouts = timeouts_ - timeouts0;
  result.conn_lost = conn_lost_ - conn_lost0;
  result.failovers = failovers_ - failovers0;
  result.rtt = window_rtt_.snapshot();
  return result;
}

std::string ClientSession::WorkloadResult::to_json() const {
  std::ostringstream os;
  os << "{\"ok\":" << ok << ",\"rejected\":" << rejected << ",\"lost\":" << lost
     << ",\"timeouts\":" << timeouts << ",\"conn_lost\":" << conn_lost
     << ",\"failovers\":" << failovers << ",\"rtt_us\":";
  obs::write_json(os, rtt);
  os << "}";
  return os.str();
}

}  // namespace twostep::node
