// An n-replica cluster of live Runtimes over loopback, in one process.
//
// Each replica gets its own EventLoop thread, ephemeral listening port and
// MetricsRegistry; the cluster binds all listeners first (so every
// endpoint is known), then starts every runtime with the full peer table.
// This is the engine behind `twostep localcluster`, the live benches and
// the conformance tests — and deliberately the same code path a real
// multi-process deployment would use, just with n threads instead of n
// processes.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "node/runtime.hpp"

namespace twostep::node {

template <typename P>
class LocalCluster {
 public:
  /// Per-replica protocol factory; `self` identifies which replica this
  /// instance is (wire options.probe.metrics at `reg` for per-node metrics).
  using Factory = std::function<std::unique_ptr<P>(
      consensus::Env<typename P::Message>&, obs::MetricsRegistry&, consensus::ProcessId self)>;

  /// Binds n loopback listeners and starts all runtimes.
  LocalCluster(int n, Factory factory) {
    nodes_.reserve(static_cast<std::size_t>(n));
    for (consensus::ProcessId p = 0; p < n; ++p) {
      nodes_.push_back(std::make_unique<Runtime<P>>(
          p, n, transport::Endpoint{"127.0.0.1", 0},
          [&factory, p](consensus::Env<typename P::Message>& env, obs::MetricsRegistry& reg) {
            return factory(env, reg, p);
          }));
      endpoints_.push_back(nodes_.back()->endpoint());
    }
    for (auto& node : nodes_) node->start(endpoints_);
  }

  ~LocalCluster() { stop(); }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] Runtime<P>& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const std::vector<transport::Endpoint>& endpoints() const noexcept {
    return endpoints_;
  }

  /// Blocks until every replica's outbound links reach all n-1 peers, or
  /// the timeout expires.  Returns whether the mesh formed.
  bool wait_for_mesh(std::int64_t timeout_ms = 5'000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      bool full = true;
      for (auto& node : nodes_)
        if (node->connected_out() != size() - 1) full = false;
      if (full) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void stop() {
    for (auto& node : nodes_) node->stop();
  }

  /// Merges every node's registry, in replica order (call after stop()).
  [[nodiscard]] obs::MetricsRegistry merged_metrics() {
    obs::MetricsRegistry merged;
    for (auto& node : nodes_) merged.merge(node->metrics());
    return merged;
  }

 private:
  std::vector<std::unique_ptr<Runtime<P>>> nodes_;
  std::vector<transport::Endpoint> endpoints_;
};

}  // namespace twostep::node
