// An n-replica cluster of live Runtimes over loopback, in one process.
//
// Each replica gets its own EventLoop thread, ephemeral listening port and
// MetricsRegistry; the cluster binds all listeners first (so every
// endpoint is known), then starts every runtime with the full peer table.
// This is the engine behind `twostep localcluster`, the live benches and
// the conformance tests — and deliberately the same code path a real
// multi-process deployment would use, just with n threads instead of n
// processes.
//
// Crash-recovery: kill(i) tears replica i down abruptly (its sockets die;
// peers see resets and redial) and restart(i) brings it back on the SAME
// port with the SAME WAL directory, so a restarted node re-enters the
// mesh with its pre-crash promises and votes replayed from disk.  The
// CrashSchedule helper turns a seed into a reproducible kill/restart
// timeline with at most f replicas down at once — the fault envelope the
// protocol's quorum arguments tolerate.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "node/runtime.hpp"
#include "rsm/rsm.hpp"
#include "util/rng.hpp"

namespace twostep::node {

/// Cluster-wide knobs, applied per replica at construction and restart.
struct ClusterOptions {
  /// Storage configuration, forwarded to RuntimeOptions::storage on every
  /// replica with `storage.dir` rewritten per replica: a non-empty dir
  /// means replica i persists under `<dir>/r<i>` and recovers from it on
  /// restart (empty: no persistence — kill loses all state).  All other
  /// fields (fsync, group_commit_us, snapshot_every, wal_segment_bytes)
  /// apply unchanged.
  StorageOptions storage;
  /// Chaos stage on every replica's outbound links (seeded per node
  /// inside the runtime).
  transport::ChaosConfig chaos;
  /// Give every replica a flight recorder ("node-<i>", salt i+1) so traced
  /// client requests produce per-node span streams (see flight(i)).  The
  /// recorders survive kill/restart — a replica's span history spans its
  /// incarnations.
  bool trace = false;
  /// Forwarded to RuntimeOptions::stats_interval_ms on every replica.
  int stats_interval_ms = 0;
  /// Forwarded to RuntimeOptions::failover on every replica (heartbeat
  /// failure detection + leader election).
  FailoverOptions failover;
  /// Forwarded to RuntimeOptions::anti_entropy_period_us on every replica
  /// (applied-prefix gossip; <= 0 disables).
  std::int64_t anti_entropy_period_us = 1'000'000;
};

/// One round of a crash timeline: at `at_ms` kill `replicas`, keep them
/// down for `down_ms`, then restart them all.
struct CrashRound {
  std::int64_t at_ms = 0;
  std::vector<int> replicas;
  std::int64_t down_ms = 0;
};

/// Seeded, reproducible kill/restart timeline.  Rounds never overlap, so a
/// sequential driver (kill all, sleep, restart all) keeps the number of
/// concurrently-down replicas at |round.replicas| <= f at all times.
struct CrashSchedule {
  std::vector<CrashRound> rounds;

  static CrashSchedule generate(std::uint64_t seed, int n, int f, std::int64_t duration_ms,
                                std::int64_t period_ms, std::int64_t down_ms) {
    CrashSchedule out;
    if (n <= 0 || f <= 0 || period_ms <= 0 || down_ms <= 0) return out;
    util::Rng rng{util::splitmix64(seed, 0xC2A5C2A5ULL)};
    for (std::int64_t t = period_ms; t + down_ms < duration_ms; t += period_ms) {
      CrashRound round;
      // Jitter the kill instant, but keep the whole round inside its period
      // so rounds cannot overlap (the <= f invariant depends on it).
      const std::int64_t slack = period_ms - down_ms;
      round.at_ms = t + (slack > 1 ? static_cast<std::int64_t>(
                                         rng.next_below(static_cast<std::uint64_t>(slack / 2)))
                                   : 0);
      round.down_ms = down_ms;
      const int kills = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(f)));
      std::vector<int> pool(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
      for (int k = 0; k < kills && !pool.empty(); ++k) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(pool.size())));
        round.replicas.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      out.rounds.push_back(std::move(round));
    }
    return out;
  }
};

template <typename P>
class LocalCluster {
 public:
  /// Per-replica protocol factory; `self` identifies which replica this
  /// instance is (wire options.probe.metrics at `reg` for per-node metrics).
  using Factory = std::function<std::unique_ptr<P>(
      consensus::Env<typename P::Message>&, obs::MetricsRegistry&, consensus::ProcessId self)>;

  /// Binds n loopback listeners and starts all runtimes.
  explicit LocalCluster(int n, Factory factory, ClusterOptions options = {})
      : factory_(std::move(factory)), options_(std::move(options)) {
    if (options_.trace) {
      recorders_.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        recorders_.push_back(std::make_unique<obs::FlightRecorder>(
            "node-" + std::to_string(i), static_cast<std::uint64_t>(i) + 1));
    }
    nodes_.reserve(static_cast<std::size_t>(n));
    for (consensus::ProcessId p = 0; p < n; ++p) {
      nodes_.push_back(build_node(p, n, transport::Endpoint{"127.0.0.1", 0}));
      initial_n_.push_back(n);
      endpoints_.push_back(nodes_.back()->endpoint());
    }
    for (auto& node : nodes_) node->start(endpoints_);
  }

  ~LocalCluster() { stop(); }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(endpoints_.size()); }
  /// The replica's runtime.  Not synchronized against kill()/restart() from
  /// other threads — callers coordinate (the crash driver owns the node's
  /// lifetime while a round is in flight).
  [[nodiscard]] Runtime<P>& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] bool alive(int i) const {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    return nodes_[static_cast<std::size_t>(i)] != nullptr;
  }
  [[nodiscard]] const std::vector<transport::Endpoint>& endpoints() const noexcept {
    return endpoints_;
  }
  /// Replica i's flight recorder; null unless ClusterOptions::trace.
  /// Safe to read while the cluster runs (the recorder synchronises) and
  /// across kill/restart (the cluster owns it, not the runtime).
  [[nodiscard]] obs::FlightRecorder* flight(int i) {
    return options_.trace ? recorders_[static_cast<std::size_t>(i)].get() : nullptr;
  }

  /// Abruptly stops replica i and destroys its runtime.  Its metrics are
  /// folded into a graveyard registry first, so merged_metrics() never
  /// loses a dead node's counters.  No-op if already dead.
  void kill(int i) {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    auto& node = nodes_[static_cast<std::size_t>(i)];
    if (!node) return;
    node->stop();
    graveyard_.merge(node->metrics());
    node.reset();
  }

  /// Rebuilds replica i on its ORIGINAL port, recovering from its WAL
  /// directory when the cluster has storage.  No-op if alive.  The replica
  /// is rebuilt with the cluster size it was FOUNDED with (a joiner's
  /// genesis universe predates it); any later membership changes are
  /// re-derived from its WAL / snapshot or re-learned from peers.
  void restart(int i) {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    auto& node = nodes_[static_cast<std::size_t>(i)];
    if (node) return;
    node = build_node(i, initial_n_[static_cast<std::size_t>(i)],
                      endpoints_[static_cast<std::size_t>(i)]);
    node->start(endpoints_);
  }

  /// Membership change, replicated through the log (Reconfigurable
  /// protocols only): binds a brand-new replica with the NEXT id, starts
  /// it as a silent non-member of the current universe, and submits the
  /// kAdd command through a live node.  Once the change decides, every
  /// member dials the joiner and heals it by snapshot state transfer.
  /// Returns the new replica's id, or -1 if no live node could propose.
  int add_replica() {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    const int id = static_cast<int>(nodes_.size());
    if (options_.trace)
      recorders_.push_back(std::make_unique<obs::FlightRecorder>(
          "node-" + std::to_string(id), static_cast<std::uint64_t>(id) + 1));
    // The joiner's genesis universe is the PRE-change universe: its config
    // log must match the cluster's so the snapshot's epoch suffix applies.
    nodes_.push_back(build_node(id, id, transport::Endpoint{"127.0.0.1", 0}));
    initial_n_.push_back(id);
    endpoints_.push_back(nodes_.back()->endpoint());
    nodes_.back()->start(
        {endpoints_.begin(), endpoints_.begin() + static_cast<std::ptrdiff_t>(id)});
    rsm::ConfigChange change;
    change.op = rsm::ConfigChange::Op::kAdd;
    change.replica = id;
    change.host = endpoints_.back().host;
    change.port = endpoints_.back().port;
    for (auto& node : nodes_) {
      if (!node || node->self() == id) continue;
      node->propose_config(change);
      return id;
    }
    return -1;
  }

  /// Submits the kRemove command for replica i through a live peer (the
  /// removed replica is treated as crashed by the survivors; the caller
  /// decides when to actually kill() it).  Returns whether a live node
  /// accepted the proposal.
  bool remove_replica(int i) {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    rsm::ConfigChange change;
    change.op = rsm::ConfigChange::Op::kRemove;
    change.replica = i;
    for (auto& node : nodes_) {
      if (!node || node->self() == i) continue;
      node->propose_config(change);
      removed_.insert(i);
      return true;
    }
    return false;
  }

  /// Replica ids removed via remove_replica (excluded from mesh waits).
  [[nodiscard]] bool removed(int i) const {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    return removed_.contains(i);
  }

  /// Blocks until every live member replica's outbound links reach all
  /// live member peers AND every live member has an identified inbound
  /// connection from each of them, or the timeout expires.  Returns
  /// whether the mesh formed.  Checking both directions matters: our dials
  /// may succeed while the peers' dials to us are still down, and a
  /// half-open mesh stalls every quorum that needs the missing direction.
  /// Replicas removed via remove_replica are excluded (survivors retired
  /// their links); a replica added via add_replica is counted, so the wait
  /// also covers the join's config change reaching every member.
  bool wait_for_mesh(std::int64_t timeout_ms = 5'000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      int live = 0;
      bool full = true;
      {
        const std::lock_guard<std::mutex> lock(nodes_mu_);
        for (std::size_t i = 0; i < nodes_.size(); ++i)
          if (nodes_[i] && !removed_.contains(static_cast<int>(i))) ++live;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          const auto& node = nodes_[i];
          if (!node || removed_.contains(static_cast<int>(i))) continue;
          if (node->connected_out() < live - 1 || node->connected_in() < live - 1) full = false;
        }
      }
      if (full) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void stop() {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    for (auto& node : nodes_)
      if (node) node->stop();
  }

  /// Merges every node's registry — including replicas that died and were
  /// restarted — in replica order (call after stop()).
  [[nodiscard]] obs::MetricsRegistry merged_metrics() {
    const std::lock_guard<std::mutex> lock(nodes_mu_);
    obs::MetricsRegistry merged;
    merged.merge(graveyard_);
    for (auto& node : nodes_)
      if (node) merged.merge(node->metrics());
    return merged;
  }

 private:
  std::unique_ptr<Runtime<P>> build_node(consensus::ProcessId p, int n,
                                         transport::Endpoint listen) {
    RuntimeOptions rt_options;
    rt_options.storage = options_.storage;
    if (options_.storage.enabled())
      rt_options.storage.dir = options_.storage.dir + "/r" + std::to_string(p);
    rt_options.chaos = options_.chaos;
    if (options_.trace) rt_options.flight = recorders_[static_cast<std::size_t>(p)].get();
    rt_options.stats_interval_ms = options_.stats_interval_ms;
    rt_options.failover = options_.failover;
    rt_options.anti_entropy_period_us = options_.anti_entropy_period_us;
    Factory& factory = factory_;
    return std::make_unique<Runtime<P>>(
        p, n, std::move(listen),
        [&factory, p](consensus::Env<typename P::Message>& env, obs::MetricsRegistry& reg) {
          return factory(env, reg, p);
        },
        std::move(rt_options));
  }

  Factory factory_;
  ClusterOptions options_;
  /// Per-replica span sinks (ClusterOptions::trace); built before the
  /// runtimes and never destroyed until the cluster is, so restart() can
  /// hand the same recorder to a replica's next incarnation.
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;
  mutable std::mutex nodes_mu_;  ///< guards nodes_ slots, membership + graveyard_
  std::vector<std::unique_ptr<Runtime<P>>> nodes_;
  std::vector<int> initial_n_;  ///< founding cluster size per replica (restart)
  std::vector<transport::Endpoint> endpoints_;
  std::unordered_set<int> removed_;  ///< ids retired via remove_replica
  obs::MetricsRegistry graveyard_;
};

}  // namespace twostep::node
