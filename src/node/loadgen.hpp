// Open-loop multi-session workload generator for the live node runtime.
//
// The closed-loop ClientSession measures *latency*: it issues the next
// command only after the previous one committed, so its throughput is
// 1/RTT by construction and says nothing about capacity.  Saturation needs
// the opposite discipline — an OPEN loop, where commands arrive on a clock
// that does not care whether the cluster has answered yet.  This generator
// drives hundreds to thousands of logical sessions over a handful of
// shared TCP connections, all multiplexed on one transport::EventLoop:
//
//   - arrivals follow a target rate (deterministic spacing or a seeded
//     Poisson process) and are assigned to sessions round-robin,
//   - each session is pinned to one connection and stamps dedup-safe ids:
//     request id (session << 32 | seq) and payload (session << 28 | seq),
//     both strictly increasing per session, so server-side ClientDedup and
//     the chaossoak-style audit invariants keep working under concurrency,
//   - a reply is matched to its request by id; the recorded RTT always
//     spans from the ORIGINAL issue instant, including any reconnect and
//     resend in between (the same discipline ClientSession::call uses),
//   - when a connection dies the generator redials it with backoff and
//     resends every in-flight request pinned to it, under the original
//     ids and the original start timestamps.
//
// The result reports offered vs achieved command rates and the RTT
// distribution — one point on the saturation curve bench_n3_saturation
// sweeps.  Payloads stay below 2^39 so the generator composes with RSM
// batching (which reserves payload bit 39 for batch handles); that caps
// sessions at 2^11 - 1 = 2047.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/codec.hpp"
#include "obs/histogram.hpp"
#include "transport/event_loop.hpp"
#include "transport/tcp.hpp"
#include "util/rng.hpp"

namespace twostep::node {

struct LoadgenOptions {
  std::int64_t rate = 1'000;        ///< offered commands/s across all sessions
  int sessions = 64;                ///< logical dedup sessions (max 2047)
  int connections = 4;              ///< TCP connections the sessions share
  std::int64_t duration_ms = 5'000; ///< offered-load window
  std::int64_t drain_ms = 2'000;    ///< grace to collect in-flight replies after the window
  bool poisson = true;              ///< exponential inter-arrivals; false = fixed spacing
  bool spread = false;              ///< round-robin connections over all servers (default: all to servers[0])
  std::uint64_t seed = 1;           ///< arrival process + backoff jitter
  std::int64_t reconnect_backoff_ms = 50;  ///< redial delay after a connection dies
};

/// One run's outcome.  `ok` counts every answered-ok command including the
/// drain; `ok_in_window` only those answered inside the offered-load
/// window, which is what the achieved rate is computed from (a saturated
/// cluster answers late, and late answers must not flatter the curve).
struct LoadResult {
  std::int64_t offered = 0;
  std::int64_t ok = 0;
  std::int64_t ok_in_window = 0;
  std::int64_t rejected = 0;
  std::int64_t lost = 0;        ///< unanswered when the drain expired
  std::int64_t resends = 0;     ///< in-flight requests replayed after a reconnect
  std::int64_t reconnects = 0;
  std::int64_t window_us = 0;   ///< actual offered-load window duration
  obs::HistogramSnapshot rtt;   ///< answered commands, original-issue to reply

  [[nodiscard]] double offered_rate() const {
    return window_us > 0 ? offered * 1e6 / static_cast<double>(window_us) : 0.0;
  }
  [[nodiscard]] double achieved_rate() const {
    return window_us > 0 ? ok_in_window * 1e6 / static_cast<double>(window_us) : 0.0;
  }

  /// Everything above as one JSON object (schema-free; the bench wraps it).
  [[nodiscard]] std::string to_json() const;
};

/// Blocking open-loop generator.  run() owns the calling thread for
/// duration + drain; the event loop, connections and all state live on
/// that thread.  Intended against a local or loopback cluster — the
/// reconnect path uses short blocking dials.
class OpenLoopLoadgen {
 public:
  OpenLoopLoadgen(std::vector<transport::Endpoint> servers, LoadgenOptions options);

  /// Runs the workload to completion and returns the curve point.
  LoadResult run();

  /// Commands issued per session so far (index = session).  The audit
  /// reconstructs the full issued-payload set from these counts: session i
  /// issued payloads (i << 28 | seq) for seq in [0, issued_per_session[i]).
  [[nodiscard]] const std::vector<std::int64_t>& issued_per_session() const noexcept {
    return issued_per_session_;
  }
  /// Payloads of every ok-answered command (durability audit input).
  [[nodiscard]] const std::vector<std::int64_t>& acked_payloads() const noexcept {
    return acked_payloads_;
  }

  static constexpr int kMaxSessions = 2047;  ///< payload bit budget, see header comment

 private:
  struct Pending {
    int session = 0;
    std::int64_t payload = 0;
    std::int64_t start_us = 0;  ///< ORIGINAL issue time; resends do not reset it
  };

  void issue_due_arrivals();
  void arm_pump();
  void issue_one();
  void send_request(int session, std::int64_t id, const Pending& p);
  void on_reply(const codec::ClientReply& reply);
  void on_conn_closed(int conn_idx);
  void redial(int conn_idx);
  [[nodiscard]] double next_gap_us();
  void finish_if_drained();

  std::vector<transport::Endpoint> servers_;
  LoadgenOptions options_;
  transport::EventLoop loop_;
  transport::TransportStats stats_;
  std::vector<std::shared_ptr<transport::Connection>> conns_;
  std::vector<std::int64_t> client_ids_;  ///< per-session dedup id
  std::vector<std::int64_t> issued_per_session_;
  std::vector<std::int64_t> acked_payloads_;
  std::unordered_map<std::int64_t, Pending> inflight_;  ///< request id -> pending
  obs::LogHistogram rtt_;
  util::Rng rng_;
  LoadResult result_;
  std::int64_t window_start_us_ = 0;
  std::int64_t window_end_us_ = 0;  ///< set once offering stops
  double next_arrival_us_ = 0;      ///< fractional so high rates do not quantize
  int next_session_ = 0;
  bool offering_ = true;
  bool done_ = false;
};

}  // namespace twostep::node
