// Blocking client session for the live node runtime.
//
// A deliberately simple counterpart to the server side: one blocking TCP
// socket to the client's current *proxy* replica, a synchronous
// request/reply call, and a closed-loop workload driver that issues the
// next command only after the previous one committed — the shape under
// which the paper's two-step bound translates directly into
// client-observed latency.
//
// Failover: the session can be given the full replica list.  When the
// current proxy stops answering (connection loss, or a per-attempt reply
// timeout), the client redials the next replica — cycling with capped
// exponential backoff and seeded jitter — and resends the in-flight
// request under the same (client_id, request_id).  The server keeps a
// per-client dedup table, so a retry of an already-committed command is
// answered from cache rather than executed again; across a *proxy crash*
// the table is volatile and semantics degrade to at-least-once (see
// Runtime::ClientDedup).  Per-request RTTs land in an obs::MetricsRegistry
// histogram ("client.rtt_us") next to counters for requests, replies and
// the three failure modes (client.timeouts / client.conn_lost /
// client.failovers).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "obs/flight.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "transport/tcp.hpp"
#include "transport/wire.hpp"
#include "util/backoff.hpp"

namespace twostep::node {

struct ClientOptions {
  std::int64_t connect_timeout_ms = 5'000;  ///< total dial budget incl. retries
  /// Total per-call budget, across every failover attempt.
  std::int64_t request_timeout_ms = 10'000;
  /// How long one proxy gets to answer before the client fails over to the
  /// next replica and resends.  Clamped to the overall request timeout.
  std::int64_t attempt_timeout_ms = 1'000;
  std::int64_t backoff_min_ms = 10;   ///< redial backoff after a full cycle fails
  std::int64_t backoff_max_ms = 500;  ///< exponential cap
  /// Dedup session id sent with every request; 0 auto-generates a
  /// process-unique id.  Requests from the same session under the same
  /// request id are idempotent at any single server.
  std::int64_t client_id = 0;
  std::uint64_t seed = 1;  ///< backoff jitter stream (mixed with client_id)
  /// Span sink enabling wire-propagated tracing: every call() stamps a
  /// fresh trace id + origin timestamp into the request and records a root
  /// "client.call" span, so the servers' spans hang off this session's.
  /// Null (the default) sends untraced requests.  Must outlive the session.
  obs::FlightRecorder* flight = nullptr;
};

class ClientSession {
 public:
  using Options = ClientOptions;

  /// Failover client over the full replica list; starts at `servers[0]`.
  /// `metrics` may be null (no recording).  Does not connect yet.
  ClientSession(std::vector<transport::Endpoint> servers, obs::MetricsRegistry* metrics,
                Options options = {});

  /// Single-replica session (no failover targets) — the pre-failover shape,
  /// kept for callers that pin a proxy deliberately.
  ClientSession(transport::Endpoint server, obs::MetricsRegistry* metrics,
                Options options = {});

  ~ClientSession();
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Dials the cluster (current endpoint first, then cycling), retrying
  /// with backoff until the connect timeout.  False on failure.
  bool connect();

  /// Sends one request and blocks for the matching reply, failing over
  /// between replicas as needed.  nullopt once the whole request budget is
  /// exhausted; the session survives and the next call may reconnect.
  std::optional<codec::ClientReply> call(std::int64_t payload);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  /// The dedup session id in use (auto-generated when options.client_id == 0).
  [[nodiscard]] std::int64_t client_id() const noexcept { return client_id_; }
  /// Index into the server list the session currently targets.
  [[nodiscard]] std::size_t current_server() const noexcept { return current_; }

  struct WorkloadResult {
    std::int64_t ok = 0;
    std::int64_t rejected = 0;   ///< replies with ok == false
    std::int64_t lost = 0;       ///< calls that exhausted the full request budget
    std::int64_t timeouts = 0;   ///< per-attempt reply timeouts (incl. the final one)
    std::int64_t conn_lost = 0;  ///< sockets that died under an in-flight request
    std::int64_t failovers = 0;  ///< times the session switched replica
    /// RTT distribution of this window's answered calls (count/mean/min/
    /// max and p50..p999), from the session's log-bucketed histogram.
    obs::HistogramSnapshot rtt;

    /// One machine-readable line: the counters plus the rtt quantiles.
    [[nodiscard]] std::string to_json() const;
  };

  /// Closed-loop driver: `count` sequential calls; `payload_of(i)` supplies
  /// the i-th command (defaults to the identity).  Stops early only when
  /// the cluster is unreachable (a call failed and reconnection failed).
  WorkloadResult run_closed_loop(std::int64_t count,
                                 const std::function<std::int64_t(std::int64_t)>& payload_of = {});

 private:
  void close();
  [[nodiscard]] std::int64_t now_us() const;
  /// Blocking dial of servers_[current_]; true on success.
  bool dial_current();
  /// Cycles endpoints with backoff+jitter until connected or `deadline`.
  bool reconnect(std::int64_t deadline);
  /// Closes the socket and advances to the next replica, counting the
  /// failover.  (No-op advance with a single server — it still re-dials.)
  void fail_over();
  void count(const char* name, std::int64_t& local);
  bool send_all(const std::vector<std::uint8_t>& bytes);

  enum class Wait { kGot, kConnLost, kTimeout };
  Wait await_reply(std::int64_t id, std::int64_t deadline, codec::ClientReply& out);

  std::vector<transport::Endpoint> servers_;
  std::size_t current_ = 0;
  Options options_;
  obs::MetricsRegistry* metrics_;
  obs::LogHistogram* rtt_us_ = nullptr;           ///< all answered calls
  obs::LogHistogram* failover_rtt_us_ = nullptr;  ///< calls that failed over mid-flight
  obs::LogHistogram window_rtt_;  ///< reset per run_closed_loop window
  int fd_ = -1;
  transport::FrameParser parser_;
  std::int64_t next_id_ = 1;
  std::int64_t client_id_ = 0;
  /// Redial cadence after a full cluster pass fails: jittered exponential
  /// (util::Backoff, shared with the runtime's transfer-retry loop), reset
  /// to the minimum by every successful dial.
  util::Backoff redial_backoff_;
  std::int64_t timeouts_ = 0;
  std::int64_t conn_lost_ = 0;
  std::int64_t failovers_ = 0;
};

}  // namespace twostep::node
