// Blocking client session for the live node runtime.
//
// A deliberately simple counterpart to the server side: one blocking TCP
// socket to one replica (the client's *proxy*, in the RSM deployment
// model), a synchronous request/reply call, and a closed-loop workload
// driver that issues the next command only after the previous one
// committed — the shape under which the paper's two-step bound translates
// directly into client-observed latency.  Per-request RTTs land in an
// obs::MetricsRegistry histogram ("client.rtt_us") next to counters for
// requests, replies and failures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "codec/codec.hpp"
#include "obs/metrics.hpp"
#include "transport/tcp.hpp"
#include "transport/wire.hpp"

namespace twostep::node {

struct ClientOptions {
  std::int64_t connect_timeout_ms = 5'000;  ///< total budget incl. retries
  std::int64_t request_timeout_ms = 10'000;
};

class ClientSession {
 public:
  using Options = ClientOptions;

  /// `metrics` may be null (no recording).  Does not connect yet.
  ClientSession(transport::Endpoint server, obs::MetricsRegistry* metrics,
                Options options = {});
  ~ClientSession();
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Dials the server, retrying until the connect timeout.  False on failure.
  bool connect();

  /// Sends one request and blocks for the matching reply.  nullopt on
  /// timeout or connection loss (the session is dead afterwards).
  std::optional<codec::ClientReply> call(std::int64_t payload);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  struct WorkloadResult {
    std::int64_t ok = 0;
    std::int64_t rejected = 0;  ///< replies with ok == false
    std::int64_t lost = 0;      ///< timeouts / connection loss
  };

  /// Closed-loop driver: `count` sequential calls; `payload_of(i)` supplies
  /// the i-th command (defaults to the identity).  Stops early on
  /// connection loss.
  WorkloadResult run_closed_loop(std::int64_t count,
                                 const std::function<std::int64_t(std::int64_t)>& payload_of = {});

 private:
  void close();
  [[nodiscard]] std::int64_t now_us() const;

  transport::Endpoint server_;
  Options options_;
  obs::MetricsRegistry* metrics_;
  util::Summary* rtt_us_ = nullptr;
  int fd_ = -1;
  transport::FrameParser parser_;
  std::int64_t next_id_ = 1;
};

}  // namespace twostep::node
