// Live node runtime: hosts one protocol instance behind the same
// consensus::Env the simulator uses, backed by real sockets.
//
// Runtime<P> owns an EventLoop thread, a listening socket, one outbound
// PeerLink per peer and the inbound connections peers and clients open to
// us.  The protocol instance never learns which world it is in: its Env
// calls turn into framed TCP sends, epoll timers and the monotonic clock
// (1 tick = 1 µs here, 1 abstract round unit in the simulator).
//
// Threading model (what keeps the conformance suite TSan-clean):
//   - the protocol, the links and all connections are touched ONLY on the
//     loop thread; external entry points (propose) hop through post(),
//   - cross-thread reads go through a mutex-guarded snapshot (decisions,
//     applied log) or relaxed atomics (TransportStats, PeerLink::connected),
//   - the per-runtime MetricsRegistry is written on the loop thread and
//     read only after stop() joins.
//
// Start discipline: the protocol's start() is deferred to the first
// proposal or message delivery.  In the simulator, start_all() and the
// scheduled proposals happen at the same virtual instant; a live replica
// may sit idle for wall-clock seconds before the first request, and
// running the new-ballot timer during that idle stretch would drive the
// ballot past 0 and permanently close the fast path.  Deferring start()
// reproduces the simulator's "time begins with the run" semantics.
#pragma once

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "node/wire_traits.hpp"
#include "obs/metrics.hpp"
#include "transport/event_loop.hpp"
#include "transport/tcp.hpp"
#include "transport/wire.hpp"

namespace twostep::node {

/// True when P is a proxy-style replicated state machine (client commands
/// go through submit/on_commit) rather than single-shot consensus.
template <typename P>
concept RsmLike = requires(P p) {
  p.submit(std::int64_t{});
  p.on_commit;
  p.on_apply;
};

template <typename P>
class Runtime {
 public:
  using Message = typename P::Message;
  /// Builds the protocol instance against the runtime's Env and metrics
  /// registry (wire options.probe.metrics at the registry to get per-node
  /// protocol metrics).  Called once, from the constructor, before the
  /// loop thread exists.
  using Factory =
      std::function<std::unique_ptr<P>(consensus::Env<Message>&, obs::MetricsRegistry&)>;

  /// Binds the listener immediately (`listen.port == 0` picks an ephemeral
  /// port, readable via endpoint() right away); I/O starts with start().
  Runtime(consensus::ProcessId self, int cluster_size, transport::Endpoint listen,
          Factory factory)
      : self_(self), n_(cluster_size), listen_ep_(std::move(listen)), env_(*this) {
    listen_fd_ = transport::bind_listener(listen_ep_);
    loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
    serve_us_ = &metrics_.histogram("node.serve_us");
    proc_ = factory(env_, metrics_);
    wire_callbacks();
  }

  ~Runtime() { stop(); }
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] const transport::Endpoint& endpoint() const noexcept { return listen_ep_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return listen_ep_.port; }
  [[nodiscard]] consensus::ProcessId self() const noexcept { return self_; }

  /// Dials every peer and spawns the loop thread.  `peers[i]` is replica
  /// i's listen endpoint; `peers[self]` is ignored.
  void start(std::vector<transport::Endpoint> peers) {
    peers_ = std::move(peers);
    links_.resize(static_cast<std::size_t>(n_));
    for (consensus::ProcessId p = 0; p < n_; ++p) {
      if (p == self_) continue;
      links_[static_cast<std::size_t>(p)] = std::make_unique<transport::PeerLink>(
          loop_, self_, p, peers_[static_cast<std::size_t>(p)], &stats_);
      links_[static_cast<std::size_t>(p)]->start();
    }
    thread_ = std::thread([this] { loop_.run(); });
  }

  /// Stops the loop, joins the thread and folds the transport counters
  /// into the metrics registry.  Idempotent.
  void stop() {
    if (thread_.joinable()) {
      loop_.request_stop();
      thread_.join();
      export_transport_metrics();
    }
    // Tear connections down after the join: loop-thread objects are only
    // safe to touch once the loop thread is gone.
    for (auto& link : links_)
      if (link) link->shutdown();
    inbound_.clear();
    inbound_peer_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  /// Injects a local proposal, as the simulator's proposal schedule would.
  /// Thread-safe (hops onto the loop thread).
  void propose(consensus::Value v) {
    loop_.post([this, v] {
      ensure_started();
      if constexpr (RsmLike<P>) {
        proc_->submit(v.get());
      } else {
        if (proposed_) return;  // one proposal per process, as in the task model
        proposed_ = true;
        proc_->propose(v);
      }
    });
  }

  // --- cross-thread snapshots ---

  [[nodiscard]] bool has_decided() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return !decided_.is_bottom();
  }
  [[nodiscard]] consensus::Value decided_value() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return decided_;
  }
  /// RSM only: (slot, command) pairs applied so far, in log order.
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::int64_t>> applied_log() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return applied_;
  }
  /// Number of peers our outbound links currently reach.
  [[nodiscard]] int connected_out() const {
    int count = 0;
    for (const auto& link : links_)
      if (link && link->connected()) ++count;
    return count;
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const transport::TransportStats& stats() const noexcept { return stats_; }

  /// The hosted protocol.  Only safe before start() or after stop().
  [[nodiscard]] P& unsafe_process() noexcept { return *proc_; }

 private:
  /// The Env implementation protocols see.  Loop-thread only.
  class LiveEnv final : public consensus::Env<Message> {
   public:
    explicit LiveEnv(Runtime& rt) : rt_(rt) {}
    [[nodiscard]] consensus::ProcessId self() const override { return rt_.self_; }
    [[nodiscard]] int cluster_size() const override { return rt_.n_; }
    [[nodiscard]] sim::Tick now() const override { return rt_.loop_.now_us(); }
    void send(consensus::ProcessId to, const Message& msg) override { rt_.send_msg(to, msg); }
    consensus::TimerId set_timer(sim::Tick delay) override {
      const std::uint64_t env_id = rt_.next_env_timer_++;
      const std::uint64_t loop_id = rt_.loop_.schedule_after(delay, [this, env_id] {
        rt_.env_timers_.erase(env_id);
        rt_.proc_->on_timer(consensus::TimerId{env_id});
      });
      rt_.env_timers_.emplace(env_id, loop_id);
      return consensus::TimerId{env_id};
    }
    void cancel_timer(consensus::TimerId id) override {
      const auto it = rt_.env_timers_.find(id.value);
      if (it == rt_.env_timers_.end()) return;
      rt_.loop_.cancel_timer(it->second);
      rt_.env_timers_.erase(it);
    }

   private:
    Runtime& rt_;
  };

  struct OutstandingRequest {
    std::weak_ptr<transport::Connection> conn;
    std::int64_t request_id = 0;
    std::int64_t received_us = 0;
  };

  void wire_callbacks() {
    if constexpr (RsmLike<P>) {
      proc_->on_apply = [this](std::int32_t slot, std::int64_t cmd) {
        const std::lock_guard<std::mutex> lock(state_mu_);
        applied_.emplace_back(slot, cmd);
      };
      proc_->on_commit = [this](std::int64_t cmd, sim::Tick submitted_at, std::int32_t slot) {
        const auto it = outstanding_rsm_.find(cmd);
        if (it == outstanding_rsm_.end()) return;
        reply(it->second, codec::ClientReply{it->second.request_id, cmd, slot, true});
        outstanding_rsm_.erase(it);
        (void)submitted_at;
      };
    } else {
      proc_->on_decide = [this](consensus::Value v) {
        {
          const std::lock_guard<std::mutex> lock(state_mu_);
          decided_ = v;
        }
        for (OutstandingRequest& req : outstanding_)
          reply(req, codec::ClientReply{req.request_id, v.get(), -1, true});
        outstanding_.clear();
      };
    }
  }

  void ensure_started() {
    if (proto_started_) return;
    proto_started_ = true;
    proc_->start();
  }

  void send_msg(consensus::ProcessId to, const Message& msg) {
    if (to == self_) {
      // Queue through the loop so self-delivery is never reentrant — the
      // simulator likewise delivers self-sends as later events.
      loop_.post([this, msg] { deliver(self_, msg); });
      return;
    }
    if (to < 0 || to >= n_) return;
    auto& link = links_[static_cast<std::size_t>(to)];
    if (link) link->send_frame(WireTraits<Message>::kKind, WireTraits<Message>::encode(msg));
  }

  void deliver(consensus::ProcessId from, const Message& msg) {
    ensure_started();
    proc_->on_message(from, msg);
  }

  void on_accept() {
    for (;;) {
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) return;  // EAGAIN or transient error; epoll re-notifies
      auto conn = std::make_shared<transport::Connection>(loop_, cfd, &stats_);
      inbound_.insert(conn);
      std::weak_ptr<transport::Connection> weak = conn;
      conn->start(
          [this, weak](transport::Frame&& frame) {
            if (auto c = weak.lock()) on_inbound_frame(c, std::move(frame));
          },
          [this, weak] {
            if (auto c = weak.lock()) {
              inbound_peer_.erase(c.get());
              inbound_.erase(c);
            }
          });
    }
  }

  void on_inbound_frame(const std::shared_ptr<transport::Connection>& conn,
                        transport::Frame&& frame) {
    switch (frame.kind) {
      case transport::FrameKind::kHello: {
        const auto peer = transport::decode_hello(frame.payload);
        if (!peer || *peer < 0 || *peer >= n_) {
          conn->close();
          inbound_peer_.erase(conn.get());
          inbound_.erase(conn);
          return;
        }
        inbound_peer_[conn.get()] = *peer;
        return;
      }
      case transport::FrameKind::kClientRequest: {
        const auto req = codec::decode_client_request(frame.payload);
        if (req) handle_client_request(conn, *req);
        return;
      }
      default:
        break;
    }
    if (frame.kind != WireTraits<Message>::kKind) return;  // not ours; drop
    const auto it = inbound_peer_.find(conn.get());
    if (it == inbound_peer_.end()) return;  // protocol frame before Hello
    auto msg = WireTraits<Message>::decode(frame.payload);
    if (!msg) return;  // malformed payload inside a well-formed frame
    deliver(it->second, *msg);
  }

  void handle_client_request(const std::shared_ptr<transport::Connection>& conn,
                             const codec::ClientRequest& req) {
    OutstandingRequest out{conn, req.id, loop_.now_us()};
    if constexpr (RsmLike<P>) {
      if (req.payload < 0 || req.payload >= (std::int64_t{1} << 40)) {
        reply(out, codec::ClientReply{req.id, req.payload, -1, false});
        return;
      }
      ensure_started();
      const std::int64_t cmd = proc_->submit(req.payload);
      outstanding_rsm_.emplace(cmd, std::move(out));
    } else {
      ensure_started();
      {
        const std::lock_guard<std::mutex> lock(state_mu_);
        if (!decided_.is_bottom()) {
          reply(out, codec::ClientReply{req.id, decided_.get(), -1, true});
          return;
        }
      }
      outstanding_.push_back(std::move(out));
      if (!proposed_) {
        proposed_ = true;
        proc_->propose(consensus::Value{req.payload});
      }
    }
  }

  void reply(const OutstandingRequest& req, const codec::ClientReply& msg) {
    const auto conn = req.conn.lock();
    if (!conn || conn->closed()) return;
    serve_us_->add(static_cast<double>(loop_.now_us() - req.received_us));
    conn->send_frame(transport::FrameKind::kClientReply, codec::encode(msg));
  }

  void export_transport_metrics() {
    metrics_.counter("transport.bytes_sent").add(stats_.bytes_sent.load());
    metrics_.counter("transport.bytes_received").add(stats_.bytes_received.load());
    metrics_.counter("transport.frames_sent").add(stats_.frames_sent.load());
    metrics_.counter("transport.frames_received").add(stats_.frames_received.load());
    metrics_.counter("transport.reconnects").add(stats_.reconnects.load());
    metrics_.counter("transport.frames_dropped").add(stats_.frames_dropped.load());
  }

  consensus::ProcessId self_;
  int n_;
  transport::Endpoint listen_ep_;
  transport::EventLoop loop_;
  LiveEnv env_;
  transport::TransportStats stats_;
  obs::MetricsRegistry metrics_;
  util::Summary* serve_us_ = nullptr;

  int listen_fd_ = -1;
  std::vector<transport::Endpoint> peers_;
  std::vector<std::unique_ptr<transport::PeerLink>> links_;
  std::unordered_set<std::shared_ptr<transport::Connection>> inbound_;
  std::unordered_map<transport::Connection*, consensus::ProcessId> inbound_peer_;

  std::unique_ptr<P> proc_;
  bool proto_started_ = false;
  bool proposed_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> env_timers_;  ///< env id -> loop id
  std::uint64_t next_env_timer_ = 1;

  std::vector<OutstandingRequest> outstanding_;                      ///< single-shot
  std::unordered_map<std::int64_t, OutstandingRequest> outstanding_rsm_;  ///< cmd -> client

  mutable std::mutex state_mu_;
  consensus::Value decided_;
  std::vector<std::pair<std::int32_t, std::int64_t>> applied_;

  std::thread thread_;
};

}  // namespace twostep::node
