// Live node runtime: hosts one protocol instance behind the same
// consensus::Env the simulator uses, backed by real sockets.
//
// Runtime<P> owns an EventLoop thread, a listening socket, one outbound
// PeerLink per peer and the inbound connections peers and clients open to
// us.  The protocol instance never learns which world it is in: its Env
// calls turn into framed TCP sends, epoll timers and the monotonic clock
// (1 tick = 1 µs here, 1 abstract round unit in the simulator).
//
// Threading model (what keeps the conformance suite TSan-clean):
//   - the protocol, the links and all connections are touched ONLY on the
//     loop thread; external entry points (propose) hop through post(),
//   - cross-thread reads go through a mutex-guarded snapshot (decisions,
//     applied log, latest_stats) or relaxed atomics (TransportStats,
//     PeerLink::connected),
//   - the per-runtime MetricsRegistry is written on the loop thread; its
//     counters and log-histograms are internally thread-safe, so live
//     scrapes (kStatsRequest, the periodic snapshotter) read them without
//     waiting for stop().
//
// Start discipline: the protocol's start() is deferred to the first
// proposal or message delivery.  In the simulator, start_all() and the
// scheduled proposals happen at the same virtual instant; a live replica
// may sit idle for wall-clock seconds before the first request, and
// running the new-ballot timer during that idle stretch would drive the
// ballot past 0 and permanently close the fast path.  Deferring start()
// reproduces the simulator's "time begins with the run" semantics.
#pragma once

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "codec/codec.hpp"
#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "node/wire_traits.hpp"
#include "obs/flight.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/durable.hpp"
#include "storage/engine.hpp"
#include "storage/wal.hpp"
#include "transport/chaos.hpp"
#include "transport/event_loop.hpp"
#include "transport/tcp.hpp"
#include "transport/wire.hpp"
#include "util/backoff.hpp"

namespace twostep::node {

/// Everything durable about a node, in one nested knob: the runtime
/// write-ahead-logs every protocol state transition under `dir` *before*
/// the messages revealing it leave the node, rebuilds the protocol from
/// snapshot + log tail on construction, and (when snapshot_every > 0)
/// periodically checkpoints the whole state and compacts the log behind
/// it.  This struct is THE storage configuration surface — Runtime,
/// LocalCluster and every CLI command forward it verbatim (LocalCluster
/// rewrites `dir` to a per-replica subdirectory); there are no parallel
/// copies of these fields anywhere else.
struct StorageOptions {
  /// Storage directory, created if absent; each replica uses the
  /// `replica-<id>/` subdirectory (WAL segments + snapshot).  Empty
  /// disables persistence entirely — enabled() gates every other field.
  std::string dir;
  bool fsync = true;  ///< fdatasync per barrier (off: bench/tests)
  /// > 0: group-commit the WAL.  Instead of one fdatasync per protocol
  /// entry, appended records accumulate and a single barrier fsync runs at
  /// most this many microseconds later (or sooner, when the held-message
  /// cap is hit); every message and client reply produced while records
  /// are unsynced is held behind the barrier, so persist-before-send holds
  /// per barrier exactly as it held per entry.  0 = sync per entry (the
  /// pre-group-commit behavior, byte for byte).
  int group_commit_us = 0;
  /// WAL segment rotation threshold (storage::WalOptions::segment_bytes).
  std::uint64_t wal_segment_bytes = 8ull << 20;
  /// > 0: checkpoint the protocol state after this many WAL records and
  /// truncate the covered segments (protocols with storage::Snapshotable
  /// support only; rejected at construction otherwise).  0: log-only, the
  /// pre-snapshot behavior.
  std::uint64_t snapshot_every = 0;
  /// Snapshot state-transfer re-request backoff: the first retry fires
  /// within transfer_retry_min_us, then the delay doubles (jittered, see
  /// util::Backoff) up to transfer_retry_max_us.  Chunks lost to chaos or
  /// a reconnect are recovered by these re-requests, so the floor bounds
  /// how fast a laggard heals and the cap bounds retry traffic.
  std::int64_t transfer_retry_min_us = 300'000;
  std::int64_t transfer_retry_max_us = 2'000'000;

  [[nodiscard]] bool enabled() const noexcept { return !dir.empty(); }
};

/// Ω-style failure detection and leader failover, run on the loop thread.
/// Every period each node heartbeats its peers; a peer unheard for its
/// (jittered, exponentially widening) suspicion timeout is suspected, and
/// the elected leader is the lowest-id unsuspected member of the current
/// configuration.  The protocol's ballot-ownership hook (set_leader_of)
/// reads the elected leader, so when a leader dies the next timer firing
/// on the new leader re-proposes every undecided slot at a ballot it owns
/// — a bounded unavailability window instead of a stuck log.
struct FailoverOptions {
  bool enabled = false;
  /// Heartbeat broadcast + suspicion check period.
  std::int64_t period_us = 50'000;
  /// Initial suspicion timeout (upper bound of the first jittered draw).
  /// Each false suspicion of a peer doubles that peer's timeout, up to
  /// timeout_max_us, so a slow-but-alive peer stops flapping the leader.
  std::int64_t timeout_min_us = 250'000;
  std::int64_t timeout_max_us = 2'000'000;
  std::uint64_t seed = 1;
};

struct RuntimeOptions {
  /// Persist + recover acceptor state (protocols with storage::Durable
  /// support only; rejected at construction otherwise).  Disabled unless
  /// storage.dir is set.
  StorageOptions storage;
  /// Chaos stage on every outbound peer link (seeded per node).
  transport::ChaosConfig chaos;
  /// Span sink for wire-propagated request tracing (null = tracing off:
  /// traced client requests are served, their context just isn't recorded
  /// or forwarded).  Must outlive the runtime; internally synchronised.
  obs::FlightRecorder* flight = nullptr;
  /// > 0: the loop thread re-snapshots the node's stats JSON on this
  /// period so latest_stats() always has a recent view.  The kStatsRequest
  /// wire scrape works regardless.
  int stats_interval_ms = 0;
  /// Heartbeat failure detector + leader election (protocols exposing
  /// set_leader_of; silently inert otherwise).
  FailoverOptions failover;
  /// Applied-prefix gossip cadence (protocols exposing applied_prefix();
  /// silently inert otherwise).  Reconnect-triggered anti-entropy cannot
  /// heal a hole punched by frame loss on a connection that stays up, so
  /// every replica also tells its peers how far it has applied on this
  /// period; a peer that is ahead answers with its snapshot offer plus a
  /// Decide resend.  <= 0 disables.
  std::int64_t anti_entropy_period_us = 1'000'000;
};

/// True when P is a proxy-style replicated state machine (client commands
/// go through submit/on_commit) rather than single-shot consensus.
template <typename P>
concept RsmLike = requires(P p) {
  p.submit(std::int64_t{});
  p.on_commit;
  p.on_apply;
};

/// True when P can enumerate Decide retransmissions for anti-entropy: the
/// runtime resends them whenever an outbound link (re)establishes, so a
/// peer that missed the original broadcasts (crash, long outage past the
/// transport's bounded queue) still converges.
template <typename P>
concept HasDecideResend = requires(const P p) {
  { p.decide_messages() } -> std::same_as<std::vector<typename P::Message>>;
};

/// True when P hosts a reconfigurable log: membership changes are commands
/// in the replicated log (rsm::RsmProcess::submit_config) and the applied
/// configuration is observable.  The runtime then accepts kConfigCmd admin
/// frames and reacts to applied changes by dialing/retiring peer links.
template <typename P>
concept Reconfigurable = requires(P p) {
  p.submit_config(rsm::ConfigChange{});
  p.on_config;
  { p.config_version() } -> std::convertible_to<std::int32_t>;
};

/// True when P's ballot-ownership hook can be rebound at runtime (the
/// failure detector's elected leader feeds it).
template <typename P>
concept HasLeaderOf = requires(P p) {
  p.set_leader_of(std::function<consensus::ProcessId()>{});
};

template <typename P>
class Runtime {
 public:
  using Message = typename P::Message;
  /// Builds the protocol instance against the runtime's Env and metrics
  /// registry (wire options.probe.metrics at the registry to get per-node
  /// protocol metrics).  Called once, from the constructor, before the
  /// loop thread exists.
  using Factory =
      std::function<std::unique_ptr<P>(consensus::Env<Message>&, obs::MetricsRegistry&)>;

  /// Binds the listener immediately (`listen.port == 0` picks an ephemeral
  /// port, readable via endpoint() right away); I/O starts with start().
  /// With options.storage set, any WAL found in the directory is replayed
  /// into the freshly built protocol before this constructor returns, so
  /// the node rejoins with its pre-crash promises and votes.
  Runtime(consensus::ProcessId self, int cluster_size, transport::Endpoint listen,
          Factory factory, RuntimeOptions options = {})
      : self_(self),
        n_(cluster_size),
        listen_ep_(std::move(listen)),
        options_(std::move(options)),
        env_(*this) {
    listen_fd_ = transport::bind_listener(listen_ep_);
    loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
    serve_us_ = &metrics_.log_histogram("node.serve_us");
    deliver_us_ = &metrics_.log_histogram("node.deliver_us");
    wal_sync_us_ = &metrics_.log_histogram("wal.sync_us");
    request_hop_us_ = &metrics_.log_histogram("node.request_hop_us");
    if (options_.storage.group_commit_us > 0)
      barrier_records_ = &metrics_.log_histogram("wal.barrier_records");
    stats_.outbox_bytes = &metrics_.log_histogram("link.outbox_bytes");
    stats_.pending_frames = &metrics_.log_histogram("link.pending_frames");
    loop_.set_probe(transport::LoopProbe{
        .poll_us = &metrics_.log_histogram("loop.poll_us"),
        .work_us = &metrics_.log_histogram("loop.work_us"),
        .timer_depth = &metrics_.log_histogram("loop.timer_depth"),
        .posted_depth = &metrics_.log_histogram("loop.posted_depth")});
    flight_ = options_.flight;
    proc_ = factory(env_, metrics_);
    wire_callbacks();
    if constexpr (HasLeaderOf<P>) {
      if (options_.failover.enabled) {
        // The detector's elected leader overrides the factory's static
        // leader_of: ballot ownership follows the lowest live member.
        proc_->set_leader_of(
            [this] { return leader_.load(std::memory_order_relaxed); });
      }
    }
    init_storage();
    if constexpr (Reconfigurable<P>) {
      // Recovery may have replayed config changes; publish the recovered
      // membership for cross-thread readers before any I/O exists.
      const std::lock_guard<std::mutex> lock(state_mu_);
      members_ = proc_->members();
      config_version_ = proc_->config_version();
    }
    if (options_.chaos.enabled()) chaos_.emplace(options_.chaos, self_);
  }

  ~Runtime() { stop(); }
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] const transport::Endpoint& endpoint() const noexcept { return listen_ep_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return listen_ep_.port; }
  [[nodiscard]] consensus::ProcessId self() const noexcept { return self_; }

  /// Dials every peer and spawns the loop thread.  `peers[i]` is replica
  /// i's listen endpoint; `peers[self]` is ignored.  `peers` may be
  /// shorter than the recovered cluster size: endpoints of replicas that
  /// joined via a logged config change were learned during recovery and
  /// fill the tail.
  void start(std::vector<transport::Endpoint> peers) {
    peers_ = std::move(peers);
    if (static_cast<int>(peers_.size()) < n_) peers_.resize(static_cast<std::size_t>(n_));
    for (const auto& [id, ep] : learned_endpoints_)
      if (id >= 0 && id < n_ && peers_[static_cast<std::size_t>(id)].port == 0)
        peers_[static_cast<std::size_t>(id)] = ep;
    links_.resize(static_cast<std::size_t>(n_));
    for (consensus::ProcessId p = 0; p < n_; ++p) {
      if (p == self_ || removed_.contains(p)) continue;
      if (peers_[static_cast<std::size_t>(p)].port == 0) continue;  // endpoint unknown
      dial_peer(p);
    }
    arm_stats_timer();  // pre-thread timer scheduling is safe: loop not running yet
    arm_failover_timer();
    arm_catchup_timer();
    thread_ = std::thread([this] { loop_.run(); });
  }

  /// Stops the loop, joins the thread and folds the transport counters
  /// into the metrics registry.  Idempotent.
  void stop() {
    if (thread_.joinable()) {
      loop_.request_stop();
      thread_.join();
      export_transport_metrics();
    }
    // Tear connections down after the join: loop-thread objects are only
    // safe to touch once the loop thread is gone.
    for (auto& link : links_)
      if (link) link->shutdown();
    inbound_.clear();
    inbound_peer_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  /// Injects a local proposal, as the simulator's proposal schedule would.
  /// Thread-safe (hops onto the loop thread).
  void propose(consensus::Value v) {
    loop_.post([this, v] {
      with_wal([&] {
        ensure_started();
        if constexpr (RsmLike<P>) {
          proc_->submit(v.get());
        } else {
          if (proposed_) return;  // one proposal per process, as in the task model
          proposed_ = true;
          proc_->propose(v);
        }
      });
    });
  }

  /// Submits a membership change into the replicated log (Reconfigurable
  /// protocols only).  Fire-and-forget: the change is decided like any
  /// command and observable through members()/config_version() once
  /// applied.  Thread-safe (hops onto the loop thread).
  void propose_config(rsm::ConfigChange change) {
    if constexpr (Reconfigurable<P>) {
      loop_.post([this, change = std::move(change)] {
        with_wal([&] {
          ensure_started();
          proc_->submit_config(change);
        });
      });
    }
  }

  /// Members of the last applied configuration (Reconfigurable protocols;
  /// 0..n-1 otherwise).  Thread-safe.
  [[nodiscard]] std::vector<consensus::ProcessId> members() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    if (!members_.empty()) return members_;
    std::vector<consensus::ProcessId> all;
    for (consensus::ProcessId p = 0; p < n_; ++p) all.push_back(p);
    return all;
  }

  /// Version of the last applied configuration (0 = genesis).  Thread-safe.
  [[nodiscard]] std::int32_t config_version() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return config_version_;
  }

  /// The failure detector's elected leader (0 until the detector runs).
  [[nodiscard]] consensus::ProcessId leader() const noexcept {
    return leader_.load(std::memory_order_relaxed);
  }

  // --- cross-thread snapshots ---

  [[nodiscard]] bool has_decided() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return !decided_.is_bottom();
  }
  [[nodiscard]] consensus::Value decided_value() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return decided_;
  }
  /// RSM only: (slot, command) pairs applied so far, in log order.
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::int64_t>> applied_log() const {
    const std::lock_guard<std::mutex> lock(state_mu_);
    return applied_;
  }
  /// Number of peers our outbound links currently reach.
  [[nodiscard]] int connected_out() const {
    int count = 0;
    for (const auto& link : links_)
      if (link && link->connected()) ++count;
    return count;
  }
  /// Number of distinct peers with an inbound (Hello-identified) connection
  /// to us.  A mesh is only usable when both directions are up: our dials
  /// may succeed while the peers' dials to us are still blackholed.
  [[nodiscard]] int connected_in() const noexcept {
    return inbound_count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const transport::TransportStats& stats() const noexcept { return stats_; }

  /// Last periodic stats document (see RuntimeOptions::stats_interval_ms);
  /// empty before the first snapshot timer fires.  Thread-safe.
  [[nodiscard]] std::string latest_stats() const {
    const std::lock_guard<std::mutex> lock(stats_json_mu_);
    return latest_stats_json_;
  }

  /// The hosted protocol.  Only safe before start() or after stop().
  [[nodiscard]] P& unsafe_process() noexcept { return *proc_; }

 private:
  /// The Env implementation protocols see.  Loop-thread only.
  class LiveEnv final : public consensus::Env<Message> {
   public:
    explicit LiveEnv(Runtime& rt) : rt_(rt) {}
    [[nodiscard]] consensus::ProcessId self() const override { return rt_.self_; }
    [[nodiscard]] int cluster_size() const override { return rt_.n_; }
    [[nodiscard]] sim::Tick now() const override { return rt_.loop_.now_us(); }
    void send(consensus::ProcessId to, const Message& msg) override { rt_.send_msg(to, msg); }
    consensus::TimerId set_timer(sim::Tick delay) override {
      const std::uint64_t env_id = rt_.next_env_timer_++;
      const std::uint64_t loop_id = rt_.loop_.schedule_after(delay, [this, env_id] {
        rt_.env_timers_.erase(env_id);
        rt_.with_wal([&] { rt_.proc_->on_timer(consensus::TimerId{env_id}); });
      });
      rt_.env_timers_.emplace(env_id, loop_id);
      return consensus::TimerId{env_id};
    }
    void cancel_timer(consensus::TimerId id) override {
      const auto it = rt_.env_timers_.find(id.value);
      if (it == rt_.env_timers_.end()) return;
      rt_.loop_.cancel_timer(it->second);
      rt_.env_timers_.erase(it);
    }

   private:
    Runtime& rt_;
  };

  struct OutstandingRequest {
    std::weak_ptr<transport::Connection> conn;
    std::int64_t request_id = 0;
    std::int64_t received_us = 0;
    std::int64_t client_id = 0;
    obs::TraceContext trace;          ///< client's wire context (inactive = untraced)
    std::uint64_t serve_span = 0;     ///< open "serve" span, closed by reply()
    std::int64_t serve_start_us = 0;  ///< raw-clock timestamp that span opened at
  };

  /// Per-client idempotency record: a failover client resends its current
  /// request under the same (client_id, request_id); answering from here —
  /// or re-attaching the new connection to the in-flight command — keeps
  /// retries from being executed twice by THIS node.  The table is
  /// volatile: a proxy that crashes mid-request may re-execute the retry,
  /// so cross-restart client semantics are at-least-once (the RSM log can
  /// hold a command twice; agreement and prefix consistency still hold).
  struct ClientDedup {
    std::int64_t last_id = 0;  ///< highest request id seen from this client
    std::int64_t cmd = 0;      ///< RSM: in-flight command of last_id
    bool done = false;
    codec::ClientReply reply;  ///< cached answer, valid when done
  };

  /// A protocol message parked behind a group-commit barrier, with the
  /// trace context of the entry that produced it.
  struct HeldSend {
    consensus::ProcessId to;
    Message msg;
    obs::TraceContext ctx;
  };

  /// A client reply parked behind a group-commit barrier: under group
  /// commit the proxy's own vote may be part of the deciding quorum and
  /// not yet durable, so acks wait for the barrier too (persist-before-ack).
  struct HeldReply {
    OutstandingRequest req;
    codec::ClientReply msg;
  };

  /// Held sends + replies beyond this force an immediate barrier, bounding
  /// both memory and the latency a deep batch can hide behind the timer.
  static constexpr std::size_t kMaxHeldMessages = 512;

  void wire_callbacks() {
    if constexpr (RsmLike<P>) {
      proc_->on_apply = [this](std::int32_t slot, std::int64_t cmd) {
        const std::lock_guard<std::mutex> lock(state_mu_);
        applied_.emplace_back(slot, cmd);
      };
      proc_->on_commit = [this](std::int64_t cmd, sim::Tick submitted_at, std::int32_t slot) {
        const auto it = outstanding_rsm_.find(cmd);
        if (it == outstanding_rsm_.end()) return;
        const codec::ClientReply answer{it->second.request_id, cmd, slot, true};
        if (it->second.client_id != 0) {
          ClientDedup& d = dedup_[it->second.client_id];
          if (d.last_id == it->second.request_id) {
            d.done = true;
            d.reply = answer;
          }
        }
        reply(it->second, answer);
        outstanding_rsm_.erase(it);
        (void)submitted_at;
      };
      if constexpr (Reconfigurable<P>) {
        proc_->on_config = [this](std::int32_t slot, const rsm::ConfigChange& change,
                                  const rsm::ConfigEpoch& epoch) {
          handle_config_applied(slot, change, epoch);
        };
      }
    } else {
      proc_->on_decide = [this](consensus::Value v) {
        {
          const std::lock_guard<std::mutex> lock(state_mu_);
          decided_ = v;
        }
        for (OutstandingRequest& req : outstanding_) {
          const codec::ClientReply answer{req.request_id, v.get(), -1, true};
          if (req.client_id != 0) {
            ClientDedup& d = dedup_[req.client_id];
            if (d.last_id == req.request_id) {
              d.done = true;
              d.reply = answer;
            }
          }
          reply(req, answer);
        }
        outstanding_.clear();
      };
    }
  }

  void ensure_started() {
    if (proto_started_) return;
    proto_started_ = true;
    proc_->start();
  }

  /// Creates, wires and starts the outbound link to `p` (loop thread, or
  /// pre-thread from start()).  Idempotent: an existing link is kept.
  void dial_peer(consensus::ProcessId p) {
    const auto idx = static_cast<std::size_t>(p);
    if (p == self_ || p < 0 || idx >= links_.size() || links_[idx]) return;
    links_[idx] = std::make_unique<transport::PeerLink>(loop_, self_, p, peers_[idx], &stats_);
    if (chaos_) links_[idx]->set_chaos(&*chaos_);
    if constexpr (HasDecideResend<P> || storage::kHasSnapshot<P>)
      links_[idx]->set_on_connected([this, p] {
        // Offer before the Decide resend: a peer behind our compaction
        // floor cannot be healed by Decides alone (slots below the floor
        // no longer exist here), it needs the snapshot.
        offer_snapshot_to(p);
        resend_decided_to(p);
      });
    links_[idx]->start();
  }

  // ---- membership reconfiguration (loop thread; also pre-thread during
  // WAL replay / snapshot recovery in the constructor) ----

  /// Reaction to an applied config change, fired by the protocol's
  /// on_config hook: adopt the new membership, dial a joiner / retire a
  /// removed replica's link, and re-checkpoint so the next snapshot offer
  /// carries the config-bearing state a joiner needs.
  void handle_config_applied(std::int32_t slot, const rsm::ConfigChange& change,
                             const rsm::ConfigEpoch& epoch) {
    {
      const std::lock_guard<std::mutex> lock(state_mu_);
      members_ = epoch.members;
      config_version_ = epoch.version;
    }
    if (change.op == rsm::ConfigChange::Op::kAdd) {
      metrics_.counter("config.adds_applied").add();
      removed_.erase(change.replica);
      learned_endpoints_[change.replica] =
          transport::Endpoint{change.host, change.port};
      if (epoch.universe > n_) n_ = epoch.universe;
      if (!links_.empty()) {  // start() already ran: grow + dial at runtime
        links_.resize(static_cast<std::size_t>(n_));
        peers_.resize(static_cast<std::size_t>(n_));
        if (change.replica != self_) {
          peers_[static_cast<std::size_t>(change.replica)] =
              transport::Endpoint{change.host, change.port};
          dial_peer(change.replica);
        }
        // Checkpoint as soon as the current protocol entry unwinds: the
        // joiner is healed by snapshot state transfer, and only a snapshot
        // taken from post-change state carries the epoch it must adopt.
        if (engine_) loop_.post([this] {
          if (engine_) take_snapshot();
        });
      }
    } else {
      metrics_.counter("config.removes_applied").add();
      removed_.insert(change.replica);
      const auto idx = static_cast<std::size_t>(change.replica);
      if (change.replica != self_ && idx < links_.size() && links_[idx]) {
        links_[idx]->shutdown();  // treat-as-crashed: stop talking to it
        links_[idx].reset();
      }
      peer_health_.erase(change.replica);
    }
    recompute_leader();
    (void)slot;
  }

  // ---- failure detection & leader election (loop thread only) ----

  /// Per-peer liveness record.  The suspicion timeout is drawn jittered
  /// from a per-peer Backoff; every FALSE suspicion (peer heard again
  /// after we suspected it) widens the next draw, so a slow-but-alive
  /// peer stops flapping the leadership.
  struct PeerHealth {
    std::int64_t last_heard_us = 0;
    std::int64_t timeout_us = 0;
    bool suspected = false;
    util::Backoff backoff;
    PeerHealth(std::int64_t now_us, util::Backoff b)
        : last_heard_us(now_us), backoff(std::move(b)) {
      timeout_us = backoff.next();
    }
  };

  [[nodiscard]] bool failover_on() const noexcept { return options_.failover.enabled; }

  PeerHealth& health_of(consensus::ProcessId p) {
    auto it = peer_health_.find(p);
    if (it == peer_health_.end()) {
      it = peer_health_
               .emplace(p, PeerHealth{loop_.now_us(),
                                      util::Backoff{options_.failover.timeout_min_us,
                                                    options_.failover.timeout_max_us,
                                                    util::splitmix64(options_.failover.seed,
                                                                     static_cast<std::uint64_t>(
                                                                         (self_ << 16) ^ p))}})
               .first;
    }
    return it->second;
  }

  /// Any authenticated inbound traffic from `p` counts as life, not just
  /// heartbeats — a peer pushing slot traffic is evidently up.
  void note_alive(consensus::ProcessId p) {
    if (!failover_on() || p == self_) return;
    PeerHealth& h = health_of(p);
    h.last_heard_us = loop_.now_us();
    if (h.suspected) {
      h.suspected = false;
      h.timeout_us = h.backoff.next();  // false suspicion: widen the next one
      metrics_.counter("failover.false_suspicions").add();
      recompute_leader();
    }
  }

  /// The current member universe as the detector sees it: the applied
  /// configuration's members for Reconfigurable protocols, 0..n-1 minus
  /// removed otherwise.
  [[nodiscard]] std::vector<consensus::ProcessId> detector_members() const {
    if constexpr (Reconfigurable<P>) {
      return proc_->members();
    } else {
      std::vector<consensus::ProcessId> all;
      for (consensus::ProcessId p = 0; p < n_; ++p)
        if (!removed_.contains(p)) all.push_back(p);
      return all;
    }
  }

  void arm_failover_timer() {
    if (!failover_on()) return;
    loop_.schedule_after(options_.failover.period_us, [this] {
      failover_tick();
      arm_failover_timer();
    });
  }

  void failover_tick() {
    const std::int64_t now = loop_.now_us();
    const std::vector<consensus::ProcessId> members = detector_members();
    std::int32_t version = 0;
    if constexpr (Reconfigurable<P>) version = proc_->config_version();
    const std::vector<std::uint8_t> hb =
        codec::encode(codec::Heartbeat{self_, version});
    for (const consensus::ProcessId m : members) {
      if (m == self_) continue;
      const auto idx = static_cast<std::size_t>(m);
      if (idx < links_.size() && links_[idx])
        links_[idx]->send_frame(transport::FrameKind::kHeartbeat, hb);
      PeerHealth& h = health_of(m);
      if (!h.suspected && now - h.last_heard_us > h.timeout_us) {
        h.suspected = true;
        metrics_.counter("failover.suspicions").add();
      }
    }
    recompute_leader();
  }

  /// Elects the lowest unsuspected member and rebinds ballot ownership
  /// through the leader_ atomic.  On winning the election ourselves,
  /// broadcast a Handover so followers converge without waiting out their
  /// own timeouts; the undecided slots are re-proposed by the protocol's
  /// ballot timers once leader_of reports us.
  void recompute_leader() {
    if (!failover_on()) return;
    consensus::ProcessId elected = -1;
    for (const consensus::ProcessId m : detector_members()) {
      // A member never heard from at all gets its entry (and grace period)
      // on the next tick; only an explicit suspicion disqualifies it here.
      const auto it = peer_health_.find(m);
      const bool suspected = m != self_ && it != peer_health_.end() && it->second.suspected;
      if (!suspected && (elected < 0 || m < elected)) elected = m;
    }
    if (elected < 0) elected = self_;  // everyone suspected: claim it ourselves
    const consensus::ProcessId previous = leader_.load(std::memory_order_relaxed);
    if (elected == previous) return;
    leader_.store(elected, std::memory_order_relaxed);
    metrics_.counter("failover.leader_changes").add();
    if (elected == self_) {
      metrics_.counter("failover.handovers_sent").add();
      std::int32_t version = 0;
      if constexpr (Reconfigurable<P>) version = proc_->config_version();
      const std::vector<std::uint8_t> frame =
          codec::encode(codec::Handover{self_, version});
      for (const consensus::ProcessId m : detector_members()) {
        if (m == self_) continue;
        const auto idx = static_cast<std::size_t>(m);
        if (idx < links_.size() && links_[idx])
          links_[idx]->send_frame(transport::FrameKind::kHandover, frame);
      }
    }
  }

  /// A Handover from `from` claims every member below it is gone.  Adopt
  /// the claim for members we cannot vouch for ourselves (not heard within
  /// their timeout's recent past): this converges followers onto the new
  /// leader in one message instead of one timeout each.  A wrong claim
  /// self-heals — the live lower member's next heartbeat unsuspects it.
  void handle_handover(consensus::ProcessId from) {
    if (!failover_on() || from == self_) return;
    note_alive(from);
    const std::int64_t now = loop_.now_us();
    for (const consensus::ProcessId m : detector_members()) {
      if (m >= from || m == self_) continue;
      PeerHealth& h = health_of(m);
      if (!h.suspected && now - h.last_heard_us > options_.failover.period_us) {
        h.suspected = true;
        metrics_.counter("failover.suspicions_by_handover").add();
      }
    }
    recompute_leader();
  }

  /// Opens the storage engine and recovers: install the snapshot (if any),
  /// then replay the WAL tail on top.  Runs in the constructor, after the
  /// protocol is built and its callbacks are wired (so a replayed apply
  /// rebuilds the cross-thread log snapshot) but before any I/O exists —
  /// recovery completes without a single message.
  void init_storage() {
    if (!options_.storage.enabled()) return;
    if constexpr (!storage::kHasDurable<P>) {
      throw std::invalid_argument("Runtime: protocol has no storage::Durable support");
    } else {
      if (options_.storage.snapshot_every > 0 && !storage::kHasSnapshot<P>)
        throw std::invalid_argument("Runtime: protocol has no storage::Snapshotable support");
      storage::EngineOptions engine_options;
      engine_options.fsync = options_.storage.fsync;
      engine_options.segment_bytes = options_.storage.wal_segment_bytes;
      engine_options.snapshot_every = options_.storage.snapshot_every;
      engine_.emplace(options_.storage.dir + "/replica-" + std::to_string(self_),
                      std::move(engine_options));
      wal_ = &engine_->wal();
      bool recovered_snapshot = false;
      if (engine_->snapshot()) {
        if (install_snapshot_payload(engine_->snapshot()->payload)) {
          recovered_snapshot = true;
          metrics_.counter("snapshot.recovered").add();
          if constexpr (requires { proc_->compact_floor(); })
            snapshot_floor_ = proc_->compact_floor();
        } else {
          // Undecodable payload behind a valid CRC frame: same fallback as
          // a corrupt file — the WAL tail is every surviving record.
          metrics_.counter("snapshot.corrupt").add();
        }
      } else if (engine_->snapshot_corrupt()) {
        metrics_.counter("snapshot.corrupt").add();
      }
      const auto tail = engine_->tail();
      if (!recovered_snapshot && tail.empty()) return;
      for (const auto& record : tail) durable_.replay(*proc_, record.bytes);
      durable_.note_recovery(*proc_, metrics_);
      metrics_.counter("wal.recovered_records").add(tail.size());
      metrics_.counter("wal.truncated_bytes").add(wal_->truncated_bytes());
      metrics_.counter("wal.truncated_records").add(wal_->truncated_records());
      if constexpr (!RsmLike<P>) {
        if (proc_->has_decided()) {
          const std::lock_guard<std::mutex> lock(state_mu_);
          decided_ = proc_->decided_value();
        }
      }
      // Resume liveness: re-arm the ballot timers for whatever is undecided.
      // (Timer scheduling pre-thread is safe — the loop is not running yet.)
      ensure_started();
    }
  }

  /// Wraps one protocol entry point under the write-ahead discipline:
  /// outgoing messages are buffered while `fn` runs, the changed acceptor
  /// state is appended + synced, and only then do the messages go out.  A
  /// crash between the state change and the sync thus loses state *nobody
  /// has seen* — the torn tail the WAL truncates on restart.  Client
  /// replies bypass the buffer deliberately: a reply reports a decision,
  /// and decisions rest on the already-durable votes of a quorum, not on
  /// this node's volatile memory.
  ///
  /// Group commit (options_.group_commit_us > 0) relaxes *when* the sync
  /// happens but not the ordering: the entry's records are appended, its
  /// messages (and any client replies it produced) are moved to the held
  /// queues, and a barrier timer fires one fdatasync for every entry
  /// appended since the last barrier, releasing all held traffic at once.
  /// No message ever leaves while a record it could reveal is unsynced.
  template <typename Fn>
  void with_wal(Fn&& fn) {
    if (!wal_ || entry_active_) {
      fn();
      return;
    }
    entry_active_ = true;
    fn();
    if (options_.storage.group_commit_us > 0) {
      durable_.capture(*proc_, *wal_);  // append only; the barrier syncs
      entry_active_ = false;
      if (wal_->has_pending()) {
        for (auto& [to, msg] : buffered_sends_)
          held_sends_.push_back(HeldSend{to, std::move(msg), out_ctx_});
        buffered_sends_.clear();
        arm_barrier();
        if (held_sends_.size() + held_replies_.size() >= kMaxHeldMessages) run_barrier();
      } else {
        // Entry changed nothing durable and nothing older is unsynced:
        // release immediately, exactly as the per-entry path would.
        flush_buffered_sends();
        flush_held_replies();
      }
      return;
    }
    const std::int64_t sync_start_us = obs::FlightRecorder::now_us();
    if (durable_.capture(*proc_, *wal_)) {
      wal_->sync();
      const std::int64_t sync_end_us = obs::FlightRecorder::now_us();
      wal_sync_us_->record(sync_end_us - sync_start_us);
      if (flight_ && out_ctx_.active())
        flight_->record({out_ctx_.trace_id, flight_->next_span_id(), out_ctx_.parent_span,
                         "wal.fsync", sync_start_us, sync_end_us - sync_start_us, 0});
    }
    entry_active_ = false;
    flush_buffered_sends();
    maybe_snapshot();
  }

  void flush_buffered_sends() {
    std::vector<std::pair<consensus::ProcessId, Message>> out;
    out.swap(buffered_sends_);
    for (auto& [to, msg] : out) raw_send(to, msg);
  }

  void flush_held_replies() {
    std::vector<HeldReply> replies;
    replies.swap(held_replies_);
    for (auto& r : replies) send_reply_now(r.req, r.msg);
  }

  /// Arms the group-commit barrier timer if none is pending.
  void arm_barrier() {
    if (barrier_timer_ != 0) return;
    barrier_timer_ = loop_.schedule_after(options_.storage.group_commit_us, [this] {
      barrier_timer_ = 0;
      run_barrier();
    });
  }

  /// The group-commit barrier: one fdatasync covering every record
  /// appended since the last barrier, then release the held protocol
  /// messages and, last, the client replies acknowledging them.
  void run_barrier() {
    if (barrier_timer_ != 0) {
      loop_.cancel_timer(barrier_timer_);
      barrier_timer_ = 0;
    }
    if (wal_ && wal_->has_pending()) {
      if (barrier_records_)
        barrier_records_->record(static_cast<std::int64_t>(wal_->pending_records()));
      const std::int64_t sync_start_us = obs::FlightRecorder::now_us();
      wal_->sync();
      wal_sync_us_->record(obs::FlightRecorder::now_us() - sync_start_us);
      metrics_.counter("wal.barriers").add();
    }
    std::vector<HeldSend> sends;
    sends.swap(held_sends_);
    const obs::TraceContext saved_ctx = out_ctx_;
    for (auto& h : sends) {
      out_ctx_ = h.ctx;  // each held send keeps the trace of its entry
      raw_send(h.to, h.msg);
    }
    out_ctx_ = saved_ctx;
    flush_held_replies();
    maybe_snapshot();
  }

  void send_msg(consensus::ProcessId to, const Message& msg) {
    if (entry_active_) {
      buffered_sends_.emplace_back(to, msg);
      return;
    }
    raw_send(to, msg);
  }

  void raw_send(consensus::ProcessId to, const Message& msg) {
    if (to == self_) {
      // Queue through the loop so self-delivery is never reentrant — the
      // simulator likewise delivers self-sends as later events.  The trace
      // context rides the lambda so the causal chain survives the hop.
      loop_.post([this, msg, ctx = out_ctx_] { deliver(self_, msg, ctx); });
      return;
    }
    if (to < 0 || to >= n_ || links_.empty()) return;
    auto& link = links_[static_cast<std::size_t>(to)];
    if (!link) return;
    const transport::FrameKind kind = WireTraits<Message>::kind_of(msg);
    if (out_ctx_.active()) {
      // Wrap the protocol frame so the receiver can parent its handling
      // span on ours; untraced sends keep the bare frame (and its cost).
      const codec::TracedFrame traced{static_cast<std::uint8_t>(kind), out_ctx_,
                                      WireTraits<Message>::encode(msg)};
      link->send_frame(transport::FrameKind::kTraced, codec::encode(traced));
    } else {
      link->send_frame(kind, WireTraits<Message>::encode(msg));
    }
  }

  /// Runs the protocol's message handler under the WAL discipline.  With an
  /// active trace context the handling becomes a span (named after the
  /// message type, parented on the sender's span) and every send it causes
  /// — immediate or WAL-buffered — carries that span as the new parent.
  void deliver(consensus::ProcessId from, const Message& msg,
               const obs::TraceContext& ctx = {}) {
    const obs::TraceContext saved_ctx = out_ctx_;
    std::uint64_t span = 0;
    std::int64_t span_start_us = 0;
    if (flight_ && ctx.active()) {
      span = flight_->next_span_id();
      span_start_us = obs::FlightRecorder::now_us();
      out_ctx_ = obs::TraceContext{ctx.trace_id, span, ctx.origin_us};
    } else {
      out_ctx_ = {};
    }
    const std::int64_t t0 = loop_.now_us();
    with_wal([&] {
      ensure_started();
      proc_->on_message(from, msg);
    });
    deliver_us_->record(loop_.now_us() - t0);
    if (span != 0)
      flight_->record({ctx.trace_id, span, ctx.parent_span, obs::message_label(msg),
                       span_start_us, obs::FlightRecorder::now_us() - span_start_us,
                       static_cast<std::int64_t>(from)});
    out_ctx_ = saved_ctx;
  }

  void on_accept() {
    for (;;) {
      const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (cfd < 0) return;  // EAGAIN or transient error; epoll re-notifies
      auto conn = std::make_shared<transport::Connection>(loop_, cfd, &stats_);
      inbound_.insert(conn);
      std::weak_ptr<transport::Connection> weak = conn;
      conn->start(
          [this, weak](transport::Frame&& frame) {
            if (auto c = weak.lock()) on_inbound_frame(c, std::move(frame));
          },
          [this, weak] {
            if (auto c = weak.lock()) {
              inbound_peer_.erase(c.get());
              inbound_.erase(c);
              refresh_inbound_count();
            }
          });
    }
  }

  void on_inbound_frame(const std::shared_ptr<transport::Connection>& conn,
                        transport::Frame&& frame) {
    switch (frame.kind) {
      case transport::FrameKind::kHello: {
        const auto peer = transport::decode_hello(frame.payload);
        // Ids beyond n_ are accepted (bounded): a joining replica dials
        // the existing cluster before the config change admitting it is
        // applied here, and closing its connection would force it into a
        // redial loop for no safety gain — its protocol frames are gated
        // by the per-slot config stamp regardless.
        if (!peer || *peer < 0 || *peer >= kMaxPeerId) {
          conn->close();
          inbound_peer_.erase(conn.get());
          inbound_.erase(conn);
          refresh_inbound_count();
          return;
        }
        inbound_peer_[conn.get()] = *peer;
        refresh_inbound_count();
        return;
      }
      case transport::FrameKind::kHeartbeat: {
        const auto it = inbound_peer_.find(conn.get());
        if (it == inbound_peer_.end()) return;  // failure detection is peer-only
        const auto hb = codec::decode_heartbeat(frame.payload);
        if (hb) note_alive(it->second);
        return;
      }
      case transport::FrameKind::kHandover: {
        const auto it = inbound_peer_.find(conn.get());
        if (it == inbound_peer_.end()) return;
        const auto ho = codec::decode_handover(frame.payload);
        if (ho) handle_handover(it->second);
        return;
      }
      case transport::FrameKind::kCatchup: {
        const auto it = inbound_peer_.find(conn.get());
        if (it == inbound_peer_.end()) return;  // anti-entropy is peer-only
        const auto cu = codec::decode_catchup(frame.payload);
        if (cu) handle_catchup(it->second, cu->applied);
        return;
      }
      case transport::FrameKind::kConfigCmd: {
        // Membership administration: Hello-less like kStatsRequest (the
        // CLI's join/leave verbs connect as clients), acknowledged through
        // the same on_commit path as client commands once the change
        // decides.
        const auto cmd = codec::decode_config_command(frame.payload);
        if (cmd) handle_config_command(conn, *cmd);
        return;
      }
      case transport::FrameKind::kClientRequest: {
        const auto req = codec::decode_client_request(frame.payload);
        if (req) handle_client_request(conn, *req);
        return;
      }
      case transport::FrameKind::kStatsRequest: {
        // Observability scrape: no Hello needed (clients and tools ask),
        // read-only, answered synchronously on the loop thread.
        const auto scrape = codec::decode_stats_request(frame.payload);
        if (!scrape) return;
        conn->send_frame(transport::FrameKind::kStatsReply,
                         codec::encode(codec::StatsReply{scrape->id, build_stats_json()}));
        return;
      }
      case transport::FrameKind::kTraced: {
        const auto traced = codec::decode_traced(frame.payload);
        if (!traced) return;
        const auto inner_kind = static_cast<transport::FrameKind>(traced->inner_kind);
        if (!WireTraits<Message>::accepts(inner_kind))
          return;  // traced frame for a protocol we don't host
        const auto sender = inbound_peer_.find(conn.get());
        if (sender == inbound_peer_.end()) return;  // same Hello gate as bare frames
        note_alive(sender->second);
        auto inner = WireTraits<Message>::decode(inner_kind, traced->inner);
        if (!inner) return;
        deliver(sender->second, *inner, traced->trace);
        return;
      }
      case transport::FrameKind::kSnapshotOffer: {
        if constexpr (storage::kHasSnapshot<P>) {
          const auto it = inbound_peer_.find(conn.get());
          if (it == inbound_peer_.end()) return;  // snapshot frames are peer-only
          const auto offer = codec::decode_snapshot_offer(frame.payload);
          if (offer) handle_snapshot_offer(it->second, *offer);
        }
        return;
      }
      case transport::FrameKind::kSnapshotRequest: {
        if constexpr (storage::kHasSnapshot<P>) {
          const auto it = inbound_peer_.find(conn.get());
          if (it == inbound_peer_.end()) return;
          const auto req = codec::decode_snapshot_request(frame.payload);
          if (req) handle_snapshot_request(it->second, *req);
        }
        return;
      }
      case transport::FrameKind::kSnapshotChunk: {
        if constexpr (storage::kHasSnapshot<P>) {
          const auto it = inbound_peer_.find(conn.get());
          if (it == inbound_peer_.end()) return;
          auto chunk = codec::decode_snapshot_chunk(frame.payload);
          if (chunk) handle_snapshot_chunk(it->second, std::move(*chunk));
        }
        return;
      }
      default:
        break;
    }
    if (!WireTraits<Message>::accepts(frame.kind)) return;  // not ours; drop
    const auto it = inbound_peer_.find(conn.get());
    if (it == inbound_peer_.end()) return;  // protocol frame before Hello
    note_alive(it->second);
    auto msg = WireTraits<Message>::decode(frame.kind, frame.payload);
    if (!msg) return;  // malformed payload inside a well-formed frame
    deliver(it->second, *msg);
  }

  void handle_client_request(const std::shared_ptr<transport::Connection>& conn,
                             const codec::ClientRequest& req) {
    OutstandingRequest out;
    out.conn = conn;
    out.request_id = req.id;
    out.received_us = loop_.now_us();
    out.client_id = req.client_id;
    if (req.trace.active()) {
      const std::int64_t arrival_us = obs::FlightRecorder::now_us();
      // The client stamped origin_us from the same raw monotonic clock (all
      // processes share one machine), so the difference is the wire hop.
      const std::int64_t hop_us = arrival_us - req.trace.origin_us;
      if (hop_us >= 0) request_hop_us_->record(hop_us);
      if (flight_) {
        out.trace = req.trace;
        out.serve_span = flight_->next_span_id();
        out.serve_start_us = arrival_us;
      }
    }
    // Failover dedup: a client that lost its connection resends the same
    // (client_id, id).  Answer completed requests from the cache, re-attach
    // the new connection to a still-in-flight one, and drop stale ids —
    // never submit the same request twice.
    if (req.client_id != 0) {
      const auto it = dedup_.find(req.client_id);
      if (it != dedup_.end()) {
        ClientDedup& d = it->second;
        if (req.id < d.last_id) return;  // stale retry of an old request
        if (req.id == d.last_id) {
          if (d.done) {
            codec::ClientReply cached = d.reply;
            cached.id = req.id;
            reply(out, cached);
            return;
          }
          metrics_.counter("node.dedup_reattach").add();
          if constexpr (RsmLike<P>) {
            const auto in_flight = outstanding_rsm_.find(d.cmd);
            if (in_flight != outstanding_rsm_.end()) in_flight->second = std::move(out);
          } else {
            for (OutstandingRequest& r : outstanding_)
              if (r.client_id == req.client_id && r.request_id == req.id) r = std::move(out);
          }
          return;
        }
      }
      ClientDedup& d = dedup_[req.client_id];
      d.last_id = req.id;
      d.done = false;
    }
    // Everything the protocol does on behalf of this request — including
    // the WAL-buffered sends flushed by with_wal — is parented on the
    // serve span.  Read the span fields now: `out` is moved below.
    const obs::TraceContext saved_ctx = out_ctx_;
    out_ctx_ = out.serve_span != 0
                   ? obs::TraceContext{out.trace.trace_id, out.serve_span, out.trace.origin_us}
                   : obs::TraceContext{};
    with_wal([&] {
      if constexpr (RsmLike<P>) {
        // The command encoding packs (proxy, payload) into 64 bits; RSMs
        // that reserve payload bits (batching handles) shrink the client
        // space further and advertise it through max_payload().
        std::int64_t payload_limit = (std::int64_t{1} << 40) - 1;
        if constexpr (requires(const P& p) {
                        { p.max_payload() } -> std::convertible_to<std::int64_t>;
                      })
          payload_limit = proc_->max_payload();
        if (req.payload < 0 || req.payload > payload_limit) {
          reply(out, codec::ClientReply{req.id, req.payload, -1, false});
          return;
        }
        ensure_started();
        const std::int64_t cmd = proc_->submit(req.payload);
        if (req.client_id != 0) dedup_[req.client_id].cmd = cmd;
        outstanding_rsm_.insert_or_assign(cmd, std::move(out));
      } else {
        ensure_started();
        {
          const std::lock_guard<std::mutex> lock(state_mu_);
          if (!decided_.is_bottom()) {
            reply(out, codec::ClientReply{req.id, decided_.get(), -1, true});
            return;
          }
        }
        outstanding_.push_back(std::move(out));
        if (!proposed_) {
          proposed_ = true;
          proc_->propose(consensus::Value{req.payload});
        }
      }
    });
    out_ctx_ = saved_ctx;
  }

  /// Sane ceiling on Hello-announced peer ids: large enough for any
  /// realistic reconfiguration history, small enough that a garbage Hello
  /// cannot make inbound_peer_ index bookkeeping pathological.
  static constexpr consensus::ProcessId kMaxPeerId = 1 << 16;

  /// A join/leave admin command: submit the change into the log and ack
  /// the requester when it decides, riding the client-reply machinery
  /// (reply.slot is the deciding slot, reply.value the internal command).
  void handle_config_command(const std::shared_ptr<transport::Connection>& conn,
                             const codec::ConfigCommand& cmd) {
    if constexpr (Reconfigurable<P>) {
      OutstandingRequest out;
      out.conn = conn;
      out.request_id = cmd.id;
      out.received_us = loop_.now_us();
      if (cmd.change.replica < 0 || cmd.change.replica >= kMaxPeerId) {
        reply(out, codec::ClientReply{cmd.id, 0, -1, false});
        return;
      }
      metrics_.counter("config.commands").add();
      with_wal([&] {
        ensure_started();
        const std::int64_t handle = proc_->submit_config(cmd.change);
        outstanding_rsm_.insert_or_assign(handle, std::move(out));
      });
    } else {
      OutstandingRequest out;
      out.conn = conn;
      out.request_id = cmd.id;
      out.received_us = loop_.now_us();
      reply(out, codec::ClientReply{cmd.id, 0, -1, false});  // not reconfigurable
    }
  }

  void reply(const OutstandingRequest& req, const codec::ClientReply& msg) {
    // Under group commit, park the ack behind the pending barrier: the
    // decision it reports may rest on this node's own not-yet-synced vote.
    if (options_.storage.group_commit_us > 0 && wal_ && (entry_active_ || wal_->has_pending())) {
      held_replies_.push_back(HeldReply{req, msg});
      return;
    }
    send_reply_now(req, msg);
  }

  void send_reply_now(const OutstandingRequest& req, const codec::ClientReply& msg) {
    const auto conn = req.conn.lock();
    if (!conn || conn->closed()) return;
    serve_us_->record(loop_.now_us() - req.received_us);
    if (req.serve_span != 0)  // nonzero only when flight_ is installed
      flight_->record({req.trace.trace_id, req.serve_span, req.trace.parent_span, "serve",
                       req.serve_start_us,
                       obs::FlightRecorder::now_us() - req.serve_start_us, req.request_id});
    conn->send_frame(transport::FrameKind::kClientReply, codec::encode(msg));
  }

  /// Decide anti-entropy, invoked by the peer link each time its outbound
  /// connection (re)establishes: a peer that was unreachable may have
  /// missed Decide broadcasts for good (the disconnected queue is bounded,
  /// and a non-leader's ballot timers cannot recover a slot whose leader
  /// already decided), so resend everything we know to be decided.  Pure
  /// retransmission of existing protocol messages — receivers that already
  /// decided ignore them.  Runs on the loop thread.
  void resend_decided_to(consensus::ProcessId peer) {
    if constexpr (HasDecideResend<P>) {
      const auto msgs = proc_->decide_messages();
      for (const auto& m : msgs) send_msg(peer, m);
      if (!msgs.empty()) metrics_.counter("node.decide_resent").add(msgs.size());
    }
  }

  /// True when P exposes the applied prefix the catch-up gossip compares.
  static constexpr bool kHasAppliedPrefix = requires(const P p) { p.applied_prefix(); };

  /// Periodic arm of anti-entropy.  Reconnect-triggered resends miss one
  /// failure shape: a Decide dropped by the network (chaos, or a real
  /// lossy path) on a connection that never re-establishes, after the
  /// sender's last checkpoint — no reconnect resend, no fresh snapshot
  /// offer, and a non-leader receiver has no ballot of its own to recover
  /// the slot with.  So each replica also gossips its applied prefix on a
  /// slow timer; any peer that is ahead answers with the same offer +
  /// resend pair the reconnect path uses.  First tick is skewed per
  /// replica so a cluster doesn't gossip in lockstep.
  void arm_catchup_timer() {
    if constexpr (kHasAppliedPrefix && (HasDecideResend<P> || storage::kHasSnapshot<P>)) {
      const std::int64_t period = options_.anti_entropy_period_us;
      if (period <= 0) return;
      const std::int64_t skew = static_cast<std::int64_t>(
          util::splitmix64(static_cast<std::uint64_t>(self_), 0x05e1f) %
          static_cast<std::uint64_t>(period));
      loop_.schedule_after(period + skew, [this] { catchup_tick(); });
    }
  }

  void catchup_tick() {
    if constexpr (kHasAppliedPrefix) {
      const std::int64_t applied = proc_->applied_prefix();
      const std::vector<std::uint8_t> frame =
          codec::encode(codec::Catchup{self_, applied < 0 ? 0 : applied});
      for (auto& link : links_)
        if (link) link->send_frame(transport::FrameKind::kCatchup, frame);
      metrics_.counter("node.catchup_sent").add();
      loop_.schedule_after(options_.anti_entropy_period_us, [this] { catchup_tick(); });
    }
  }

  void handle_catchup(consensus::ProcessId from, std::int64_t peer_applied) {
    if constexpr (kHasAppliedPrefix) {
      if (peer_applied >= static_cast<std::int64_t>(proc_->applied_prefix())) return;
      offer_snapshot_to(from);  // heals a laggard below our compaction floor
      resend_decided_to(from);  // heals the tail above it
      metrics_.counter("node.catchup_served").add();
    }
  }

  // ---- snapshots & snapshot state transfer (loop thread only) ----

  /// Chunk size for snapshot transfer: comfortably under the 1 MiB frame
  /// cap, large enough that a multi-megabyte snapshot moves in a handful
  /// of frames.
  static constexpr std::size_t kSnapshotChunkBytes = 256 * 1024;
  // A laggard re-requests from its received prefix until the transfer
  // completes (chunks can be lost to chaos or reconnects); the retry
  // cadence is the jittered exponential backoff configured by
  // StorageOptions::transfer_retry_{min,max}_us.

  /// Checkpoint trigger, checked after every durability barrier (both the
  /// per-entry sync and the group-commit barrier), which is the only time
  /// the WAL fully covers the in-memory state.
  void maybe_snapshot() {
    if constexpr (storage::kHasSnapshot<P>) {
      if (engine_ && !entry_active_ && engine_->snapshot_due()) take_snapshot();
    }
  }

  /// Captures, persists and compacts: build the payload, write it through
  /// the engine (rotate -> tmp -> rename -> truncate), drop the protocol
  /// state below the new floor, and offer the fresh snapshot to peers.
  void take_snapshot() {
    if constexpr (storage::kHasSnapshot<P>) {
      if (!engine_) return;
      const std::int64_t t0 = obs::FlightRecorder::now_us();
      const std::vector<std::uint8_t> payload = build_snapshot_payload();
      if constexpr (requires { proc_->applied_prefix(); })
        snapshot_floor_ = proc_->applied_prefix();
      const std::uint64_t dropped = engine_->write_snapshot(payload);
      if constexpr (requires {
                      proc_->compact_to(std::int32_t{});
                      durable_.compact(std::int32_t{});
                    }) {
        proc_->compact_to(static_cast<std::int32_t>(snapshot_floor_));
        durable_.compact(proc_->compact_floor());
      }
      metrics_.counter("snapshot.written").add();
      metrics_.counter("snapshot.bytes").add(payload.size());
      metrics_.counter("snapshot.write_us")
          .add(static_cast<std::uint64_t>(obs::FlightRecorder::now_us() - t0));
      metrics_.counter("wal.truncated_records").add(dropped);
      announce_snapshot();
    }
  }

  /// Snapshot payload layout (the opaque blob storage::Engine frames):
  ///   varint runtime-section version (1),
  ///   varint dedup count, then per client: client_id, last_id, done(u8),
  ///     cached reply {id, value, slot, ok(u8)},
  ///   length-prefixed protocol blob (storage::Snapshotable<P>).
  /// The dedup table rides along so a rejoining proxy keeps answering
  /// client retries idempotently instead of re-executing them.
  [[nodiscard]] std::vector<std::uint8_t> build_snapshot_payload() {
    codec::Writer w;
    w.put_i64(1);
    w.put_i64(static_cast<std::int64_t>(dedup_.size()));
    for (const auto& [client_id, d] : dedup_) {
      w.put_i64(client_id);
      w.put_i64(d.last_id);
      w.put_u8(d.done ? 1 : 0);
      w.put_i64(d.reply.id);
      w.put_i64(d.reply.value);
      w.put_i64(d.reply.slot);
      w.put_u8(d.reply.ok ? 1 : 0);
    }
    std::vector<std::uint8_t> blob;
    if constexpr (storage::kHasSnapshot<P>) blob = storage::Snapshotable<P>::capture(*proc_);
    w.put_string({reinterpret_cast<const char*>(blob.data()), blob.size()});
    return std::move(w).take();
  }

  /// Decodes and installs a payload (recovery and state transfer share
  /// this path).  Returns false — leaving the protocol untouched — on any
  /// framing/version error.  The dedup table is merged, never overwritten:
  /// local entries with newer request ids win.
  bool install_snapshot_payload(std::span<const std::uint8_t> payload) {
    if constexpr (!storage::kHasSnapshot<P>) {
      return false;
    } else {
      codec::Reader r{payload};
      if (r.get_i64() != 1 || !r.ok()) return false;
      const std::int64_t n = r.get_i64();
      if (!r.ok() || n < 0 || static_cast<std::uint64_t>(n) > payload.size()) return false;
      std::vector<std::pair<std::int64_t, ClientDedup>> dedup;
      dedup.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t client_id = r.get_i64();
        ClientDedup d;
        d.last_id = r.get_i64();
        d.done = r.get_u8() != 0;
        d.reply.id = r.get_i64();
        d.reply.value = r.get_i64();
        d.reply.slot = static_cast<std::int32_t>(r.get_i64());
        d.reply.ok = r.get_u8() != 0;
        dedup.emplace_back(client_id, d);
      }
      const std::string blob = r.get_string();
      if (!r.ok() || !r.exhausted()) return false;
      if (!storage::Snapshotable<P>::install(
              *proc_, {reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()}))
        return false;
      for (auto& [client_id, d] : dedup) {
        const auto it = dedup_.find(client_id);
        if (it == dedup_.end() || it->second.last_id < d.last_id) dedup_[client_id] = d;
      }
      return true;
    }
  }

  /// Sends our current snapshot offer to one peer (on link establishment
  /// and after every new snapshot).  A peer whose applied prefix is below
  /// the floor cannot be healed by Decide anti-entropy — the slots below
  /// the floor no longer exist here — so it answers with a request.
  void offer_snapshot_to(consensus::ProcessId peer) {
    if constexpr (storage::kHasSnapshot<P>) {
      if (!engine_ || !engine_->snapshot() || links_.empty()) return;
      if (peer < 0 || peer >= n_) return;
      auto& link = links_[static_cast<std::size_t>(peer)];
      if (!link) return;
      const codec::SnapshotOffer offer{
          snapshot_floor_, static_cast<std::int64_t>(engine_->snapshot()->payload.size())};
      link->send_frame(transport::FrameKind::kSnapshotOffer, codec::encode(offer));
      metrics_.counter("transfer.offers_sent").add();
    }
  }

  void announce_snapshot() {
    for (consensus::ProcessId p = 0; p < n_; ++p)
      if (p != self_) offer_snapshot_to(p);
  }

  void handle_snapshot_offer(consensus::ProcessId from, const codec::SnapshotOffer& offer) {
    if constexpr (storage::kHasSnapshot<P>) {
      if (offer.bytes <= 0) return;
      std::int64_t applied = 0;
      if constexpr (requires { proc_->applied_prefix(); }) applied = proc_->applied_prefix();
      if (offer.floor <= applied) return;  // we hold everything it summarizes
      if (transfer_) {
        if (offer.floor <= transfer_->floor) return;  // already fetching this or newer
        if (transfer_->retry_timer != 0) loop_.cancel_timer(transfer_->retry_timer);
        transfer_.reset();
      }
      transfer_.emplace();
      transfer_->floor = offer.floor;
      transfer_->total_bytes = offer.bytes;
      transfer_->from = from;
      transfer_->backoff.emplace(options_.storage.transfer_retry_min_us,
                                 options_.storage.transfer_retry_max_us,
                                 util::splitmix64(static_cast<std::uint64_t>(offer.floor),
                                                  static_cast<std::uint64_t>(self_)));
      metrics_.counter("transfer.requests").add();
      send_snapshot_request(from, offer.floor, 0);
      arm_transfer_retry();
    }
  }

  void send_snapshot_request(consensus::ProcessId peer, std::int64_t floor,
                             std::int64_t offset) {
    if (peer < 0 || peer >= n_ || links_.empty()) return;
    auto& link = links_[static_cast<std::size_t>(peer)];
    if (!link) return;
    link->send_frame(transport::FrameKind::kSnapshotRequest,
                     codec::encode(codec::SnapshotRequest{floor, offset}));
  }

  /// Serves a transfer: streams every chunk from the requested offset.
  /// Resumability lives on the requester side — it re-requests from the
  /// prefix it has — so the server can stay stateless.
  void handle_snapshot_request(consensus::ProcessId from, const codec::SnapshotRequest& req) {
    if constexpr (storage::kHasSnapshot<P>) {
      if (!engine_ || !engine_->snapshot() || links_.empty()) return;
      if (from < 0 || from >= n_) return;
      auto& link = links_[static_cast<std::size_t>(from)];
      if (!link) return;
      if (req.floor != snapshot_floor_) {
        // Stale generation (we snapshotted again since the offer): answer
        // with the current offer so the laggard restarts against it.
        if (snapshot_floor_ > req.floor) offer_snapshot_to(from);
        return;
      }
      const std::vector<std::uint8_t>& payload = engine_->snapshot()->payload;
      if (req.offset < 0 || req.offset > static_cast<std::int64_t>(payload.size())) return;
      const auto crc = static_cast<std::int64_t>(storage::crc32(payload));
      for (std::size_t off = static_cast<std::size_t>(req.offset); off < payload.size();
           off += kSnapshotChunkBytes) {
        const std::size_t len = std::min(kSnapshotChunkBytes, payload.size() - off);
        codec::SnapshotChunk chunk;
        chunk.floor = snapshot_floor_;
        chunk.offset = static_cast<std::int64_t>(off);
        chunk.total_bytes = static_cast<std::int64_t>(payload.size());
        chunk.crc = crc;
        chunk.data.assign(payload.begin() + static_cast<std::ptrdiff_t>(off),
                          payload.begin() + static_cast<std::ptrdiff_t>(off + len));
        link->send_frame(transport::FrameKind::kSnapshotChunk, codec::encode(chunk));
        metrics_.counter("transfer.chunks_sent").add();
        metrics_.counter("transfer.bytes_sent").add(len);
      }
    }
  }

  void handle_snapshot_chunk(consensus::ProcessId from, codec::SnapshotChunk&& chunk) {
    if constexpr (storage::kHasSnapshot<P>) {
      if (!transfer_ || chunk.floor != transfer_->floor ||
          chunk.total_bytes != transfer_->total_bytes)
        return;
      metrics_.counter("transfer.chunks_received").add();
      // Out-of-order chunk (a loss upstream): drop it; the retry timer
      // re-requests from the contiguous prefix we actually hold.
      if (chunk.offset != static_cast<std::int64_t>(transfer_->buf.size())) return;
      transfer_->buf.insert(transfer_->buf.end(), chunk.data.begin(), chunk.data.end());
      if (static_cast<std::int64_t>(transfer_->buf.size()) < transfer_->total_bytes) return;

      if (storage::crc32(transfer_->buf) != static_cast<std::uint32_t>(chunk.crc)) {
        metrics_.counter("transfer.crc_mismatch").add();
        transfer_->buf.clear();
        send_snapshot_request(transfer_->from, transfer_->floor, 0);
        return;
      }
      std::vector<std::uint8_t> payload = std::move(transfer_->buf);
      if (transfer_->retry_timer != 0) loop_.cancel_timer(transfer_->retry_timer);
      transfer_.reset();

      const std::int64_t t0 = obs::FlightRecorder::now_us();
      entry_active_ = true;  // hold every send the install provokes
      const bool installed = install_snapshot_payload(payload);
      entry_active_ = false;
      if (installed) {
        if (engine_) {
          // Persist BEFORE the held traffic leaves: restored promises must
          // never be revealed and then lost to a crash.  Re-snapshotting
          // our post-install state also compacts and re-offers in one step.
          durable_.capture(*proc_, *wal_);
          take_snapshot();
        }
        metrics_.counter("transfer.installed").add();
        metrics_.counter("transfer.install_us")
            .add(static_cast<std::uint64_t>(obs::FlightRecorder::now_us() - t0));
        if constexpr (requires { proc_->compact_floor(); })
          snapshot_floor_ =
              std::max(snapshot_floor_, static_cast<std::int64_t>(proc_->compact_floor()));
      } else {
        metrics_.counter("transfer.install_failed").add();
      }
      flush_buffered_sends();
      flush_held_replies();
      (void)from;
    }
  }

  void arm_transfer_retry() {
    if constexpr (storage::kHasSnapshot<P>) {
      if (!transfer_) return;
      const std::int64_t delay =
          transfer_->backoff ? transfer_->backoff->next() : options_.storage.transfer_retry_min_us;
      transfer_->retry_timer = loop_.schedule_after(delay, [this] {
        if (!transfer_) return;
        transfer_->retry_timer = 0;
        metrics_.counter("transfer.retries").add();
        send_snapshot_request(transfer_->from, transfer_->floor,
                              static_cast<std::int64_t>(transfer_->buf.size()));
        arm_transfer_retry();
      });
    }
  }

  /// Recomputes the number of distinct peers with a Hello-identified
  /// inbound connection.  Loop-thread only; the atomic is for readers.
  void refresh_inbound_count() {
    std::unordered_set<consensus::ProcessId> peers;
    for (const auto& [conn, peer] : inbound_peer_) peers.insert(peer);
    inbound_count_.store(static_cast<int>(peers.size()), std::memory_order_relaxed);
  }

  /// One machine-readable status document (schema twostep-stats/1): node
  /// identity, live connectivity, the raw transport counters and the full
  /// metrics registry (counters + histogram quantiles).  Built on the loop
  /// thread, for kStatsRequest scrapes and the periodic snapshot timer.
  [[nodiscard]] std::string build_stats_json() {
    std::ostringstream os;
    std::int32_t config_version = 0;
    if constexpr (Reconfigurable<P>) config_version = proc_->config_version();
    os << "{\"schema\":\"twostep-stats/1\",\"node\":" << self_
       << ",\"now_us\":" << loop_.now_us() << ",\"connected_out\":" << connected_out()
       << ",\"connected_in\":" << connected_in()
       << ",\"leader\":" << leader_.load(std::memory_order_relaxed)
       << ",\"config_version\":" << config_version
       << ",\"transport\":{\"bytes_sent\":" << stats_.bytes_sent.load(std::memory_order_relaxed)
       << ",\"bytes_received\":" << stats_.bytes_received.load(std::memory_order_relaxed)
       << ",\"frames_sent\":" << stats_.frames_sent.load(std::memory_order_relaxed)
       << ",\"frames_received\":" << stats_.frames_received.load(std::memory_order_relaxed)
       << ",\"reconnects\":" << stats_.reconnects.load(std::memory_order_relaxed)
       << ",\"frames_dropped\":" << stats_.frames_dropped.load(std::memory_order_relaxed)
       << "},\"metrics\":";
    metrics_.write_json(os);
    os << "}";
    return os.str();
  }

  /// Self-rearming periodic snapshot (loop thread -> latest_stats()).
  void arm_stats_timer() {
    if (options_.stats_interval_ms <= 0) return;
    loop_.schedule_after(std::int64_t{options_.stats_interval_ms} * 1000, [this] {
      std::string snapshot = build_stats_json();
      {
        const std::lock_guard<std::mutex> lock(stats_json_mu_);
        latest_stats_json_ = std::move(snapshot);
      }
      arm_stats_timer();
    });
  }

  void export_transport_metrics() {
    metrics_.counter("transport.bytes_sent").add(stats_.bytes_sent.load());
    metrics_.counter("transport.bytes_received").add(stats_.bytes_received.load());
    metrics_.counter("transport.frames_sent").add(stats_.frames_sent.load());
    metrics_.counter("transport.frames_received").add(stats_.frames_received.load());
    metrics_.counter("transport.reconnects").add(stats_.reconnects.load());
    metrics_.counter("transport.frames_dropped").add(stats_.frames_dropped.load());
    metrics_.counter("transport.connect_timeouts").add(stats_.connect_timeouts.load());
    metrics_.counter("transport.chaos_dropped").add(stats_.chaos_dropped.load());
    metrics_.counter("transport.chaos_duplicated").add(stats_.chaos_duplicated.load());
    metrics_.counter("transport.chaos_delayed").add(stats_.chaos_delayed.load());
    if (wal_) {
      metrics_.counter("wal.appends").add(wal_->appends());
      metrics_.counter("wal.syncs").add(wal_->syncs());
    }
  }

  consensus::ProcessId self_;
  int n_;
  transport::Endpoint listen_ep_;
  RuntimeOptions options_;
  transport::EventLoop loop_;
  LiveEnv env_;
  transport::TransportStats stats_;
  obs::MetricsRegistry metrics_;
  obs::LogHistogram* serve_us_ = nullptr;        ///< client request -> reply latency
  obs::LogHistogram* deliver_us_ = nullptr;      ///< per-message protocol dispatch time
  obs::LogHistogram* wal_sync_us_ = nullptr;     ///< capture+fsync per logged transition
  obs::LogHistogram* request_hop_us_ = nullptr;  ///< client -> node wire hop
  obs::FlightRecorder* flight_ = nullptr;        ///< null = tracing off
  obs::TraceContext out_ctx_;  ///< context of the entry scope running (loop thread)

  int listen_fd_ = -1;
  std::vector<transport::Endpoint> peers_;
  std::vector<std::unique_ptr<transport::PeerLink>> links_;
  std::unordered_set<std::shared_ptr<transport::Connection>> inbound_;
  std::unordered_map<transport::Connection*, consensus::ProcessId> inbound_peer_;

  std::unique_ptr<P> proc_;
  bool proto_started_ = false;
  bool proposed_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> env_timers_;  ///< env id -> loop id
  std::uint64_t next_env_timer_ = 1;

  std::vector<OutstandingRequest> outstanding_;                      ///< single-shot
  std::unordered_map<std::int64_t, OutstandingRequest> outstanding_rsm_;  ///< cmd -> client
  std::unordered_map<std::int64_t, ClientDedup> dedup_;  ///< client_id -> idempotency record

  // --- durability + chaos (loop-thread only, except the atomic) ---
  std::optional<storage::Engine> engine_;  ///< WAL + snapshot store (storage on)
  storage::Wal* wal_ = nullptr;            ///< engine_->wal(); null = storage off
  std::int64_t snapshot_floor_ = 0;        ///< floor of the durable snapshot, if any

  /// In-progress inbound snapshot transfer (at most one; newest floor wins).
  struct TransferState {
    std::int64_t floor = 0;
    std::int64_t total_bytes = 0;
    consensus::ProcessId from = -1;
    std::vector<std::uint8_t> buf;  ///< contiguous prefix received so far
    std::uint64_t retry_timer = 0;  ///< pending re-request timer (0 = none)
    std::optional<util::Backoff> backoff;  ///< jittered re-request cadence
  };
  std::optional<TransferState> transfer_;
  std::conditional_t<storage::kHasDurable<P>, storage::Durable<P>, storage::NullDurable> durable_;
  std::optional<transport::ChaosInjector> chaos_;
  bool entry_active_ = false;  ///< inside with_wal: sends are being buffered
  std::vector<std::pair<consensus::ProcessId, Message>> buffered_sends_;
  std::vector<HeldSend> held_sends_;      ///< group commit: awaiting the barrier
  std::vector<HeldReply> held_replies_;   ///< group commit: acks awaiting the barrier
  std::uint64_t barrier_timer_ = 0;       ///< pending barrier timer (0 = none)
  obs::LogHistogram* barrier_records_ = nullptr;  ///< records per barrier fsync
  std::atomic<int> inbound_count_{0};

  // --- membership & failover (loop thread, except the noted snapshots) ---
  std::map<consensus::ProcessId, transport::Endpoint> learned_endpoints_;  ///< from config log
  std::unordered_set<consensus::ProcessId> removed_;  ///< treat-as-crashed members
  std::unordered_map<consensus::ProcessId, PeerHealth> peer_health_;
  std::atomic<consensus::ProcessId> leader_{0};  ///< elected leader (cross-thread)

  mutable std::mutex state_mu_;
  consensus::Value decided_;
  std::vector<std::pair<std::int32_t, std::int64_t>> applied_;
  std::vector<consensus::ProcessId> members_;  ///< applied config members (state_mu_)
  std::int32_t config_version_ = 0;            ///< applied config version (state_mu_)

  mutable std::mutex stats_json_mu_;
  std::string latest_stats_json_;  ///< written by the snapshot timer

  std::thread thread_;
};

}  // namespace twostep::node
