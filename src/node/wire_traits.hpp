// Compile-time mapping from a protocol's message type to its wire form.
//
// node::Runtime<P> is generic over the protocol; this trait is the one
// place that knows which FrameKind carries `P::Message` and which codec
// functions serialize it.  Adding a protocol to the live runtime means
// adding a codec encoding and one specialization here — the runtime and
// transport stay untouched.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "codec/codec.hpp"
#include "transport/wire.hpp"

namespace twostep::node {

template <typename Msg>
struct WireTraits;  // unspecialized: protocol not wired for live deployment

template <>
struct WireTraits<core::Message> {
  static constexpr transport::FrameKind kKind = transport::FrameKind::kCore;
  static std::vector<std::uint8_t> encode(const core::Message& m) { return codec::encode(m); }
  static std::optional<core::Message> decode(std::span<const std::uint8_t> data) {
    return codec::decode(data);
  }
};

template <>
struct WireTraits<rsm::SlotMsg> {
  static constexpr transport::FrameKind kKind = transport::FrameKind::kSlot;
  static std::vector<std::uint8_t> encode(const rsm::SlotMsg& m) { return codec::encode(m); }
  static std::optional<rsm::SlotMsg> decode(std::span<const std::uint8_t> data) {
    return codec::decode_slot(data);
  }
};

template <>
struct WireTraits<fastpaxos::Message> {
  static constexpr transport::FrameKind kKind = transport::FrameKind::kFastPaxos;
  static std::vector<std::uint8_t> encode(const fastpaxos::Message& m) {
    return codec::encode(m);
  }
  static std::optional<fastpaxos::Message> decode(std::span<const std::uint8_t> data) {
    return codec::decode_fastpaxos(data);
  }
};

}  // namespace twostep::node
