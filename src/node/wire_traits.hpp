// Compile-time mapping from a protocol's message type to its wire form.
//
// node::Runtime<P> is generic over the protocol; this trait is the one
// place that knows which FrameKind carries `P::Message` and which codec
// functions serialize it.  Adding a protocol to the live runtime means
// adding a codec encoding and one specialization here — the runtime and
// transport stay untouched.
//
// A protocol's message type may span several frame kinds (the RSM's slot
// traffic rides kSlot, its batch sidecar kBatch), so the interface is
// kind-directed: kind_of(msg) picks the frame for an outgoing message,
// accepts(kind) gates inbound frames, decode(kind, payload) parses one.
#pragma once

#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "codec/codec.hpp"
#include "transport/wire.hpp"

namespace twostep::node {

template <typename Msg>
struct WireTraits;  // unspecialized: protocol not wired for live deployment

template <>
struct WireTraits<core::Message> {
  static constexpr transport::FrameKind kKind = transport::FrameKind::kCore;
  static transport::FrameKind kind_of(const core::Message&) { return kKind; }
  static bool accepts(transport::FrameKind kind) { return kind == kKind; }
  static std::vector<std::uint8_t> encode(const core::Message& m) { return codec::encode(m); }
  static std::optional<core::Message> decode(transport::FrameKind,
                                             std::span<const std::uint8_t> data) {
    return codec::decode(data);
  }
};

template <>
struct WireTraits<rsm::Msg> {
  /// Slot traffic rides kSlot; the batch sidecar alternatives ride kBatch
  /// and the config sidecar alternatives kConfig.
  static transport::FrameKind kind_of(const rsm::Msg& m) {
    if (std::holds_alternative<rsm::SlotMsg>(m)) return transport::FrameKind::kSlot;
    if (std::holds_alternative<rsm::ConfigChangeMsg>(m) ||
        std::holds_alternative<rsm::ConfigFetchMsg>(m))
      return transport::FrameKind::kConfig;
    return transport::FrameKind::kBatch;
  }
  static bool accepts(transport::FrameKind kind) {
    return kind == transport::FrameKind::kSlot || kind == transport::FrameKind::kBatch ||
           kind == transport::FrameKind::kConfig;
  }
  static std::vector<std::uint8_t> encode(const rsm::Msg& m) {
    if (const auto* s = std::get_if<rsm::SlotMsg>(&m)) return codec::encode(*s);
    if (kind_of(m) == transport::FrameKind::kConfig) return codec::encode_config(m);
    return codec::encode_batch(m);
  }
  static std::optional<rsm::Msg> decode(transport::FrameKind kind,
                                        std::span<const std::uint8_t> data) {
    if (kind == transport::FrameKind::kSlot) {
      auto slot = codec::decode_slot(data);
      if (!slot) return std::nullopt;
      return rsm::Msg{std::move(*slot)};
    }
    if (kind == transport::FrameKind::kBatch) return codec::decode_batch(data);
    if (kind == transport::FrameKind::kConfig) return codec::decode_config(data);
    return std::nullopt;
  }
};

template <>
struct WireTraits<epaxos::Message> {
  static constexpr transport::FrameKind kKind = transport::FrameKind::kEPaxos;
  static transport::FrameKind kind_of(const epaxos::Message&) { return kKind; }
  static bool accepts(transport::FrameKind kind) { return kind == kKind; }
  static std::vector<std::uint8_t> encode(const epaxos::Message& m) { return codec::encode(m); }
  static std::optional<epaxos::Message> decode(transport::FrameKind,
                                               std::span<const std::uint8_t> data) {
    return codec::decode_epaxos(data);
  }
};

template <>
struct WireTraits<fastpaxos::Message> {
  static constexpr transport::FrameKind kKind = transport::FrameKind::kFastPaxos;
  static transport::FrameKind kind_of(const fastpaxos::Message&) { return kKind; }
  static bool accepts(transport::FrameKind kind) { return kind == kKind; }
  static std::vector<std::uint8_t> encode(const fastpaxos::Message& m) {
    return codec::encode(m);
  }
  static std::optional<fastpaxos::Message> decode(transport::FrameKind,
                                                  std::span<const std::uint8_t> data) {
    return codec::decode_fastpaxos(data);
  }
};

}  // namespace twostep::node
