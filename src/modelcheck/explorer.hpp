// Bounded stateless model checking over DirectDrive schedules.
//
// A protocol state is a deterministic function of the *schedule*: the
// sequence of adversary choices (deliver pending message i / fire a timer /
// crash a process).  The explorer enumerates schedules depth-first by
// replaying them from scratch (stateless model checking), checking the
// safety monitors after every step; the fuzzer samples random schedules
// instead, which scales to configurations the exhaustive search cannot
// cover.  Both report the first Agreement/Validity/Integrity violation
// found, together with the offending schedule, so failures are replayable.
//
// The fuzzer shards its trace budget into fixed-size chunks and runs the
// chunks on an exec::ThreadPool.  Each chunk draws from a private RNG
// seeded by splitmix64(seed, chunk_index), chunks strictly before the first
// violating chunk always run to completion, and results are reduced in
// chunk-index order — so the returned ExploreResult (including the
// violating schedule) is byte-identical for any `jobs` value.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel_sweep.hpp"
#include "modelcheck/direct_drive.hpp"
#include "util/rng.hpp"

namespace twostep::modelcheck {

/// What the adversary is allowed to do, beyond ordering deliveries.
template <typename P>
struct Scenario {
  consensus::SystemConfig config;
  typename DirectDrive<P>::Factory factory;

  /// Applied to every fresh drive: initial crashes, start_all, proposals.
  std::function<void(DirectDrive<P>&)> setup;

  /// Processes the explorer may additionally crash mid-run...
  std::vector<consensus::ProcessId> may_crash;
  /// ...up to this many of them (on top of crashes done by `setup`).
  int crash_budget = 0;
  /// Crashes drop the victim's undelivered messages (mid-step crash).
  bool mid_step_crashes = true;

  /// Whether timer-fire actions are explored (needed to reach slow paths).
  bool explore_timers = true;

  /// Link-fault actions the adversary may additionally take.  Faults are
  /// explicit schedule actions (not hidden rng draws), so a violating
  /// schedule that injects faults replays exactly and fuzzing stays
  /// byte-identical for any `jobs` value.  All-zero budgets (the default)
  /// leave the action space untouched.
  struct FaultBudget {
    int drops = 0;       ///< injected message drops
    int duplicates = 0;  ///< injected message duplications
    int partitions = 0;  ///< momentary partitions (all traffic of one process)
  };
  FaultBudget faults;

  int max_depth = 48;
};

struct ExploreResult {
  /// Complete schedules examined.  Convention (shared by explore and fuzz):
  /// a schedule that exhibits a violation IS counted — it was examined, and
  /// "traces until violation" reads naturally as a 1-based count.
  long traces = 0;
  long steps = 0;         ///< total actions executed across all replays
  bool violation = false;
  std::string what;              ///< first violation, human-readable
  std::vector<int> schedule;     ///< the offending schedule (replayable)
  bool exhausted = false;        ///< true iff the whole space fit in budget
};

template <typename P>
class Explorer {
 public:
  using Drive = DirectDrive<P>;

  /// Exhaustive DFS up to `max_traces` terminal schedules.
  static ExploreResult explore(const Scenario<P>& scenario, long max_traces = 20000) {
    ExploreResult result;
    std::vector<std::vector<int>> stack;
    stack.push_back({});
    while (!stack.empty()) {
      if (result.traces >= max_traces) return result;  // budget: not exhausted
      const std::vector<int> schedule = std::move(stack.back());
      stack.pop_back();

      auto drive = make_drive(scenario);
      const int baseline = setup_crashes(scenario, *drive);
      const ReplayStatus status = replay(scenario, *drive, baseline, schedule, result);
      if (status == ReplayStatus::kViolation) {
        ++result.traces;  // the violating schedule counts as examined
        result.violation = true;
        result.what = drive->monitor().violations().front();
        result.schedule = schedule;
        return result;
      }

      const int branching = enabled_actions(scenario, *drive, baseline);
      if (branching == 0 || static_cast<int>(schedule.size()) >= scenario.max_depth) {
        ++result.traces;
        continue;
      }
      for (int a = branching - 1; a >= 0; --a) {
        std::vector<int> next = schedule;
        next.push_back(a);
        stack.push_back(std::move(next));
      }
    }
    result.exhausted = true;
    return result;
  }

  /// Traces per fuzz shard.  Small enough that `jobs` workers load-balance
  /// even on short runs, big enough to amortize the submit overhead.
  static constexpr int kFuzzChunkTraces = 32;

  /// Random schedule sampling: `traces` runs of up to `max_steps` actions,
  /// sharded across `jobs` worker threads (<= 0: all hardware threads).
  /// Deterministic for a fixed seed regardless of `jobs` — the reported
  /// violation is always the one in the lowest-index shard, even when a
  /// later shard hits first in wall time.
  static ExploreResult fuzz(const Scenario<P>& scenario, int traces, std::uint64_t seed,
                            int max_steps = 400, int jobs = 1) {
    ExploreResult result;
    if (traces <= 0) return result;
    const std::size_t chunks =
        (static_cast<std::size_t>(traces) + kFuzzChunkTraces - 1) / kFuzzChunkTraces;

    exec::FirstHit hit;
    exec::SweepOptions options;
    options.jobs = jobs;
    options.base_seed = seed;
    auto partials = exec::parallel_sweep<ExploreResult>(
        chunks,
        [&](const exec::SweepTask& task) {
          const int begin = static_cast<int>(task.index) * kFuzzChunkTraces;
          const int count = std::min(kFuzzChunkTraces, traces - begin);
          return fuzz_chunk(scenario, count, task.seed, max_steps, task.index, hit);
        },
        options);

    // Reduce in shard order, stopping at the first violating shard: shards
    // after it may have been cancelled at thread-count-dependent points, so
    // their partial counts must not leak into the result.
    for (ExploreResult& part : partials) {
      result.traces += part.traces;
      result.steps += part.steps;
      if (part.violation) {
        result.violation = true;
        result.what = std::move(part.what);
        result.schedule = std::move(part.schedule);
        break;
      }
    }
    return result;
  }

  /// Replays a schedule on a fresh drive (for debugging found violations).
  static std::unique_ptr<Drive> replay_schedule(const Scenario<P>& scenario,
                                                const std::vector<int>& schedule) {
    auto drive = make_drive(scenario);
    const int baseline = setup_crashes(scenario, *drive);
    ExploreResult scratch;
    replay(scenario, *drive, baseline, schedule, scratch);
    return drive;
  }

 private:
  enum class ReplayStatus { kOk, kViolation };

  static std::unique_ptr<Drive> make_drive(const Scenario<P>& scenario) {
    auto drive = std::make_unique<Drive>(scenario.config, scenario.factory);
    if (scenario.setup) scenario.setup(*drive);
    return drive;
  }

  /// Members of may_crash that `setup` already crashed.  The crash budget is
  /// "on top of crashes done by setup", so this baseline is subtracted when
  /// deciding whether the explorer may crash further processes.
  static int setup_crashes(const Scenario<P>& scenario, Drive& drive) {
    int crashed = 0;
    for (const consensus::ProcessId p : scenario.may_crash)
      if (drive.crashed(p)) ++crashed;
    return crashed;
  }

  /// One fuzz shard: `count` random traces from a private seed.  Abandons
  /// remaining traces only when a strictly lower shard has already found a
  /// violation (its own partial result is then discarded by the reducer).
  static ExploreResult fuzz_chunk(const Scenario<P>& scenario, int count, std::uint64_t seed,
                                  int max_steps, std::size_t index, exec::FirstHit& hit) {
    ExploreResult result;
    util::Rng rng{seed};
    for (int t = 0; t < count; ++t) {
      if (hit.obsolete(index)) return result;
      auto drive = make_drive(scenario);
      const int baseline = setup_crashes(scenario, *drive);
      std::vector<int> schedule;
      for (int s = 0; s < max_steps; ++s) {
        const int branching = enabled_actions(scenario, *drive, baseline);
        if (branching == 0) break;
        const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(branching)));
        schedule.push_back(a);
        apply(scenario, *drive, baseline, a);
        ++result.steps;
        if (!drive->monitor().safe()) {
          result.violation = true;
          result.what = drive->monitor().violations().front();
          result.schedule = schedule;
          ++result.traces;
          hit.record(index);
          return result;
        }
      }
      ++result.traces;
    }
    return result;
  }

  /// Action space at the current state:
  ///   [0, pool)                     deliver pending message i
  ///   [pool, pool+T)                fire the oldest timer of the j-th
  ///                                 process that has armed timers
  ///   [pool+T, pool+T+C)            crash the j-th eligible victim
  ///   [.., +D)                      drop pending message i    (fault budget)
  ///   [.., +U)                      duplicate pending message i
  ///   [.., +Q)                      momentary partition of the j-th
  ///                                 non-crashed process
  static int enabled_actions(const Scenario<P>& scenario, Drive& drive, int setup_crashed) {
    return static_cast<int>(drive.pool().size()) + timer_owners(scenario, drive).size() +
           crash_victims(scenario, drive, setup_crashed).size() +
           static_cast<std::size_t>(drop_slots(scenario, drive)) +
           static_cast<std::size_t>(dup_slots(scenario, drive)) +
           partition_victims(scenario, drive).size();
  }

  static std::vector<consensus::ProcessId> timer_owners(const Scenario<P>& scenario,
                                                        Drive& drive) {
    std::vector<consensus::ProcessId> owners;
    if (!scenario.explore_timers) return owners;
    for (consensus::ProcessId p = 0; p < drive.config().n; ++p)
      if (!drive.crashed(p) && drive.armed_timers(p) > 0) owners.push_back(p);
    return owners;
  }

  static std::vector<consensus::ProcessId> crash_victims(const Scenario<P>& scenario,
                                                         Drive& drive, int setup_crashed) {
    std::vector<consensus::ProcessId> victims;
    int crashed_from_list = 0;
    for (const consensus::ProcessId p : scenario.may_crash)
      if (drive.crashed(p)) ++crashed_from_list;
    // Only crashes the explorer itself performed count against the budget;
    // processes already down after `setup` are the scenario's premise.
    if (crashed_from_list - setup_crashed >= scenario.crash_budget) return victims;
    for (const consensus::ProcessId p : scenario.may_crash)
      if (!drive.crashed(p)) victims.push_back(p);
    return victims;
  }

  /// Remaining drop actions: one per pending message while budget lasts.
  static int drop_slots(const Scenario<P>& scenario, Drive& drive) {
    if (drive.injected_drops() >= scenario.faults.drops) return 0;
    return static_cast<int>(drive.pool().size());
  }

  static int dup_slots(const Scenario<P>& scenario, Drive& drive) {
    if (drive.injected_duplicates() >= scenario.faults.duplicates) return 0;
    return static_cast<int>(drive.pool().size());
  }

  static std::vector<consensus::ProcessId> partition_victims(const Scenario<P>& scenario,
                                                             Drive& drive) {
    std::vector<consensus::ProcessId> victims;
    if (drive.injected_partitions() >= scenario.faults.partitions) return victims;
    if (drive.pool().empty()) return victims;  // partitioning nothing is a no-op
    for (consensus::ProcessId p = 0; p < drive.config().n; ++p)
      if (!drive.crashed(p)) victims.push_back(p);
    return victims;
  }

  static void apply(const Scenario<P>& scenario, Drive& drive, int setup_crashed, int action) {
    const auto pool_size = static_cast<int>(drive.pool().size());
    if (action < pool_size) {
      drive.deliver_index(static_cast<std::size_t>(action));
      return;
    }
    action -= pool_size;
    const auto owners = timer_owners(scenario, drive);
    if (action < static_cast<int>(owners.size())) {
      drive.fire_next_timer(owners[static_cast<std::size_t>(action)]);
      return;
    }
    action -= static_cast<int>(owners.size());
    const auto victims = crash_victims(scenario, drive, setup_crashed);
    if (action < static_cast<int>(victims.size())) {
      const consensus::ProcessId p = victims[static_cast<std::size_t>(action)];
      if (scenario.mid_step_crashes) {
        drive.crash_suppressing_outbox(p);
      } else {
        drive.crash(p);
      }
      return;
    }
    action -= static_cast<int>(victims.size());
    const int drops = drop_slots(scenario, drive);
    if (action < drops) {
      drive.drop_index(static_cast<std::size_t>(action));
      return;
    }
    action -= drops;
    const int dups = dup_slots(scenario, drive);
    if (action < dups) {
      drive.duplicate_index(static_cast<std::size_t>(action));
      return;
    }
    action -= dups;
    const auto islands = partition_victims(scenario, drive);
    if (action < static_cast<int>(islands.size())) {
      drive.drop_all_for(islands[static_cast<std::size_t>(action)]);
      return;
    }
    throw std::out_of_range("Explorer: stale action index");
  }

  static ReplayStatus replay(const Scenario<P>& scenario, Drive& drive, int setup_crashed,
                             const std::vector<int>& schedule, ExploreResult& result) {
    for (const int action : schedule) {
      apply(scenario, drive, setup_crashed, action);
      ++result.steps;
      if (!drive.monitor().safe()) return ReplayStatus::kViolation;
    }
    return ReplayStatus::kOk;
  }
};

}  // namespace twostep::modelcheck
