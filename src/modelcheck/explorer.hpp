// Bounded stateless model checking over DirectDrive schedules.
//
// A protocol state is a deterministic function of the *schedule*: the
// sequence of adversary choices (deliver pending message i / fire a timer /
// crash a process).  The explorer enumerates schedules depth-first by
// replaying them from scratch (stateless model checking), checking the
// safety monitors after every step; the fuzzer samples random schedules
// instead, which scales to configurations the exhaustive search cannot
// cover.  Both report the first Agreement/Validity/Integrity violation
// found, together with the offending schedule, so failures are replayable.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "modelcheck/direct_drive.hpp"
#include "util/rng.hpp"

namespace twostep::modelcheck {

/// What the adversary is allowed to do, beyond ordering deliveries.
template <typename P>
struct Scenario {
  consensus::SystemConfig config;
  typename DirectDrive<P>::Factory factory;

  /// Applied to every fresh drive: initial crashes, start_all, proposals.
  std::function<void(DirectDrive<P>&)> setup;

  /// Processes the explorer may additionally crash mid-run...
  std::vector<consensus::ProcessId> may_crash;
  /// ...up to this many of them (on top of crashes done by `setup`).
  int crash_budget = 0;
  /// Crashes drop the victim's undelivered messages (mid-step crash).
  bool mid_step_crashes = true;

  /// Whether timer-fire actions are explored (needed to reach slow paths).
  bool explore_timers = true;

  int max_depth = 48;
};

struct ExploreResult {
  long traces = 0;        ///< complete schedules examined
  long steps = 0;         ///< total actions executed across all replays
  bool violation = false;
  std::string what;              ///< first violation, human-readable
  std::vector<int> schedule;     ///< the offending schedule (replayable)
  bool exhausted = false;        ///< true iff the whole space fit in budget
};

template <typename P>
class Explorer {
 public:
  using Drive = DirectDrive<P>;

  /// Exhaustive DFS up to `max_traces` terminal schedules.
  static ExploreResult explore(const Scenario<P>& scenario, long max_traces = 20000) {
    ExploreResult result;
    std::vector<std::vector<int>> stack;
    stack.push_back({});
    while (!stack.empty()) {
      if (result.traces >= max_traces) return result;  // budget: not exhausted
      const std::vector<int> schedule = std::move(stack.back());
      stack.pop_back();

      auto drive = make_drive(scenario);
      const ReplayStatus status = replay(scenario, *drive, schedule, result);
      if (status == ReplayStatus::kViolation) {
        result.violation = true;
        result.what = drive->monitor().violations().front();
        result.schedule = schedule;
        return result;
      }

      const int branching = enabled_actions(scenario, *drive);
      if (branching == 0 || static_cast<int>(schedule.size()) >= scenario.max_depth) {
        ++result.traces;
        continue;
      }
      for (int a = branching - 1; a >= 0; --a) {
        std::vector<int> next = schedule;
        next.push_back(a);
        stack.push_back(std::move(next));
      }
    }
    result.exhausted = true;
    return result;
  }

  /// Random schedule sampling: `traces` runs of up to `max_steps` actions.
  static ExploreResult fuzz(const Scenario<P>& scenario, int traces, std::uint64_t seed,
                            int max_steps = 400) {
    ExploreResult result;
    util::Rng rng{seed};
    for (int t = 0; t < traces; ++t) {
      auto drive = make_drive(scenario);
      std::vector<int> schedule;
      for (int s = 0; s < max_steps; ++s) {
        const int branching = enabled_actions(scenario, *drive);
        if (branching == 0) break;
        const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(branching)));
        schedule.push_back(a);
        apply(scenario, *drive, a);
        ++result.steps;
        if (!drive->monitor().safe()) {
          result.violation = true;
          result.what = drive->monitor().violations().front();
          result.schedule = schedule;
          result.traces = t + 1;
          return result;
        }
      }
      ++result.traces;
    }
    return result;
  }

  /// Replays a schedule on a fresh drive (for debugging found violations).
  static std::unique_ptr<Drive> replay_schedule(const Scenario<P>& scenario,
                                                const std::vector<int>& schedule) {
    auto drive = make_drive(scenario);
    ExploreResult scratch;
    replay(scenario, *drive, schedule, scratch);
    return drive;
  }

 private:
  enum class ReplayStatus { kOk, kViolation };

  static std::unique_ptr<Drive> make_drive(const Scenario<P>& scenario) {
    auto drive = std::make_unique<Drive>(scenario.config, scenario.factory);
    if (scenario.setup) scenario.setup(*drive);
    return drive;
  }

  /// Action space at the current state:
  ///   [0, pool)                     deliver pending message i
  ///   [pool, pool+T)                fire the oldest timer of the j-th
  ///                                 process that has armed timers
  ///   [pool+T, pool+T+C)            crash the j-th eligible victim
  static int enabled_actions(const Scenario<P>& scenario, Drive& drive) {
    return static_cast<int>(drive.pool().size()) + timer_owners(scenario, drive).size() +
           crash_victims(scenario, drive).size();
  }

  static std::vector<consensus::ProcessId> timer_owners(const Scenario<P>& scenario,
                                                        Drive& drive) {
    std::vector<consensus::ProcessId> owners;
    if (!scenario.explore_timers) return owners;
    for (consensus::ProcessId p = 0; p < drive.config().n; ++p)
      if (!drive.crashed(p) && drive.armed_timers(p) > 0) owners.push_back(p);
    return owners;
  }

  static std::vector<consensus::ProcessId> crash_victims(const Scenario<P>& scenario,
                                                         Drive& drive) {
    std::vector<consensus::ProcessId> victims;
    int crashed_from_list = 0;
    for (const consensus::ProcessId p : scenario.may_crash)
      if (drive.crashed(p)) ++crashed_from_list;
    if (crashed_from_list >= scenario.crash_budget) return victims;
    for (const consensus::ProcessId p : scenario.may_crash)
      if (!drive.crashed(p)) victims.push_back(p);
    return victims;
  }

  static void apply(const Scenario<P>& scenario, Drive& drive, int action) {
    const auto pool_size = static_cast<int>(drive.pool().size());
    if (action < pool_size) {
      drive.deliver_index(static_cast<std::size_t>(action));
      return;
    }
    action -= pool_size;
    const auto owners = timer_owners(scenario, drive);
    if (action < static_cast<int>(owners.size())) {
      drive.fire_next_timer(owners[static_cast<std::size_t>(action)]);
      return;
    }
    action -= static_cast<int>(owners.size());
    const auto victims = crash_victims(scenario, drive);
    if (action < static_cast<int>(victims.size())) {
      const consensus::ProcessId p = victims[static_cast<std::size_t>(action)];
      if (scenario.mid_step_crashes) {
        drive.crash_suppressing_outbox(p);
      } else {
        drive.crash(p);
      }
      return;
    }
    throw std::out_of_range("Explorer: stale action index");
  }

  static ReplayStatus replay(const Scenario<P>& scenario, Drive& drive,
                             const std::vector<int>& schedule, ExploreResult& result) {
    for (const int action : schedule) {
      apply(scenario, drive, action);
      ++result.steps;
      if (!drive.monitor().safe()) return ReplayStatus::kViolation;
    }
    return ReplayStatus::kOk;
  }
};

}  // namespace twostep::modelcheck
