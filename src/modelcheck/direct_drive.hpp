// DirectDrive<P>: a fully adversary-controlled scheduler.
//
// Unlike the Cluster harness (which runs on virtual time through a latency
// model), DirectDrive gives the caller complete control over the order in
// which messages are delivered and timers fire — exactly the power the
// lower-bound proofs of Appendix B give the adversary.  It is the engine
// under the lowerbound/ run-splicing scenarios, the bounded model checker
// and the schedule fuzzer.
//
// Crash semantics: crash(p) is crash-stop — p handles nothing further and
// its future sends are dropped; messages p *already* handed to the network
// stay deliverable (reliable links).  crash_suppressing_outbox(p)
// additionally removes p's still-undelivered messages, modelling a crash in
// the middle of a step (after the local transition, before the sends reach
// the network) — the proofs' "decides and immediately fails" events need
// this.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/monitor.hpp"
#include "consensus/types.hpp"

namespace twostep::modelcheck {

template <typename P>
class DirectDrive {
 public:
  using Msg = typename P::Message;
  using Factory =
      std::function<std::unique_ptr<P>(consensus::Env<Msg>&, consensus::ProcessId)>;

  struct Pending {
    std::uint64_t seq = 0;
    consensus::ProcessId from = consensus::kNoProcess;
    consensus::ProcessId to = consensus::kNoProcess;
    Msg msg{};
  };

  DirectDrive(consensus::SystemConfig config, Factory factory) : config_(config) {
    if (!factory) throw std::invalid_argument("DirectDrive: null factory");
    crashed_.assign(static_cast<std::size_t>(config_.n), false);
    envs_.reserve(static_cast<std::size_t>(config_.n));
    for (consensus::ProcessId p = 0; p < config_.n; ++p)
      envs_.push_back(std::make_unique<DriveEnv>(*this, p));
    for (consensus::ProcessId p = 0; p < config_.n; ++p) {
      processes_.push_back(factory(*envs_[static_cast<std::size_t>(p)], p));
      processes_.back()->on_decide = [this, p](consensus::Value v) {
        monitor_.note_decision(p, v, step_);
      };
    }
  }

  [[nodiscard]] const consensus::SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] P& process(consensus::ProcessId p) {
    return *processes_.at(static_cast<std::size_t>(p));
  }
  [[nodiscard]] consensus::ConsensusMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] bool crashed(consensus::ProcessId p) const {
    return crashed_.at(static_cast<std::size_t>(p));
  }

  /// Starts every non-crashed process (arming its timers).
  void start_all() {
    for (consensus::ProcessId p = 0; p < config_.n; ++p)
      if (!crashed(p)) process(p).start();
  }

  void propose(consensus::ProcessId p, consensus::Value v) {
    monitor_.note_proposal(p, v, step_);
    if (!crashed(p)) process(p).propose(v);
  }

  void crash(consensus::ProcessId p) {
    crashed_.at(static_cast<std::size_t>(p)) = true;
    monitor_.note_crash(p, step_);
  }

  /// Crash p *mid-step*: additionally drops p's undelivered messages, as if
  /// the crash hit between p's local transition and its sends.
  void crash_suppressing_outbox(consensus::ProcessId p) {
    crash(p);
    std::erase_if(pool_, [&](const Pending& m) { return m.from == p; });
  }

  [[nodiscard]] const std::deque<Pending>& pool() const noexcept { return pool_; }

  /// Delivers the i-th pending message (0-based) regardless of destination;
  /// a message to a crashed process is consumed without effect.
  void deliver_index(std::size_t i) {
    if (i >= pool_.size()) throw std::out_of_range("DirectDrive: no such pending message");
    const Pending m = pool_[i];
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
    ++step_;
    if (!crashed(m.to)) process(m.to).on_message(m.from, m.msg);
  }

  /// Delivers (in pool order) every pending message matching `pred`,
  /// including messages generated while doing so.  Returns the number
  /// delivered.  `limit` < 0 means unlimited.
  template <typename Pred>
  int deliver_where(Pred pred, int limit = -1) {
    int delivered = 0;
    bool progress = true;
    while (progress && (limit < 0 || delivered < limit)) {
      progress = false;
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (!pred(pool_[i])) continue;
        deliver_index(i);
        ++delivered;
        progress = true;
        break;
      }
    }
    return delivered;
  }

  /// Delivers everything (FIFO) until the pool drains or `max_steps` is hit.
  int deliver_all(int max_steps = 1000000) {
    int delivered = 0;
    while (!pool_.empty() && delivered < max_steps) {
      deliver_index(0);
      ++delivered;
    }
    return delivered;
  }

  /// Drops pending messages matching `pred`.  Links are reliable, so this is
  /// only legitimate for messages from crashed senders (mid-step crashes);
  /// the splicing scenarios use crash_suppressing_outbox instead where
  /// possible.
  template <typename Pred>
  int drop_where(Pred pred) {
    const auto before = pool_.size();
    std::erase_if(pool_, pred);
    return static_cast<int>(before - pool_.size());
  }

  // ---- explicit fault actions (chaos exploration) ----
  //
  // The explorer's fault budgets surface these as schedule actions, so a
  // violating schedule that injects faults replays exactly: the fault
  // decisions live in the action indices, not in hidden rng draws.

  /// Drops the i-th pending message (an injected link fault).
  void drop_index(std::size_t i) {
    if (i >= pool_.size()) throw std::out_of_range("DirectDrive: no such pending message");
    pool_.erase(pool_.begin() + static_cast<std::ptrdiff_t>(i));
    ++step_;
    ++injected_drops_;
  }

  /// Duplicates the i-th pending message: the copy lands at the back of the
  /// pool with a fresh sequence number, as an independently deliverable
  /// (and droppable) message.
  void duplicate_index(std::size_t i) {
    if (i >= pool_.size()) throw std::out_of_range("DirectDrive: no such pending message");
    Pending copy = pool_[i];
    copy.seq = next_seq_++;
    pool_.push_back(std::move(copy));
    ++step_;
    ++injected_dups_;
  }

  /// Momentary partition of p: every pending message to or from p is lost.
  /// Returns the number dropped.
  int drop_all_for(consensus::ProcessId p) {
    const auto before = pool_.size();
    std::erase_if(pool_, [&](const Pending& m) { return m.from == p || m.to == p; });
    ++step_;
    ++injected_partitions_;
    return static_cast<int>(before - pool_.size());
  }

  [[nodiscard]] int injected_drops() const noexcept { return injected_drops_; }
  [[nodiscard]] int injected_duplicates() const noexcept { return injected_dups_; }
  [[nodiscard]] int injected_partitions() const noexcept { return injected_partitions_; }

  /// Number of armed timers at p.
  [[nodiscard]] int armed_timers(consensus::ProcessId p) const {
    int k = 0;
    for (const auto& t : timers_)
      if (t.owner == p) ++k;
    return k;
  }

  /// Fires p's oldest armed timer.  Returns false if p has none or crashed.
  bool fire_next_timer(consensus::ProcessId p) {
    for (std::size_t i = 0; i < timers_.size(); ++i) {
      if (timers_[i].owner != p) continue;
      const consensus::TimerId id = timers_[i].id;
      timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
      ++step_;
      if (crashed(p)) return false;
      process(p).on_timer(id);
      return true;
    }
    return false;
  }

  /// Logical step counter (used as the monitor's clock).
  [[nodiscard]] sim::Tick step() const noexcept { return step_; }

 private:
  struct ArmedTimer {
    consensus::ProcessId owner;
    consensus::TimerId id;
  };

  class DriveEnv final : public consensus::Env<Msg> {
   public:
    DriveEnv(DirectDrive& drive, consensus::ProcessId self) : drive_(drive), self_(self) {}

    [[nodiscard]] consensus::ProcessId self() const override { return self_; }
    [[nodiscard]] int cluster_size() const override { return drive_.config_.n; }
    [[nodiscard]] sim::Tick now() const override { return drive_.step_; }

    void send(consensus::ProcessId to, const Msg& msg) override {
      if (to < 0 || to >= drive_.config_.n)
        throw std::out_of_range("DirectDrive: bad destination");
      if (drive_.crashed(self_)) return;
      drive_.pool_.push_back(Pending{drive_.next_seq_++, self_, to, msg});
    }

    consensus::TimerId set_timer(sim::Tick) override {
      const consensus::TimerId id{drive_.next_timer_++};
      drive_.timers_.push_back(ArmedTimer{self_, id});
      return id;
    }

    void cancel_timer(consensus::TimerId id) override {
      std::erase_if(drive_.timers_, [&](const ArmedTimer& t) { return t.id == id; });
    }

   private:
    DirectDrive& drive_;
    consensus::ProcessId self_;
  };

  consensus::SystemConfig config_;
  consensus::ConsensusMonitor monitor_;
  std::vector<std::unique_ptr<DriveEnv>> envs_;
  std::vector<std::unique_ptr<P>> processes_;
  std::vector<bool> crashed_;
  std::deque<Pending> pool_;
  std::vector<ArmedTimer> timers_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_timer_ = 1;
  sim::Tick step_ = 0;
  int injected_drops_ = 0;
  int injected_dups_ = 0;
  int injected_partitions_ = 0;
};

}  // namespace twostep::modelcheck
