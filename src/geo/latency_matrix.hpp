// Per-link one-way delay matrices for the *live* cluster.
//
// The simulator prices the paper's WAN argument with net::WanMatrix (F2);
// this is the same idea applied to real sockets: a geo::LatencyMatrix maps
// (sender region, receiver region) to a base one-way delay in microseconds
// plus a bounded uniform jitter, and the transport's ChaosInjector adds that
// delay to every outbound protocol frame.  Replicas are assigned to regions
// by a placement vector (replica index -> region index), so an n-replica
// loopback cluster behaves like an n-site multi-region deployment.
//
// Matrices come from three places:
//   - LatencyMatrix::nine_regions(scale): the F2 nine-region table
//     (net::WanMatrix::nine_regions) converted ms -> µs and scaled,
//   - a preset name ("nine-regions", "us-eu", "global"),
//   - a matrix file (see from_file for the format).
// from_spec() resolves a `--geo <file|preset>` CLI argument by trying the
// preset names first and falling back to the filesystem.
//
// Determinism contract: the matrix itself is pure data.  Jitter draws are
// made by the consumer (ChaosInjector) from per-directed-link seeded
// streams, so the delay sequence on each link is a pure function of
// (matrix, seed, self, to) — independent of how traffic on different links
// interleaves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace twostep::geo {

class LatencyMatrix {
 public:
  /// `one_way_us[i][j]` is the base one-way delay, in microseconds, from
  /// region i to region j.  The matrix must be square and non-empty, every
  /// cell must be >= 0 (intra-region cells may be 0: loopback is the
  /// baseline), and jitter_us must be >= 0.  Throws std::invalid_argument.
  LatencyMatrix(std::vector<std::string> regions,
                std::vector<std::vector<std::int64_t>> one_way_us, std::int64_t jitter_us = 0);

  [[nodiscard]] std::size_t size() const noexcept { return regions_.size(); }
  [[nodiscard]] const std::vector<std::string>& regions() const noexcept { return regions_; }
  [[nodiscard]] std::int64_t jitter_us() const noexcept { return jitter_us_; }
  [[nodiscard]] std::int64_t max_one_way_us() const noexcept { return max_one_way_us_; }

  /// Base one-way delay from region `from` to region `to` (bounds-checked;
  /// throws std::out_of_range).
  [[nodiscard]] std::int64_t one_way_us(int from, int to) const;

  /// Index of the named region, or -1 if this matrix has no such region.
  [[nodiscard]] int region_index(std::string_view name) const noexcept;

  /// The F2 nine-region table (net::WanMatrix::nine_regions, one-way ms
  /// between nine public-cloud regions) converted to microseconds and
  /// multiplied by `scale`.  scale < 1 compresses the WAN for fast smoke
  /// runs (0.01 turns 75 ms links into 750 µs links) without changing the
  /// *shape* of the topology.  Intra-region delay is 0 (loopback baseline).
  static LatencyMatrix nine_regions(double scale = 1.0);

  /// Named subsets of the nine-region table:
  ///   "nine-regions"  all nine regions
  ///   "us-eu"         us-east, us-west, eu-west, eu-central
  ///   "global"        us-east, eu-west, ap-northeast, sa-east, au-southeast
  /// Throws std::invalid_argument for unknown names; is_preset() probes.
  static LatencyMatrix preset(std::string_view name, double scale = 1.0);
  [[nodiscard]] static bool is_preset(std::string_view name) noexcept;

  /// Loads a matrix file.  Format, line oriented; '#' starts a comment:
  ///
  ///   regions us-east eu-west tokyo     # R region names
  ///   jitter_us 500                     # optional, default 0
  ///   0 38000 75000                     # then R rows of R cells, in µs
  ///   38000 0 105000
  ///   75000 105000 0
  ///
  /// Throws std::invalid_argument on malformed input or an unreadable file.
  static LatencyMatrix from_file(const std::string& path, double scale = 1.0);

  /// Resolves a `--geo` spec: a preset name, else a path to a matrix file.
  static LatencyMatrix from_spec(const std::string& spec, double scale = 1.0);

  /// Restriction of this matrix to the given regions (by index).
  [[nodiscard]] LatencyMatrix restrict(const std::vector<int>& region_indices) const;

 private:
  std::vector<std::string> regions_;
  std::vector<std::vector<std::int64_t>> one_way_us_;
  std::int64_t jitter_us_ = 0;
  std::int64_t max_one_way_us_ = 0;
};

/// Replica -> region assignment: replica i lives in region i mod R.  This is
/// the default placement for `--geo` clusters (mirrors the F2 site layout).
[[nodiscard]] std::vector<int> round_robin_placement(int replicas, const LatencyMatrix& matrix);

/// Parses an explicit placement spec "0,2,4" (region index per replica) or
/// "us-east,eu-west,tokyo" (region names).  Throws std::invalid_argument on
/// unknown names or out-of-range indices.
[[nodiscard]] std::vector<int> parse_placement(std::string_view spec, const LatencyMatrix& matrix);

}  // namespace twostep::geo
