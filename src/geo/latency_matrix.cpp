#include "geo/latency_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "net/latency.hpp"

namespace twostep::geo {
namespace {

// Names for the nine-region table, in net::WanMatrix::nine_regions order.
const std::vector<std::string>& nine_region_names() {
  static const std::vector<std::string> names = {
      "us-east", "us-west", "eu-west", "eu-central", "ap-northeast",
      "ap-southeast", "ap-south", "sa-east", "au-southeast"};
  return names;
}

std::int64_t scale_us(std::int64_t us, double scale) {
  const double scaled = static_cast<double>(us) * scale;
  return static_cast<std::int64_t>(std::llround(scaled));
}

}  // namespace

LatencyMatrix::LatencyMatrix(std::vector<std::string> regions,
                             std::vector<std::vector<std::int64_t>> one_way_us,
                             std::int64_t jitter_us)
    : regions_(std::move(regions)), one_way_us_(std::move(one_way_us)), jitter_us_(jitter_us) {
  if (regions_.empty()) throw std::invalid_argument("LatencyMatrix: no regions");
  if (jitter_us_ < 0) throw std::invalid_argument("LatencyMatrix: negative jitter");
  if (one_way_us_.size() != regions_.size())
    throw std::invalid_argument("LatencyMatrix: matrix/regions size mismatch");
  for (const auto& row : one_way_us_) {
    if (row.size() != regions_.size())
      throw std::invalid_argument("LatencyMatrix: matrix must be square");
    for (const std::int64_t cell : row) {
      if (cell < 0) throw std::invalid_argument("LatencyMatrix: negative latency");
      max_one_way_us_ = std::max(max_one_way_us_, cell);
    }
  }
  for (std::size_t i = 0; i < regions_.size(); ++i)
    for (std::size_t j = i + 1; j < regions_.size(); ++j)
      if (regions_[i] == regions_[j])
        throw std::invalid_argument("LatencyMatrix: duplicate region '" + regions_[i] + "'");
}

std::int64_t LatencyMatrix::one_way_us(int from, int to) const {
  const int n = static_cast<int>(regions_.size());
  if (from < 0 || from >= n || to < 0 || to >= n)
    throw std::out_of_range("LatencyMatrix: region index out of range");
  return one_way_us_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
}

int LatencyMatrix::region_index(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < regions_.size(); ++i)
    if (regions_[i] == name) return static_cast<int>(i);
  return -1;
}

LatencyMatrix LatencyMatrix::nine_regions(double scale) {
  if (!(scale > 0)) throw std::invalid_argument("LatencyMatrix: scale must be > 0");
  const net::WanMatrix wan = net::WanMatrix::nine_regions(/*jitter=*/2);
  const auto& ms = wan.one_way();
  std::vector<std::vector<std::int64_t>> us(ms.size(), std::vector<std::int64_t>(ms.size()));
  for (std::size_t i = 0; i < ms.size(); ++i)
    for (std::size_t j = 0; j < ms.size(); ++j)
      // The simulator's diagonal is 1 ms because its links need a positive
      // tick; live loopback already has real latency, so same-region extra
      // delay is zero.
      us[i][j] = i == j ? 0 : scale_us(ms[i][j] * 1000, scale);
  return LatencyMatrix(nine_region_names(), std::move(us),
                       scale_us(wan.jitter() * 1000, scale));
}

LatencyMatrix LatencyMatrix::preset(std::string_view name, double scale) {
  if (name == "nine-regions") return nine_regions(scale);
  if (name == "us-eu") return nine_regions(scale).restrict({0, 1, 2, 3});
  if (name == "global") return nine_regions(scale).restrict({0, 2, 4, 7, 8});
  throw std::invalid_argument("LatencyMatrix: unknown preset '" + std::string(name) + "'");
}

bool LatencyMatrix::is_preset(std::string_view name) noexcept {
  return name == "nine-regions" || name == "us-eu" || name == "global";
}

LatencyMatrix LatencyMatrix::from_file(const std::string& path, double scale) {
  if (!(scale > 0)) throw std::invalid_argument("LatencyMatrix: scale must be > 0");
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("LatencyMatrix: cannot open '" + path + "'");

  std::vector<std::string> regions;
  std::vector<std::vector<std::int64_t>> rows;
  std::int64_t jitter_us = 0;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;  // blank / comment-only line
    const auto bad = [&](const std::string& why) {
      throw std::invalid_argument("LatencyMatrix: " + path + ":" + std::to_string(lineno) +
                                  ": " + why);
    };
    if (first == "regions") {
      if (!regions.empty()) bad("duplicate 'regions' line");
      std::string name;
      while (tokens >> name) regions.push_back(name);
      if (regions.empty()) bad("'regions' names no regions");
    } else if (first == "jitter_us") {
      if (!(tokens >> jitter_us) || jitter_us < 0) bad("'jitter_us' needs a value >= 0");
    } else {
      if (regions.empty()) bad("matrix row before 'regions' line");
      std::vector<std::int64_t> row;
      std::istringstream cells(line);
      std::int64_t cell = 0;
      while (cells >> cell) {
        if (cell < 0) bad("negative latency cell");
        row.push_back(scale_us(cell, scale));
      }
      if (!cells.eof()) bad("non-numeric matrix cell");
      if (row.size() != regions.size()) bad("row width does not match region count");
      rows.push_back(std::move(row));
    }
  }
  if (regions.empty()) throw std::invalid_argument("LatencyMatrix: " + path + ": no 'regions' line");
  if (rows.size() != regions.size())
    throw std::invalid_argument("LatencyMatrix: " + path + ": expected " +
                                std::to_string(regions.size()) + " matrix rows, got " +
                                std::to_string(rows.size()));
  return LatencyMatrix(std::move(regions), std::move(rows), scale_us(jitter_us, scale));
}

LatencyMatrix LatencyMatrix::from_spec(const std::string& spec, double scale) {
  if (is_preset(spec)) return preset(spec, scale);
  return from_file(spec, scale);
}

LatencyMatrix LatencyMatrix::restrict(const std::vector<int>& region_indices) const {
  const int n = static_cast<int>(regions_.size());
  std::vector<std::string> names;
  std::vector<std::vector<std::int64_t>> sub(region_indices.size(),
                                             std::vector<std::int64_t>(region_indices.size()));
  for (std::size_t i = 0; i < region_indices.size(); ++i) {
    if (region_indices[i] < 0 || region_indices[i] >= n)
      throw std::out_of_range("LatencyMatrix::restrict: region index out of range");
    names.push_back(regions_[static_cast<std::size_t>(region_indices[i])]);
    for (std::size_t j = 0; j < region_indices.size(); ++j)
      sub[i][j] = one_way_us(region_indices[i], region_indices[j]);
  }
  return LatencyMatrix(std::move(names), std::move(sub), jitter_us_);
}

std::vector<int> round_robin_placement(int replicas, const LatencyMatrix& matrix) {
  if (replicas <= 0) throw std::invalid_argument("round_robin_placement: replicas must be > 0");
  std::vector<int> placement(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i)
    placement[static_cast<std::size_t>(i)] = i % static_cast<int>(matrix.size());
  return placement;
}

std::vector<int> parse_placement(std::string_view spec, const LatencyMatrix& matrix) {
  std::vector<int> placement;
  std::string token;
  std::istringstream parts{std::string(spec)};
  while (std::getline(parts, token, ',')) {
    if (token.empty()) throw std::invalid_argument("parse_placement: empty placement entry");
    int region = matrix.region_index(token);
    if (region < 0) {
      try {
        std::size_t used = 0;
        region = std::stoi(token, &used);
        if (used != token.size()) region = -1;
      } catch (const std::exception&) {
        region = -1;
      }
      if (region < 0 || region >= static_cast<int>(matrix.size()))
        throw std::invalid_argument("parse_placement: unknown region '" + token + "'");
    }
    placement.push_back(region);
  }
  if (placement.empty()) throw std::invalid_argument("parse_placement: empty placement spec");
  return placement;
}

}  // namespace twostep::geo
