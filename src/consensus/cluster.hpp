// Cluster<P>: the run harness gluing together a protocol type P, the
// simulated network, the event loop, and the external monitors.
//
// Protocol requirements (duck-typed):
//   using Message = ...;                 // the protocol's wire type
//   void start();                        // arm timers; called once per process
//   void propose(Value v);               // at-most-once per process
//   void on_message(ProcessId, const Message&);
//   void on_timer(TimerId);
//   std::function<void(Value)> on_decide;  // set by the harness
//
// The harness also implements the Env each protocol instance talks to, with
// crash-stop semantics: a crashed process's outbound sends are dropped by
// the network and its timers never fire.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/monitor.hpp"
#include "consensus/types.hpp"
#include "faults/fault_plan.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace twostep::consensus {

/// Everything about a run that is not the protocol or the topology: seed,
/// observability, and the chaos configuration.  Passed by value through the
/// harness layers (Cluster, ScenarioRunner, harness::RunSpec).
struct RunOptions {
  std::uint64_t seed = 1;
  obs::Probe probe{};
  bool trace = false;  ///< payload-level network tracing (TraceEntry log)

  /// Fault-injection stage; null keeps links reliable.  The plan's
  /// crash/restart schedule is applied by the cluster (through its monitor
  /// and probe), its message rules by the network send path.
  std::shared_ptr<faults::FaultPlan> faults;

  /// Engage a ReliableChannel between the protocols and the (lossy)
  /// network.  A config with seed 0 derives the jitter stream from `seed`.
  std::optional<net::ReliableConfig> reliable;
};

template <typename P>
class Cluster {
 public:
  using Msg = typename P::Message;
  using Factory = std::function<std::unique_ptr<P>(Env<Msg>&, ProcessId)>;

  Cluster(SystemConfig config, std::unique_ptr<net::LatencyModel> model, Factory factory,
          std::uint64_t seed = 1)
      : Cluster(config, std::move(model), std::move(factory), RunOptions{seed, {}, false, {}, {}}) {}

  Cluster(SystemConfig config, std::unique_ptr<net::LatencyModel> model, Factory factory,
          RunOptions run)
      : config_(config),
        network_(simulator_, std::move(model), config.n, run.seed,
                 net::NetworkConfig{run.faults, run.probe, run.trace}) {
    if (!factory) throw std::invalid_argument("Cluster: null protocol factory");
    if (run.reliable) {
      net::ReliableConfig rc = *run.reliable;
      // Distinct stream from the network's latency rng and any fault plan.
      if (rc.seed == 0) rc.seed = util::splitmix64(run.seed, 0x7e11ab1e);
      channel_ = std::make_unique<net::ReliableChannel<Msg>>(network_, rc);
    }
    envs_.reserve(static_cast<std::size_t>(config_.n));
    processes_.reserve(static_cast<std::size_t>(config_.n));
    for (ProcessId p = 0; p < config_.n; ++p)
      envs_.push_back(std::make_unique<ClusterEnv>(*this, p));
    for (ProcessId p = 0; p < config_.n; ++p) {
      processes_.push_back(factory(*envs_[static_cast<std::size_t>(p)], p));
      auto& proto = *processes_.back();
      proto.on_decide = [this, p](Value v) { monitor_.note_decision(p, v, simulator_.now()); };
      typename net::Network<Msg>::Handler handler = [this, p](ProcessId from, const Msg& m) {
        processes_[static_cast<std::size_t>(p)]->on_message(from, m);
      };
      if (channel_) {
        channel_->set_handler(p, std::move(handler));
      } else {
        network_.set_handler(p, std::move(handler));
      }
    }
    set_probe(run.probe);
    if (run.faults) {
      for (const faults::FaultPlan::CrashEvent ev : run.faults->crash_schedule()) {
        simulator_.schedule_at(ev.when, [this, ev] {
          if (ev.restart) {
            restart(ev.p);
          } else {
            crash(ev.p);
          }
        });
      }
    }
  }

  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] net::Network<Msg>& network() noexcept { return network_; }
  /// Null unless RunOptions::reliable engaged the retransmission layer.
  [[nodiscard]] net::ReliableChannel<Msg>* reliable_channel() noexcept { return channel_.get(); }
  [[nodiscard]] ConsensusMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] P& process(ProcessId p) { return *processes_.at(static_cast<std::size_t>(p)); }
  [[nodiscard]] sim::Tick delta() const { return network_.delta(); }
  [[nodiscard]] sim::Tick now() const noexcept { return simulator_.now(); }

  /// Wires run tracing and metrics through the whole harness: the network
  /// (message events, per-type counters), the simulator (events-executed
  /// counter) and the cluster itself (proposals, crashes, timer fires).
  /// Protocol-internal events additionally flow through the probe carried
  /// in each protocol's Options; ScenarioRunner forwards it to both places.
  void set_probe(const obs::Probe& probe) {
    probe_ = probe;
    network_.reattach_probe(probe);
    if (probe.metrics) {
      proposals_counter_ = &probe.metrics->counter("proposals");
      crashes_counter_ = &probe.metrics->counter("crashes");
      timers_counter_ = &probe.metrics->counter("timers.fired");
      simulator_.set_executed_cell(probe.metrics->counter("sim.events").cell());
    } else {
      proposals_counter_ = crashes_counter_ = timers_counter_ = nullptr;
      simulator_.set_executed_cell(nullptr);
    }
  }

  /// Calls start() on every non-crashed process (arming protocol timers).
  void start_all() {
    for (ProcessId p = 0; p < config_.n; ++p)
      if (!network_.crashed(p)) process(p).start();
  }

  /// Records the proposal with the monitor and delivers it to the process.
  /// Crashed processes record the proposal only (it is part of the initial
  /// configuration) but take no step.
  void propose(ProcessId p, Value v) {
    monitor_.note_proposal(p, v, simulator_.now());
    if (proposals_counter_) proposals_counter_->add();
    probe_.trace([&] {
      return obs::TraceEvent{obs::EventKind::kProposal, simulator_.now(), p, kNoProcess, -1,
                             v, "", 0};
    });
    if (!network_.crashed(p)) process(p).propose(v);
  }

  /// Schedules propose(p, v) at absolute virtual time `when`.
  void propose_at(sim::Tick when, ProcessId p, Value v) {
    simulator_.schedule_at(when, [this, p, v] { propose(p, v); });
  }

  /// Crashes p now (crash-stop).
  void crash(ProcessId p) {
    network_.crash(p);
    monitor_.note_crash(p, simulator_.now());
    if (crashes_counter_) crashes_counter_->add();
    probe_.trace([&] {
      return obs::TraceEvent{obs::EventKind::kCrash, simulator_.now(), p, kNoProcess, -1,
                             {}, "", 0};
    });
  }

  void crash_at(sim::Tick when, ProcessId p) {
    simulator_.schedule_at(when, [this, p] { crash(p); });
  }

  /// Restarts a crashed p (crash-recovery with durable state): the protocol
  /// instance resumes with its pre-crash state and the network accepts its
  /// traffic again.  Messages lost while p was down stay lost unless a
  /// ReliableChannel retransmits them.
  void restart(ProcessId p) {
    network_.restart(p);
    probe_.trace([&] {
      return obs::TraceEvent{obs::EventKind::kRestart, simulator_.now(), p, kNoProcess, -1,
                             {}, "", 0};
    });
  }

  void restart_at(sim::Tick when, ProcessId p) {
    simulator_.schedule_at(when, [this, p] { restart(p); });
  }

  [[nodiscard]] bool crashed(ProcessId p) const { return network_.crashed(p); }

  /// Runs the event loop to quiescence (bounded by max_events).
  std::size_t run(std::size_t max_events = sim::Simulator::kDefaultEventBudget) {
    return simulator_.run(max_events);
  }

  /// Runs all events with timestamp <= deadline.
  std::size_t run_until(sim::Tick deadline) { return simulator_.run_until(deadline); }

  /// True iff every non-crashed process has decided.
  [[nodiscard]] bool all_correct_decided() const {
    for (ProcessId p = 0; p < config_.n; ++p)
      if (!network_.crashed(p) && !monitor_.has_decided(p)) return false;
    return true;
  }

  /// Runs until every correct process decided or the deadline/budget is hit.
  /// Returns true on success.
  bool run_until_all_decided(sim::Tick deadline,
                             std::size_t max_events = sim::Simulator::kDefaultEventBudget) {
    std::size_t used = 0;
    while (!all_correct_decided() && simulator_.now() <= deadline && used < max_events) {
      if (!simulator_.step()) break;
      ++used;
    }
    return all_correct_decided();
  }

 private:
  /// Env implementation bound to one process slot.
  class ClusterEnv final : public Env<Msg> {
   public:
    ClusterEnv(Cluster& cluster, ProcessId self) : cluster_(cluster), self_(self) {}

    [[nodiscard]] ProcessId self() const override { return self_; }
    [[nodiscard]] int cluster_size() const override { return cluster_.config_.n; }
    [[nodiscard]] sim::Tick now() const override { return cluster_.simulator_.now(); }

    void send(ProcessId to, const Msg& msg) override {
      if (cluster_.channel_) {
        cluster_.channel_->send(self_, to, msg);
      } else {
        cluster_.network_.send(self_, to, msg);
      }
    }

    TimerId set_timer(sim::Tick delay) override {
      const TimerId tid{cluster_.next_timer_++};
      const ProcessId p = self_;
      Cluster& cluster = cluster_;
      const sim::EventId ev = cluster_.simulator_.schedule_after(delay, [&cluster, p, tid] {
        cluster.timers_.erase(tid.value);
        if (cluster.network_.crashed(p)) return;
        if (cluster.timers_counter_) cluster.timers_counter_->add();
        cluster.probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kTimerFire, cluster.simulator_.now(), p,
                                 kNoProcess, -1, {}, "",
                                 static_cast<std::int64_t>(tid.value)};
        });
        cluster.process(p).on_timer(tid);
      });
      cluster_.timers_.emplace(tid.value, ev);
      return tid;
    }

    void cancel_timer(TimerId id) override {
      const auto it = cluster_.timers_.find(id.value);
      if (it == cluster_.timers_.end()) return;
      cluster_.simulator_.cancel(it->second);
      cluster_.timers_.erase(it);
    }

   private:
    Cluster& cluster_;
    ProcessId self_;
  };

  SystemConfig config_;
  sim::Simulator simulator_;
  net::Network<Msg> network_;
  std::unique_ptr<net::ReliableChannel<Msg>> channel_;
  ConsensusMonitor monitor_;
  obs::Probe probe_;
  obs::Counter* proposals_counter_ = nullptr;
  obs::Counter* crashes_counter_ = nullptr;
  obs::Counter* timers_counter_ = nullptr;
  std::vector<std::unique_ptr<ClusterEnv>> envs_;
  std::vector<std::unique_ptr<P>> processes_;
  std::unordered_map<std::uint64_t, sim::EventId> timers_;
  std::uint64_t next_timer_ = 1;
};

}  // namespace twostep::consensus
