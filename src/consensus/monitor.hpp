// External run monitors.
//
// Safety and liveness are checked from outside the protocols: a protocol
// reports its proposals and decisions to a ConsensusMonitor, and tests /
// benches query the monitor for property verdicts.  Keeping the checkers
// external means a buggy protocol cannot accidentally vouch for itself.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "consensus/types.hpp"
#include "sim/simulator.hpp"

namespace twostep::consensus {

/// Records the observable history of one consensus instance and evaluates
/// the task specification (Validity, Agreement, Integrity) plus the paper's
/// two-step conditions (Definition 3: a run is two-step for p if p decides
/// by time 2Δ).
class ConsensusMonitor {
 public:
  /// Registers that `p` has an input value / called propose(v) at `when`.
  void note_proposal(ProcessId p, Value v, sim::Tick when);

  /// Registers that `p` decided `v` at `when`.
  void note_decision(ProcessId p, Value v, sim::Tick when);

  /// Marks `p` as crashed at `when`; crashed processes are exempt from
  /// Termination.
  void note_crash(ProcessId p, sim::Tick when);

  [[nodiscard]] bool has_decided(ProcessId p) const;
  [[nodiscard]] std::optional<Value> decision(ProcessId p) const;
  [[nodiscard]] std::optional<sim::Tick> decision_time(ProcessId p) const;
  [[nodiscard]] std::optional<Value> any_decision() const;
  [[nodiscard]] int decided_count() const;

  /// True iff p decided no later than 2Δ (Definition 3).
  [[nodiscard]] bool two_step_for(ProcessId p, sim::Tick delta) const;

  /// All property violations detected so far, in human-readable form.
  /// Empty result means the recorded history satisfies Validity, Agreement
  /// and Integrity.  (Termination is time-bounded and checked separately.)
  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }
  [[nodiscard]] bool safe() const { return violations_.empty(); }

  /// Termination check: every process that neither crashed nor decided is a
  /// violation.  `n` is the cluster size.
  [[nodiscard]] std::vector<ProcessId> undecided_correct(int n) const;

  [[nodiscard]] const std::map<ProcessId, Value>& proposals() const { return proposals_; }

  void reset();

 private:
  struct Decision {
    Value value;
    sim::Tick when;
  };

  void violation(std::string what);

  std::map<ProcessId, Value> proposals_;
  std::map<ProcessId, Decision> decisions_;
  std::map<ProcessId, sim::Tick> crashes_;
  std::vector<std::string> violations_;
};

/// Linearizability checker for the consensus *object* API.  Consensus has a
/// single semantic decision point, so full history search is unnecessary:
/// a history is linearizable iff (1) all responses return the same value v,
/// and (2) some propose(v) invocation precedes (in real time) the first
/// response.  Condition (2) generalizes Validity to concurrent histories.
class ObjectLinearizabilityChecker {
 public:
  void note_invocation(ProcessId p, Value v, sim::Tick when);
  void note_response(ProcessId p, Value v, sim::Tick when);

  /// Empty result means the recorded history is linearizable.
  [[nodiscard]] std::vector<std::string> check() const;

 private:
  struct Invocation {
    ProcessId p;
    Value v;
    sim::Tick when;
  };
  struct Response {
    ProcessId p;
    Value v;
    sim::Tick when;
  };

  std::vector<Invocation> invocations_;
  std::vector<Response> responses_;
};

}  // namespace twostep::consensus
