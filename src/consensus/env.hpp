// The environment interface protocols run against.
//
// Every protocol in this library is a pure event-driven state machine: it
// reacts to messages and timer expirations and can only affect the world
// through an Env.  This is what lets the same protocol code run under the
// discrete-event simulator, the bounded model checker, the lower-bound
// splicing harness, and direct-drive unit tests.
#pragma once

#include <cstdint>

#include "consensus/types.hpp"
#include "sim/simulator.hpp"

namespace twostep::consensus {

/// Handle for a protocol timer.
struct TimerId {
  std::uint64_t value = 0;
  friend bool operator==(TimerId a, TimerId b) { return a.value == b.value; }
};

/// Environment presented to one protocol instance.  `Msg` is the protocol's
/// own message type (typically a std::variant over its wire messages).
///
/// Lifetime: the Env outlives the protocol instance bound to it.  All calls
/// are made from the protocol's own event context (single-threaded).
template <typename Msg>
class Env {
 public:
  virtual ~Env() = default;

  /// This process's identifier in Π.
  [[nodiscard]] virtual ProcessId self() const = 0;

  /// Number of processes n = |Π|.
  [[nodiscard]] virtual int cluster_size() const = 0;

  /// Current virtual time.
  [[nodiscard]] virtual sim::Tick now() const = 0;

  /// Sends `msg` to `to` over a reliable link.  Sending to self is allowed
  /// and delivered like any other message.
  virtual void send(ProcessId to, const Msg& msg) = 0;

  /// Arms a one-shot timer firing `delay` ticks from now; the protocol's
  /// on_timer(TimerId) will be invoked unless cancelled first.
  virtual TimerId set_timer(sim::Tick delay) = 0;

  /// Cancels a pending timer.  Cancelling an already-fired or unknown timer
  /// is a no-op.
  virtual void cancel_timer(TimerId id) = 0;

  /// Sends `msg` to every process other than self.
  void broadcast_others(const Msg& msg) {
    for (ProcessId p = 0; p < cluster_size(); ++p)
      if (p != self()) send(p, msg);
  }

  /// Sends `msg` to every process including self.
  void broadcast_all(const Msg& msg) {
    for (ProcessId p = 0; p < cluster_size(); ++p) send(p, msg);
  }
};

}  // namespace twostep::consensus
