// Scenario construction for the paper's run classes.
//
// Definition 2 (E-faulty synchronous run): processes in E crash at the
// beginning of the first round, messages sent in round k arrive exactly at
// the start of round k+1, local computation is instantaneous.  Definitions
// 4 and A.1 quantify existentially over such runs ("there EXISTS a run that
// is two-step for p"), so the harness exposes the two degrees of freedom the
// adversary/scheduler has: the crash set E and the per-round delivery order,
// which for ballot-0 proposals reduces to the order in which proposals are
// issued (the network delivers same-round messages in send order).
//
// ScenarioRunner<P> additionally wires an Ω oracle (leader = lowest-id
// non-crashed process) into every protocol instance, which is the
// deterministic stand-in for §C.1's leader election in synchronous runs.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "consensus/cluster.hpp"
#include "consensus/types.hpp"
#include "net/latency.hpp"

namespace twostep::consensus {

/// One proposal of the initial configuration.  Order in the scenario vector
/// is the delivery priority: earlier proposers' Propose messages arrive
/// first everywhere.  Crashed processes' proposals are part of the initial
/// configuration but the process takes no step.
struct ScenarioProposal {
  ProcessId p = kNoProcess;
  Value v;
};

/// An E-faulty synchronous run description.
struct SyncScenario {
  std::vector<ProcessId> crashes;          ///< E: crash at the start of round 1
  std::vector<ScenarioProposal> proposals; ///< initial configuration, priority-ordered
  sim::Tick horizon = 0;                   ///< run events up to this time (0: to quiescence)
};

/// Builds the standard "best case for p" proposal order used by the
/// Definition 4/A.1 obligations: p first, everyone else afterwards in id
/// order.
std::vector<ScenarioProposal> inline priority_order(
    const std::map<ProcessId, Value>& initial, ProcessId first) {
  std::vector<ScenarioProposal> order;
  const auto it = initial.find(first);
  if (it != initial.end()) order.push_back({first, it->second});
  for (const auto& [p, v] : initial)
    if (p != first) order.push_back({p, v});
  return order;
}

/// Owns a Cluster<P> plus the Ω oracle its processes consult.  `Options`
/// is the protocol's option struct; it must have `delta`, `leader_of` and
/// `probe` members (all protocols in this library do).
template <typename P, typename Options>
class ScenarioRunner {
 public:
  using Msg = typename P::Message;

  ScenarioRunner(SystemConfig config, std::unique_ptr<net::LatencyModel> model,
                 Options base_options, std::uint64_t seed = 1)
      : ScenarioRunner(config, std::move(model), base_options,
                       RunOptions{seed, base_options.probe, false, {}, {}}) {}

  /// Full-control constructor: the RunOptions carry seed, probe, tracing and
  /// the chaos configuration (fault plan, reliable channel).  The probe
  /// rides in twice: inside each protocol's Options (protocol events) and at
  /// the harness level via RunOptions (network/simulator/cluster events);
  /// when base_options.probe is unset it inherits the RunOptions probe.
  ScenarioRunner(SystemConfig config, std::unique_ptr<net::LatencyModel> model,
                 Options base_options, RunOptions run)
      : oracle_(std::make_shared<Oracle>()),
        probe_(run.probe),
        cluster_(config, std::move(model),
                 make_factory(config, with_probe(std::move(base_options), run.probe)), run) {
    oracle_->n = config.n;
    Cluster<P>* cluster = &cluster_;
    oracle_->alive = [cluster](ProcessId p) { return !cluster->crashed(p); };
  }

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  [[nodiscard]] Cluster<P>& cluster() noexcept { return cluster_; }
  [[nodiscard]] ConsensusMonitor& monitor() noexcept { return cluster_.monitor(); }
  [[nodiscard]] sim::Tick delta() const { return cluster_.delta(); }

  /// Executes an E-faulty synchronous run: crashes E at time 0, starts the
  /// correct processes, issues proposals in priority order, then runs to the
  /// horizon (or quiescence).
  void run(const SyncScenario& s) {
    for (const ProcessId p : s.crashes) cluster_.crash(p);
    cluster_.start_all();
    for (const auto& prop : s.proposals) cluster_.propose(prop.p, prop.v);
    if (s.horizon > 0) {
      cluster_.run_until(s.horizon);
    } else {
      cluster_.run();
    }
  }

 private:
  /// Lowest-id non-crashed process; the Ω output at every process.
  struct Oracle {
    int n = 0;
    std::function<bool(ProcessId)> alive;
    [[nodiscard]] ProcessId leader() const {
      for (ProcessId p = 0; p < n; ++p)
        if (!alive || alive(p)) return p;
      return kNoProcess;
    }
  };

  static Options with_probe(Options base, const obs::Probe& probe) {
    if (!base.probe.enabled()) base.probe = probe;
    return base;
  }

  typename Cluster<P>::Factory make_factory(SystemConfig config, Options base) {
    auto oracle = oracle_;
    return [config, base, oracle](Env<Msg>& env, ProcessId) {
      Options options = base;
      options.leader_of = [oracle] { return oracle->leader(); };
      return std::make_unique<P>(env, config, options);
    };
  }

  std::shared_ptr<Oracle> oracle_;
  obs::Probe probe_;
  Cluster<P> cluster_;
};

}  // namespace twostep::consensus
