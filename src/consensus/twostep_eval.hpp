// Evaluators for the paper's e-two-step obligations (Definitions 4 and A.1).
//
// Each obligation is existential over E-faulty synchronous runs, so the
// evaluator *constructs* the witness run (using the scheduler freedom
// exposed by ScenarioRunner: proposal priority order) and then verifies the
// two-step verdict with the external monitor.  Every run also feeds the
// safety checkers; a protocol cannot pass by deciding unsafely fast.
//
// Note the asymmetry the paper's proofs hinge on: *below* the tight bound a
// protocol can still produce two-step runs — what breaks is Agreement in
// carefully spliced asynchronous continuations (Appendix B).  These
// evaluators therefore establish the "upper bound" half; the lowerbound/
// module exhibits the violations for under-provisioned instantiations.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/scenario.hpp"
#include "consensus/types.hpp"
#include "util/combinatorics.hpp"

namespace twostep::consensus {

struct EvalVerdict {
  int runs = 0;           ///< scenarios executed
  int satisfied = 0;      ///< scenarios whose obligation was met
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }

  void merge(const EvalVerdict& other) {
    runs += other.runs;
    satisfied += other.satisfied;
    failures.insert(failures.end(), other.failures.begin(), other.failures.end());
  }
};

/// Parameterized over the protocol and its options struct.  `make_runner`
/// must return a fresh, unstarted runner for each scenario.
template <typename P, typename Options>
class TwoStepEvaluator {
 public:
  using Runner = ScenarioRunner<P, Options>;
  using RunnerFactory = std::function<std::unique_ptr<Runner>()>;

  TwoStepEvaluator(SystemConfig config, RunnerFactory make_runner)
      : config_(config), make_runner_(std::move(make_runner)) {}

  /// Definition 4, item 1: for every initial configuration I there is an
  /// E-faulty synchronous run two-step for SOME process.  Sweeps all crash
  /// sets of size e against a canonical family of initial configurations
  /// (who holds the maximum proposal is the only structure the fast path is
  /// sensitive to) and witnesses each with the max-priority run.
  EvalVerdict check_task_item1() const {
    EvalVerdict verdict;
    util::for_each_combination(config_.n, config_.e, [&](const std::vector<int>& crash_set) {
      for (const auto& initial : canonical_configs()) {
        const ProcessId witness = best_correct_proposer(initial, crash_set);
        auto runner = make_runner_();
        SyncScenario s;
        s.crashes.assign(crash_set.begin(), crash_set.end());
        s.proposals = priority_order(initial, witness);
        runner->run(s);
        ++verdict.runs;
        record(verdict, *runner, runner->monitor().two_step_for(witness, runner->delta()),
               describe("task item1", crash_set, witness));
      }
    });
    return verdict;
  }

  /// Definition 4, item 2: when all correct processes propose the same
  /// value, for EACH correct p there is a run two-step for p.
  EvalVerdict check_task_item2() const {
    EvalVerdict verdict;
    util::for_each_combination(config_.n, config_.e, [&](const std::vector<int>& crash_set) {
      std::map<ProcessId, Value> initial;
      for (ProcessId p = 0; p < config_.n; ++p) initial[p] = Value{42};
      for (ProcessId p = 0; p < config_.n; ++p) {
        if (contains(crash_set, p)) continue;
        auto runner = make_runner_();
        SyncScenario s;
        s.crashes.assign(crash_set.begin(), crash_set.end());
        s.proposals = priority_order(initial, p);
        runner->run(s);
        ++verdict.runs;
        record(verdict, *runner, runner->monitor().two_step_for(p, runner->delta()),
               describe("task item2", crash_set, p));
      }
    });
    return verdict;
  }

  /// Definition A.1, item 1 (object): for every correct p and value v there
  /// is a run where ONLY p proposes and p is two-step.
  EvalVerdict check_object_item1() const {
    EvalVerdict verdict;
    util::for_each_combination(config_.n, config_.e, [&](const std::vector<int>& crash_set) {
      for (ProcessId p = 0; p < config_.n; ++p) {
        if (contains(crash_set, p)) continue;
        auto runner = make_runner_();
        SyncScenario s;
        s.crashes.assign(crash_set.begin(), crash_set.end());
        s.proposals = {{p, Value{7}}};
        runner->run(s);
        ++verdict.runs;
        record(verdict, *runner, runner->monitor().two_step_for(p, runner->delta()),
               describe("object item1", crash_set, p));
      }
    });
    return verdict;
  }

  /// Definition A.1, item 2 (object): all correct processes propose the same
  /// v at the start of round 1; for each correct p there is a run two-step
  /// for p.
  EvalVerdict check_object_item2() const {
    EvalVerdict verdict;
    util::for_each_combination(config_.n, config_.e, [&](const std::vector<int>& crash_set) {
      for (ProcessId p = 0; p < config_.n; ++p) {
        if (contains(crash_set, p)) continue;
        auto runner = make_runner_();
        SyncScenario s;
        s.crashes.assign(crash_set.begin(), crash_set.end());
        std::map<ProcessId, Value> initial;
        for (ProcessId q = 0; q < config_.n; ++q)
          if (!contains(crash_set, q)) initial[q] = Value{42};
        s.proposals = priority_order(initial, p);
        runner->run(s);
        ++verdict.runs;
        record(verdict, *runner, runner->monitor().two_step_for(p, runner->delta()),
               describe("object item2", crash_set, p));
      }
    });
    return verdict;
  }

 private:
  /// Canonical initial configurations: all-distinct values with the maximum
  /// placed at each position, plus two-block splits.  Proposal values are
  /// distinct across configurations' positions so Validity violations (a
  /// decision leaking across configs) cannot be masked.
  [[nodiscard]] std::vector<std::map<ProcessId, Value>> canonical_configs() const {
    std::vector<std::map<ProcessId, Value>> configs;
    for (ProcessId holder = 0; holder < config_.n; ++holder) {
      std::map<ProcessId, Value> c;
      for (ProcessId p = 0; p < config_.n; ++p) c[p] = Value{100 + p};
      c[holder] = Value{1000};
      configs.push_back(std::move(c));
    }
    // Two-block split: low ids propose 1, high ids propose 2.
    std::map<ProcessId, Value> split;
    for (ProcessId p = 0; p < config_.n; ++p) split[p] = Value{p < config_.n / 2 ? 1 : 2};
    configs.push_back(std::move(split));
    return configs;
  }

  /// The process expected to win the fast path: the correct proposer with
  /// the maximal value (lowest id among ties — it is ordered first, so ties
  /// vote for it).
  [[nodiscard]] ProcessId best_correct_proposer(const std::map<ProcessId, Value>& initial,
                                                const std::vector<int>& crash_set) const {
    ProcessId best = kNoProcess;
    Value best_v;
    for (const auto& [p, v] : initial) {
      if (contains(crash_set, p)) continue;
      if (best == kNoProcess || v > best_v) {
        best = p;
        best_v = v;
      }
    }
    return best;
  }

  static bool contains(const std::vector<int>& xs, ProcessId p) {
    for (const int x : xs)
      if (x == p) return true;
    return false;
  }

  void record(EvalVerdict& verdict, Runner& runner, bool obligation_met,
              const std::string& what) const {
    bool ok = obligation_met;
    std::string detail;
    if (!obligation_met) detail = ": no two-step decision";
    if (!runner.monitor().safe()) {
      ok = false;
      detail += ": SAFETY: " + runner.monitor().violations().front();
    }
    const auto undecided = runner.monitor().undecided_correct(config_.n);
    if (!undecided.empty()) {
      ok = false;
      detail += ": termination: " + std::to_string(undecided.size()) + " correct undecided";
    }
    if (ok) {
      ++verdict.satisfied;
    } else {
      verdict.failures.push_back(what + detail);
    }
  }

  static std::string describe(const char* item, const std::vector<int>& crash_set,
                              ProcessId witness) {
    std::ostringstream os;
    os << item << " E={";
    for (std::size_t i = 0; i < crash_set.size(); ++i) os << (i ? "," : "") << crash_set[i];
    os << "} witness=p" << witness;
    return os.str();
  }

  SystemConfig config_;
  RunnerFactory make_runner_;
};

}  // namespace twostep::consensus
