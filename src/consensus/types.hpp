// Shared vocabulary for all consensus protocols in this library: process
// identifiers, proposal values with an explicit bottom element, ballots, and
// the (n, f, e) system configuration with the quorum arithmetic and process
// bounds from the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>

namespace twostep::consensus {

/// Process identifier: dense 0-based index into the system Π = {p_0 … p_{n-1}}.
/// (The paper numbers processes from 1; a 0-based index is idiomatic C++ and
/// only shifts the `i ≡ b (mod n)` ballot-ownership rule by a constant.)
using ProcessId = std::int32_t;

/// Sentinel for "no process" (e.g. the `proposer` field before any vote).
inline constexpr ProcessId kNoProcess = -1;

/// Ballot number.  Ballot 0 is the fast ballot; all others are slow.
using Ballot = std::int64_t;

/// A proposal value, or ⊥ (bottom).  The paper requires a total order on
/// values in which ⊥ is strictly below every proper value (the object
/// protocol initializes initial_val to ⊥, "lower than any other value", and
/// the fast path accepts only values >= one's own proposal).  Proper values
/// are 64-bit integers; state-machine commands are mapped to values by the
/// RSM layer.
class Value {
 public:
  /// Constructs ⊥.
  constexpr Value() noexcept = default;

  /// Constructs a proper value.
  constexpr explicit Value(std::int64_t v) noexcept : payload_(v) {}

  /// The ⊥ element.
  static constexpr Value bottom() noexcept { return Value{}; }

  [[nodiscard]] constexpr bool is_bottom() const noexcept { return !payload_.has_value(); }

  /// Underlying integer; throws if this is ⊥.
  [[nodiscard]] constexpr std::int64_t get() const {
    if (!payload_) throw std::logic_error("Value::get() on bottom");
    return *payload_;
  }

  /// Total order with ⊥ below every proper value.
  friend constexpr bool operator==(Value a, Value b) noexcept {
    return a.payload_ == b.payload_;
  }
  friend constexpr bool operator<(Value a, Value b) noexcept {
    if (!a.payload_) return b.payload_.has_value();
    if (!b.payload_) return false;
    return *a.payload_ < *b.payload_;
  }
  friend constexpr bool operator!=(Value a, Value b) noexcept { return !(a == b); }
  friend constexpr bool operator>(Value a, Value b) noexcept { return b < a; }
  friend constexpr bool operator<=(Value a, Value b) noexcept { return !(b < a); }
  friend constexpr bool operator>=(Value a, Value b) noexcept { return !(a < b); }

  [[nodiscard]] std::string to_string() const {
    return payload_ ? std::to_string(*payload_) : std::string("\xe2\x8a\xa5");  // ⊥
  }

  friend std::ostream& operator<<(std::ostream& os, Value v) { return os << v.to_string(); }

 private:
  std::optional<std::int64_t> payload_;
};

/// System configuration: n processes, at most f crash failures for liveness,
/// two-step decisions required under up to e failures (e <= f).
struct SystemConfig {
  int n = 0;  ///< total number of processes
  int f = 0;  ///< resilience threshold (Definition 1)
  int e = 0;  ///< two-step threshold (Definition 4)

  constexpr SystemConfig() = default;
  constexpr SystemConfig(int n_, int f_, int e_) : n(n_), f(f_), e(e_) {
    if (n < 1 || f < 0 || e < 0 || e > f)
      throw std::invalid_argument("SystemConfig: need n >= 1 and 0 <= e <= f");
  }

  /// Classic (slow-path) quorum size: n - f.
  [[nodiscard]] constexpr int classic_quorum() const noexcept { return n - f; }

  /// Fast-path quorum size: n - e (counting the proposer itself).
  [[nodiscard]] constexpr int fast_quorum() const noexcept { return n - e; }

  /// Minimal n for an f-resilient e-two-step consensus *task* (Theorem 5).
  static constexpr int min_processes_task(int e, int f) noexcept {
    return std::max(2 * e + f, 2 * f + 1);
  }

  /// Minimal n for an f-resilient e-two-step consensus *object* (Theorem 6).
  static constexpr int min_processes_object(int e, int f) noexcept {
    return std::max(2 * e + f - 1, 2 * f + 1);
  }

  /// Minimal n under Lamport's classical definition, matched by Fast Paxos.
  static constexpr int min_processes_fast_paxos(int e, int f) noexcept {
    return std::max(2 * e + f + 1, 2 * f + 1);
  }

  /// Minimal n for plain f-resilient consensus (Dwork-Lynch-Stockmeyer).
  static constexpr int min_processes_paxos(int f) noexcept { return 2 * f + 1; }

  friend constexpr bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

}  // namespace twostep::consensus

template <>
struct std::hash<twostep::consensus::Value> {
  std::size_t operator()(const twostep::consensus::Value& v) const noexcept {
    return v.is_bottom() ? 0x9e3779b97f4a7c15ULL
                         : std::hash<std::int64_t>{}(v.get()) * 0xff51afd7ed558ccdULL + 1;
  }
};
