#include "consensus/monitor.hpp"

#include <algorithm>
#include <sstream>

namespace twostep::consensus {

void ConsensusMonitor::violation(std::string what) {
  violations_.push_back(std::move(what));
}

void ConsensusMonitor::note_proposal(ProcessId p, Value v, sim::Tick when) {
  (void)when;
  if (v.is_bottom()) {
    violation("process " + std::to_string(p) + " proposed bottom");
    return;
  }
  const auto [it, inserted] = proposals_.emplace(p, v);
  if (!inserted && it->second != v) {
    violation("process " + std::to_string(p) + " proposed twice with different values");
  }
}

void ConsensusMonitor::note_decision(ProcessId p, Value v, sim::Tick when) {
  // Integrity: a process decides at most once (re-deciding the same value,
  // e.g. slow path after Decide, is benign and collapsed here).
  const auto it = decisions_.find(p);
  if (it != decisions_.end()) {
    if (it->second.value != v) {
      violation("integrity: process " + std::to_string(p) + " decided " +
                it->second.value.to_string() + " then " + v.to_string());
    }
    return;
  }
  // Validity: every decision is the proposal of some process.
  const bool proposed = std::any_of(proposals_.begin(), proposals_.end(),
                                    [&](const auto& kv) { return kv.second == v; });
  if (!proposed) {
    violation("validity: process " + std::to_string(p) + " decided unproposed value " +
              v.to_string());
  }
  // Agreement: no two decisions differ.
  for (const auto& [q, d] : decisions_) {
    if (d.value != v) {
      std::ostringstream os;
      os << "agreement: process " << p << " decided " << v << " but process " << q
         << " decided " << d.value;
      violation(os.str());
      break;
    }
  }
  decisions_.emplace(p, Decision{v, when});
}

void ConsensusMonitor::note_crash(ProcessId p, sim::Tick when) { crashes_[p] = when; }

bool ConsensusMonitor::has_decided(ProcessId p) const { return decisions_.contains(p); }

std::optional<Value> ConsensusMonitor::decision(ProcessId p) const {
  const auto it = decisions_.find(p);
  if (it == decisions_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<sim::Tick> ConsensusMonitor::decision_time(ProcessId p) const {
  const auto it = decisions_.find(p);
  if (it == decisions_.end()) return std::nullopt;
  return it->second.when;
}

std::optional<Value> ConsensusMonitor::any_decision() const {
  if (decisions_.empty()) return std::nullopt;
  return decisions_.begin()->second.value;
}

int ConsensusMonitor::decided_count() const { return static_cast<int>(decisions_.size()); }

bool ConsensusMonitor::two_step_for(ProcessId p, sim::Tick delta) const {
  const auto t = decision_time(p);
  return t.has_value() && *t <= 2 * delta;
}

std::vector<ProcessId> ConsensusMonitor::undecided_correct(int n) const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < n; ++p)
    if (!crashes_.contains(p) && !decisions_.contains(p)) out.push_back(p);
  return out;
}

void ConsensusMonitor::reset() {
  proposals_.clear();
  decisions_.clear();
  crashes_.clear();
  violations_.clear();
}

void ObjectLinearizabilityChecker::note_invocation(ProcessId p, Value v, sim::Tick when) {
  invocations_.push_back(Invocation{p, v, when});
}

void ObjectLinearizabilityChecker::note_response(ProcessId p, Value v, sim::Tick when) {
  responses_.push_back(Response{p, v, when});
}

std::vector<std::string> ObjectLinearizabilityChecker::check() const {
  std::vector<std::string> problems;
  if (responses_.empty()) return problems;

  const Value v = responses_.front().v;
  for (const auto& r : responses_) {
    if (r.v != v) {
      problems.push_back("responses disagree: " + v.to_string() + " vs " + r.v.to_string());
      break;
    }
  }

  const auto first_response =
      std::min_element(responses_.begin(), responses_.end(),
                       [](const Response& a, const Response& b) { return a.when < b.when; });
  const bool witnessed = std::any_of(
      invocations_.begin(), invocations_.end(),
      [&](const Invocation& i) { return i.v == v && i.when <= first_response->when; });
  if (!witnessed) {
    problems.push_back("decided value " + v.to_string() +
                       " has no propose() invocation preceding the first response");
  }

  // Each response must correspond to an invocation by the same process.
  for (const auto& r : responses_) {
    const bool invoked =
        std::any_of(invocations_.begin(), invocations_.end(),
                    [&](const Invocation& i) { return i.p == r.p && i.when <= r.when; });
    if (!invoked) {
      problems.push_back("process " + std::to_string(r.p) +
                         " got a response without a prior invocation");
    }
  }
  return problems;
}

}  // namespace twostep::consensus
