#include "core/selection.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace twostep::core {

using consensus::Value;

SelectionResult select_value(const SelectionInput& in) {
  const auto& cfg = in.config;
  const auto& peers = in.peers;

  // Line 23: if some process has already decided, adopt its decision.
  for (const PeerState& p : peers) {
    if (!p.decided.is_bottom()) return {p.decided, SelectionBranch::kDecided};
  }

  // Line 24-25: votes at the highest slow ballot supersede everything else.
  consensus::Ballot bmax = 0;
  for (const PeerState& p : peers) bmax = std::max(bmax, p.vbal);
  if (bmax > 0) {
    for (const PeerState& p : peers) {
      if (p.vbal == bmax && !p.val.is_bottom())
        return {p.val, SelectionBranch::kHighestBallot};
    }
    // A vbal > 0 with val == ⊥ cannot happen (votes always carry a value);
    // fall through defensively.
  }

  // bmax == 0: a value may have been decided on the fast path.
  // Line 26: R = {q in Q | proposer_q not in Q}.
  std::unordered_set<consensus::ProcessId> quorum_ids;
  for (const PeerState& p : peers) quorum_ids.insert(p.q);

  std::map<Value, int> votes;  // value -> #ballot-0 votes in R
  for (const PeerState& p : peers) {
    if (p.val.is_bottom() || p.vbal != 0) continue;
    const bool in_r = in.policy == SelectionPolicy::kNoProposerExclusion ||
                      !quorum_ids.contains(p.proposer);
    if (in_r) ++votes[p.val];
  }

  // The thresholds are only meaningful when n - f - e >= 1; below the
  // paper's bounds the = n-f-e condition degenerates (an empty S would
  // "support" every value), so we guard it.
  const int threshold = cfg.n - cfg.f - cfg.e;
  if (threshold >= 1) {
    // Line 27: a value with more than n-f-e votes (unique by Lemma 7/C.2).
    for (const auto& [v, count] : votes) {
      if (count > threshold) return {v, SelectionBranch::kAboveThreshold};
    }
    // Line 28-29: values with exactly n-f-e votes; take the maximum.
    Value best = Value::bottom();
    for (const auto& [v, count] : votes) {
      if (count == threshold && v > best) best = v;
    }
    if (!best.is_bottom() && in.policy != SelectionPolicy::kNoThresholdBranch) {
      if (in.policy == SelectionPolicy::kNoMaxTieBreak) {
        // Ablation: deliberately pick the minimum candidate instead.
        Value worst = Value::bottom();
        for (const auto& [v, count] : votes) {
          if (count == threshold && (worst.is_bottom() || v < worst)) worst = v;
        }
        return {worst, SelectionBranch::kAtThresholdMax};
      }
      return {best, SelectionBranch::kAtThresholdMax};
    }
  }

  // Line 30-31: fall back to the leader's own proposal.
  if (!in.own_initial.is_bottom()) return {in.own_initial, SelectionBranch::kOwnInitial};

  // Liveness completion (see header): no decision at any ballot < b is
  // possible at this point, so any value some process *proposed* — whether
  // it survives as a vote or only as the proposer's own initial_val — is
  // safe to re-propose.
  Value fallback = Value::bottom();
  for (const PeerState& p : peers) {
    fallback = std::max(fallback, p.val);
    fallback = std::max(fallback, p.initial);
  }
  if (!fallback.is_bottom()) return {fallback, SelectionBranch::kCompletion};

  return {Value::bottom(), SelectionBranch::kNone};
}

const char* to_cstring(SelectionBranch branch) noexcept {
  switch (branch) {
    case SelectionBranch::kDecided: return "decided";
    case SelectionBranch::kHighestBallot: return "highest_ballot";
    case SelectionBranch::kAboveThreshold: return "above_threshold";
    case SelectionBranch::kAtThresholdMax: return "at_threshold_max";
    case SelectionBranch::kOwnInitial: return "own_initial";
    case SelectionBranch::kCompletion: return "completion";
    case SelectionBranch::kNone: return "none";
  }
  return "?";
}

}  // namespace twostep::core
