#include "core/with_omega.hpp"

namespace twostep::core {

namespace {

omega::HeartbeatOmega::Hooks make_hooks(consensus::Env<OmegaMessage>& env) {
  omega::HeartbeatOmega::Hooks hooks;
  hooks.send_heartbeat = [&env](consensus::ProcessId to) {
    env.send(to, OmegaMessage{omega::Heartbeat{}});
  };
  hooks.set_timer = [&env](sim::Tick delay) { return env.set_timer(delay); };
  hooks.now = [&env] { return env.now(); };
  return hooks;
}

}  // namespace

TwoStepWithOmega::TwoStepWithOmega(consensus::Env<Message>& env,
                                   consensus::SystemConfig config, WithOmegaOptions options)
    : env_(env),
      inner_env_(*this),
      detector_(config.n, env.self(),
                options.heartbeat_period > 0 ? options.heartbeat_period : options.delta,
                options.suspect_timeout > 0
                    ? options.suspect_timeout
                    : 2 * options.delta +
                          (options.heartbeat_period > 0 ? options.heartbeat_period
                                                        : options.delta),
                make_hooks(env)) {
  Options inner_options;
  inner_options.mode = options.mode;
  inner_options.delta = options.delta;
  inner_options.selection_policy = options.selection_policy;
  inner_options.leader_of = [this] { return detector_.leader(); };
  inner_ = std::make_unique<TwoStepProcess>(inner_env_, config, std::move(inner_options));
  // Forward decisions: on_decide may be (re)assigned by harnesses after
  // construction, so indirect through the member.
  inner_->on_decide = [this](consensus::Value v) {
    if (on_decide) on_decide(v);
  };
}

void TwoStepWithOmega::start() {
  detector_.start();
  inner_->start();
}

void TwoStepWithOmega::on_message(consensus::ProcessId from, const Message& m) {
  if (const auto* heartbeat = std::get_if<omega::Heartbeat>(&m)) {
    (void)heartbeat;
    detector_.on_heartbeat(from);
    return;
  }
  inner_->on_message(from, std::get<core::Message>(m));
}

void TwoStepWithOmega::on_timer(consensus::TimerId id) {
  if (detector_.handle_timer(id)) return;
  inner_->on_timer(id);
}

}  // namespace twostep::core
