// The paper's protocol (Figure 1): f-resilient e-two-step consensus with
// the optimal number of processes.
//
//  * Task mode (red lines ignored):   works for n >= max{2e+f,   2f+1}.
//  * Object mode (red lines active):  works for n >= max{2e+f-1, 2f+1}.
//
// Structure: ballot 0 is the *fast ballot* — every proposer broadcasts
// Propose(v); a process votes for the first proposal it can accept (it must
// be >= its own proposal, and in object mode equal to it if it proposed);
// the proposer decides once n-e processes including itself voted for v.
// Slow ballots are Paxos-like (1A/1B/2A/2B) with the novel value-selection
// rule in select_value() that recovers possible fast-path decisions.
// Decisions are disseminated with Decide messages.  New ballots are started
// by the Ω-elected leader on a timer: 2Δ initially (just enough for the fast
// path), 5Δ thereafter (§C.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "core/messages.hpp"
#include "core/selection.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::core {

/// Task vs object formulation (Theorems 5 and 6).  The only code difference
/// is the red-line conditions of Figure 1.
enum class Mode { kTask, kObject };

/// Tunables and dependencies of one protocol instance.
struct Options {
  Mode mode = Mode::kTask;

  /// The network's Δ bound, used for the new-ballot timer.
  sim::Tick delta = 1;

  /// Ω output at this process (§C.1).  When it returns self(), the timer
  /// handler starts a new ballot.  Defaults (empty) to "always p0".
  std::function<consensus::ProcessId()> leader_of;

  /// If false, the process never starts slow ballots (used by tests that
  /// need pure fast-path traces).  It still *participates* in ballots others
  /// start.
  bool enable_ballot_timer = true;

  /// Value-selection variant; anything but kPaper is for the ablation bench.
  SelectionPolicy selection_policy = SelectionPolicy::kPaper;

  /// Structured tracing + metrics (off by default; see obs/trace.hpp).
  /// ScenarioRunner forwards the same probe to the harness layers.
  obs::Probe probe;
};

/// One process of the protocol.  See Cluster<P> for the harness contract.
class TwoStepProcess {
 public:
  using Message = core::Message;

  TwoStepProcess(consensus::Env<Message>& env, consensus::SystemConfig config, Options options);

  /// Arms the initial 2Δ new-ballot timer.  Call once at process start.
  void start();

  /// Task mode: the process's input value, invoked at startup.
  /// Object mode: the propose(v) operation; the decision is delivered via
  /// on_decide.  Per Figure 1 line 2, a process that has already voted for
  /// another proposal does not send its own.
  void propose(consensus::Value v);

  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  /// Fired exactly once, when this process decides.
  std::function<void(consensus::Value)> on_decide;

  /// The acceptor-critical slice of Figure 1's state: everything a 1B
  /// snapshot or a fast-path vote reveals to other processes.  This is what
  /// must survive a crash — the quorum-intersection arguments (Lemma 7 /
  /// Lemma C.2) assume a restarted acceptor still holds its promises and
  /// votes.  Leader-side bookkeeping (led_, fast_voters_) is deliberately
  /// excluded: losing it only costs liveness, never safety.
  struct AcceptorState {
    consensus::Ballot bal = 0;
    consensus::Ballot vbal = 0;
    consensus::Value val;
    consensus::ProcessId proposer = consensus::kNoProcess;
    consensus::Value initial;
    consensus::Value decided;
    friend bool operator==(const AcceptorState&, const AcceptorState&) = default;
  };
  [[nodiscard]] AcceptorState acceptor_state() const noexcept {
    return {bal_, vbal_, val_, proposer_, initial_val_, decided_};
  }
  /// Crash recovery: reinstates a previously captured state.  Must be called
  /// before any message or proposal is processed.  A restored decision is
  /// marked already-notified — on_decide does not re-fire and no Decide
  /// broadcast is sent (peers either decided long ago or will learn via the
  /// normal dissemination paths).
  void restore(const AcceptorState& s);

  /// The Decide retransmission set: one DecideMsg when decided, empty
  /// otherwise.  The live runtime resends these whenever a peer link
  /// (re)establishes, so a replica that missed the original broadcast
  /// (crashed, partitioned, queue overflow) still learns the decision —
  /// pure retransmission, no acceptor-state change.
  [[nodiscard]] std::vector<Message> decide_messages() const {
    if (decided_.is_bottom()) return {};
    return {Message{DecideMsg{decided_}}};
  }

  /// Replaces the Ω leader hint.  Takes effect on the next timer firing:
  /// a new ballot is started only when the hint names this process, so a
  /// live failure detector can be installed mid-flight without touching
  /// any acceptor state.
  void set_leader_of(std::function<consensus::ProcessId()> leader_of) {
    options_.leader_of = std::move(leader_of);
  }

  // --- observable state (for tests, monitors and 1B snapshots) ---
  [[nodiscard]] bool has_decided() const noexcept { return !decided_.is_bottom(); }
  [[nodiscard]] consensus::Value decided_value() const noexcept { return decided_; }
  [[nodiscard]] consensus::Ballot ballot() const noexcept { return bal_; }
  [[nodiscard]] consensus::Ballot vote_ballot() const noexcept { return vbal_; }
  [[nodiscard]] consensus::Value vote_value() const noexcept { return val_; }
  [[nodiscard]] consensus::Value initial_value() const noexcept { return initial_val_; }
  [[nodiscard]] consensus::ProcessId vote_proposer() const noexcept { return proposer_; }

 private:
  /// How a decision was reached — the distinction the paper (and the
  /// fast-path metrics) care about.
  enum class DecideKind {
    kFast,     ///< line 8, first disjunct: n-e fast votes at ballot 0
    kSlow,     ///< 2B quorum in a ballot we led
    kLearned,  ///< Decide message from another process
  };

  void handle(consensus::ProcessId from, const ProposeMsg& m);
  void handle(consensus::ProcessId from, const OneAMsg& m);
  void handle(consensus::ProcessId from, const OneBMsg& m);
  void handle(consensus::ProcessId from, const TwoAMsg& m);
  void handle(consensus::ProcessId from, const TwoBMsg& m);
  void handle(consensus::ProcessId from, const DecideMsg& m);

  /// Line 8, fast disjunct: decide once |fast_voters_| + 1 >= n - e and our
  /// own vote does not conflict with our proposal.
  void maybe_decide_fast();

  /// Runs the selection rule for ballot b (which we lead) and sends 2A if a
  /// value is determined.  Called as 1Bs accumulate.
  void maybe_send_two_a(consensus::Ballot b);

  /// Records the decision, notifies on_decide, broadcasts Decide (except
  /// when merely learning one).
  void decide(consensus::Value v, DecideKind kind);

  /// Records a selection verdict with the probe (event + branch counter).
  void note_selection(consensus::Ballot b, const SelectionResult& res);

  /// Smallest ballot > bal_ owned by this process (b mod n == self).
  [[nodiscard]] consensus::Ballot next_owned_ballot() const;

  [[nodiscard]] consensus::ProcessId omega_leader() const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;

  // Figure 1 state.
  consensus::Value initial_val_;                          // 𝗂𝗇𝗂𝗍𝗂𝖺𝗅_𝗏𝖺𝗅
  consensus::Value val_;                                  // 𝗏𝖺𝗅
  consensus::Value decided_;                              // 𝖽𝖾𝖼𝗂𝖽𝖾𝖽
  consensus::Ballot bal_ = 0;                             // 𝖻𝖺𝗅
  consensus::Ballot vbal_ = 0;                            // 𝗏𝖻𝖺𝗅
  consensus::ProcessId proposer_ = consensus::kNoProcess; // 𝗉𝗋𝗈𝗉𝗈𝗌𝖾𝗋

  // Fast-path bookkeeping: who voted for our proposal at ballot 0.
  std::set<consensus::ProcessId> fast_voters_;

  // Slow-path bookkeeping for ballots we lead.
  struct LedBallot {
    std::map<consensus::ProcessId, OneBMsg> onebs;  // arrival order irrelevant
    std::vector<consensus::ProcessId> arrival;      // first n-f = the quorum Q
    bool sent_two_a = false;
    /// Set once the first exact-(n-f) evaluation returned "nothing to
    /// propose": from then on no fast decision can ever occur (n-f voteless
    /// processes are locked out of ballot 0), so any later-seen vote may be
    /// adopted directly.
    bool exhausted_fast_path = false;
    consensus::Value two_a_value;
    std::set<consensus::ProcessId> twobs;  // votes for (b, two_a_value)
  };
  std::map<consensus::Ballot, LedBallot> led_;

  // Metric handles, resolved once at construction (null when metrics are
  // off): the hot paths pay one pointer test, never a registry lookup.
  struct {
    obs::Counter* decisions_fast = nullptr;
    obs::Counter* decisions_slow = nullptr;
    obs::Counter* decisions_learned = nullptr;
    obs::Counter* ballots_started = nullptr;
    obs::Counter* selection[7] = {};  ///< indexed by SelectionBranch
    util::Summary* decision_latency = nullptr;
  } stats_;

  bool started_ = false;
  bool decide_notified_ = false;
};

}  // namespace twostep::core
