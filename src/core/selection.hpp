// The slow-ballot value-selection rule (Figure 1, lines 22-31).
//
// This is the heart of the paper's upper bound: when a new ballot leader
// aggregates 1B snapshots from a quorum Q of n-f processes, it must select a
// value that preserves any decision possibly taken on the fast path with
// only n >= 2e+f (task) or n >= 2e+f-1 (object) processes — fewer than Fast
// Paxos needs.  The novel ingredients relative to Fast Paxos recovery are:
//
//   * the exclusion set R = {q in Q : proposer_q not in Q}: votes whose
//     proposer itself answered the 1B can be discarded, because that
//     proposer provably did not and will never take the fast path;
//   * the two-tier threshold: a value with  > n-f-e  votes in R is uniquely
//     recoverable; at exactly  = n-f-e  votes several candidates may remain
//     and the *maximum* one is selected (sound because the fast path only
//     accepts proposals >= the acceptor's own proposal).
//
// The rule is a free function so the Lemma 7 / Lemma C.2 case analysis is
// directly unit- and property-testable, and so the ablation benchmarks can
// run deliberately broken variants.
#pragma once

#include <vector>

#include "consensus/types.hpp"

namespace twostep::core {

/// One row of the 1B quorum: the state process `q` reported.
struct PeerState {
  consensus::ProcessId q = consensus::kNoProcess;
  consensus::Ballot vbal = 0;
  consensus::Value val;                                   ///< last vote (⊥ if none)
  consensus::ProcessId proposer = consensus::kNoProcess;  ///< proposer of `val` at ballot 0
  consensus::Value decided;                               ///< ⊥ unless q already decided
  consensus::Value initial;                               ///< q's own proposal (⊥ if none)
};

/// Which rule produced the selection; used by tests and the ablation bench.
enum class SelectionBranch {
  kDecided,        ///< some process already decided (line 23)
  kHighestBallot,  ///< bmax > 0: classic Paxos rule (line 25)
  kAboveThreshold, ///< > n-f-e votes in R for a single value (line 27)
  kAtThresholdMax, ///< exactly n-f-e votes; maximum such value (line 29)
  kOwnInitial,     ///< leader's own proposal (line 31)
  kCompletion,     ///< liveness completion: max vote seen (not in the paper;
                   ///< see select_value docs)
  kNone,           ///< nothing to propose: leader must wait for more 1Bs
};

/// Stable lowercase name of a selection branch (metric keys, trace labels).
[[nodiscard]] const char* to_cstring(SelectionBranch branch) noexcept;

/// Deliberately weakened variants for the A1 ablation experiment.
enum class SelectionPolicy {
  kPaper,               ///< the full rule from Figure 1
  kNoProposerExclusion, ///< R := Q (drop the proposer-not-in-Q filter)
  kNoMaxTieBreak,       ///< at threshold, pick the *minimum* candidate
  kNoThresholdBranch,   ///< drop the = n-f-e branch entirely
};

struct SelectionInput {
  consensus::SystemConfig config;
  std::vector<PeerState> peers;    ///< the 1B quorum Q (|peers| >= n-f)
  consensus::Value own_initial;    ///< the leader's initial_val (may be ⊥)
  SelectionPolicy policy = SelectionPolicy::kPaper;
};

struct SelectionResult {
  consensus::Value value;  ///< ⊥ iff branch == kNone
  SelectionBranch branch = SelectionBranch::kNone;
};

/// Executes lines 22-31 of Figure 1 on the snapshot `in.peers`.
///
/// Deviation from the paper, documented in DESIGN.md: when every branch of
/// the paper's rule yields ⊥ but some peer reported a non-⊥ vote or a non-⊥
/// own proposal, we select the maximum such value (kCompletion).  This is
/// safe: whenever the rule reaches this point, Lemma 7/C.2's contrapositive
/// shows no value has been or can ever be decided at ballot 0 (any
/// still-decidable value would have >= n-f-e votes inside R), and no slow
/// ballot b'' < b can have decided either (its n-f voters would intersect Q
/// and surface as vbal > 0).  Hence any *proposed* value may be chosen.
/// Without the completion a leader that never proposed could stall a
/// pending propose() whose broadcasts were refused everywhere, violating
/// wait-freedom of the object (and Termination of the task when proposals
/// race with pre-GST ballot churn).
SelectionResult select_value(const SelectionInput& in);

}  // namespace twostep::core
