// TwoStepWithOmega: the paper's protocol composed with the real
// heartbeat-based Ω failure detector (§C.1) into a single self-contained
// protocol — no oracle.  Heartbeats ride the same network as consensus
// messages; the embedded HeartbeatOmega elects the lowest process that is
// not suspected, and the consensus half consults it when its new-ballot
// timer fires.  Under partial synchrony this yields the full Termination
// argument of the paper with no simulation-level cheating.
#pragma once

#include <memory>
#include <variant>

#include "consensus/env.hpp"
#include "core/two_step.hpp"
#include "omega/omega.hpp"

namespace twostep::core {

/// Wire type: consensus messages or failure-detector heartbeats.
using OmegaMessage = std::variant<Message, omega::Heartbeat>;

struct WithOmegaOptions {
  Mode mode = Mode::kTask;
  sim::Tick delta = 1;
  SelectionPolicy selection_policy = SelectionPolicy::kPaper;
  /// Heartbeat period; eventual accuracy needs timeout >= delta + period.
  sim::Tick heartbeat_period = 0;   ///< 0: defaults to delta
  sim::Tick suspect_timeout = 0;    ///< 0: defaults to 2*delta + period
};

/// One process of the composed protocol.  Satisfies the Cluster<P> contract.
class TwoStepWithOmega {
 public:
  using Message = OmegaMessage;

  TwoStepWithOmega(consensus::Env<Message>& env, consensus::SystemConfig config,
                   WithOmegaOptions options);

  void start();
  void propose(consensus::Value v) { inner_->propose(v); }
  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  std::function<void(consensus::Value)> on_decide;

  [[nodiscard]] bool has_decided() const { return inner_->has_decided(); }
  [[nodiscard]] consensus::Value decided_value() const { return inner_->decided_value(); }
  [[nodiscard]] consensus::ProcessId current_leader() const { return detector_.leader(); }
  [[nodiscard]] TwoStepProcess& consensus_process() { return *inner_; }

 private:
  /// Adapter presenting the composed env to the inner consensus protocol.
  class InnerEnv final : public consensus::Env<core::Message> {
   public:
    explicit InnerEnv(TwoStepWithOmega& host) : host_(host) {}
    [[nodiscard]] consensus::ProcessId self() const override { return host_.env_.self(); }
    [[nodiscard]] int cluster_size() const override { return host_.env_.cluster_size(); }
    [[nodiscard]] sim::Tick now() const override { return host_.env_.now(); }
    void send(consensus::ProcessId to, const core::Message& m) override {
      host_.env_.send(to, OmegaMessage{m});
    }
    consensus::TimerId set_timer(sim::Tick delay) override {
      return host_.env_.set_timer(delay);
    }
    void cancel_timer(consensus::TimerId id) override { host_.env_.cancel_timer(id); }

   private:
    TwoStepWithOmega& host_;
  };

  consensus::Env<Message>& env_;
  InnerEnv inner_env_;
  omega::HeartbeatOmega detector_;
  std::unique_ptr<TwoStepProcess> inner_;
};

}  // namespace twostep::core
