#include "core/two_step.hpp"

#include <sstream>
#include <stdexcept>

#include "util/log.hpp"

namespace twostep::core {

using consensus::Ballot;
using consensus::ProcessId;
using consensus::TimerId;
using consensus::Value;

TwoStepProcess::TwoStepProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                               Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("TwoStepProcess: delta must be > 0");
  if (obs::MetricsRegistry* reg = options_.probe.metrics) {
    stats_.decisions_fast = &reg->counter("decisions.fast");
    stats_.decisions_slow = &reg->counter("decisions.slow");
    stats_.decisions_learned = &reg->counter("decisions.learned");
    stats_.ballots_started = &reg->counter("ballots.started");
    for (int i = 0; i < 7; ++i) {
      const auto branch = static_cast<SelectionBranch>(i);
      stats_.selection[i] =
          &reg->counter(std::string("selection.") + to_cstring(branch));
    }
    stats_.decision_latency = &reg->histogram("decision_latency");
  }
}

void TwoStepProcess::start() {
  if (started_) return;
  started_ = true;
  // §C.1: the timer is initially set to 2Δ, giving the fast path just
  // enough time; re-armed with 5Δ afterwards.
  if (options_.enable_ballot_timer) env_.set_timer(2 * options_.delta);
}

void TwoStepProcess::restore(const AcceptorState& s) {
  bal_ = s.bal;
  vbal_ = s.vbal;
  val_ = s.val;
  proposer_ = s.proposer;
  initial_val_ = s.initial;
  decided_ = s.decided;
  // A restored decision must stay silent: it was notified and broadcast in
  // the pre-crash incarnation (or the broadcast is covered by the durable
  // votes of the deciding quorum).
  decide_notified_ = !decided_.is_bottom();
}

void TwoStepProcess::propose(Value v) {
  if (v.is_bottom()) throw std::invalid_argument("propose: value must not be bottom");
  // Figure 1, line 2: only a process that has not yet voted adopts and
  // broadcasts its own proposal.  (In object mode a process that already
  // voted for someone else's value keeps initial_val = ⊥ and will learn the
  // decision via Decide.)
  if (!val_.is_bottom()) return;
  if (!initial_val_.is_bottom()) return;  // propose is at-most-once
  initial_val_ = v;
  env_.broadcast_others(ProposeMsg{v});
  maybe_decide_fast();  // n - e == 1 degenerate case decides immediately
}

consensus::ProcessId TwoStepProcess::omega_leader() const {
  return options_.leader_of ? options_.leader_of() : ProcessId{0};
}

Ballot TwoStepProcess::next_owned_ballot() const {
  const auto n = static_cast<Ballot>(config_.n);
  const auto self = static_cast<Ballot>(env_.self());
  const Ballot base = bal_ + 1;
  const Ballot shift = ((self - base) % n + n) % n;
  return base + shift;
}

void TwoStepProcess::on_timer(TimerId) {
  if (has_decided()) return;
  if (!options_.enable_ballot_timer) return;
  env_.set_timer(5 * options_.delta);
  if (omega_leader() != env_.self()) return;
  const Ballot b = next_owned_ballot();
  TWOSTEP_LOG(kDebug) << "p" << env_.self() << " starts ballot " << b;
  if (stats_.ballots_started) stats_.ballots_started->add();
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kBallotStart, .at = env_.now(),
                           .process = env_.self(), .ballot = b};
  });
  // Broadcast to Π including self: our own 1A moves us to ballot b and our
  // own 1B joins the quorum.
  env_.broadcast_all(OneAMsg{b});
}

void TwoStepProcess::on_message(ProcessId from, const Message& m) {
  std::visit([&](const auto& msg) { handle(from, msg); }, m);
}

void TwoStepProcess::handle(ProcessId from, const ProposeMsg& m) {
  // Figure 1, line 7 precondition.
  if (bal_ != 0 || !val_.is_bottom() || m.v < initial_val_) return;
  // Red-line condition (object mode): a proposer only votes for a foreign
  // proposal equal to its own.
  if (options_.mode == Mode::kObject && !initial_val_.is_bottom() && m.v != initial_val_) return;
  val_ = m.v;
  proposer_ = from;
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kPhaseTransition, .at = env_.now(),
                           .process = env_.self(), .peer = from, .ballot = 0,
                           .value = m.v, .label = "fast_vote"};
  });
  env_.send(from, TwoBMsg{0, m.v});
}

void TwoStepProcess::maybe_decide_fast() {
  // Figure 1, line 8, first disjunct: bal = 0, |P ∪ {p_i}| >= n - e,
  // val ∈ {⊥, v} where v is our own proposal.
  if (has_decided() || bal_ != 0) return;
  if (initial_val_.is_bottom()) return;
  if (!val_.is_bottom() && val_ != initial_val_) return;
  if (static_cast<int>(fast_voters_.size()) + 1 >= config_.fast_quorum())
    decide(initial_val_, DecideKind::kFast);
}

void TwoStepProcess::handle(ProcessId from, const TwoBMsg& m) {
  if (m.b == 0) {
    // A fast-path vote for our own proposal.
    if (initial_val_.is_bottom() || m.v != initial_val_) return;
    fast_voters_.insert(from);
    maybe_decide_fast();
    return;
  }
  // Slow-path vote for a ballot we lead (line 8, second disjunct).
  const auto it = led_.find(m.b);
  if (it == led_.end() || !it->second.sent_two_a || m.v != it->second.two_a_value) return;
  it->second.twobs.insert(from);
  if (static_cast<int>(it->second.twobs.size()) >= config_.classic_quorum())
    decide(m.v, DecideKind::kSlow);
}

void TwoStepProcess::handle(ProcessId, const DecideMsg& m) {
  decide(m.v, DecideKind::kLearned);
}

void TwoStepProcess::handle(ProcessId from, const OneAMsg& m) {
  if (m.b <= bal_) return;
  bal_ = m.b;
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kPhaseTransition, .at = env_.now(),
                           .process = env_.self(), .peer = from, .ballot = m.b,
                           .label = "join_ballot"};
  });
  env_.send(from, OneBMsg{m.b, vbal_, val_, proposer_, decided_, initial_val_});
}

void TwoStepProcess::handle(ProcessId from, const OneBMsg& m) {
  // Only the owner of ballot b aggregates its 1Bs.
  if (m.b <= 0 || m.b % config_.n != static_cast<Ballot>(env_.self())) return;
  auto& led = led_[m.b];
  if (!led.onebs.contains(from)) {
    led.onebs.emplace(from, m);
    led.arrival.push_back(from);
  }
  maybe_send_two_a(m.b);
}

void TwoStepProcess::maybe_send_two_a(Ballot b) {
  auto& led = led_[b];
  if (led.sent_two_a) return;
  const int quorum = config_.classic_quorum();
  if (static_cast<int>(led.arrival.size()) < quorum) return;

  SelectionInput in;
  in.config = config_;
  in.own_initial = initial_val_;
  in.policy = options_.selection_policy;

  if (!led.exhausted_fast_path) {
    // The paper's rule is stated for |Q| = n - f exactly; the uniqueness
    // argument of Lemma 7 / C.2 relies on it.  Use the first n - f arrivals.
    in.peers.reserve(static_cast<std::size_t>(quorum));
    for (int i = 0; i < quorum; ++i) {
      const ProcessId q = led.arrival[static_cast<std::size_t>(i)];
      const OneBMsg& ob = led.onebs.at(q);
      in.peers.push_back(PeerState{q, ob.vbal, ob.val, ob.proposer, ob.decided, ob.initial});
    }
    const SelectionResult res = select_value(in);
    note_selection(b, res);
    if (res.branch != SelectionBranch::kNone) {
      led.sent_two_a = true;
      led.two_a_value = res.value;
      TWOSTEP_LOG(kDebug) << "p" << env_.self() << " 2A(" << b << ", "
                          << res.value.to_string() << ") branch "
                          << static_cast<int>(res.branch);
      env_.broadcast_all(TwoAMsg{b, res.value});
      return;
    }
    // Nothing to propose: the exact quorum was entirely voteless (and we
    // never proposed).  Since those n - f processes are now locked out of
    // ballot 0 and of every ballot < b, no decision can exist or ever arise
    // at a ballot < b; adopting *any* vote seen in later 1Bs is safe.  This
    // keeps a leader that never proposed from stalling pending propose()
    // invocations of processes outside the quorum (wait-freedom).
    led.exhausted_fast_path = true;
  }

  // Completion: re-run the rule over everything received so far.
  in.peers.clear();
  in.peers.reserve(led.onebs.size());
  for (const auto& [q, ob] : led.onebs)
    in.peers.push_back(PeerState{q, ob.vbal, ob.val, ob.proposer, ob.decided, ob.initial});
  const SelectionResult res = select_value(in);
  note_selection(b, res);
  if (res.branch == SelectionBranch::kNone) return;  // still nothing; keep waiting
  led.sent_two_a = true;
  led.two_a_value = res.value;
  env_.broadcast_all(TwoAMsg{b, res.value});
}

void TwoStepProcess::handle(ProcessId from, const TwoAMsg& m) {
  if (bal_ > m.b) return;  // precondition: bal <= b
  val_ = m.v;
  bal_ = m.b;
  vbal_ = m.b;
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kPhaseTransition, .at = env_.now(),
                           .process = env_.self(), .peer = from, .ballot = m.b,
                           .value = m.v, .label = "accept"};
  });
  env_.send(from, TwoBMsg{m.b, m.v});
}

void TwoStepProcess::note_selection(Ballot b, const SelectionResult& res) {
  if (obs::Counter* c = stats_.selection[static_cast<int>(res.branch)]) c->add();
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kSelectionVerdict, .at = env_.now(),
                           .process = env_.self(), .ballot = b, .value = res.value,
                           .label = to_cstring(res.branch)};
  });
}

void TwoStepProcess::decide(Value v, DecideKind kind) {
  if (decide_notified_) return;
  val_ = v;
  decided_ = v;
  decide_notified_ = true;
  TWOSTEP_LOG(kDebug) << "p" << env_.self() << " decides " << v.to_string();
  const char* label = kind == DecideKind::kFast ? "fast"
                      : kind == DecideKind::kSlow ? "slow" : "learned";
  obs::Counter* counter = kind == DecideKind::kFast ? stats_.decisions_fast
                          : kind == DecideKind::kSlow ? stats_.decisions_slow
                                                      : stats_.decisions_learned;
  if (counter) counter->add();
  if (stats_.decision_latency) stats_.decision_latency->add(static_cast<double>(env_.now()));
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kDecision, .at = env_.now(),
                           .process = env_.self(), .ballot = bal_, .value = v,
                           .label = label};
  });
  if (kind != DecideKind::kLearned) env_.broadcast_others(DecideMsg{v});
  if (on_decide) on_decide(v);
}

}  // namespace twostep::core
