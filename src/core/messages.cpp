#include "core/messages.hpp"

#include <sstream>

namespace twostep::core {

std::string to_string(const Message& m) {
  std::ostringstream os;
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, ProposeMsg>) {
          os << "Propose(" << msg.v << ")";
        } else if constexpr (std::is_same_v<T, OneAMsg>) {
          os << "1A(" << msg.b << ")";
        } else if constexpr (std::is_same_v<T, OneBMsg>) {
          os << "1B(" << msg.b << ", vbal=" << msg.vbal << ", val=" << msg.val
             << ", proposer=" << msg.proposer << ", decided=" << msg.decided << ")";
        } else if constexpr (std::is_same_v<T, TwoAMsg>) {
          os << "2A(" << msg.b << ", " << msg.v << ")";
        } else if constexpr (std::is_same_v<T, TwoBMsg>) {
          os << "2B(" << msg.b << ", " << msg.v << ")";
        } else {
          os << "Decide(" << msg.v << ")";
        }
      },
      m);
  return os.str();
}

}  // namespace twostep::core
