// Wire messages of the paper's protocol (Figure 1).
#pragma once

#include <string>
#include <variant>

#include "consensus/types.hpp"

namespace twostep::core {

/// 𝙿𝚛𝚘𝚙𝚘𝚜𝚎(v): fast-ballot proposal broadcast by a proposer (line 4).
struct ProposeMsg {
  consensus::Value v;
  friend bool operator==(const ProposeMsg&, const ProposeMsg&) = default;
};

/// 𝟷𝙰(b): ask processes to join slow ballot b (line 1A handler).
struct OneAMsg {
  consensus::Ballot b = 0;
  friend bool operator==(const OneAMsg&, const OneAMsg&) = default;
};

/// 𝟷𝙱(b, vbal, val, proposer, decided): a process's state snapshot sent to
/// the ballot-b leader.  The `initial` field is a liveness completion not in
/// the paper's figure (see select_value() docs): it lets a leader that never
/// proposed recover proposals whose Propose broadcasts were refused
/// everywhere, which is required for wait-freedom of the object.
struct OneBMsg {
  consensus::Ballot b = 0;
  consensus::Ballot vbal = 0;
  consensus::Value val;
  consensus::ProcessId proposer = consensus::kNoProcess;
  consensus::Value decided;
  consensus::Value initial;
  friend bool operator==(const OneBMsg&, const OneBMsg&) = default;
};

/// 𝟸𝙰(b, v): the ballot-b leader's proposal.
struct TwoAMsg {
  consensus::Ballot b = 0;
  consensus::Value v;
  friend bool operator==(const TwoAMsg&, const TwoAMsg&) = default;
};

/// 𝟸𝙱(b, v): a vote for v at ballot b, sent back to the proposer (b = 0) or
/// ballot leader (b > 0).
struct TwoBMsg {
  consensus::Ballot b = 0;
  consensus::Value v;
  friend bool operator==(const TwoBMsg&, const TwoBMsg&) = default;
};

/// 𝙳𝚎𝚌𝚒𝚍𝚎(v): decision dissemination.
struct DecideMsg {
  consensus::Value v;
  friend bool operator==(const DecideMsg&, const DecideMsg&) = default;
};

using Message = std::variant<ProposeMsg, OneAMsg, OneBMsg, TwoAMsg, TwoBMsg, DecideMsg>;

/// Human-readable rendering for traces and test diagnostics.
std::string to_string(const Message& m);

/// Static message-type label, found by ADL from obs::message_label: powers
/// the per-type network counters and trace event labels.
[[nodiscard]] constexpr const char* message_name(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return "Propose";
    case 1: return "1A";
    case 2: return "1B";
    case 3: return "2A";
    case 4: return "2B";
    default: return "Decide";
  }
}

}  // namespace twostep::core
