// Egalitarian Paxos (Moraru et al., SOSP 2013), single-key-space core — the
// protocol whose two-step behaviour with only 2f+1 processes motivated the
// paper ("what's going on?").
//
// Every replica is the command leader of its own instances.  Committing a
// command takes two message delays on the fast path: the leader PreAccepts
// the command with its current dependency set to a fast quorum of
// f + floor((f+1)/2) replicas (itself included; n = 2f+1); if all replies
// report the same dependencies, the command commits immediately.  This is
// exactly the operating point e = ceil((f+1)/2), n = 2f+1 = 2e+f-1 from the
// paper's introduction.  Interfering commands (same key) fall back to the
// Accept round: the leader aggregates the union of reported dependencies
// and runs a classic quorum round on (cmd, deps, seq) before committing —
// two extra delays.
//
// Execution: committed instances are applied in dependency order, breaking
// ties (and cycles, which interference can create) with (seq, instance id),
// per the EPaxos execution algorithm.
//
// Simplification documented in DESIGN.md: explicit recovery of instances
// whose leader crashed mid-protocol (EPaxos's ExplicitPrepare) is
// implemented for the common cases (seen-as-PreAccepted / seen-as-Accepted /
// not-seen => no-op) and falls back to an Accept round.  The PreAccepted
// case must respect a possible fast-path commit: the crashed leader may
// already have committed its *original* attributes.  Two sub-cases:
//
//  - The owner's own pre-accept is among the replies (the owner answered a
//    Prepare, or the owner itself is recovering a restored instance).  A
//    pre-accepted answer proves the owner never committed — the node
//    runtime makes every commit durable before any frame leaves the node —
//    so no fast commit ever happened and the attributes are still free.
//    Stale pre-accept unions can miss instances committed while the owner
//    was down, so recovery re-runs Phase 1 at its ballot: a live quorum
//    re-assigns the attributes and the round finishes on the slow path.
//
//  - The owner is silent.  Acceptors only ever add to the attributes, so
//    any fast-committed original is a subset of every pre-accept reply —
//    when one reply's attributes are <= all others', recovery re-commits
//    exactly those (for n = 3 that reply also carries an edge to every
//    instance committed without one, because both non-owner replicas are
//    in every such instance's quorum); only when no such reply exists (no
//    fast commit was possible) does it take the conservative union.
//
// The optimized-quorum TryPreAccept corner (n > 3 with a silent owner and
// divergent pre-accepts) is not implemented.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::epaxos {

/// Payload marker for the no-op committed by recovery when no replica has
/// seen the original command.
inline constexpr std::int64_t kNoOpPayload = std::numeric_limits<std::int64_t>::min();

/// A state-machine command.  Two commands interfere iff they touch the same
/// key; only interfering commands constrain each other's execution order.
struct Command {
  std::int64_t key = 0;
  std::int64_t payload = 0;
  friend bool operator==(const Command&, const Command&) = default;
  friend auto operator<=>(const Command&, const Command&) = default;
  [[nodiscard]] bool interferes(const Command& other) const { return key == other.key; }
};

/// Instance identifier: (owning replica, per-replica sequence number).
struct InstanceId {
  consensus::ProcessId replica = consensus::kNoProcess;
  std::int32_t index = -1;
  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
  [[nodiscard]] bool valid() const { return replica >= 0 && index >= 0; }
};

using DepSet = std::set<InstanceId>;

enum class Status : std::uint8_t {
  kNone = 0,
  kPreAccepted,
  kAccepted,
  kCommitted,
  kExecuted,
};

// ---- wire messages ----

struct PreAcceptMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;  ///< 0 = owner's round; >0 = recovery re-proposal
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const PreAcceptMsg&, const PreAcceptMsg&) = default;
};
struct PreAcceptReplyMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  DepSet deps;          ///< possibly extended by the replier
  std::int64_t seq = 0; ///< possibly increased by the replier
  bool changed = false; ///< deps/seq differ from the leader's proposal
  friend bool operator==(const PreAcceptReplyMsg&, const PreAcceptReplyMsg&) = default;
};
struct AcceptMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const AcceptMsg&, const AcceptMsg&) = default;
};
struct AcceptReplyMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  friend bool operator==(const AcceptReplyMsg&, const AcceptReplyMsg&) = default;
};
struct CommitMsg {
  InstanceId instance;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const CommitMsg&, const CommitMsg&) = default;
};
struct PrepareMsg {  // explicit recovery
  InstanceId instance;
  consensus::Ballot ballot = 0;
  friend bool operator==(const PrepareMsg&, const PrepareMsg&) = default;
};
struct PrepareReplyMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  Status status = Status::kNone;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const PrepareReplyMsg&, const PrepareReplyMsg&) = default;
};

using Message = std::variant<PreAcceptMsg, PreAcceptReplyMsg, AcceptMsg, AcceptReplyMsg,
                             CommitMsg, PrepareMsg, PrepareReplyMsg>;

/// Static message-type label (ADL-found by obs::message_label).
[[nodiscard]] constexpr const char* message_name(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return "PreAccept";
    case 1: return "PreAcceptReply";
    case 2: return "Accept";
    case 3: return "AcceptReply";
    case 4: return "Commit";
    case 5: return "Prepare";
    default: return "PrepareReply";
  }
}

struct Options {
  sim::Tick delta = 1;
  /// Recovery timeout for instances stuck without a commit (owner crashed).
  /// 0 disables automatic recovery (tests drive it manually).
  sim::Tick recovery_timeout = 0;
  obs::Probe probe;  ///< tracing + metrics; off by default
};

/// One EPaxos replica (command leader + acceptor + executor).
class EPaxosReplica {
 public:
  using Message = epaxos::Message;

  EPaxosReplica(consensus::Env<Message>& env, consensus::SystemConfig config, Options options);

  void start();

  /// Submits a command with this replica as command leader.  Returns its
  /// instance id.  The commit is reported via on_commit; execution order via
  /// on_execute.
  InstanceId submit(Command cmd);

  /// Cluster-harness adapter: proposes the value as a command on key 0
  /// (every such command interferes with every other).
  void propose(consensus::Value v) { submit(Command{0, v.get()}); }

  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  /// Fired when an instance commits locally (leader or via Commit message).
  std::function<void(InstanceId, const Command&)> on_commit;
  /// Cluster-harness adapter: fired once, on our first own commit.
  std::function<void(consensus::Value)> on_decide;
  /// Fired when a command is executed (dependency order); the interesting
  /// signal for linearizable reads.
  std::function<void(InstanceId, const Command&)> on_execute;

  // --- introspection for tests and benches ---
  [[nodiscard]] Status status(InstanceId id) const;
  [[nodiscard]] std::optional<Command> committed_command(InstanceId id) const;
  [[nodiscard]] DepSet committed_deps(InstanceId id) const;
  [[nodiscard]] int committed_count() const;
  [[nodiscard]] int executed_count() const { return executed_count_; }
  [[nodiscard]] bool used_fast_path(InstanceId id) const;
  [[nodiscard]] int fast_quorum() const noexcept { return fast_quorum_; }

  /// Starts explicit recovery of a (possibly foreign) instance.
  void recover(InstanceId id);

  // --- durability (storage::Durable<epaxos host>) ---

  /// The acceptor-critical slice of one instance: what a restarted replica
  /// must still know to keep its PreAccept/Accept promises and re-derive
  /// execution.  Leader-side tallies are deliberately volatile (losing
  /// them delays an in-flight instance until recovery, never breaks
  /// agreement), and kExecuted is captured as kCommitted — execution order
  /// is a pure function of the committed dependency graph.
  struct InstanceState {
    Command cmd;
    DepSet deps;
    std::int64_t seq = 0;
    Status status = Status::kNone;
    consensus::Ballot ballot = 0;
    friend bool operator==(const InstanceState&, const InstanceState&) = default;
  };

  /// Durable view of an instance (kExecuted reads as kCommitted); nullopt
  /// for instances this replica has never touched.
  [[nodiscard]] std::optional<InstanceState> instance_state(InstanceId id) const;

  /// Reinstates one instance from its durable record: no messages are
  /// sent, own indices advance next_index_, and a committed restore fires
  /// on_commit and re-runs execution (on_execute fires in dependency order
  /// as the committed graph fills back in).
  void restore_instance(InstanceId id, const InstanceState& s);

  /// Instances whose state may have changed since the last drain.  Cleared
  /// by the call; maintained by every mutating entry point (submit,
  /// message, timer, recovery).
  [[nodiscard]] std::vector<InstanceId> drain_dirty_instances();

  /// Commit retransmissions for anti-entropy: one CommitMsg per committed
  /// (or executed) instance, in instance-id order.
  [[nodiscard]] std::vector<CommitMsg> committed_commits() const;

  /// Debug/audit introspection: visits every instance this replica knows,
  /// in instance-id order, with its raw (un-clamped) status.
  template <class Fn>
  void for_each_instance(Fn&& fn) const {
    for (const auto& [id, inst] : instances_)
      fn(id, InstanceState{inst.cmd, inst.deps, inst.seq, inst.status, inst.ballot});
  }

 private:
  struct Instance {
    Command cmd;
    DepSet deps;
    std::int64_t seq = 0;
    Status status = Status::kNone;
    consensus::Ballot ballot = 0;  ///< 0 = the owner's initial ballot

    // Leader-side bookkeeping.
    bool leading = false;
    bool fast_eligible = true;  ///< no reply changed deps/seq so far
    int preaccept_replies = 0;
    int accept_replies = 0;
    DepSet merged_deps;
    std::int64_t merged_seq = 0;
    bool fast_committed = false;

    // Recovery bookkeeping.
    std::vector<PrepareReplyMsg> prepare_replies;
    bool owner_preaccept = false;  ///< a PrepareReply from the instance owner said kPreAccepted
    bool recovering = false;
    int stall_ticks = 0;  ///< consecutive timer scans spent un-committed
  };

  void handle(consensus::ProcessId from, const PreAcceptMsg& m);
  void handle(consensus::ProcessId from, const PreAcceptReplyMsg& m);
  void handle(consensus::ProcessId from, const AcceptMsg& m);
  void handle(consensus::ProcessId from, const AcceptReplyMsg& m);
  void handle(consensus::ProcessId from, const CommitMsg& m);
  void handle(consensus::ProcessId from, const PrepareMsg& m);
  void handle(consensus::ProcessId from, const PrepareReplyMsg& m);

  /// Dependencies/seq this replica would assign to `cmd` in `instance`.
  void assign_attributes(const Command& cmd, InstanceId self_id, DepSet& deps,
                         std::int64_t& seq) const;

  void begin_accept_round(InstanceId id);
  void commit(InstanceId id, const Command& cmd, const DepSet& deps, std::int64_t seq,
              bool broadcast);
  void try_execute();
  bool execute_instance(InstanceId id, std::set<InstanceId>& visiting);

  /// The one mutable access path to an instance; every caller may change
  /// state, so the instance is marked dirty for the next durability drain.
  Instance& instance(InstanceId id) {
    dirty_.insert(id);
    return instances_[id];
  }
  [[nodiscard]] const Instance* find(InstanceId id) const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;
  int fast_quorum_;     ///< f + floor((f+1)/2), leader included
  int classic_quorum_;  ///< floor(n/2) + 1

  // Metric handles resolved once at construction (null when metrics off).
  // Fast/slow count leader-side commits only (one per instance cluster-wide);
  // learned counts commits via Commit messages.
  struct {
    obs::Counter* commits_fast = nullptr;
    obs::Counter* commits_slow = nullptr;
    obs::Counter* commits_learned = nullptr;
    obs::Counter* executed = nullptr;
  } stats_;

  std::map<InstanceId, Instance> instances_;
  std::set<InstanceId> dirty_;  ///< touched since the last durability drain
  std::int32_t next_index_ = 0;
  int committed_count_ = 0;
  int executed_count_ = 0;
  bool own_commit_reported_ = false;
};

}  // namespace twostep::epaxos
