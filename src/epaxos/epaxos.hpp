// Egalitarian Paxos (Moraru et al., SOSP 2013), single-key-space core — the
// protocol whose two-step behaviour with only 2f+1 processes motivated the
// paper ("what's going on?").
//
// Every replica is the command leader of its own instances.  Committing a
// command takes two message delays on the fast path: the leader PreAccepts
// the command with its current dependency set to a fast quorum of
// f + floor((f+1)/2) replicas (itself included; n = 2f+1); if all replies
// report the same dependencies, the command commits immediately.  This is
// exactly the operating point e = ceil((f+1)/2), n = 2f+1 = 2e+f-1 from the
// paper's introduction.  Interfering commands (same key) fall back to the
// Accept round: the leader aggregates the union of reported dependencies
// and runs a classic quorum round on (cmd, deps, seq) before committing —
// two extra delays.
//
// Execution: committed instances are applied in dependency order, breaking
// ties (and cycles, which interference can create) with (seq, instance id),
// per the EPaxos execution algorithm.
//
// Simplification documented in DESIGN.md: explicit recovery of instances
// whose leader crashed mid-protocol (EPaxos's ExplicitPrepare) is
// implemented for the common cases (seen-as-PreAccepted / seen-as-Accepted /
// not-seen => no-op) but does not implement the optimized-quorum
// TryPreAccept corner; recovery therefore conservatively falls back to the
// Accept round, which is always safe with the simple (non-thrifty) quorums
// used here.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::epaxos {

/// Payload marker for the no-op committed by recovery when no replica has
/// seen the original command.
inline constexpr std::int64_t kNoOpPayload = std::numeric_limits<std::int64_t>::min();

/// A state-machine command.  Two commands interfere iff they touch the same
/// key; only interfering commands constrain each other's execution order.
struct Command {
  std::int64_t key = 0;
  std::int64_t payload = 0;
  friend bool operator==(const Command&, const Command&) = default;
  friend auto operator<=>(const Command&, const Command&) = default;
  [[nodiscard]] bool interferes(const Command& other) const { return key == other.key; }
};

/// Instance identifier: (owning replica, per-replica sequence number).
struct InstanceId {
  consensus::ProcessId replica = consensus::kNoProcess;
  std::int32_t index = -1;
  friend bool operator==(const InstanceId&, const InstanceId&) = default;
  friend auto operator<=>(const InstanceId&, const InstanceId&) = default;
  [[nodiscard]] bool valid() const { return replica >= 0 && index >= 0; }
};

using DepSet = std::set<InstanceId>;

enum class Status : std::uint8_t {
  kNone = 0,
  kPreAccepted,
  kAccepted,
  kCommitted,
  kExecuted,
};

// ---- wire messages ----

struct PreAcceptMsg {
  InstanceId instance;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const PreAcceptMsg&, const PreAcceptMsg&) = default;
};
struct PreAcceptReplyMsg {
  InstanceId instance;
  DepSet deps;          ///< possibly extended by the replier
  std::int64_t seq = 0; ///< possibly increased by the replier
  bool changed = false; ///< deps/seq differ from the leader's proposal
  friend bool operator==(const PreAcceptReplyMsg&, const PreAcceptReplyMsg&) = default;
};
struct AcceptMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const AcceptMsg&, const AcceptMsg&) = default;
};
struct AcceptReplyMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  friend bool operator==(const AcceptReplyMsg&, const AcceptReplyMsg&) = default;
};
struct CommitMsg {
  InstanceId instance;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const CommitMsg&, const CommitMsg&) = default;
};
struct PrepareMsg {  // explicit recovery
  InstanceId instance;
  consensus::Ballot ballot = 0;
  friend bool operator==(const PrepareMsg&, const PrepareMsg&) = default;
};
struct PrepareReplyMsg {
  InstanceId instance;
  consensus::Ballot ballot = 0;
  Status status = Status::kNone;
  Command cmd;
  DepSet deps;
  std::int64_t seq = 0;
  friend bool operator==(const PrepareReplyMsg&, const PrepareReplyMsg&) = default;
};

using Message = std::variant<PreAcceptMsg, PreAcceptReplyMsg, AcceptMsg, AcceptReplyMsg,
                             CommitMsg, PrepareMsg, PrepareReplyMsg>;

/// Static message-type label (ADL-found by obs::message_label).
[[nodiscard]] constexpr const char* message_name(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return "PreAccept";
    case 1: return "PreAcceptReply";
    case 2: return "Accept";
    case 3: return "AcceptReply";
    case 4: return "Commit";
    case 5: return "Prepare";
    default: return "PrepareReply";
  }
}

struct Options {
  sim::Tick delta = 1;
  /// Recovery timeout for instances stuck without a commit (owner crashed).
  /// 0 disables automatic recovery (tests drive it manually).
  sim::Tick recovery_timeout = 0;
  obs::Probe probe;  ///< tracing + metrics; off by default
};

/// One EPaxos replica (command leader + acceptor + executor).
class EPaxosReplica {
 public:
  using Message = epaxos::Message;

  EPaxosReplica(consensus::Env<Message>& env, consensus::SystemConfig config, Options options);

  void start();

  /// Submits a command with this replica as command leader.  Returns its
  /// instance id.  The commit is reported via on_commit; execution order via
  /// on_execute.
  InstanceId submit(Command cmd);

  /// Cluster-harness adapter: proposes the value as a command on key 0
  /// (every such command interferes with every other).
  void propose(consensus::Value v) { submit(Command{0, v.get()}); }

  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  /// Fired when an instance commits locally (leader or via Commit message).
  std::function<void(InstanceId, const Command&)> on_commit;
  /// Cluster-harness adapter: fired once, on our first own commit.
  std::function<void(consensus::Value)> on_decide;
  /// Fired when a command is executed (dependency order); the interesting
  /// signal for linearizable reads.
  std::function<void(InstanceId, const Command&)> on_execute;

  // --- introspection for tests and benches ---
  [[nodiscard]] Status status(InstanceId id) const;
  [[nodiscard]] std::optional<Command> committed_command(InstanceId id) const;
  [[nodiscard]] DepSet committed_deps(InstanceId id) const;
  [[nodiscard]] int committed_count() const;
  [[nodiscard]] int executed_count() const { return executed_count_; }
  [[nodiscard]] bool used_fast_path(InstanceId id) const;
  [[nodiscard]] int fast_quorum() const noexcept { return fast_quorum_; }

  /// Starts explicit recovery of a (possibly foreign) instance.
  void recover(InstanceId id);

 private:
  struct Instance {
    Command cmd;
    DepSet deps;
    std::int64_t seq = 0;
    Status status = Status::kNone;
    consensus::Ballot ballot = 0;  ///< 0 = the owner's initial ballot

    // Leader-side bookkeeping.
    bool leading = false;
    bool fast_eligible = true;  ///< no reply changed deps/seq so far
    int preaccept_replies = 0;
    int accept_replies = 0;
    DepSet merged_deps;
    std::int64_t merged_seq = 0;
    bool fast_committed = false;

    // Recovery bookkeeping.
    std::vector<PrepareReplyMsg> prepare_replies;
    bool recovering = false;
  };

  void handle(consensus::ProcessId from, const PreAcceptMsg& m);
  void handle(consensus::ProcessId from, const PreAcceptReplyMsg& m);
  void handle(consensus::ProcessId from, const AcceptMsg& m);
  void handle(consensus::ProcessId from, const AcceptReplyMsg& m);
  void handle(consensus::ProcessId from, const CommitMsg& m);
  void handle(consensus::ProcessId from, const PrepareMsg& m);
  void handle(consensus::ProcessId from, const PrepareReplyMsg& m);

  /// Dependencies/seq this replica would assign to `cmd` in `instance`.
  void assign_attributes(const Command& cmd, InstanceId self_id, DepSet& deps,
                         std::int64_t& seq) const;

  void begin_accept_round(InstanceId id);
  void commit(InstanceId id, const Command& cmd, const DepSet& deps, std::int64_t seq,
              bool broadcast);
  void try_execute();
  bool execute_instance(InstanceId id, std::set<InstanceId>& visiting);

  Instance& instance(InstanceId id) { return instances_[id]; }
  [[nodiscard]] const Instance* find(InstanceId id) const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;
  int fast_quorum_;     ///< f + floor((f+1)/2), leader included
  int classic_quorum_;  ///< floor(n/2) + 1

  // Metric handles resolved once at construction (null when metrics off).
  // Fast/slow count leader-side commits only (one per instance cluster-wide);
  // learned counts commits via Commit messages.
  struct {
    obs::Counter* commits_fast = nullptr;
    obs::Counter* commits_slow = nullptr;
    obs::Counter* commits_learned = nullptr;
    obs::Counter* executed = nullptr;
  } stats_;

  std::map<InstanceId, Instance> instances_;
  std::int32_t next_index_ = 0;
  int committed_count_ = 0;
  int executed_count_ = 0;
  bool own_commit_reported_ = false;
};

}  // namespace twostep::epaxos
