#include "epaxos/host.hpp"

namespace twostep::epaxos {

EPaxosRsm::EPaxosRsm(consensus::Env<Message>& env, consensus::SystemConfig config,
                     HostOptions options)
    : env_(env), options_(options), replica_(env, config, options.protocol) {
  if (options_.key_mod < 0)
    throw std::invalid_argument("EPaxosRsm: key_mod must be >= 0");
  replica_.on_commit = [this](InstanceId id, const Command& cmd) {
    if (id.replica != env_.self()) return;
    const auto it = own_submitted_.find(id);
    if (it == own_submitted_.end()) return;  // learned or restored, not in flight
    const sim::Tick submitted_at = it->second;
    own_submitted_.erase(it);
    if (on_commit) on_commit(token(id.replica, cmd.payload), submitted_at, id.index);
  };
  replica_.on_execute = [this](InstanceId id, const Command& cmd) {
    if (cmd.payload == kNoOpPayload) return;  // recovery filler, not client state
    const std::int32_t slot = next_exec_slot_++;
    if (on_apply) on_apply(slot, token(id.replica, cmd.payload));
  };
}

std::int64_t EPaxosRsm::submit(std::int64_t payload) {
  if (payload < 0 || payload > max_payload())
    throw std::invalid_argument("EPaxosRsm::submit: payload out of range");
  const std::int64_t key = options_.key_mod > 0 ? payload % options_.key_mod : 0;
  const sim::Tick now = env_.now();
  const InstanceId id = replica_.submit(Command{key, payload});
  own_submitted_.emplace(id, now);
  return token(env_.self(), payload);
}

std::vector<EPaxosRsm::Message> EPaxosRsm::decide_messages() const {
  std::vector<CommitMsg> commits = replica_.committed_commits();
  std::vector<Message> out;
  out.reserve(commits.size());
  for (CommitMsg& m : commits) out.push_back(Message{std::move(m)});
  return out;
}

}  // namespace twostep::epaxos
