#include "epaxos/epaxos.hpp"

#include <algorithm>
#include <stdexcept>

namespace twostep::epaxos {

using consensus::Ballot;
using consensus::ProcessId;
using consensus::TimerId;

EPaxosReplica::EPaxosReplica(consensus::Env<Message>& env, consensus::SystemConfig config,
                             Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("EPaxosReplica: delta must be > 0");
  // Fast quorum f + floor((f+1)/2) incl. the leader; classic majority.
  fast_quorum_ = config_.f + (config_.f + 1) / 2;
  classic_quorum_ = config_.n / 2 + 1;
  if (fast_quorum_ < classic_quorum_) fast_quorum_ = classic_quorum_;
  if (fast_quorum_ > config_.n) fast_quorum_ = config_.n;
  if (obs::MetricsRegistry* reg = options_.probe.metrics) {
    stats_.commits_fast = &reg->counter("commits.fast");
    stats_.commits_slow = &reg->counter("commits.slow");
    stats_.commits_learned = &reg->counter("commits.learned");
    stats_.executed = &reg->counter("commands.executed");
  }
}

void EPaxosReplica::start() {
  if (options_.recovery_timeout > 0) env_.set_timer(options_.recovery_timeout);
}

const EPaxosReplica::Instance* EPaxosReplica::find(InstanceId id) const {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

Status EPaxosReplica::status(InstanceId id) const {
  const Instance* inst = find(id);
  return inst ? inst->status : Status::kNone;
}

std::optional<Command> EPaxosReplica::committed_command(InstanceId id) const {
  const Instance* inst = find(id);
  if (!inst || inst->status < Status::kCommitted) return std::nullopt;
  return inst->cmd;
}

DepSet EPaxosReplica::committed_deps(InstanceId id) const {
  const Instance* inst = find(id);
  if (!inst || inst->status < Status::kCommitted) return {};
  return inst->deps;
}

int EPaxosReplica::committed_count() const { return committed_count_; }

bool EPaxosReplica::used_fast_path(InstanceId id) const {
  const Instance* inst = find(id);
  return inst && inst->fast_committed;
}

void EPaxosReplica::assign_attributes(const Command& cmd, InstanceId self_id, DepSet& deps,
                                      std::int64_t& seq) const {
  seq = 1;
  for (const auto& [id, inst] : instances_) {
    if (id == self_id || inst.status == Status::kNone) continue;
    if (!inst.cmd.interferes(cmd)) continue;
    deps.insert(id);
    seq = std::max(seq, inst.seq + 1);
  }
}

InstanceId EPaxosReplica::submit(Command cmd) {
  const InstanceId id{env_.self(), next_index_++};
  Instance& inst = instance(id);
  inst.cmd = cmd;
  assign_attributes(cmd, id, inst.deps, inst.seq);
  inst.status = Status::kPreAccepted;
  inst.leading = true;
  inst.merged_deps = inst.deps;
  inst.merged_seq = inst.seq;
  if (config_.n == 1) {
    commit(id, inst.cmd, inst.deps, inst.seq, /*broadcast=*/false);
    return id;
  }
  env_.broadcast_others(PreAcceptMsg{id, cmd, inst.deps, inst.seq});
  return id;
}

void EPaxosReplica::on_message(ProcessId from, const Message& m) {
  std::visit([&](const auto& msg) { handle(from, msg); }, m);
}

void EPaxosReplica::handle(ProcessId from, const PreAcceptMsg& m) {
  Instance& inst = instance(m.instance);
  // A later phase supersedes PreAccept.
  if (inst.status >= Status::kAccepted || inst.ballot > 0) return;

  DepSet deps = m.deps;
  std::int64_t seq = m.seq;
  DepSet local;
  std::int64_t local_seq = 1;
  assign_attributes(m.cmd, m.instance, local, local_seq);
  deps.insert(local.begin(), local.end());
  seq = std::max(seq, local_seq);
  const bool changed = deps != m.deps || seq != m.seq;

  inst.cmd = m.cmd;
  inst.deps = deps;
  inst.seq = seq;
  inst.status = Status::kPreAccepted;
  env_.send(from, PreAcceptReplyMsg{m.instance, deps, seq, changed});
}

void EPaxosReplica::handle(ProcessId, const PreAcceptReplyMsg& m) {
  Instance& inst = instance(m.instance);
  if (!inst.leading || inst.status != Status::kPreAccepted) return;
  ++inst.preaccept_replies;
  inst.merged_deps.insert(m.deps.begin(), m.deps.end());
  inst.merged_seq = std::max(inst.merged_seq, m.seq);
  if (m.changed) inst.fast_eligible = false;

  if (inst.fast_eligible && inst.preaccept_replies >= fast_quorum_ - 1) {
    // All fast-quorum replies agreed with our attributes: commit in two
    // message delays.
    inst.fast_committed = true;
    commit(m.instance, inst.cmd, inst.deps, inst.seq, /*broadcast=*/true);
    return;
  }
  if (!inst.fast_eligible && inst.preaccept_replies >= classic_quorum_ - 1) {
    begin_accept_round(m.instance);
  }
}

void EPaxosReplica::begin_accept_round(InstanceId id) {
  Instance& inst = instance(id);
  inst.status = Status::kAccepted;
  inst.deps = inst.merged_deps;
  inst.seq = inst.merged_seq;
  inst.accept_replies = 0;
  env_.broadcast_others(AcceptMsg{id, inst.ballot, inst.cmd, inst.deps, inst.seq});
}

void EPaxosReplica::handle(ProcessId from, const AcceptMsg& m) {
  Instance& inst = instance(m.instance);
  if (m.ballot < inst.ballot || inst.status >= Status::kCommitted) return;
  inst.cmd = m.cmd;
  inst.deps = m.deps;
  inst.seq = m.seq;
  inst.ballot = m.ballot;
  inst.status = Status::kAccepted;
  env_.send(from, AcceptReplyMsg{m.instance, m.ballot});
}

void EPaxosReplica::handle(ProcessId, const AcceptReplyMsg& m) {
  Instance& inst = instance(m.instance);
  if (inst.status != Status::kAccepted || m.ballot != inst.ballot) return;
  if (!inst.leading && !inst.recovering) return;
  ++inst.accept_replies;
  if (inst.accept_replies >= classic_quorum_ - 1) {
    commit(m.instance, inst.cmd, inst.deps, inst.seq, /*broadcast=*/true);
  }
}

void EPaxosReplica::handle(ProcessId, const CommitMsg& m) {
  commit(m.instance, m.cmd, m.deps, m.seq, /*broadcast=*/false);
}

void EPaxosReplica::commit(InstanceId id, const Command& cmd, const DepSet& deps,
                           std::int64_t seq, bool broadcast) {
  Instance& inst = instance(id);
  if (inst.status >= Status::kCommitted) return;
  inst.cmd = cmd;
  inst.deps = deps;
  inst.seq = seq;
  inst.status = Status::kCommitted;
  ++committed_count_;
  const char* label = !broadcast ? "learned" : inst.fast_committed ? "fast" : "slow";
  obs::Counter* counter = !broadcast           ? stats_.commits_learned
                          : inst.fast_committed ? stats_.commits_fast
                                                : stats_.commits_slow;
  if (counter) counter->add();
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kDecision, .at = env_.now(),
                           .process = env_.self(), .peer = id.replica,
                           .ballot = inst.ballot, .value = consensus::Value{cmd.payload},
                           .label = label, .detail = id.index};
  });
  if (broadcast) env_.broadcast_others(CommitMsg{id, cmd, deps, seq});
  if (on_commit) on_commit(id, cmd);
  if (id.replica == env_.self() && !own_commit_reported_ && on_decide) {
    own_commit_reported_ = true;
    on_decide(consensus::Value{cmd.payload});
  }
  try_execute();
}

// ---- explicit recovery ----

void EPaxosReplica::recover(InstanceId id) {
  Instance& inst = instance(id);
  if (inst.status >= Status::kCommitted) return;
  // Pick a ballot owned by this replica, above anything seen.
  const auto n = static_cast<Ballot>(config_.n);
  const auto self = static_cast<Ballot>(env_.self());
  Ballot b = inst.ballot + 1;
  b += ((self - b) % n + n) % n;
  if (b == 0) b += n;  // ballot 0 belongs to the instance owner
  inst.recovering = true;
  inst.prepare_replies.clear();
  inst.ballot = b;
  env_.broadcast_all(PrepareMsg{id, b});
}

void EPaxosReplica::handle(ProcessId from, const PrepareMsg& m) {
  Instance& inst = instance(m.instance);
  if (m.ballot <= inst.ballot && !(m.ballot == inst.ballot && from == env_.self())) {
    // Stale prepare; still answer committed state to speed the recoverer up.
    if (inst.status >= Status::kCommitted) {
      env_.send(from, PrepareReplyMsg{m.instance, m.ballot, inst.status, inst.cmd, inst.deps,
                                      inst.seq});
    }
    return;
  }
  inst.ballot = m.ballot;
  env_.send(from,
            PrepareReplyMsg{m.instance, m.ballot, inst.status, inst.cmd, inst.deps, inst.seq});
}

void EPaxosReplica::handle(ProcessId, const PrepareReplyMsg& m) {
  Instance& inst = instance(m.instance);
  if (!inst.recovering || inst.status >= Status::kCommitted) return;
  if (m.status >= Status::kCommitted) {
    inst.recovering = false;
    commit(m.instance, m.cmd, m.deps, m.seq, /*broadcast=*/true);
    return;
  }
  inst.prepare_replies.push_back(m);
  if (static_cast<int>(inst.prepare_replies.size()) < classic_quorum_) return;

  // Quorum of answers without a commit: pick the strongest evidence.
  const PrepareReplyMsg* accepted = nullptr;
  const PrepareReplyMsg* preaccepted = nullptr;
  for (const auto& reply : inst.prepare_replies) {
    if (reply.status == Status::kAccepted &&
        (!accepted || reply.ballot > accepted->ballot)) {
      accepted = &reply;
    }
    if (reply.status == Status::kPreAccepted) {
      if (!preaccepted) {
        preaccepted = &reply;
      } else {
        // Conservative union of pre-accepted evidence (see header note).
        inst.merged_deps.insert(reply.deps.begin(), reply.deps.end());
        inst.merged_seq = std::max(inst.merged_seq, reply.seq);
      }
    }
  }
  inst.recovering = false;
  if (accepted) {
    inst.cmd = accepted->cmd;
    inst.deps = accepted->deps;
    inst.seq = accepted->seq;
  } else if (preaccepted) {
    inst.cmd = preaccepted->cmd;
    inst.merged_deps.insert(preaccepted->deps.begin(), preaccepted->deps.end());
    inst.merged_seq = std::max(inst.merged_seq, preaccepted->seq);
    inst.deps = inst.merged_deps;
    inst.seq = std::max(inst.seq, inst.merged_seq);
  } else {
    // Nobody saw the command: commit a no-op so dependent instances can
    // execute.
    inst.cmd = Command{/*key=*/0, /*payload=*/kNoOpPayload};
    inst.deps.clear();
    inst.seq = 0;
  }
  inst.status = Status::kAccepted;
  inst.accept_replies = 0;
  inst.recovering = true;  // keep counting AcceptReplies for this recovery
  env_.broadcast_others(AcceptMsg{m.instance, inst.ballot, inst.cmd, inst.deps, inst.seq});
}

void EPaxosReplica::on_timer(TimerId) {
  if (options_.recovery_timeout <= 0) return;
  env_.set_timer(options_.recovery_timeout);
  for (auto& [id, inst] : instances_) {
    if (id.replica == env_.self()) continue;
    if (inst.status == Status::kPreAccepted || inst.status == Status::kAccepted) {
      if (!inst.recovering) recover(id);
    }
  }
}

// ---- execution ----

void EPaxosReplica::try_execute() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [id, inst] : instances_) {
      if (inst.status != Status::kCommitted) continue;
      std::set<InstanceId> visiting;
      if (execute_instance(id, visiting)) progress = true;
    }
  }
}

bool EPaxosReplica::execute_instance(InstanceId id, std::set<InstanceId>& visiting) {
  Instance& inst = instance(id);
  if (inst.status == Status::kExecuted) return false;
  if (inst.status != Status::kCommitted) return false;
  visiting.insert(id);
  for (const InstanceId dep : inst.deps) {
    const Instance* dep_inst = find(dep);
    if (!dep_inst || dep_inst->status < Status::kCommitted) {
      visiting.erase(id);
      return false;  // dependency not committed yet
    }
    if (dep_inst->status == Status::kExecuted) continue;
    if (visiting.contains(dep)) {
      // Cycle (mutual interference): execute lower (seq, id) first; if the
      // dependency is "greater", it waits for us instead.
      if (std::pair(dep_inst->seq, dep) > std::pair(inst.seq, id)) continue;
      visiting.erase(id);
      return false;
    }
    if (!execute_instance(dep, visiting)) {
      // The dependency could not execute; unless it is deferred to after us
      // by the cycle rule, we cannot run yet.
      if (find(dep)->status != Status::kExecuted &&
          std::pair(dep_inst->seq, dep) <= std::pair(inst.seq, id)) {
        visiting.erase(id);
        return false;
      }
    }
  }
  visiting.erase(id);
  inst.status = Status::kExecuted;
  ++executed_count_;
  if (stats_.executed) stats_.executed->add();
  if (on_execute) on_execute(id, inst.cmd);
  return true;
}

}  // namespace twostep::epaxos
