#include "epaxos/epaxos.hpp"

#include <algorithm>
#include <stdexcept>

namespace twostep::epaxos {

using consensus::Ballot;
using consensus::ProcessId;
using consensus::TimerId;

EPaxosReplica::EPaxosReplica(consensus::Env<Message>& env, consensus::SystemConfig config,
                             Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("EPaxosReplica: delta must be > 0");
  // Fast quorum f + floor((f+1)/2) incl. the leader; classic majority.
  fast_quorum_ = config_.f + (config_.f + 1) / 2;
  classic_quorum_ = config_.n / 2 + 1;
  if (fast_quorum_ < classic_quorum_) fast_quorum_ = classic_quorum_;
  if (fast_quorum_ > config_.n) fast_quorum_ = config_.n;
  if (obs::MetricsRegistry* reg = options_.probe.metrics) {
    stats_.commits_fast = &reg->counter("commits.fast");
    stats_.commits_slow = &reg->counter("commits.slow");
    stats_.commits_learned = &reg->counter("commits.learned");
    stats_.executed = &reg->counter("commands.executed");
  }
}

void EPaxosReplica::start() {
  if (options_.recovery_timeout > 0) env_.set_timer(options_.recovery_timeout);
}

const EPaxosReplica::Instance* EPaxosReplica::find(InstanceId id) const {
  const auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

Status EPaxosReplica::status(InstanceId id) const {
  const Instance* inst = find(id);
  return inst ? inst->status : Status::kNone;
}

std::optional<Command> EPaxosReplica::committed_command(InstanceId id) const {
  const Instance* inst = find(id);
  if (!inst || inst->status < Status::kCommitted) return std::nullopt;
  return inst->cmd;
}

DepSet EPaxosReplica::committed_deps(InstanceId id) const {
  const Instance* inst = find(id);
  if (!inst || inst->status < Status::kCommitted) return {};
  return inst->deps;
}

int EPaxosReplica::committed_count() const { return committed_count_; }

bool EPaxosReplica::used_fast_path(InstanceId id) const {
  const Instance* inst = find(id);
  return inst && inst->fast_committed;
}

std::optional<EPaxosReplica::InstanceState> EPaxosReplica::instance_state(InstanceId id) const {
  const Instance* inst = find(id);
  if (inst == nullptr || inst->status == Status::kNone) return std::nullopt;
  InstanceState s{inst->cmd, inst->deps, inst->seq, inst->status, inst->ballot};
  // Execution is re-derived from the committed graph on replay, so the
  // durable status never exceeds kCommitted — an instance that merely
  // executes does not owe the WAL another record.
  if (s.status == Status::kExecuted) s.status = Status::kCommitted;
  return s;
}

void EPaxosReplica::restore_instance(InstanceId id, const InstanceState& s) {
  // Bypass instance(): a restore comes *from* storage and must not be
  // re-marked dirty (the Durable change detector is seeded separately).
  Instance& inst = instances_[id];
  const bool was_committed = inst.status >= Status::kCommitted;
  inst.cmd = s.cmd;
  inst.deps = s.deps;
  inst.seq = s.seq;
  inst.ballot = s.ballot;
  // Never downgrade: replaying an earlier committed record can execute this
  // instance (try_execute cascades), and a later record for the same
  // instance — captured as kCommitted at most, e.g. after a recovery
  // Prepare bumped its ballot — must not move an already-executed instance
  // back to kCommitted, or the next try_execute sweep re-executes it.
  const Status restored = s.status == Status::kExecuted ? Status::kCommitted : s.status;
  inst.status = std::max(inst.status, restored);
  if (id.replica == env_.self()) {
    next_index_ = std::max(next_index_, id.index + 1);
    if (inst.status >= Status::kCommitted) own_commit_reported_ = true;
  }
  if (!was_committed && inst.status >= Status::kCommitted) {
    ++committed_count_;
    if (on_commit) on_commit(id, inst.cmd);
    try_execute();
  }
}

std::vector<InstanceId> EPaxosReplica::drain_dirty_instances() {
  std::vector<InstanceId> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  return out;
}

std::vector<CommitMsg> EPaxosReplica::committed_commits() const {
  std::vector<CommitMsg> out;
  for (const auto& [id, inst] : instances_)
    if (inst.status >= Status::kCommitted) out.push_back(CommitMsg{id, inst.cmd, inst.deps, inst.seq});
  return out;
}

void EPaxosReplica::assign_attributes(const Command& cmd, InstanceId self_id, DepSet& deps,
                                      std::int64_t& seq) const {
  seq = 1;
  for (const auto& [id, inst] : instances_) {
    if (id == self_id || inst.status == Status::kNone) continue;
    if (!inst.cmd.interferes(cmd)) continue;
    deps.insert(id);
    seq = std::max(seq, inst.seq + 1);
  }
}

InstanceId EPaxosReplica::submit(Command cmd) {
  const InstanceId id{env_.self(), next_index_++};
  Instance& inst = instance(id);
  inst.cmd = cmd;
  assign_attributes(cmd, id, inst.deps, inst.seq);
  inst.status = Status::kPreAccepted;
  inst.leading = true;
  inst.merged_deps = inst.deps;
  inst.merged_seq = inst.seq;
  if (config_.n == 1) {
    commit(id, inst.cmd, inst.deps, inst.seq, /*broadcast=*/false);
    return id;
  }
  env_.broadcast_others(PreAcceptMsg{id, /*ballot=*/0, cmd, inst.deps, inst.seq});
  return id;
}

void EPaxosReplica::on_message(ProcessId from, const Message& m) {
  std::visit([&](const auto& msg) { handle(from, msg); }, m);
}

void EPaxosReplica::handle(ProcessId from, const PreAcceptMsg& m) {
  Instance& inst = instance(m.instance);
  // A commit is final, a higher ballot owns the instance, and within one
  // ballot a later phase supersedes PreAccept.  A recovery re-proposal at a
  // higher ballot overrides a lower ballot's Accept: the re-proposer's
  // Prepare quorum saw no accepted state, so no lower-ballot round can
  // still reach a commit quorum past ours.
  if (inst.status >= Status::kCommitted || m.ballot < inst.ballot) return;
  if (m.ballot == inst.ballot && inst.status >= Status::kAccepted) return;

  DepSet deps = m.deps;
  std::int64_t seq = m.seq;
  DepSet local;
  std::int64_t local_seq = 1;
  assign_attributes(m.cmd, m.instance, local, local_seq);
  deps.insert(local.begin(), local.end());
  seq = std::max(seq, local_seq);
  const bool changed = deps != m.deps || seq != m.seq;

  inst.cmd = m.cmd;
  inst.deps = deps;
  inst.seq = seq;
  inst.ballot = m.ballot;
  inst.status = Status::kPreAccepted;
  env_.send(from, PreAcceptReplyMsg{m.instance, m.ballot, deps, seq, changed});
}

void EPaxosReplica::handle(ProcessId, const PreAcceptReplyMsg& m) {
  Instance& inst = instance(m.instance);
  // The ballot check also retires the owner's round the moment a recoverer's
  // Prepare bumps the instance: a late tally must not fast-commit original
  // attributes the recovery may be re-deciding.
  if (inst.status != Status::kPreAccepted || m.ballot != inst.ballot) return;
  if (inst.ballot == 0) {
    if (!inst.leading) return;
    ++inst.preaccept_replies;
    inst.merged_deps.insert(m.deps.begin(), m.deps.end());
    inst.merged_seq = std::max(inst.merged_seq, m.seq);
    if (m.changed) inst.fast_eligible = false;

    if (inst.fast_eligible && inst.preaccept_replies >= fast_quorum_ - 1) {
      // All fast-quorum replies agreed with our attributes: commit in two
      // message delays.
      inst.fast_committed = true;
      commit(m.instance, inst.cmd, inst.deps, inst.seq, /*broadcast=*/true);
      return;
    }
    if (!inst.fast_eligible && inst.preaccept_replies >= classic_quorum_ - 1) {
      begin_accept_round(m.instance);
    }
    return;
  }
  // Recovery re-proposal round: no fast path — always finish through Accept.
  if (!inst.recovering) return;
  ++inst.preaccept_replies;
  inst.merged_deps.insert(m.deps.begin(), m.deps.end());
  inst.merged_seq = std::max(inst.merged_seq, m.seq);
  if (inst.preaccept_replies >= classic_quorum_ - 1) begin_accept_round(m.instance);
}

void EPaxosReplica::begin_accept_round(InstanceId id) {
  Instance& inst = instance(id);
  inst.status = Status::kAccepted;
  inst.deps = inst.merged_deps;
  inst.seq = inst.merged_seq;
  inst.accept_replies = 0;
  env_.broadcast_others(AcceptMsg{id, inst.ballot, inst.cmd, inst.deps, inst.seq});
}

void EPaxosReplica::handle(ProcessId from, const AcceptMsg& m) {
  Instance& inst = instance(m.instance);
  if (m.ballot < inst.ballot || inst.status >= Status::kCommitted) return;
  inst.cmd = m.cmd;
  inst.deps = m.deps;
  inst.seq = m.seq;
  inst.ballot = m.ballot;
  inst.status = Status::kAccepted;
  env_.send(from, AcceptReplyMsg{m.instance, m.ballot});
}

void EPaxosReplica::handle(ProcessId, const AcceptReplyMsg& m) {
  Instance& inst = instance(m.instance);
  if (inst.status != Status::kAccepted || m.ballot != inst.ballot) return;
  if (!inst.leading && !inst.recovering) return;
  ++inst.accept_replies;
  if (inst.accept_replies >= classic_quorum_ - 1) {
    commit(m.instance, inst.cmd, inst.deps, inst.seq, /*broadcast=*/true);
  }
}

void EPaxosReplica::handle(ProcessId, const CommitMsg& m) {
  commit(m.instance, m.cmd, m.deps, m.seq, /*broadcast=*/false);
}

void EPaxosReplica::commit(InstanceId id, const Command& cmd, const DepSet& deps,
                           std::int64_t seq, bool broadcast) {
  Instance& inst = instance(id);
  if (inst.status >= Status::kCommitted) return;
  inst.cmd = cmd;
  inst.deps = deps;
  inst.seq = seq;
  inst.status = Status::kCommitted;
  ++committed_count_;
  const char* label = !broadcast ? "learned" : inst.fast_committed ? "fast" : "slow";
  obs::Counter* counter = !broadcast           ? stats_.commits_learned
                          : inst.fast_committed ? stats_.commits_fast
                                                : stats_.commits_slow;
  if (counter) counter->add();
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kDecision, .at = env_.now(),
                           .process = env_.self(), .peer = id.replica,
                           .ballot = inst.ballot, .value = consensus::Value{cmd.payload},
                           .label = label, .detail = id.index};
  });
  if (broadcast) env_.broadcast_others(CommitMsg{id, cmd, deps, seq});
  if (on_commit) on_commit(id, cmd);
  if (id.replica == env_.self() && !own_commit_reported_ && on_decide) {
    own_commit_reported_ = true;
    on_decide(consensus::Value{cmd.payload});
  }
  try_execute();
}

// ---- explicit recovery ----

void EPaxosReplica::recover(InstanceId id) {
  Instance& inst = instance(id);
  if (inst.status >= Status::kCommitted) return;
  // Pick a ballot owned by this replica, above anything seen.
  const auto n = static_cast<Ballot>(config_.n);
  const auto self = static_cast<Ballot>(env_.self());
  Ballot b = inst.ballot + 1;
  b += ((self - b) % n + n) % n;
  if (b == 0) b += n;  // ballot 0 belongs to the instance owner
  inst.recovering = true;
  inst.prepare_replies.clear();
  inst.owner_preaccept = false;
  inst.stall_ticks = 0;
  // Recovering our own instance means the leader tallies are stale (lost
  // in a restart, or the round is stuck); abandon the leader role so a
  // late PreAcceptReply cannot race this recovery into a second commit.
  if (id.replica == env_.self()) inst.leading = false;
  inst.ballot = b;
  env_.broadcast_all(PrepareMsg{id, b});
}

void EPaxosReplica::handle(ProcessId from, const PrepareMsg& m) {
  Instance& inst = instance(m.instance);
  if (m.ballot <= inst.ballot && !(m.ballot == inst.ballot && from == env_.self())) {
    // Stale prepare; still answer committed state to speed the recoverer up.
    if (inst.status >= Status::kCommitted) {
      env_.send(from, PrepareReplyMsg{m.instance, m.ballot, inst.status, inst.cmd, inst.deps,
                                      inst.seq});
    }
    return;
  }
  inst.ballot = m.ballot;
  env_.send(from,
            PrepareReplyMsg{m.instance, m.ballot, inst.status, inst.cmd, inst.deps, inst.seq});
}

void EPaxosReplica::handle(ProcessId from, const PrepareReplyMsg& m) {
  Instance& inst = instance(m.instance);
  if (!inst.recovering || inst.status >= Status::kCommitted) return;
  if (m.status >= Status::kCommitted) {
    inst.recovering = false;
    commit(m.instance, m.cmd, m.deps, m.seq, /*broadcast=*/true);
    return;
  }
  if (m.ballot != inst.ballot) return;  // stale recovery round
  if (m.status == Status::kPreAccepted && from == m.instance.replica)
    inst.owner_preaccept = true;
  inst.prepare_replies.push_back(m);
  if (static_cast<int>(inst.prepare_replies.size()) < classic_quorum_) return;

  // Quorum of answers without a commit: pick the strongest evidence.  Move
  // the replies out so a straggler at this ballot cannot re-trigger the
  // decision mid-round.
  const std::vector<PrepareReplyMsg> replies = std::move(inst.prepare_replies);
  inst.prepare_replies.clear();
  const PrepareReplyMsg* accepted = nullptr;
  std::vector<const PrepareReplyMsg*> preaccepted;
  for (const auto& reply : replies) {
    if (reply.status == Status::kAccepted &&
        (!accepted || reply.ballot > accepted->ballot)) {
      accepted = &reply;
    }
    if (reply.status == Status::kPreAccepted) preaccepted.push_back(&reply);
  }
  inst.recovering = false;
  if (!accepted && inst.owner_preaccept) {
    // The owner itself answered pre-accepted (or we are the owner,
    // recovering our own restored instance).  The owner would have answered
    // committed if it ever committed — the runtime persists state before
    // releasing frames — so no fast commit happened and the attributes are
    // still free.  A union of the stale replies could miss instances
    // committed while the owner was down, so run Phase 1 anew at this
    // ballot: a live quorum folds its current knowledge into the
    // attributes, and the round finishes on the slow path.
    inst.cmd = preaccepted.front()->cmd;
    DepSet deps;
    std::int64_t seq = 0;
    assign_attributes(inst.cmd, m.instance, deps, seq);
    inst.deps = deps;
    inst.seq = seq;
    inst.status = Status::kPreAccepted;
    inst.recovering = true;
    inst.leading = false;
    inst.preaccept_replies = 0;
    inst.merged_deps = std::move(deps);
    inst.merged_seq = seq;
    env_.broadcast_others(PreAcceptMsg{m.instance, inst.ballot, inst.cmd, inst.deps, inst.seq});
    return;
  }
  if (accepted) {
    inst.cmd = accepted->cmd;
    inst.deps = accepted->deps;
    inst.seq = accepted->seq;
  } else if (!preaccepted.empty()) {
    // The crashed leader may have fast-committed its original attributes.
    // Acceptors only ever add deps / raise seq, so any fast-committed
    // original is <= every pre-accept reply and — because every classic
    // quorum intersects the fast quorum in a non-leader acceptor — appears
    // among these replies.  If one reply is <= all others, it is the only
    // attribute set a fast commit could have used: re-commit exactly it.
    // Otherwise no fast commit was possible and the union is safe (see
    // header note).
    const PrepareReplyMsg* base = nullptr;
    for (const PrepareReplyMsg* a : preaccepted) {
      bool le_all = true;
      for (const PrepareReplyMsg* b : preaccepted) {
        if (a->seq > b->seq ||
            !std::includes(b->deps.begin(), b->deps.end(), a->deps.begin(), a->deps.end())) {
          le_all = false;
          break;
        }
      }
      if (le_all) {
        base = a;
        break;
      }
    }
    inst.cmd = preaccepted.front()->cmd;
    if (base != nullptr) {
      inst.deps = base->deps;
      inst.seq = base->seq;
    } else {
      DepSet deps;
      std::int64_t seq = 0;
      for (const PrepareReplyMsg* r : preaccepted) {
        deps.insert(r->deps.begin(), r->deps.end());
        seq = std::max(seq, r->seq);
      }
      inst.deps = std::move(deps);
      inst.seq = seq;
    }
  } else {
    // Nobody saw the command: commit a no-op so dependent instances can
    // execute.
    inst.cmd = Command{/*key=*/0, /*payload=*/kNoOpPayload};
    inst.deps.clear();
    inst.seq = 0;
  }
  inst.status = Status::kAccepted;
  inst.accept_replies = 0;
  inst.recovering = true;  // keep counting AcceptReplies for this recovery
  env_.broadcast_others(AcceptMsg{m.instance, inst.ballot, inst.cmd, inst.deps, inst.seq});
}

void EPaxosReplica::on_timer(TimerId) {
  if (options_.recovery_timeout <= 0) return;
  env_.set_timer(options_.recovery_timeout);
  // A committed instance can be blocked on a dependency this replica has
  // never heard of (its Commit frame was dropped and nothing retransmits
  // it).  Materialize such deps so the stall scan below drives them to a
  // commit; recovery is safe from kNone — a Prepare quorum either surfaces
  // the command or proves nobody durably saw it, in which case no commit
  // can exist (state persists before frames leave a node) and a no-op is
  // correct.
  std::set<InstanceId> blocked;
  for (const auto& [id, inst] : instances_) {
    if (inst.status != Status::kCommitted) continue;
    for (const InstanceId dep : inst.deps) {
      const Instance* d = find(dep);
      if (d == nullptr || d->status == Status::kNone) blocked.insert(dep);
    }
  }
  for (const InstanceId dep : blocked) instance(dep);
  for (auto& [id, inst] : instances_) {
    const bool unseen_dep = inst.status == Status::kNone && blocked.contains(id);
    if (inst.status != Status::kPreAccepted && inst.status != Status::kAccepted && !unseen_dep) {
      inst.stall_ticks = 0;
      continue;
    }
    ++inst.stall_ticks;
    if (unseen_dep) {
      // Give an in-flight Commit a grace tick before recovering; an
      // unanswered recovery gets the usual three-tick retry cadence.
      if (inst.stall_ticks >= (inst.recovering ? 3 : 2)) recover(id);
      continue;
    }
    // An instance we are actively leading gets a grace tick — replies may
    // be in flight — then is re-driven as a recovery (its frames may have
    // been lost; nothing retransmits them).  A restored own instance has
    // leading == false (leader tallies are volatile), and peers that never
    // saw it cannot recover it — the owner must, or every later
    // interfering instance stalls behind it forever.  A recovery whose
    // Prepare round itself got lost is retried with a fresh ballot.
    if (id.replica == env_.self() && inst.leading && inst.stall_ticks < 2) continue;
    if (inst.recovering && inst.stall_ticks < 3) continue;
    recover(id);
  }
}

// ---- execution ----

void EPaxosReplica::try_execute() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [id, inst] : instances_) {
      if (inst.status != Status::kCommitted) continue;
      std::set<InstanceId> visiting;
      if (execute_instance(id, visiting)) progress = true;
    }
  }
}

bool EPaxosReplica::execute_instance(InstanceId id, std::set<InstanceId>& visiting) {
  Instance& inst = instance(id);
  if (inst.status == Status::kExecuted) return false;
  if (inst.status != Status::kCommitted) return false;
  visiting.insert(id);
  for (const InstanceId dep : inst.deps) {
    const Instance* dep_inst = find(dep);
    if (!dep_inst || dep_inst->status < Status::kCommitted) {
      visiting.erase(id);
      return false;  // dependency not committed yet
    }
    if (dep_inst->status == Status::kExecuted) continue;
    if (visiting.contains(dep)) {
      // Cycle (mutual interference): execute lower (seq, id) first; if the
      // dependency is "greater", it waits for us instead.
      if (std::pair(dep_inst->seq, dep) > std::pair(inst.seq, id)) continue;
      visiting.erase(id);
      return false;
    }
    if (!execute_instance(dep, visiting)) {
      // The dependency could not execute; unless it is deferred to after us
      // by the cycle rule, we cannot run yet.
      if (find(dep)->status != Status::kExecuted &&
          std::pair(dep_inst->seq, dep) <= std::pair(inst.seq, id)) {
        visiting.erase(id);
        return false;
      }
    }
  }
  visiting.erase(id);
  inst.status = Status::kExecuted;
  ++executed_count_;
  if (stats_.executed) stats_.executed->add();
  if (on_execute) on_execute(id, inst.cmd);
  return true;
}

}  // namespace twostep::epaxos
