// EPaxos behind the live node runtime.
//
// node::Runtime hosts RSM-style protocols through a small proxy surface
// (submit / on_commit / on_apply).  EPaxosRsm adapts EPaxosReplica to that
// surface so the leaderless protocol runs on the same TCP/epoll/WAL stack
// as the slot RSM:
//
//   - submit(payload) opens an instance owned by this replica and returns
//     the same (proxy << 40) | payload command token the slot RSM uses, so
//     the CLI's agreement/validity/durability audits read both protocols'
//     applied logs identically.
//   - on_commit fires when one of OUR instances commits (fast or slow
//     path) — the client-reply signal.
//   - on_apply fires per *executed* command in this replica's execution
//     order, with the execution index as the slot.  With the default key
//     policy every command interferes with every other, which makes the
//     EPaxos execution order a total order identical on every replica —
//     exactly the property the cross-replica applied-log prefix audit
//     checks.  A positive key_mod shards commands across keys (payload %
//     key_mod), dialing conflict probability down for the geo benches; the
//     prefix audit is only sound in the total-interference configuration.
//
// Recovery-timeout note: live clusters should set
// HostOptions::protocol.recovery_timeout > 0 — it is what commits
// instances stranded by a killed command leader (the restarted leader does
// not resume leadership; its peers' explicit-prepare does).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "epaxos/epaxos.hpp"

namespace twostep::epaxos {

struct HostOptions {
  Options protocol;
  /// Command-interference policy: 0 (default) keys every command to 0 so
  /// all commands interfere (total execution order, audit-safe); k > 0
  /// keys a command to payload % k (conflict dial for benches).
  std::int64_t key_mod = 0;
};

class EPaxosRsm {
 public:
  using Message = epaxos::Message;

  EPaxosRsm(consensus::Env<Message>& env, consensus::SystemConfig config, HostOptions options);

  void start() { replica_.start(); }

  /// Proxy API: submits a client command with this replica as command
  /// leader.  Returns the globally unique command token ((proxy << 40) |
  /// payload); on_commit later fires with the same token.  Callers must
  /// not submit the same payload twice from the same proxy (the workload
  /// generators use sequence ids), mirroring rsm::RsmProcess::submit.
  std::int64_t submit(std::int64_t payload);

  /// Cluster-harness adapter: submits the value's payload as a command.
  void propose(consensus::Value v) { submit(v.get()); }

  void on_message(consensus::ProcessId from, const Message& m) { replica_.on_message(from, m); }
  void on_timer(consensus::TimerId id) { replica_.on_timer(id); }

  /// Fired per executed command in execution order: (execution index,
  /// command token).  Recovery no-ops are invisible here.
  std::function<void(std::int32_t slot, std::int64_t cmd)> on_apply;
  /// Fired when one of OUR commands commits: (token, submit time, own
  /// instance index).
  std::function<void(std::int64_t cmd, sim::Tick submitted_at, std::int32_t slot)> on_commit;

  /// Largest client payload submit() accepts (the token packs the proxy id
  /// above bit 40, like the slot RSM).
  [[nodiscard]] std::int64_t max_payload() const noexcept {
    return (std::int64_t{1} << 40) - 1;
  }

  /// Anti-entropy: Commit retransmissions for every committed instance;
  /// the runtime resends them whenever an outbound link (re)establishes.
  [[nodiscard]] std::vector<Message> decide_messages() const;

  /// The hosted replica, for storage::Durable and test introspection.
  [[nodiscard]] EPaxosReplica& replica() noexcept { return replica_; }
  [[nodiscard]] const EPaxosReplica& replica() const noexcept { return replica_; }

  [[nodiscard]] std::int32_t executed_entries() const noexcept { return next_exec_slot_; }

 private:
  [[nodiscard]] std::int64_t token(consensus::ProcessId proxy, std::int64_t payload) const {
    return (static_cast<std::int64_t>(proxy) << 40) | payload;
  }

  consensus::Env<Message>& env_;
  HostOptions options_;
  EPaxosReplica replica_;
  /// Our in-flight instances: submit time per own instance, erased when
  /// the commit is reported.  Volatile across restarts — a client whose
  /// command was in flight fails over and retries (at-least-once).
  std::map<InstanceId, sim::Tick> own_submitted_;
  std::int32_t next_exec_slot_ = 0;
};

}  // namespace twostep::epaxos
