// Canned ScenarioRunner factories for every protocol in the library.
// Shared by the test suites, the benchmark harness and the examples.
#pragma once

#include <memory>

#include "consensus/scenario.hpp"
#include "consensus/twostep_eval.hpp"
#include "core/two_step.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "net/latency.hpp"
#include "paxos/paxos.hpp"
#include "rsm/rsm.hpp"

namespace twostep::harness {

using CoreRunner = consensus::ScenarioRunner<core::TwoStepProcess, core::Options>;
using PaxosRunner = consensus::ScenarioRunner<paxos::PaxosProcess, paxos::Options>;
using FastPaxosRunner = consensus::ScenarioRunner<fastpaxos::FastPaxosProcess, fastpaxos::Options>;
using RsmRunner = consensus::ScenarioRunner<rsm::RsmProcess, rsm::Options>;

/// The paper's protocol on Definition 2 synchronous rounds.  Pass a probe
/// to attach a RunTracer / MetricsRegistry to the whole stack (protocol,
/// network, simulator); the default (null) probe keeps observability off.
inline std::unique_ptr<CoreRunner> make_core_runner(
    consensus::SystemConfig config, core::Mode mode, sim::Tick delta = 100,
    core::SelectionPolicy policy = core::SelectionPolicy::kPaper, std::uint64_t seed = 1,
    obs::Probe probe = {}) {
  core::Options options;
  options.mode = mode;
  options.delta = delta;
  options.selection_policy = policy;
  options.probe = probe;
  return std::make_unique<CoreRunner>(
      config, std::make_unique<net::SynchronousRounds>(delta), options, seed);
}

/// The paper's protocol on an arbitrary latency model.
inline std::unique_ptr<CoreRunner> make_core_runner_with_model(
    consensus::SystemConfig config, core::Mode mode, std::unique_ptr<net::LatencyModel> model,
    std::uint64_t seed = 1, obs::Probe probe = {}) {
  core::Options options;
  options.mode = mode;
  options.delta = model->delta();
  options.probe = probe;
  return std::make_unique<CoreRunner>(config, std::move(model), options, seed);
}

inline std::unique_ptr<PaxosRunner> make_paxos_runner(consensus::SystemConfig config,
                                                      sim::Tick delta = 100,
                                                      std::uint64_t seed = 1,
                                                      obs::Probe probe = {}) {
  paxos::Options options;
  options.delta = delta;
  options.probe = probe;
  return std::make_unique<PaxosRunner>(
      config, std::make_unique<net::SynchronousRounds>(delta), options, seed);
}

inline std::unique_ptr<FastPaxosRunner> make_fastpaxos_runner(consensus::SystemConfig config,
                                                              sim::Tick delta = 100,
                                                              std::uint64_t seed = 1,
                                                              obs::Probe probe = {}) {
  fastpaxos::Options options;
  options.delta = delta;
  options.probe = probe;
  return std::make_unique<FastPaxosRunner>(
      config, std::make_unique<net::SynchronousRounds>(delta), options, seed);
}

inline std::unique_ptr<FastPaxosRunner> make_fastpaxos_runner_with_model(
    consensus::SystemConfig config, std::unique_ptr<net::LatencyModel> model,
    std::uint64_t seed = 1, obs::Probe probe = {}) {
  fastpaxos::Options options;
  options.delta = model->delta();
  options.probe = probe;
  return std::make_unique<FastPaxosRunner>(config, std::move(model), options, seed);
}

inline std::unique_ptr<RsmRunner> make_rsm_runner(consensus::SystemConfig config,
                                                  std::unique_ptr<net::LatencyModel> model,
                                                  std::uint64_t seed = 1,
                                                  obs::Probe probe = {}) {
  rsm::Options options;
  options.delta = model->delta();
  options.probe = probe;
  return std::make_unique<RsmRunner>(config, std::move(model), options, seed);
}

}  // namespace twostep::harness
