// Deprecated canned runner factories.
//
// Superseded by the harness::RunSpec builder (run_spec.hpp), which replaces
// the six positional-default factories with named setters and adds the
// chaos knobs (fault plan, reliable channel, payload tracing).  These shims
// remain for one release:
//
//   make_core_runner(cfg, mode, delta, policy, seed, probe)
//     -> RunSpec(cfg).delta(delta).selection(policy).seed(seed).probe(probe)
//            .core(mode)
#pragma once

#include <memory>

#include "harness/run_spec.hpp"

namespace twostep::harness {

[[deprecated("use harness::RunSpec(config)...core(mode)")]]
inline std::unique_ptr<CoreRunner> make_core_runner(
    consensus::SystemConfig config, core::Mode mode, sim::Tick delta = 100,
    core::SelectionPolicy policy = core::SelectionPolicy::kPaper, std::uint64_t seed = 1,
    obs::Probe probe = {}) {
  return RunSpec(config).delta(delta).selection(policy).seed(seed).probe(probe).core(mode);
}

[[deprecated("use harness::RunSpec(config).model(...).core(mode)")]]
inline std::unique_ptr<CoreRunner> make_core_runner_with_model(
    consensus::SystemConfig config, core::Mode mode, std::unique_ptr<net::LatencyModel> model,
    std::uint64_t seed = 1, obs::Probe probe = {}) {
  return RunSpec(config).model(std::move(model)).seed(seed).probe(probe).core(mode);
}

[[deprecated("use harness::RunSpec(config)...paxos()")]]
inline std::unique_ptr<PaxosRunner> make_paxos_runner(consensus::SystemConfig config,
                                                      sim::Tick delta = 100,
                                                      std::uint64_t seed = 1,
                                                      obs::Probe probe = {}) {
  return RunSpec(config).delta(delta).seed(seed).probe(probe).paxos();
}

[[deprecated("use harness::RunSpec(config)...fastpaxos()")]]
inline std::unique_ptr<FastPaxosRunner> make_fastpaxos_runner(consensus::SystemConfig config,
                                                              sim::Tick delta = 100,
                                                              std::uint64_t seed = 1,
                                                              obs::Probe probe = {}) {
  return RunSpec(config).delta(delta).seed(seed).probe(probe).fastpaxos();
}

[[deprecated("use harness::RunSpec(config).model(...).fastpaxos()")]]
inline std::unique_ptr<FastPaxosRunner> make_fastpaxos_runner_with_model(
    consensus::SystemConfig config, std::unique_ptr<net::LatencyModel> model,
    std::uint64_t seed = 1, obs::Probe probe = {}) {
  return RunSpec(config).model(std::move(model)).seed(seed).probe(probe).fastpaxos();
}

[[deprecated("use harness::RunSpec(config).model(...).rsm()")]]
inline std::unique_ptr<RsmRunner> make_rsm_runner(consensus::SystemConfig config,
                                                  std::unique_ptr<net::LatencyModel> model,
                                                  std::uint64_t seed = 1,
                                                  obs::Probe probe = {}) {
  return RunSpec(config).model(std::move(model)).seed(seed).probe(probe).rsm();
}

}  // namespace twostep::harness
