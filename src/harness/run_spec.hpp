// RunSpec: one named-setter builder for every protocol runner.
//
// Replaces the historical positional-default make_*_runner factories
// (removed after their deprecation release).  A spec accumulates the
// run's knobs — latency model, delta, seed, selection policy, probe,
// payload tracing, fault plan, reliable channel — and a terminal method
// (core / paxos / fastpaxos / rsm) consumes it into a ScenarioRunner:
//
//   auto runner = harness::RunSpec(config)
//                     .delta(100)
//                     .seed(7)
//                     .fault_plan(plan)
//                     .reliable()
//                     .core(core::Mode::kObject);
//
// Specs are single-shot: the terminal method moves the latency model out,
// so build a fresh RunSpec per runner.
#pragma once

#include <memory>
#include <utility>

#include "consensus/scenario.hpp"
#include "consensus/twostep_eval.hpp"
#include "core/two_step.hpp"
#include "faults/fault_plan.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "net/latency.hpp"
#include "net/reliable.hpp"
#include "paxos/paxos.hpp"
#include "rsm/rsm.hpp"

namespace twostep::harness {

using CoreRunner = consensus::ScenarioRunner<core::TwoStepProcess, core::Options>;
using PaxosRunner = consensus::ScenarioRunner<paxos::PaxosProcess, paxos::Options>;
using FastPaxosRunner = consensus::ScenarioRunner<fastpaxos::FastPaxosProcess, fastpaxos::Options>;
using RsmRunner = consensus::ScenarioRunner<rsm::RsmProcess, rsm::Options>;

class RunSpec {
 public:
  explicit RunSpec(consensus::SystemConfig config) : config_(config) {}

  /// Core-protocol mode (task vs object agreement); ignored by the other
  /// protocols.  Can also be passed directly to the core() terminal.
  RunSpec& mode(core::Mode m) {
    mode_ = m;
    return *this;
  }

  /// Round length for the default SynchronousRounds model (ignored when an
  /// explicit model is set — the model's own delta wins).
  RunSpec& delta(sim::Tick d) {
    delta_ = d;
    return *this;
  }

  /// Explicit latency model (partial synchrony, WAN matrix, ...).  Default:
  /// Definition 2 synchronous rounds of length delta.
  RunSpec& model(std::unique_ptr<net::LatencyModel> m) {
    model_ = std::move(m);
    return *this;
  }

  RunSpec& seed(std::uint64_t s) {
    run_.seed = s;
    return *this;
  }

  /// Core-protocol 1B value-selection policy (paper rule vs variants).
  RunSpec& selection(core::SelectionPolicy p) {
    selection_ = p;
    return *this;
  }

  /// Attaches a RunTracer / MetricsRegistry to the whole stack (protocol,
  /// network, simulator, cluster).
  RunSpec& probe(obs::Probe p) {
    run_.probe = p;
    return *this;
  }

  /// Payload-level network tracing (Network::trace()).
  RunSpec& trace(bool on = true) {
    run_.trace = on;
    return *this;
  }

  /// Chaos: the network consults `plan` for every send.
  RunSpec& fault_plan(std::shared_ptr<faults::FaultPlan> plan) {
    run_.faults = std::move(plan);
    return *this;
  }

  /// Chaos: interpose a ReliableChannel (retransmission + dedup) between
  /// the protocols and the lossy network.
  RunSpec& reliable(net::ReliableConfig config = {}) {
    run_.reliable = config;
    return *this;
  }

  // ---- terminal builders (each consumes the stored latency model) ----

  [[nodiscard]] std::unique_ptr<CoreRunner> core(core::Mode m) {
    core::Options options;
    options.mode = m;
    options.selection_policy = selection_;
    return build<CoreRunner>(std::move(options));
  }
  [[nodiscard]] std::unique_ptr<CoreRunner> core() { return core(mode_); }

  [[nodiscard]] std::unique_ptr<PaxosRunner> paxos() {
    return build<PaxosRunner>(paxos::Options{});
  }

  [[nodiscard]] std::unique_ptr<FastPaxosRunner> fastpaxos() {
    return build<FastPaxosRunner>(fastpaxos::Options{});
  }

  [[nodiscard]] std::unique_ptr<RsmRunner> rsm() { return build<RsmRunner>(rsm::Options{}); }

 private:
  template <typename Runner, typename Options>
  std::unique_ptr<Runner> build(Options options) {
    std::unique_ptr<net::LatencyModel> model =
        model_ ? std::move(model_) : std::make_unique<net::SynchronousRounds>(delta_);
    options.delta = model->delta();
    options.probe = run_.probe;
    return std::make_unique<Runner>(config_, std::move(model), std::move(options), run_);
  }

  consensus::SystemConfig config_;
  core::Mode mode_ = core::Mode::kTask;
  sim::Tick delta_ = 100;
  core::SelectionPolicy selection_ = core::SelectionPolicy::kPaper;
  std::unique_ptr<net::LatencyModel> model_;
  consensus::RunOptions run_;
};

}  // namespace twostep::harness
