// A small work-stealing thread pool for independent experiment tasks.
//
// Every large workload in this repository — bound-table sweeps, the
// schedule fuzzer, the lower-bound scenario grid — decomposes into many
// independent tasks (one per table row / trace chunk / (e, f) point).  The
// pool exists to run those across cores; it deliberately does NOT try to be
// a general-purpose scheduler: tasks may not block on each other, and
// determinism of results is the caller's responsibility (see
// parallel_sweep.hpp, which derives a private RNG seed per task and reduces
// results in task-index order so output is byte-identical for any thread
// count).
//
// Design: one deque per worker.  submit() distributes round-robin; a worker
// pops its own deque from the front (FIFO, cache-friendly for chains of
// related rows) and steals from the back of a sibling's deque when its own
// runs dry.  All deques are mutex-protected — task granularity here is
// whole simulated runs (microseconds to seconds), so lock-free deques would
// buy nothing measurable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace twostep::exec {

/// Resolves a user-facing `--jobs` value: <= 0 means "all hardware
/// threads" (at least 1).
int resolve_jobs(int requested) noexcept;

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Starts `threads` workers; <= 0 uses resolve_jobs(0).
  explicit ThreadPool(int threads = 0);

  /// Drains remaining queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueues a task.  Tasks must not wait on other tasks; exceptions must
  /// be captured by the task itself (see parallel_sweep).
  void submit(Task task);

  /// Blocks until every submitted task has finished executing.  The pool is
  /// reusable afterwards.
  void wait_idle();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;  ///< workers sleep here when queues are dry
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here

  std::atomic<std::size_t> queued_{0};     ///< tasks sitting in some deque
  std::atomic<std::size_t> in_flight_{0};  ///< queued + currently executing
  std::atomic<std::size_t> next_{0};       ///< round-robin submit cursor
  std::atomic<bool> stop_{false};
};

}  // namespace twostep::exec
