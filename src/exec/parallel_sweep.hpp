// Deterministic parallel execution of independent experiment tasks.
//
// parallel_sweep(count, fn) evaluates fn for task indices 0..count-1 across
// a thread pool and returns the results in task-index order.  Determinism
// contract: each task receives a private seed derived as
// splitmix64(base_seed, index) — never a share of one sequential RNG stream
// — so the result vector is byte-identical for ANY number of jobs,
// including 1 (which runs inline, without threads).  Exceptions thrown by
// tasks are captured and rethrown after the join, lowest index first.
//
// FirstHit supports "first violation wins" early stopping (the fuzzer): the
// winner is the LOWEST task index that records a hit, not the first in wall
// time.  A task may abandon work only when a STRICTLY LOWER index has
// already hit (obsolete()); tasks below the eventual winner therefore always
// run to completion and the reduced result stays independent of thread
// count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <optional>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace twostep::exec {

struct SweepOptions {
  int jobs = 0;                 ///< worker threads; <= 0 = all hardware threads
  std::uint64_t base_seed = 1;  ///< root of every task's derived seed
};

/// What a sweep task gets handed: its index (== slot in the result vector)
/// and its private deterministic seed.
struct SweepTask {
  std::size_t index = 0;
  std::uint64_t seed = 0;
};

/// Lowest-index winner for early-stopping sweeps.  All operations are
/// lock-free and safe to call from any task.
class FirstHit {
 public:
  /// Records a hit at `index`; keeps the minimum across all calls.
  void record(std::size_t index) noexcept {
    std::size_t cur = best_.load(std::memory_order_acquire);
    while (index < cur &&
           !best_.compare_exchange_weak(cur, index, std::memory_order_acq_rel)) {
    }
  }

  /// True when a STRICTLY lower index has hit — this task's result can no
  /// longer be the winner and it may stop early.
  [[nodiscard]] bool obsolete(std::size_t index) const noexcept {
    return best_.load(std::memory_order_acquire) < index;
  }

  [[nodiscard]] std::optional<std::size_t> index() const noexcept {
    const std::size_t v = best_.load(std::memory_order_acquire);
    return v == kNone ? std::nullopt : std::optional<std::size_t>{v};
  }

 private:
  static constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::atomic<std::size_t> best_{kNone};
};

/// Runs `fn(SweepTask) -> Result` for indices [0, count) and returns the
/// results in index order.  See the header comment for the determinism
/// contract.
template <typename Result, typename Fn>
std::vector<Result> parallel_sweep(std::size_t count, Fn&& fn,
                                   const SweepOptions& options = {}) {
  std::vector<Result> results(count);
  if (count == 0) return results;

  auto task_for = [&options](std::size_t i) {
    return SweepTask{i, util::splitmix64(options.base_seed, static_cast<std::uint64_t>(i))};
  };

  const int jobs = resolve_jobs(options.jobs);
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(task_for(i));
    return results;
  }

  std::vector<std::exception_ptr> errors(count);
  ThreadPool pool{static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), count))};
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        results[i] = fn(task_for(i));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  return results;
}

}  // namespace twostep::exec
