#include "exec/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace twostep::exec {

int resolve_jobs(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int n = resolve_jobs(threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  if (!task) throw std::invalid_argument("ThreadPool: empty task");
  const std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mu);
    workers_[slot]->queue.push_back(std::move(task));
  }
  // queued_ is part of wake_cv_'s wait predicate: increment it under
  // wake_mu_ (mirroring the destructor's stop_ handling) so the update
  // cannot land between a worker's predicate check and its block in
  // wait(), which would lose the wakeup.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own queue first (front: FIFO order for locally submitted work) ...
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.queue.empty()) {
      out = std::move(w.queue.front());
      w.queue.pop_front();
      return true;
    }
  }
  // ... then steal from the back of a sibling, scanning from the right
  // neighbour so contention spreads instead of piling on worker 0.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& w = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.queue.empty()) {
      out = std::move(w.queue.back());
      w.queue.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    if (try_pop(self, task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      task = nullptr;  // destroy captured state before reporting idle
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wake_mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace twostep::exec
