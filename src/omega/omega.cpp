#include "omega/omega.hpp"

namespace twostep::omega {

using consensus::ProcessId;
using consensus::TimerId;

HeartbeatOmega::HeartbeatOmega(int n, ProcessId self, sim::Tick period, sim::Tick timeout,
                               Hooks hooks)
    : n_(n), self_(self), period_(period), timeout_(timeout), hooks_(std::move(hooks)) {
  if (n < 1 || self < 0 || self >= n)
    throw std::invalid_argument("HeartbeatOmega: bad process id");
  if (period <= 0 || timeout < period)
    throw std::invalid_argument("HeartbeatOmega: need 0 < period <= timeout");
  if (!hooks_.send_heartbeat || !hooks_.set_timer || !hooks_.now)
    throw std::invalid_argument("HeartbeatOmega: missing hooks");
  last_heard_.assign(static_cast<std::size_t>(n), 0);
}

void HeartbeatOmega::start() {
  if (started_) return;
  started_ = true;
  // Give every peer the benefit of the doubt at startup: treat them as
  // heard-from at time 0 so nobody is suspected before a full timeout.
  const sim::Tick now = hooks_.now();
  for (auto& t : last_heard_) t = now;
  broadcast_heartbeats();
  pending_timer_ = hooks_.set_timer(period_);
}

void HeartbeatOmega::broadcast_heartbeats() {
  for (ProcessId p = 0; p < n_; ++p)
    if (p != self_) hooks_.send_heartbeat(p);
}

void HeartbeatOmega::on_heartbeat(ProcessId from) {
  if (from < 0 || from >= n_) return;
  last_heard_[static_cast<std::size_t>(from)] = hooks_.now();
}

bool HeartbeatOmega::handle_timer(TimerId id) {
  if (!(id == pending_timer_)) return false;
  broadcast_heartbeats();
  pending_timer_ = hooks_.set_timer(period_);
  return true;
}

bool HeartbeatOmega::suspects(ProcessId p) const {
  if (p == self_) return false;
  if (p < 0 || p >= n_) return true;
  return hooks_.now() - last_heard_[static_cast<std::size_t>(p)] > timeout_;
}

ProcessId HeartbeatOmega::leader() const {
  for (ProcessId p = 0; p < n_; ++p)
    if (!suspects(p)) return p;
  return self_;  // unreachable: self is never suspected
}

}  // namespace twostep::omega
