// Ω leader election (§C.1 of the paper).
//
// The slow path of the protocol nominates a single process to run new
// ballots.  Termination requires that eventually all correct processes agree
// on the same correct leader — the Ω failure detector.  Two implementations
// are provided:
//
//  * OmegaOracle — a simulation-level oracle that returns the lowest-id
//    non-crashed process.  Trivially eventually accurate; used by tests that
//    need deterministic, message-free leader election.
//
//  * HeartbeatOmega — the standard timeout-based implementation under
//    partial synchrony (Chandra-Toueg style): every process periodically
//    sends heartbeats; a process suspects peers it has not heard from within
//    a timeout, and elects the lowest non-suspected id.  After GST, with
//    timeout >= Δ + period, suspicions stabilize and all correct processes
//    converge on the lowest correct id.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "sim/simulator.hpp"

namespace twostep::omega {

/// Oracle Ω: leader = lowest-id process the environment reports alive.
/// `alive` must eventually stabilize (crash-stop guarantees it does).
class OmegaOracle {
 public:
  explicit OmegaOracle(std::function<bool(consensus::ProcessId)> alive, int n)
      : alive_(std::move(alive)), n_(n) {
    if (!alive_ || n_ < 1) throw std::invalid_argument("OmegaOracle: bad arguments");
  }

  [[nodiscard]] consensus::ProcessId leader() const {
    for (consensus::ProcessId p = 0; p < n_; ++p)
      if (alive_(p)) return p;
    return consensus::kNoProcess;
  }

 private:
  std::function<bool(consensus::ProcessId)> alive_;
  int n_;
};

/// Heartbeat wire message.  Hosts embedding HeartbeatOmega include this
/// struct as an alternative in their own message variant and route it to
/// on_heartbeat().
struct Heartbeat {
  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Timeout-based Ω component designed to be embedded into a host protocol.
/// The host supplies send/timer hooks (typically thin wrappers over its own
/// Env) and routes Heartbeat messages and the component's timers back in.
class HeartbeatOmega {
 public:
  struct Hooks {
    /// Unicast a heartbeat to process `to`.
    std::function<void(consensus::ProcessId to)> send_heartbeat;
    /// Arm a one-shot timer; the host routes its expiry to handle_timer().
    std::function<consensus::TimerId(sim::Tick delay)> set_timer;
    /// Current virtual time.
    std::function<sim::Tick()> now;
  };

  /// `period` is the heartbeat interval, `timeout` the suspicion threshold;
  /// eventual accuracy needs timeout >= Δ + period.
  HeartbeatOmega(int n, consensus::ProcessId self, sim::Tick period, sim::Tick timeout,
                 Hooks hooks);

  /// Sends the first round of heartbeats and arms the periodic timer.
  void start();

  /// The host routes received Heartbeat messages here.
  void on_heartbeat(consensus::ProcessId from);

  /// The host offers every timer expiry; returns true when the timer
  /// belonged to this component (and was consumed).
  bool handle_timer(consensus::TimerId id);

  /// Current leader estimate: the lowest id that is self or not suspected.
  [[nodiscard]] consensus::ProcessId leader() const;

  /// True iff `p` is currently suspected.
  [[nodiscard]] bool suspects(consensus::ProcessId p) const;

 private:
  void broadcast_heartbeats();

  int n_;
  consensus::ProcessId self_;
  sim::Tick period_;
  sim::Tick timeout_;
  Hooks hooks_;
  std::vector<sim::Tick> last_heard_;
  consensus::TimerId pending_timer_{};
  bool started_ = false;
};

}  // namespace twostep::omega
