// State-machine replication over the paper's consensus object.
//
// This is the deployment model the paper's pragmatic definition targets
// (Schneider's tutorial, as cited): a client submits a command to one of
// the replicas — its *proxy* — which proposes the command and answers once
// the command is decided.  The two-step condition matters exactly here: the
// proxy should decide in two message delays; decision latency at the other
// replicas is irrelevant to the client.
//
// The log is a sequence of independent single-shot instances of the
// consensus *object* protocol (Figure 1 with red lines), one per slot.  A
// proxy proposes its command in the lowest slot it has not used; if the
// slot decides someone else's command, the proxy re-submits in a later
// slot.  Commands are applied in slot order once decisions are contiguous.
//
// Saturation path (N3): a slot may carry a *batch* of commands.  The value
// decided by the slot's consensus instance is still one 64-bit command —
// consensus::Value never widens — but a command with the batch bit set is
// an opaque handle whose payload list travels beside the protocol as a
// BatchContentMsg.  Replicas stall contiguous application on a handle whose
// contents they have not yet seen and fetch them (BatchFetchMsg); contents
// are immutable once created, so any replica that has them can answer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "core/two_step.hpp"
#include "obs/histogram.hpp"

namespace twostep::rsm {

/// A command is an opaque 64-bit payload; the RSM packs (proxy, local id)
/// into it so every submitted command is globally unique.
using Command = std::int64_t;

/// Wire message: a slot-tagged message of the underlying consensus object.
/// `cfg` is the sender's governing configuration version for the slot
/// (see ConfigEpoch): a receiver whose governing version for the slot
/// differs drops the message, so quorums never mix configuration epochs.
struct SlotMsg {
  std::int32_t slot = 0;
  std::int32_t cfg = 0;
  core::Message inner;
  friend bool operator==(const SlotMsg&, const SlotMsg&) = default;
};

/// Contents of one batch handle: the client payloads it stands for, in
/// submission order.  Broadcast by the proxy when the batch is sealed and
/// re-sent on demand (fetch) and on link re-establishment (anti-entropy).
struct BatchContentMsg {
  Command cmd = 0;  ///< the batch handle (bit 39 set)
  std::vector<std::int64_t> payloads;
  friend bool operator==(const BatchContentMsg&, const BatchContentMsg&) = default;
};

/// Request for the contents of a batch handle the sender cannot resolve.
struct BatchFetchMsg {
  Command cmd = 0;
  friend bool operator==(const BatchFetchMsg&, const BatchFetchMsg&) = default;
};

/// One membership change: add or remove a single replica.  `host`/`port`
/// are the joiner's listen endpoint (meaningful for kAdd only) so existing
/// members learn where to dial.
struct ConfigChange {
  enum class Op : std::uint8_t { kAdd = 0, kRemove = 1 };
  Op op = Op::kAdd;
  consensus::ProcessId replica = 0;
  std::string host;
  std::uint16_t port = 0;
  friend bool operator==(const ConfigChange&, const ConfigChange&) = default;
};

/// Contents of one config handle — the reconfiguration analogue of
/// BatchContentMsg.  The value decided in the slot is still one 64-bit
/// command (a handle with bits 39+38 set); the change itself travels
/// beside the protocol and is fetched on demand, exactly like a batch.
struct ConfigChangeMsg {
  Command cmd = 0;  ///< the config handle (bits 39 and 38 set)
  ConfigChange change;
  friend bool operator==(const ConfigChangeMsg&, const ConfigChangeMsg&) = default;
};

/// Request for the contents of a config handle the sender cannot resolve.
struct ConfigFetchMsg {
  Command cmd = 0;
  friend bool operator==(const ConfigFetchMsg&, const ConfigFetchMsg&) = default;
};

/// RSM wire message: slot-tagged consensus traffic plus the batch and
/// config sidecars.
using Msg = std::variant<SlotMsg, BatchContentMsg, BatchFetchMsg, ConfigChangeMsg, ConfigFetchMsg>;

/// One epoch of the configuration log.  `version` governs every slot in
/// [boundary, next epoch's boundary): a config change decided in slot k
/// takes effect at slot k+1 (stop-the-world, single-server change).
/// `universe` is the quorum universe the per-slot SystemConfig uses — it
/// only ever grows (a removed replica is treated as permanently crashed,
/// which the protocol already tolerates, rather than shrinking quorums).
struct ConfigEpoch {
  std::int32_t version = 0;
  std::int32_t boundary = 0;  ///< first slot this epoch governs
  std::int32_t universe = 0;  ///< SystemConfig n for governed slots
  std::vector<consensus::ProcessId> members;  ///< live membership
  ConfigChange change;  ///< the change that created this epoch (empty at genesis)
  friend bool operator==(const ConfigEpoch&, const ConfigEpoch&) = default;
};

struct Options {
  sim::Tick delta = 1;
  std::function<consensus::ProcessId()> leader_of;
  core::SelectionPolicy selection_policy = core::SelectionPolicy::kPaper;
  obs::Probe probe;  ///< forwarded into every slot's protocol instance

  /// Max client commands packed into one slot.  1 (default) disables
  /// batching entirely: submit() proposes a plain command, byte-for-byte
  /// the pre-batching behavior.  With batching on, payloads must fit in
  /// 39 bits (bit 39 marks batch handles).
  int batch_max = 1;
  /// How long an open batch waits for more commands before sealing, in
  /// ticks.  0 seals on the next timer pass — commands arriving in the
  /// same loop iteration still coalesce.
  sim::Tick batch_linger = 0;
  /// Max own undecided slots in flight.  0 = unbounded (the pre-window
  /// behavior: every submission proposes immediately).
  int pipeline_window = 0;
  /// Optional histogram of sealed batch sizes (commands per slot).
  obs::LogHistogram* batch_fill = nullptr;
};

/// Complete checkpoint of one replica's RSM state, captured by
/// snapshot_state() and reinstated by install_snapshot_state().  This is
/// what a storage::Engine snapshot payload carries and what travels over
/// the wire during snapshot state transfer; storage::Snapshotable owns the
/// byte encoding, this struct is the in-memory contract.
struct SnapshotState {
  /// Compaction floor: every slot < floor is decided and applied, and
  /// `applied` below is their full expansion.  Equals the capturing
  /// replica's applied prefix.
  std::int32_t floor = 0;
  /// The applied log from genesis: one (slot, command) pair per on_apply
  /// firing — a batched slot contributes one entry per inner command.
  /// The log IS the state machine state; installing it replays exactly
  /// the applications a replica that lived through history performed.
  std::vector<std::pair<std::int32_t, Command>> applied;
  /// Acceptor state of every live slot at/above the floor (in-flight
  /// instances plus decided-but-not-yet-contiguous ones).
  std::vector<std::pair<std::int32_t, core::TwoStepProcess::AcceptorState>> slots;
  /// Batch contents still needed at/above the floor, plus any handle not
  /// yet decided (its slot is unknown, so it must survive the transfer).
  std::vector<std::pair<Command, std::vector<std::int64_t>>> batches;
  /// The full configuration log, genesis epoch included.  A joiner adopts
  /// the whole log (it starts with only genesis), which is how it learns
  /// the membership it is entering.
  std::vector<ConfigEpoch> epochs;
  /// Config-handle contents not yet folded into an epoch (undecided or
  /// decided-above-floor handles), by the same liveness rule as batches.
  std::vector<std::pair<Command, ConfigChange>> configs;
};

/// Static message-type label: delegates to the inner protocol message.
[[nodiscard]] constexpr const char* message_name(const SlotMsg& m) noexcept {
  return core::message_name(m.inner);
}
[[nodiscard]] inline const char* message_name(const Msg& m) noexcept {
  if (const auto* s = std::get_if<SlotMsg>(&m)) return core::message_name(s->inner);
  if (std::holds_alternative<BatchContentMsg>(m)) return "BatchContent";
  if (std::holds_alternative<BatchFetchMsg>(m)) return "BatchFetch";
  return std::holds_alternative<ConfigChangeMsg>(m) ? "ConfigChange" : "ConfigFetch";
}

/// One replica: proxy + per-slot consensus participants + executor.
class RsmProcess {
 public:
  using Message = Msg;

  RsmProcess(consensus::Env<Message>& env, consensus::SystemConfig config, Options options);
  ~RsmProcess();  // out-of-line: SlotEnv is incomplete here

  void start() {}

  /// Proxy API: submit a client command.  Returns the globally unique
  /// command actually enqueued (payload packed with the proxy id).  With
  /// batching enabled the returned command is the caller-visible identity
  /// (on_commit / on_apply fire with it); the batch handle that actually
  /// occupies the slot is internal.
  Command submit(std::int64_t payload);

  /// Submits a membership change through the log.  Returns the config
  /// handle that will occupy a slot (on_commit fires with it when the
  /// change is chosen).  Stop-the-world: the handle is proposed only once
  /// our own in-flight slots have drained, and nothing else of ours is
  /// proposed past an undecided config handle.
  Command submit_config(const ConfigChange& change);

  /// Cluster-harness adapter: submits the value's payload as a command.
  void propose(consensus::Value v) { submit(v.get()); }

  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  /// Fired when a slot decision is learned, in arbitrary slot order.
  std::function<void(std::int32_t slot, Command cmd)> on_decide_slot;
  /// Fired for every command in log order (contiguous prefix application).
  /// A batched slot fires once per inner command, in submission order.
  std::function<void(std::int32_t slot, Command cmd)> on_apply;
  /// Fired when one of OUR commands commits: (command, submit time, slot).
  /// A batched slot fires once per inner command with its own submit time.
  std::function<void(Command cmd, sim::Tick submitted_at, std::int32_t slot)> on_commit;
  /// Cluster-harness adapter: fired on our first committed command.
  std::function<void(consensus::Value)> on_decide;
  /// Fired when a config change is applied in log order (the slot it was
  /// decided in, the change, and the epoch it created).  Config entries do
  /// NOT fire on_apply — the executor log carries client commands only.
  /// Also fired during snapshot install for each epoch adopted wholesale.
  std::function<void(std::int32_t slot, const ConfigChange& change, const ConfigEpoch& epoch)>
      on_config;

  // --- crash recovery (consumed by storage::Durable<RsmProcess>) ---

  /// Slots whose inner acceptor state may have changed since the last
  /// drain.  Cleared by the call; the set is maintained by every entry
  /// point that can touch a slot (message, timer, submit).
  [[nodiscard]] std::vector<std::int32_t> drain_dirty_slots();

  /// Batch handles whose contents became known since the last drain
  /// (sealed locally or received from a peer).  Contents are immutable,
  /// so each handle is reported exactly once.
  [[nodiscard]] std::vector<Command> drain_dirty_batches();

  /// Config handles whose contents became known since the last drain —
  /// same contract as drain_dirty_batches().
  [[nodiscard]] std::vector<Command> drain_dirty_configs();

  /// The consensus instance of one slot, or null if the slot was never
  /// touched locally.
  [[nodiscard]] const core::TwoStepProcess* slot_process(std::int32_t slot) const;

  /// Contents of a batch handle, or null if unknown here.
  [[nodiscard]] const std::vector<std::int64_t>* batch_contents(Command cmd) const;

  /// Contents of a config handle, or null if unknown here.
  [[nodiscard]] const ConfigChange* config_contents(Command cmd) const;

  /// Reinstates one slot from its durable record: restores the inner
  /// acceptor state, re-registers a restored decision and re-applies the
  /// contiguous prefix (on_apply fires in log order during replay).
  void restore_slot(std::int32_t slot, const core::TwoStepProcess::AcceptorState& s);

  /// Reinstates one batch's contents from its durable record.
  void restore_batch(Command cmd, std::vector<std::int64_t> payloads);

  /// Reinstates one config handle's contents from its durable record.
  /// Epochs themselves are not restored directly: replaying slot records
  /// re-derives them through apply_contiguous (config records precede slot
  /// records in the WAL, so the contents are present when needed).
  void restore_config(Command cmd, const ConfigChange& change);

  // --- snapshots & compaction (consumed by storage::Snapshotable) ---

  /// Captures a complete checkpoint of this replica: the applied log plus
  /// every live slot and still-needed batch.  Installing the result into a
  /// fresh replica reproduces this replica's externally visible state.
  [[nodiscard]] SnapshotState snapshot_state() const;

  /// Reinstates a checkpoint.  Safe on a *running* replica that is behind
  /// (snapshot state transfer), not just a fresh one: locally absent slots
  /// are restored wholesale, but for slots this replica already
  /// participates in only the snapshot's *decisions* are adopted — never
  /// its promises, which could roll back commitments made to a quorum.
  /// The local applied log must be a prefix of the snapshot's (guaranteed
  /// by agreement: both expand the same decided slot sequence); on_apply
  /// fires for exactly the missing suffix.  Our own commands stranded in
  /// summarized slots are re-queued (at-least-once, like client retries).
  /// Finishes with compact_to(s.floor).
  void install_snapshot_state(const SnapshotState& s);

  /// Drops everything below `floor` (clamped to the applied prefix): slot
  /// instances and their timers, their decisions, and batch contents no
  /// surviving decision references.  Called after the snapshot covering
  /// that state is durable; the floor only ever rises.
  void compact_to(std::int32_t floor);

  /// Lowest slot whose instance may still exist here (0 = never compacted).
  [[nodiscard]] std::int32_t compact_floor() const noexcept { return floor_; }

  /// The applied log retained for snapshot capture: every (slot, command)
  /// pair on_apply has fired with (or would have), from genesis.
  [[nodiscard]] const std::vector<std::pair<std::int32_t, Command>>& applied_entries()
      const noexcept {
    return applied_entries_;
  }

  /// The Decide retransmission set: one slot-wrapped DecideMsg per decided
  /// slot, in slot order, preceded by the contents of every decided batch
  /// handle we know (a peer that learns a decision it cannot expand would
  /// otherwise stall until fetch kicks in).  Resent by the live runtime
  /// whenever a peer link (re)establishes — the transport's disconnected
  /// queue is bounded, so a replica that was down through many decisions
  /// needs this anti-entropy pass to fill its log gaps (its own ballot
  /// timers cannot: only the Ω leader starts ballots, and a decided leader
  /// has nothing left to run).
  [[nodiscard]] std::vector<Message> decide_messages() const;

  // --- configuration ---

  /// The configuration log (genesis first).  Never empty.
  [[nodiscard]] const std::vector<ConfigEpoch>& config_epochs() const noexcept { return epochs_; }

  /// The latest epoch's version / membership.
  [[nodiscard]] std::int32_t config_version() const noexcept { return epochs_.back().version; }
  [[nodiscard]] const std::vector<consensus::ProcessId>& members() const noexcept {
    return epochs_.back().members;
  }
  [[nodiscard]] bool has_member(consensus::ProcessId p) const;

  /// The config version governing `slot` (the last epoch whose boundary
  /// is <= slot).  Stamped on every outgoing SlotMsg and checked on every
  /// incoming one.
  [[nodiscard]] std::int32_t governing_version(std::int32_t slot) const;

  /// Replaces the Ω leader hint for this replica and every live slot
  /// instance, present and future.  The live runtime installs its failure
  /// detector's output here; new ballots started by slot timers then race
  /// only from the current leader.
  void set_leader_of(std::function<consensus::ProcessId()> leader_of);

  // --- introspection ---
  [[nodiscard]] std::int32_t applied_prefix() const noexcept { return applied_; }
  [[nodiscard]] int decided_slots() const noexcept { return static_cast<int>(decisions_.size()); }
  [[nodiscard]] std::optional<Command> decision(std::int32_t slot) const;
  [[nodiscard]] int pending_own_commands() const noexcept { return static_cast<int>(pending_.size()); }
  [[nodiscard]] std::int64_t commits() const noexcept { return commits_; }
  /// Commands buffered in the open (unsealed) batch.
  [[nodiscard]] int open_batch_size() const noexcept {
    return static_cast<int>(open_batch_.entries.size());
  }

  /// Largest client payload submit() accepts: 2^39-1.  Bit 39 flags
  /// batch/config handles, so it is reserved unconditionally (config
  /// handles can occupy a slot even with batching off).
  [[nodiscard]] std::int64_t max_payload() const noexcept {
    return (std::int64_t{1} << 39) - 1;
  }

  /// Unpacks the proxy id from a command.
  static consensus::ProcessId command_proxy(Command cmd) {
    return static_cast<consensus::ProcessId>(static_cast<std::uint64_t>(cmd) >> 40);
  }
  /// Unpacks the client payload (lower 40 bits).
  static std::int64_t command_payload(Command cmd) {
    return cmd & ((std::int64_t{1} << 40) - 1);
  }
  /// True if the command is a batch handle (bit 39 set, bit 38 clear)
  /// rather than a client command.
  static bool command_is_batch(Command cmd) { return ((cmd >> 38) & 3) == 2; }
  /// True if the command is a config handle (bits 39 and 38 both set).
  static bool command_is_config(Command cmd) { return ((cmd >> 38) & 3) == 3; }

 private:
  struct SlotEnv;

  struct SlotState {
    std::unique_ptr<SlotEnv> env;
    std::unique_ptr<core::TwoStepProcess> proc;
  };

  struct PendingCommand {
    Command cmd = 0;
    sim::Tick submitted_at = 0;
    std::int32_t slot = -1;  ///< slot currently proposed in, -1 = queued
  };

  /// Commands accumulating toward the next sealed batch.
  struct OpenBatch {
    std::vector<std::pair<Command, sim::Tick>> entries;  ///< (caller cmd, submit time)
    std::optional<consensus::TimerId> linger;
  };

  SlotState& ensure_slot(std::int32_t slot);
  void propose_in_slot(PendingCommand& pending, std::int32_t slot);
  void propose_pending();
  [[nodiscard]] int own_slots_in_flight() const;
  void seal_open_batch();
  void handle_batch_content(BatchContentMsg m);
  void request_batch_contents(Command cmd);
  void handle_config_content(const ConfigChangeMsg& m);
  void request_config_contents(Command cmd);
  void apply_config_change(std::int32_t slot, const ConfigChange& change);
  void rebuild_slots_from(std::int32_t boundary);
  [[nodiscard]] const ConfigEpoch& governing_epoch(std::int32_t slot) const;
  void slot_decided(std::int32_t slot, consensus::Value v);
  void commit_own(const PendingCommand& pending, std::int32_t slot);
  void apply_contiguous();
  [[nodiscard]] std::int32_t next_free_slot() const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;

  std::map<std::int32_t, SlotState> slots_;
  std::set<std::int32_t> dirty_slots_;
  std::map<std::int32_t, Command> decisions_;
  std::map<std::uint64_t, std::pair<std::int32_t, consensus::TimerId>> timer_routes_;
  std::deque<PendingCommand> pending_;
  OpenBatch open_batch_;
  std::map<Command, std::vector<std::int64_t>> batch_contents_;
  std::set<Command> dirty_batches_;
  std::map<Command, ConfigChange> config_contents_;
  std::set<Command> dirty_configs_;
  /// The configuration log; epochs_[0] is genesis ({version 0, boundary 0,
  /// the constructor-time SystemConfig}).  Appended only by
  /// apply_config_change and snapshot install, in version order.
  std::vector<ConfigEpoch> epochs_;
  /// Our sealed batches' inner (caller cmd, submit time) entries, kept
  /// until the batch commits so on_commit can fan out per command.
  std::map<Command, std::vector<std::pair<Command, sim::Tick>>> own_batch_entries_;
  std::map<Command, consensus::TimerId> fetch_waiting_;   ///< handle -> retry timer
  std::map<std::uint64_t, Command> fetch_timer_cmds_;     ///< timer id -> handle
  std::int32_t applied_ = 0;        ///< number of applied (contiguous) slots
  std::int32_t floor_ = 0;          ///< compaction floor (slots below are gone)
  /// The applied log (see applied_entries()); appended by apply_contiguous
  /// and by snapshot install, captured verbatim into snapshots.
  std::vector<std::pair<std::int32_t, Command>> applied_entries_;
  std::int32_t submit_cursor_ = 0;  ///< lowest slot we might still use
  std::int64_t next_local_id_ = 1;
  std::int64_t next_batch_seq_ = 1;
  std::int64_t next_config_seq_ = 1;
  std::int64_t commits_ = 0;
  std::uint64_t next_timer_key_ = 1;
  bool first_commit_reported_ = false;
};

}  // namespace twostep::rsm
