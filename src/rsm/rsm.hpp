// State-machine replication over the paper's consensus object.
//
// This is the deployment model the paper's pragmatic definition targets
// (Schneider's tutorial, as cited): a client submits a command to one of
// the replicas — its *proxy* — which proposes the command and answers once
// the command is decided.  The two-step condition matters exactly here: the
// proxy should decide in two message delays; decision latency at the other
// replicas is irrelevant to the client.
//
// The log is a sequence of independent single-shot instances of the
// consensus *object* protocol (Figure 1 with red lines), one per slot.  A
// proxy proposes its command in the lowest slot it has not used; if the
// slot decides someone else's command, the proxy re-submits in a later
// slot.  Commands are applied in slot order once decisions are contiguous.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "core/two_step.hpp"

namespace twostep::rsm {

/// A command is an opaque 64-bit payload; the RSM packs (proxy, local id)
/// into it so every submitted command is globally unique.
using Command = std::int64_t;

/// Wire message: a slot-tagged message of the underlying consensus object.
struct SlotMsg {
  std::int32_t slot = 0;
  core::Message inner;
  friend bool operator==(const SlotMsg&, const SlotMsg&) = default;
};

struct Options {
  sim::Tick delta = 1;
  std::function<consensus::ProcessId()> leader_of;
  core::SelectionPolicy selection_policy = core::SelectionPolicy::kPaper;
  obs::Probe probe;  ///< forwarded into every slot's protocol instance
};

/// Static message-type label: delegates to the inner protocol message.
[[nodiscard]] constexpr const char* message_name(const SlotMsg& m) noexcept {
  return core::message_name(m.inner);
}

/// One replica: proxy + per-slot consensus participants + executor.
class RsmProcess {
 public:
  using Message = SlotMsg;

  RsmProcess(consensus::Env<Message>& env, consensus::SystemConfig config, Options options);
  ~RsmProcess();  // out-of-line: SlotEnv is incomplete here

  void start() {}

  /// Proxy API: submit a client command.  Returns the globally unique
  /// command actually enqueued (payload packed with the proxy id).
  Command submit(std::int64_t payload);

  /// Cluster-harness adapter: submits the value's payload as a command.
  void propose(consensus::Value v) { submit(v.get()); }

  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  /// Fired when a slot decision is learned, in arbitrary slot order.
  std::function<void(std::int32_t slot, Command cmd)> on_decide_slot;
  /// Fired for every command in log order (contiguous prefix application).
  std::function<void(std::int32_t slot, Command cmd)> on_apply;
  /// Fired when one of OUR commands commits: (command, submit time, slot).
  std::function<void(Command cmd, sim::Tick submitted_at, std::int32_t slot)> on_commit;
  /// Cluster-harness adapter: fired on our first committed command.
  std::function<void(consensus::Value)> on_decide;

  // --- crash recovery (consumed by storage::Durable<RsmProcess>) ---

  /// Slots whose inner acceptor state may have changed since the last
  /// drain.  Cleared by the call; the set is maintained by every entry
  /// point that can touch a slot (message, timer, submit).
  [[nodiscard]] std::vector<std::int32_t> drain_dirty_slots();

  /// The consensus instance of one slot, or null if the slot was never
  /// touched locally.
  [[nodiscard]] const core::TwoStepProcess* slot_process(std::int32_t slot) const;

  /// Reinstates one slot from its durable record: restores the inner
  /// acceptor state, re-registers a restored decision and re-applies the
  /// contiguous prefix (on_apply fires in log order during replay).
  void restore_slot(std::int32_t slot, const core::TwoStepProcess::AcceptorState& s);

  /// The Decide retransmission set: one slot-wrapped DecideMsg per decided
  /// slot, in slot order.  Resent by the live runtime whenever a peer link
  /// (re)establishes — the transport's disconnected queue is bounded, so a
  /// replica that was down through many decisions needs this anti-entropy
  /// pass to fill its log gaps (its own ballot timers cannot: only the Ω
  /// leader starts ballots, and a decided leader has nothing left to run).
  [[nodiscard]] std::vector<Message> decide_messages() const;

  // --- introspection ---
  [[nodiscard]] std::int32_t applied_prefix() const noexcept { return applied_; }
  [[nodiscard]] int decided_slots() const noexcept { return static_cast<int>(decisions_.size()); }
  [[nodiscard]] std::optional<Command> decision(std::int32_t slot) const;
  [[nodiscard]] int pending_own_commands() const noexcept { return static_cast<int>(pending_.size()); }
  [[nodiscard]] std::int64_t commits() const noexcept { return commits_; }

  /// Unpacks the proxy id from a command.
  static consensus::ProcessId command_proxy(Command cmd) {
    return static_cast<consensus::ProcessId>(static_cast<std::uint64_t>(cmd) >> 40);
  }
  /// Unpacks the client payload (lower 40 bits).
  static std::int64_t command_payload(Command cmd) {
    return cmd & ((std::int64_t{1} << 40) - 1);
  }

 private:
  struct SlotEnv;

  struct SlotState {
    std::unique_ptr<SlotEnv> env;
    std::unique_ptr<core::TwoStepProcess> proc;
  };

  struct PendingCommand {
    Command cmd = 0;
    sim::Tick submitted_at = 0;
    std::int32_t slot = -1;  ///< slot currently proposed in
  };

  SlotState& ensure_slot(std::int32_t slot);
  void propose_in_slot(PendingCommand& pending, std::int32_t slot);
  void slot_decided(std::int32_t slot, consensus::Value v);
  void apply_contiguous();
  [[nodiscard]] std::int32_t next_free_slot() const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;

  std::map<std::int32_t, SlotState> slots_;
  std::set<std::int32_t> dirty_slots_;
  std::map<std::int32_t, Command> decisions_;
  std::map<std::uint64_t, std::pair<std::int32_t, consensus::TimerId>> timer_routes_;
  std::deque<PendingCommand> pending_;
  std::int32_t applied_ = 0;        ///< number of applied (contiguous) slots
  std::int32_t submit_cursor_ = 0;  ///< lowest slot we might still use
  std::int64_t next_local_id_ = 1;
  std::int64_t commits_ = 0;
  std::uint64_t next_timer_key_ = 1;
  bool first_commit_reported_ = false;
};

}  // namespace twostep::rsm
