#include "rsm/rsm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace twostep::rsm {

using consensus::ProcessId;
using consensus::TimerId;
using consensus::Value;

/// Env adapter presented to one slot's consensus instance: tags outgoing
/// messages with the slot and routes timers through the host.
struct RsmProcess::SlotEnv final : consensus::Env<core::Message> {
  SlotEnv(RsmProcess& host, std::int32_t slot) : host_(host), slot_(slot) {}

  [[nodiscard]] ProcessId self() const override { return host_.env_.self(); }
  [[nodiscard]] int cluster_size() const override { return host_.env_.cluster_size(); }
  [[nodiscard]] sim::Tick now() const override { return host_.env_.now(); }

  void send(ProcessId to, const core::Message& msg) override {
    host_.env_.send(to, SlotMsg{slot_, msg});
  }

  TimerId set_timer(sim::Tick delay) override {
    const TimerId id = host_.env_.set_timer(delay);
    host_.timer_routes_[id.value] = {slot_, id};
    return id;
  }

  void cancel_timer(TimerId id) override {
    host_.env_.cancel_timer(id);
    host_.timer_routes_.erase(id.value);
  }

  RsmProcess& host_;
  std::int32_t slot_;
};

RsmProcess::RsmProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                       Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("RsmProcess: delta must be > 0");
  if (options_.batch_max < 1) throw std::invalid_argument("RsmProcess: batch_max must be >= 1");
  if (options_.pipeline_window < 0)
    throw std::invalid_argument("RsmProcess: pipeline_window must be >= 0");
}

RsmProcess::~RsmProcess() = default;

RsmProcess::SlotState& RsmProcess::ensure_slot(std::int32_t slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) return it->second;

  SlotState state;
  state.env = std::make_unique<SlotEnv>(*this, slot);
  core::Options proto_options;
  proto_options.mode = core::Mode::kObject;
  proto_options.delta = options_.delta;
  proto_options.leader_of = options_.leader_of;
  proto_options.selection_policy = options_.selection_policy;
  proto_options.probe = options_.probe;
  state.proc =
      std::make_unique<core::TwoStepProcess>(*state.env, config_, std::move(proto_options));
  state.proc->on_decide = [this, slot](Value v) { slot_decided(slot, v); };
  state.proc->start();  // arms the slot's ballot timer
  it = slots_.emplace(slot, std::move(state)).first;
  return it->second;
}

std::int32_t RsmProcess::next_free_slot() const {
  std::int32_t s = submit_cursor_;
  while (decisions_.contains(s)) ++s;
  return s;
}

Command RsmProcess::submit(std::int64_t payload) {
  if (payload < 0 || payload > max_payload())
    throw std::invalid_argument("RsmProcess::submit: payload out of range");
  // Commands are (proxy, payload); the proxy tag makes commands from
  // different proxies distinct.  Callers must not submit the same payload
  // twice from the same proxy (the workload generators use sequence ids).
  const Command cmd = (static_cast<std::int64_t>(env_.self()) << 40) | payload;
  ++next_local_id_;
  if (options_.batch_max > 1) {
    open_batch_.entries.emplace_back(cmd, env_.now());
    if (static_cast<int>(open_batch_.entries.size()) >= options_.batch_max) {
      seal_open_batch();
    } else if (!open_batch_.linger) {
      open_batch_.linger = env_.set_timer(std::max<sim::Tick>(options_.batch_linger, 0));
    }
    return cmd;
  }
  PendingCommand pending;
  pending.cmd = cmd;
  pending.submitted_at = env_.now();
  pending_.push_back(pending);
  propose_pending();
  return cmd;
}

void RsmProcess::seal_open_batch() {
  if (open_batch_.linger) {
    env_.cancel_timer(*open_batch_.linger);
    open_batch_.linger.reset();
  }
  if (open_batch_.entries.empty()) return;
  OpenBatch batch = std::exchange(open_batch_, {});
  if (options_.batch_fill)
    options_.batch_fill->record(static_cast<std::int64_t>(batch.entries.size()));

  PendingCommand pending;
  pending.submitted_at = batch.entries.front().second;
  if (batch.entries.size() == 1) {
    // A batch of one proposes the plain command — no handle indirection.
    pending.cmd = batch.entries.front().first;
  } else {
    const Command handle = (static_cast<std::int64_t>(env_.self()) << 40) |
                           (std::int64_t{1} << 39) | next_batch_seq_++;
    std::vector<std::int64_t> payloads;
    payloads.reserve(batch.entries.size());
    for (const auto& [cmd, at] : batch.entries) payloads.push_back(command_payload(cmd));
    batch_contents_.emplace(handle, payloads);
    dirty_batches_.insert(handle);
    own_batch_entries_.emplace(handle, std::move(batch.entries));
    const ProcessId self = env_.self();
    for (int p = 0; p < env_.cluster_size(); ++p)
      if (p != self) env_.send(p, BatchContentMsg{handle, payloads});
    pending.cmd = handle;
  }
  pending_.push_back(pending);
  propose_pending();
}

int RsmProcess::own_slots_in_flight() const {
  int n = 0;
  for (const auto& p : pending_)
    if (p.slot >= 0 && !decisions_.contains(p.slot)) ++n;
  return n;
}

void RsmProcess::propose_pending() {
  const int window = options_.pipeline_window;
  int in_flight = window > 0 ? own_slots_in_flight() : 0;
  for (auto& p : pending_) {
    if (p.slot >= 0) continue;
    if (window > 0 && in_flight >= window) break;
    propose_in_slot(p, next_free_slot());
    ++in_flight;
  }
}

void RsmProcess::propose_in_slot(PendingCommand& pending, std::int32_t slot) {
  pending.slot = slot;
  submit_cursor_ = slot + 1;
  dirty_slots_.insert(slot);
  ensure_slot(slot).proc->propose(Value{pending.cmd});
}

void RsmProcess::on_message(ProcessId from, const Message& m) {
  if (const auto* s = std::get_if<SlotMsg>(&m)) {
    // A compacted slot is decided, applied and summarized by a snapshot;
    // there is nothing left to learn or answer for it (a peer this far
    // behind needs the snapshot, which the runtime offers separately).
    if (s->slot < floor_) return;
    dirty_slots_.insert(s->slot);
    ensure_slot(s->slot).proc->on_message(from, s->inner);
    return;
  }
  if (const auto* b = std::get_if<BatchContentMsg>(&m)) {
    handle_batch_content(*b);
    return;
  }
  const auto& f = std::get<BatchFetchMsg>(m);
  const auto it = batch_contents_.find(f.cmd);
  if (it != batch_contents_.end()) env_.send(from, BatchContentMsg{f.cmd, it->second});
}

void RsmProcess::handle_batch_content(BatchContentMsg m) {
  if (batch_contents_.contains(m.cmd)) return;
  batch_contents_.emplace(m.cmd, std::move(m.payloads));
  dirty_batches_.insert(m.cmd);
  const auto wit = fetch_waiting_.find(m.cmd);
  if (wit != fetch_waiting_.end()) {
    env_.cancel_timer(wit->second);
    fetch_timer_cmds_.erase(wit->second.value);
    fetch_waiting_.erase(wit);
  }
  apply_contiguous();
}

void RsmProcess::request_batch_contents(Command cmd) {
  if (fetch_waiting_.contains(cmd)) return;  // retry timer already armed
  const ProcessId proxy = command_proxy(cmd);
  if (proxy != env_.self()) env_.send(proxy, BatchFetchMsg{cmd});
  const TimerId id = env_.set_timer(std::max<sim::Tick>(options_.delta * 4, 1));
  fetch_waiting_.emplace(cmd, id);
  fetch_timer_cmds_.emplace(id.value, cmd);
}

void RsmProcess::on_timer(TimerId id) {
  if (open_batch_.linger && open_batch_.linger->value == id.value) {
    open_batch_.linger.reset();
    seal_open_batch();
    return;
  }
  const auto fit = fetch_timer_cmds_.find(id.value);
  if (fit != fetch_timer_cmds_.end()) {
    const Command cmd = fit->second;
    fetch_timer_cmds_.erase(fit);
    fetch_waiting_.erase(cmd);
    if (!batch_contents_.contains(cmd)) {
      // The proxy did not answer in time — widen the fetch to everyone.
      const ProcessId self = env_.self();
      for (int p = 0; p < env_.cluster_size(); ++p)
        if (p != self) env_.send(p, BatchFetchMsg{cmd});
      const TimerId retry = env_.set_timer(std::max<sim::Tick>(options_.delta * 4, 1));
      fetch_waiting_.emplace(cmd, retry);
      fetch_timer_cmds_.emplace(retry.value, cmd);
    }
    return;
  }
  const auto it = timer_routes_.find(id.value);
  if (it == timer_routes_.end()) return;
  const std::int32_t slot = it->second.first;
  timer_routes_.erase(it);
  dirty_slots_.insert(slot);
  ensure_slot(slot).proc->on_timer(id);
}

std::vector<std::int32_t> RsmProcess::drain_dirty_slots() {
  std::vector<std::int32_t> slots(dirty_slots_.begin(), dirty_slots_.end());
  dirty_slots_.clear();
  return slots;
}

std::vector<Command> RsmProcess::drain_dirty_batches() {
  std::vector<Command> cmds(dirty_batches_.begin(), dirty_batches_.end());
  dirty_batches_.clear();
  return cmds;
}

const core::TwoStepProcess* RsmProcess::slot_process(std::int32_t slot) const {
  const auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : it->second.proc.get();
}

const std::vector<std::int64_t>* RsmProcess::batch_contents(Command cmd) const {
  const auto it = batch_contents_.find(cmd);
  return it == batch_contents_.end() ? nullptr : &it->second;
}

void RsmProcess::restore_slot(std::int32_t slot, const core::TwoStepProcess::AcceptorState& s) {
  // A WAL tail can only describe slots at/above the snapshot floor (the
  // snapshot barrier seals everything logged before capture), but guard
  // anyway: resurrecting a summarized slot would undo compaction.
  if (slot < floor_ && !slots_.contains(slot)) return;
  ensure_slot(slot).proc->restore(s);
  if (!s.decided.is_bottom() && !decisions_.contains(slot)) {
    decisions_[slot] = s.decided.get();
    if (on_decide_slot) on_decide_slot(slot, s.decided.get());
    apply_contiguous();
  }
}

void RsmProcess::restore_batch(Command cmd, std::vector<std::int64_t> payloads) {
  if (batch_contents_.contains(cmd)) return;
  batch_contents_.emplace(cmd, std::move(payloads));
  apply_contiguous();
}

void RsmProcess::slot_decided(std::int32_t slot, Value v) {
  if (decisions_.contains(slot)) return;
  const Command decided = v.get();
  decisions_[slot] = decided;
  if (on_decide_slot) on_decide_slot(slot, decided);

  // Settle our own command in this slot, if any: a winner commits, a loser
  // re-queues for a later slot.  Each live pending command occupies a
  // distinct slot, so at most one entry matches.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->slot != slot) continue;
    if (it->cmd == decided) {
      commit_own(*it, slot);
      pending_.erase(it);
    } else {
      PendingCommand retry = *it;
      retry.slot = -1;
      pending_.erase(it);
      pending_.push_back(retry);
    }
    break;
  }
  propose_pending();  // a decision frees pipeline-window budget
  apply_contiguous();
}

void RsmProcess::commit_own(const PendingCommand& pending, std::int32_t slot) {
  if (command_is_batch(pending.cmd)) {
    const auto it = own_batch_entries_.find(pending.cmd);
    if (it != own_batch_entries_.end()) {
      for (const auto& [cmd, submitted_at] : it->second) {
        ++commits_;
        if (on_commit) on_commit(cmd, submitted_at, slot);
      }
      own_batch_entries_.erase(it);
    }
  } else {
    ++commits_;
    if (on_commit) on_commit(pending.cmd, pending.submitted_at, slot);
  }
  if (!first_commit_reported_ && on_decide) {
    first_commit_reported_ = true;
    on_decide(Value{pending.cmd});
  }
}

std::optional<Command> RsmProcess::decision(std::int32_t slot) const {
  const auto it = decisions_.find(slot);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

std::vector<Msg> RsmProcess::decide_messages() const {
  std::vector<Msg> out;
  out.reserve(decisions_.size());
  // Contents first: a peer must be able to expand every decision it is
  // about to learn without a fetch round-trip.
  for (const auto& [slot, cmd] : decisions_) {
    if (!command_is_batch(cmd)) continue;
    const auto it = batch_contents_.find(cmd);
    if (it != batch_contents_.end()) out.push_back(BatchContentMsg{cmd, it->second});
  }
  for (const auto& [slot, cmd] : decisions_)
    out.push_back(SlotMsg{slot, core::Message{core::DecideMsg{consensus::Value{cmd}}}});
  return out;
}

SnapshotState RsmProcess::snapshot_state() const {
  SnapshotState s;
  s.floor = applied_;
  s.applied = applied_entries_;
  for (const auto& [slot, state] : slots_)
    if (slot >= s.floor) s.slots.emplace_back(slot, state.proc->acceptor_state());
  // A handle's contents are covered by the snapshot exactly when its only
  // decisions sit below the floor (the applied log already expands them).
  // Handles decided at/above the floor — or not decided anywhere we know,
  // so their slot is still open — must travel.
  std::set<Command> covered, live;
  for (const auto& [slot, cmd] : decisions_)
    if (command_is_batch(cmd)) (slot < s.floor ? covered : live).insert(cmd);
  for (const auto& [cmd, payloads] : batch_contents_)
    if (!covered.contains(cmd) || live.contains(cmd)) s.batches.emplace_back(cmd, payloads);
  return s;
}

void RsmProcess::install_snapshot_state(const SnapshotState& s) {
  // Batch contents first: neither the applied suffix nor a restored
  // decision may stall on a handle the snapshot itself can expand.
  for (const auto& [cmd, payloads] : s.batches)
    if (!batch_contents_.contains(cmd)) batch_contents_.emplace(cmd, payloads);

  // The applied log: ours is a prefix of the snapshot's (agreement — both
  // expand the same decided slot sequence), so apply exactly the suffix.
  for (std::size_t i = applied_entries_.size(); i < s.applied.size(); ++i) {
    applied_entries_.push_back(s.applied[i]);
    if (on_apply) on_apply(s.applied[i].first, s.applied[i].second);
  }
  if (applied_ < s.floor) applied_ = s.floor;

  // Live slots: restore the ones we have no instance for; for slots we
  // already participate in, adopt the snapshot's decision only — never its
  // promises (overwriting a live acceptor could roll back a commitment
  // this replica made to a quorum).
  for (const auto& [slot, st] : s.slots) {
    if (slot < s.floor) continue;
    if (!slots_.contains(slot)) {
      if (slot >= floor_) restore_slot(slot, st);
      continue;
    }
    if (!st.decided.is_bottom() && !decisions_.contains(slot)) slot_decided(slot, st.decided);
  }

  // Our commands stranded in summarized slots: those slots decided without
  // us, and the decision is not individually recoverable — re-queue, the
  // at-least-once contract client retries already rely on.
  bool requeued = false;
  for (auto& p : pending_) {
    if (p.slot >= 0 && p.slot < s.floor && !decisions_.contains(p.slot)) {
      p.slot = -1;
      requeued = true;
    }
  }

  compact_to(s.floor);
  if (requeued) propose_pending();
  apply_contiguous();
}

void RsmProcess::compact_to(std::int32_t floor) {
  floor = std::min(floor, applied_);  // never drop an undecided/unapplied slot
  if (floor <= floor_) return;        // the floor only rises
  floor_ = floor;
  if (submit_cursor_ < floor_) submit_cursor_ = floor_;

  // Timers routed to dropped slots would fire into nothing; cancel them.
  for (auto it = timer_routes_.begin(); it != timer_routes_.end();) {
    if (it->second.first < floor_) {
      env_.cancel_timer(it->second.second);
      it = timer_routes_.erase(it);
    } else {
      ++it;
    }
  }
  slots_.erase(slots_.begin(), slots_.lower_bound(floor_));
  dirty_slots_.erase(dirty_slots_.begin(), dirty_slots_.lower_bound(floor_));

  // Batch contents fall with their decision unless a surviving decision
  // still references the handle (at-least-once re-decides are legal).
  std::set<Command> retained;
  for (auto it = decisions_.lower_bound(floor_); it != decisions_.end(); ++it)
    if (command_is_batch(it->second)) retained.insert(it->second);
  for (auto it = decisions_.begin(); it != decisions_.end() && it->first < floor_;) {
    const Command cmd = it->second;
    if (command_is_batch(cmd) && !retained.contains(cmd)) {
      batch_contents_.erase(cmd);
      own_batch_entries_.erase(cmd);
      dirty_batches_.erase(cmd);
    }
    it = decisions_.erase(it);
  }
}

void RsmProcess::apply_contiguous() {
  while (true) {
    const auto it = decisions_.find(applied_);
    if (it == decisions_.end()) return;
    const Command cmd = it->second;
    if (command_is_batch(cmd)) {
      const auto bit = batch_contents_.find(cmd);
      if (bit == batch_contents_.end()) {
        // Decided handle with unknown contents: stall the prefix and fetch.
        request_batch_contents(cmd);
        return;
      }
      const std::int64_t proxy_tag = static_cast<std::int64_t>(command_proxy(cmd)) << 40;
      for (const std::int64_t payload : bit->second) {
        applied_entries_.emplace_back(applied_, proxy_tag | payload);
        if (on_apply) on_apply(applied_, proxy_tag | payload);
      }
    } else {
      applied_entries_.emplace_back(applied_, cmd);
      if (on_apply) on_apply(applied_, cmd);
    }
    ++applied_;
  }
}

}  // namespace twostep::rsm
