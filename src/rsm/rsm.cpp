#include "rsm/rsm.hpp"

#include <stdexcept>

namespace twostep::rsm {

using consensus::ProcessId;
using consensus::TimerId;
using consensus::Value;

/// Env adapter presented to one slot's consensus instance: tags outgoing
/// messages with the slot and routes timers through the host.
struct RsmProcess::SlotEnv final : consensus::Env<core::Message> {
  SlotEnv(RsmProcess& host, std::int32_t slot) : host_(host), slot_(slot) {}

  [[nodiscard]] ProcessId self() const override { return host_.env_.self(); }
  [[nodiscard]] int cluster_size() const override { return host_.env_.cluster_size(); }
  [[nodiscard]] sim::Tick now() const override { return host_.env_.now(); }

  void send(ProcessId to, const core::Message& msg) override {
    host_.env_.send(to, SlotMsg{slot_, msg});
  }

  TimerId set_timer(sim::Tick delay) override {
    const TimerId id = host_.env_.set_timer(delay);
    host_.timer_routes_[id.value] = {slot_, id};
    return id;
  }

  void cancel_timer(TimerId id) override {
    host_.env_.cancel_timer(id);
    host_.timer_routes_.erase(id.value);
  }

  RsmProcess& host_;
  std::int32_t slot_;
};

RsmProcess::RsmProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                       Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("RsmProcess: delta must be > 0");
}

RsmProcess::~RsmProcess() = default;

RsmProcess::SlotState& RsmProcess::ensure_slot(std::int32_t slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) return it->second;

  SlotState state;
  state.env = std::make_unique<SlotEnv>(*this, slot);
  core::Options proto_options;
  proto_options.mode = core::Mode::kObject;
  proto_options.delta = options_.delta;
  proto_options.leader_of = options_.leader_of;
  proto_options.selection_policy = options_.selection_policy;
  proto_options.probe = options_.probe;
  state.proc =
      std::make_unique<core::TwoStepProcess>(*state.env, config_, std::move(proto_options));
  state.proc->on_decide = [this, slot](Value v) { slot_decided(slot, v); };
  state.proc->start();  // arms the slot's ballot timer
  it = slots_.emplace(slot, std::move(state)).first;
  return it->second;
}

std::int32_t RsmProcess::next_free_slot() const {
  std::int32_t s = submit_cursor_;
  while (decisions_.contains(s)) ++s;
  return s;
}

Command RsmProcess::submit(std::int64_t payload) {
  if (payload < 0 || payload >= (std::int64_t{1} << 40))
    throw std::invalid_argument("RsmProcess::submit: payload must fit in 40 bits");
  // Commands are (proxy, payload); the proxy tag makes commands from
  // different proxies distinct.  Callers must not submit the same payload
  // twice from the same proxy (the workload generators use sequence ids).
  const Command cmd = (static_cast<std::int64_t>(env_.self()) << 40) | payload;
  ++next_local_id_;
  PendingCommand pending;
  pending.cmd = cmd;
  pending.submitted_at = env_.now();
  pending_.push_back(pending);
  propose_in_slot(pending_.back(), next_free_slot());
  return cmd;
}

void RsmProcess::propose_in_slot(PendingCommand& pending, std::int32_t slot) {
  pending.slot = slot;
  submit_cursor_ = slot + 1;
  dirty_slots_.insert(slot);
  ensure_slot(slot).proc->propose(Value{pending.cmd});
}

void RsmProcess::on_message(ProcessId from, const Message& m) {
  dirty_slots_.insert(m.slot);
  ensure_slot(m.slot).proc->on_message(from, m.inner);
}

void RsmProcess::on_timer(TimerId id) {
  const auto it = timer_routes_.find(id.value);
  if (it == timer_routes_.end()) return;
  const std::int32_t slot = it->second.first;
  timer_routes_.erase(it);
  dirty_slots_.insert(slot);
  ensure_slot(slot).proc->on_timer(id);
}

std::vector<std::int32_t> RsmProcess::drain_dirty_slots() {
  std::vector<std::int32_t> slots(dirty_slots_.begin(), dirty_slots_.end());
  dirty_slots_.clear();
  return slots;
}

const core::TwoStepProcess* RsmProcess::slot_process(std::int32_t slot) const {
  const auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : it->second.proc.get();
}

void RsmProcess::restore_slot(std::int32_t slot, const core::TwoStepProcess::AcceptorState& s) {
  ensure_slot(slot).proc->restore(s);
  if (!s.decided.is_bottom() && !decisions_.contains(slot)) {
    decisions_[slot] = s.decided.get();
    if (on_decide_slot) on_decide_slot(slot, s.decided.get());
    apply_contiguous();
  }
}

void RsmProcess::slot_decided(std::int32_t slot, Value v) {
  if (decisions_.contains(slot)) return;
  const Command decided = v.get();
  decisions_[slot] = decided;
  if (on_decide_slot) on_decide_slot(slot, decided);

  // Settle our own commands: winners commit, losers move to a later slot.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->slot != slot) {
      ++it;
      continue;
    }
    if (it->cmd == decided) {
      ++commits_;
      if (on_commit) on_commit(it->cmd, it->submitted_at, slot);
      if (!first_commit_reported_ && on_decide) {
        first_commit_reported_ = true;
        on_decide(Value{it->cmd});
      }
      it = pending_.erase(it);
    } else {
      PendingCommand retry = *it;
      it = pending_.erase(it);
      pending_.push_back(retry);
      propose_in_slot(pending_.back(), next_free_slot());
      // pending_ may have reallocated; restart the scan for this slot.
      it = pending_.begin();
    }
  }
  apply_contiguous();
}

std::optional<Command> RsmProcess::decision(std::int32_t slot) const {
  const auto it = decisions_.find(slot);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

std::vector<SlotMsg> RsmProcess::decide_messages() const {
  std::vector<SlotMsg> out;
  out.reserve(decisions_.size());
  for (const auto& [slot, cmd] : decisions_)
    out.push_back(Message{slot, core::Message{core::DecideMsg{consensus::Value{cmd}}}});
  return out;
}

void RsmProcess::apply_contiguous() {
  while (true) {
    const auto it = decisions_.find(applied_);
    if (it == decisions_.end()) return;
    if (on_apply) on_apply(applied_, it->second);
    ++applied_;
  }
}

}  // namespace twostep::rsm
