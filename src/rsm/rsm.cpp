#include "rsm/rsm.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace twostep::rsm {

using consensus::ProcessId;
using consensus::TimerId;
using consensus::Value;

/// Env adapter presented to one slot's consensus instance: tags outgoing
/// messages with the slot and routes timers through the host.
struct RsmProcess::SlotEnv final : consensus::Env<core::Message> {
  SlotEnv(RsmProcess& host, std::int32_t slot) : host_(host), slot_(slot) {}

  [[nodiscard]] ProcessId self() const override { return host_.env_.self(); }
  [[nodiscard]] int cluster_size() const override {
    // The slot's broadcast set is its governing epoch's quorum universe —
    // never the host env's (possibly larger, post-reconfiguration) size.
    return host_.governing_epoch(slot_).universe;
  }
  [[nodiscard]] sim::Tick now() const override { return host_.env_.now(); }

  void send(ProcessId to, const core::Message& msg) override {
    host_.env_.send(to, SlotMsg{slot_, host_.governing_version(slot_), msg});
  }

  TimerId set_timer(sim::Tick delay) override {
    const TimerId id = host_.env_.set_timer(delay);
    host_.timer_routes_[id.value] = {slot_, id};
    return id;
  }

  void cancel_timer(TimerId id) override {
    host_.env_.cancel_timer(id);
    host_.timer_routes_.erase(id.value);
  }

  RsmProcess& host_;
  std::int32_t slot_;
};

RsmProcess::RsmProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                       Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("RsmProcess: delta must be > 0");
  if (options_.batch_max < 1) throw std::invalid_argument("RsmProcess: batch_max must be >= 1");
  if (options_.pipeline_window < 0)
    throw std::invalid_argument("RsmProcess: pipeline_window must be >= 0");
  ConfigEpoch genesis;
  genesis.universe = config_.n;
  genesis.members.reserve(static_cast<std::size_t>(config_.n));
  for (ProcessId p = 0; p < config_.n; ++p) genesis.members.push_back(p);
  epochs_.push_back(std::move(genesis));
}

const ConfigEpoch& RsmProcess::governing_epoch(std::int32_t slot) const {
  // Epochs are appended in boundary order; the last with boundary <= slot
  // governs.  The log is short (one entry per membership change), so a
  // reverse scan beats anything cleverer.
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it)
    if (it->boundary <= slot) return *it;
  return epochs_.front();
}

std::int32_t RsmProcess::governing_version(std::int32_t slot) const {
  return governing_epoch(slot).version;
}

bool RsmProcess::has_member(ProcessId p) const {
  const auto& m = epochs_.back().members;
  return std::find(m.begin(), m.end(), p) != m.end();
}

void RsmProcess::set_leader_of(std::function<ProcessId()> leader_of) {
  options_.leader_of = leader_of;
  for (auto& [slot, state] : slots_) state.proc->set_leader_of(leader_of);
}

RsmProcess::~RsmProcess() = default;

RsmProcess::SlotState& RsmProcess::ensure_slot(std::int32_t slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) return it->second;

  SlotState state;
  state.env = std::make_unique<SlotEnv>(*this, slot);
  core::Options proto_options;
  proto_options.mode = core::Mode::kObject;
  proto_options.delta = options_.delta;
  proto_options.leader_of = options_.leader_of;
  proto_options.selection_policy = options_.selection_policy;
  proto_options.probe = options_.probe;
  // The instance lives in the slot's governing epoch: its quorum universe
  // may be larger than genesis (f and e never change — adds only widen the
  // universe, so old quorums keep intersecting new ones).
  consensus::SystemConfig slot_config = config_;
  slot_config.n = governing_epoch(slot).universe;
  state.proc =
      std::make_unique<core::TwoStepProcess>(*state.env, slot_config, std::move(proto_options));
  state.proc->on_decide = [this, slot](Value v) { slot_decided(slot, v); };
  state.proc->start();  // arms the slot's ballot timer
  it = slots_.emplace(slot, std::move(state)).first;
  return it->second;
}

std::int32_t RsmProcess::next_free_slot() const {
  std::int32_t s = submit_cursor_;
  while (decisions_.contains(s)) ++s;
  return s;
}

Command RsmProcess::submit(std::int64_t payload) {
  if (payload < 0 || payload > max_payload())
    throw std::invalid_argument("RsmProcess::submit: payload out of range");
  // Commands are (proxy, payload); the proxy tag makes commands from
  // different proxies distinct.  Callers must not submit the same payload
  // twice from the same proxy (the workload generators use sequence ids).
  const Command cmd = (static_cast<std::int64_t>(env_.self()) << 40) | payload;
  ++next_local_id_;
  if (options_.batch_max > 1) {
    open_batch_.entries.emplace_back(cmd, env_.now());
    if (static_cast<int>(open_batch_.entries.size()) >= options_.batch_max) {
      seal_open_batch();
    } else if (!open_batch_.linger) {
      open_batch_.linger = env_.set_timer(std::max<sim::Tick>(options_.batch_linger, 0));
    }
    return cmd;
  }
  PendingCommand pending;
  pending.cmd = cmd;
  pending.submitted_at = env_.now();
  pending_.push_back(pending);
  propose_pending();
  return cmd;
}

void RsmProcess::seal_open_batch() {
  if (open_batch_.linger) {
    env_.cancel_timer(*open_batch_.linger);
    open_batch_.linger.reset();
  }
  if (open_batch_.entries.empty()) return;
  OpenBatch batch = std::exchange(open_batch_, {});
  if (options_.batch_fill)
    options_.batch_fill->record(static_cast<std::int64_t>(batch.entries.size()));

  PendingCommand pending;
  pending.submitted_at = batch.entries.front().second;
  if (batch.entries.size() == 1) {
    // A batch of one proposes the plain command — no handle indirection.
    pending.cmd = batch.entries.front().first;
  } else {
    const Command handle = (static_cast<std::int64_t>(env_.self()) << 40) |
                           (std::int64_t{1} << 39) | next_batch_seq_++;
    std::vector<std::int64_t> payloads;
    payloads.reserve(batch.entries.size());
    for (const auto& [cmd, at] : batch.entries) payloads.push_back(command_payload(cmd));
    batch_contents_.emplace(handle, payloads);
    dirty_batches_.insert(handle);
    own_batch_entries_.emplace(handle, std::move(batch.entries));
    const ProcessId self = env_.self();
    for (int p = 0; p < env_.cluster_size(); ++p)
      if (p != self) env_.send(p, BatchContentMsg{handle, payloads});
    pending.cmd = handle;
  }
  pending_.push_back(pending);
  propose_pending();
}

Command RsmProcess::submit_config(const ConfigChange& change) {
  if (change.replica < 0)
    throw std::invalid_argument("RsmProcess::submit_config: replica must be >= 0");
  // Flush buffered commands first so the change cannot jump ahead of
  // commands accepted before it.
  if (options_.batch_max > 1) seal_open_batch();
  const Command handle = (static_cast<std::int64_t>(env_.self()) << 40) |
                         (std::int64_t{3} << 38) | next_config_seq_++;
  config_contents_.emplace(handle, change);
  dirty_configs_.insert(handle);
  const ProcessId self = env_.self();
  for (int p = 0; p < env_.cluster_size(); ++p)
    if (p != self) env_.send(p, ConfigChangeMsg{handle, change});
  PendingCommand pending;
  pending.cmd = handle;
  pending.submitted_at = env_.now();
  pending_.push_back(pending);
  propose_pending();
  return handle;
}

int RsmProcess::own_slots_in_flight() const {
  int n = 0;
  for (const auto& p : pending_)
    if (p.slot >= 0 && !decisions_.contains(p.slot)) ++n;
  return n;
}

void RsmProcess::propose_pending() {
  const int window = options_.pipeline_window;
  int in_flight = own_slots_in_flight();
  for (auto& p : pending_) {
    if (p.slot >= 0) {
      // Nothing of ours goes past an in-flight config change: slots after
      // it are governed by a version we cannot know until it decides.
      if (command_is_config(p.cmd) && !decisions_.contains(p.slot)) break;
      continue;
    }
    if (command_is_config(p.cmd)) {
      // Stop-the-world single-server change: the handle waits for our own
      // slots to drain, then flies alone.
      if (in_flight > 0) break;
      propose_in_slot(p, next_free_slot());
      break;
    }
    if (window > 0 && in_flight >= window) break;
    propose_in_slot(p, next_free_slot());
    ++in_flight;
  }
}

void RsmProcess::propose_in_slot(PendingCommand& pending, std::int32_t slot) {
  pending.slot = slot;
  submit_cursor_ = slot + 1;
  dirty_slots_.insert(slot);
  ensure_slot(slot).proc->propose(Value{pending.cmd});
}

void RsmProcess::on_message(ProcessId from, const Message& m) {
  if (const auto* s = std::get_if<SlotMsg>(&m)) {
    // A compacted slot is decided, applied and summarized by a snapshot;
    // there is nothing left to learn or answer for it (a peer this far
    // behind needs the snapshot, which the runtime offers separately).
    if (s->slot < floor_) return;
    // Cross-epoch traffic is dropped before it can touch the instance: a
    // quorum for a slot must count only voters governed by the same
    // configuration version.  A replica behind on config catches up via
    // Decide anti-entropy or snapshot transfer, never by mixing epochs.
    if (s->cfg != governing_version(s->slot)) return;
    dirty_slots_.insert(s->slot);
    ensure_slot(s->slot).proc->on_message(from, s->inner);
    return;
  }
  if (const auto* b = std::get_if<BatchContentMsg>(&m)) {
    handle_batch_content(*b);
    return;
  }
  if (const auto* c = std::get_if<ConfigChangeMsg>(&m)) {
    handle_config_content(*c);
    return;
  }
  if (const auto* cf = std::get_if<ConfigFetchMsg>(&m)) {
    const auto it = config_contents_.find(cf->cmd);
    if (it != config_contents_.end()) env_.send(from, ConfigChangeMsg{cf->cmd, it->second});
    return;
  }
  const auto& f = std::get<BatchFetchMsg>(m);
  const auto it = batch_contents_.find(f.cmd);
  if (it != batch_contents_.end()) env_.send(from, BatchContentMsg{f.cmd, it->second});
}

void RsmProcess::handle_batch_content(BatchContentMsg m) {
  if (batch_contents_.contains(m.cmd)) return;
  batch_contents_.emplace(m.cmd, std::move(m.payloads));
  dirty_batches_.insert(m.cmd);
  const auto wit = fetch_waiting_.find(m.cmd);
  if (wit != fetch_waiting_.end()) {
    env_.cancel_timer(wit->second);
    fetch_timer_cmds_.erase(wit->second.value);
    fetch_waiting_.erase(wit);
  }
  apply_contiguous();
}

void RsmProcess::request_batch_contents(Command cmd) {
  if (fetch_waiting_.contains(cmd)) return;  // retry timer already armed
  const ProcessId proxy = command_proxy(cmd);
  if (proxy != env_.self()) env_.send(proxy, BatchFetchMsg{cmd});
  const TimerId id = env_.set_timer(std::max<sim::Tick>(options_.delta * 4, 1));
  fetch_waiting_.emplace(cmd, id);
  fetch_timer_cmds_.emplace(id.value, cmd);
}

void RsmProcess::handle_config_content(const ConfigChangeMsg& m) {
  if (config_contents_.contains(m.cmd)) return;
  config_contents_.emplace(m.cmd, m.change);
  dirty_configs_.insert(m.cmd);
  const auto wit = fetch_waiting_.find(m.cmd);
  if (wit != fetch_waiting_.end()) {
    env_.cancel_timer(wit->second);
    fetch_timer_cmds_.erase(wit->second.value);
    fetch_waiting_.erase(wit);
  }
  apply_contiguous();
}

void RsmProcess::request_config_contents(Command cmd) {
  if (fetch_waiting_.contains(cmd)) return;  // retry timer already armed
  const ProcessId proxy = command_proxy(cmd);
  if (proxy != env_.self()) env_.send(proxy, ConfigFetchMsg{cmd});
  const TimerId id = env_.set_timer(std::max<sim::Tick>(options_.delta * 4, 1));
  fetch_waiting_.emplace(cmd, id);
  fetch_timer_cmds_.emplace(id.value, cmd);
}

void RsmProcess::on_timer(TimerId id) {
  if (open_batch_.linger && open_batch_.linger->value == id.value) {
    open_batch_.linger.reset();
    seal_open_batch();
    return;
  }
  const auto fit = fetch_timer_cmds_.find(id.value);
  if (fit != fetch_timer_cmds_.end()) {
    const Command cmd = fit->second;
    fetch_timer_cmds_.erase(fit);
    fetch_waiting_.erase(cmd);
    const bool resolved = command_is_config(cmd) ? config_contents_.contains(cmd)
                                                 : batch_contents_.contains(cmd);
    if (!resolved) {
      // The proxy did not answer in time — widen the fetch to everyone.
      const ProcessId self = env_.self();
      for (int p = 0; p < env_.cluster_size(); ++p) {
        if (p == self) continue;
        if (command_is_config(cmd)) {
          env_.send(p, ConfigFetchMsg{cmd});
        } else {
          env_.send(p, BatchFetchMsg{cmd});
        }
      }
      const TimerId retry = env_.set_timer(std::max<sim::Tick>(options_.delta * 4, 1));
      fetch_waiting_.emplace(cmd, retry);
      fetch_timer_cmds_.emplace(retry.value, cmd);
    }
    return;
  }
  const auto it = timer_routes_.find(id.value);
  if (it == timer_routes_.end()) return;
  const std::int32_t slot = it->second.first;
  timer_routes_.erase(it);
  dirty_slots_.insert(slot);
  ensure_slot(slot).proc->on_timer(id);
}

std::vector<std::int32_t> RsmProcess::drain_dirty_slots() {
  std::vector<std::int32_t> slots(dirty_slots_.begin(), dirty_slots_.end());
  dirty_slots_.clear();
  return slots;
}

std::vector<Command> RsmProcess::drain_dirty_batches() {
  std::vector<Command> cmds(dirty_batches_.begin(), dirty_batches_.end());
  dirty_batches_.clear();
  return cmds;
}

std::vector<Command> RsmProcess::drain_dirty_configs() {
  std::vector<Command> cmds(dirty_configs_.begin(), dirty_configs_.end());
  dirty_configs_.clear();
  return cmds;
}

const core::TwoStepProcess* RsmProcess::slot_process(std::int32_t slot) const {
  const auto it = slots_.find(slot);
  return it == slots_.end() ? nullptr : it->second.proc.get();
}

const std::vector<std::int64_t>* RsmProcess::batch_contents(Command cmd) const {
  const auto it = batch_contents_.find(cmd);
  return it == batch_contents_.end() ? nullptr : &it->second;
}

const ConfigChange* RsmProcess::config_contents(Command cmd) const {
  const auto it = config_contents_.find(cmd);
  return it == config_contents_.end() ? nullptr : &it->second;
}

void RsmProcess::restore_slot(std::int32_t slot, const core::TwoStepProcess::AcceptorState& s) {
  // A WAL tail can only describe slots at/above the snapshot floor (the
  // snapshot barrier seals everything logged before capture), but guard
  // anyway: resurrecting a summarized slot would undo compaction.
  if (slot < floor_ && !slots_.contains(slot)) return;
  ensure_slot(slot).proc->restore(s);
  if (!s.decided.is_bottom() && !decisions_.contains(slot)) {
    decisions_[slot] = s.decided.get();
    if (on_decide_slot) on_decide_slot(slot, s.decided.get());
    apply_contiguous();
  }
}

void RsmProcess::restore_batch(Command cmd, std::vector<std::int64_t> payloads) {
  if (batch_contents_.contains(cmd)) return;
  batch_contents_.emplace(cmd, std::move(payloads));
  apply_contiguous();
}

void RsmProcess::restore_config(Command cmd, const ConfigChange& change) {
  if (config_contents_.contains(cmd)) return;
  config_contents_.emplace(cmd, change);
  apply_contiguous();
}

void RsmProcess::slot_decided(std::int32_t slot, Value v) {
  if (decisions_.contains(slot)) return;
  const Command decided = v.get();
  decisions_[slot] = decided;
  if (on_decide_slot) on_decide_slot(slot, decided);

  // Settle our own command in this slot, if any: a winner commits, a loser
  // re-queues for a later slot.  Each live pending command occupies a
  // distinct slot, so at most one entry matches.
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->slot != slot) continue;
    if (it->cmd == decided) {
      commit_own(*it, slot);
      pending_.erase(it);
    } else {
      PendingCommand retry = *it;
      retry.slot = -1;
      pending_.erase(it);
      pending_.push_back(retry);
    }
    break;
  }
  // Apply BEFORE re-proposing: if this very decision was a config change,
  // a loser's retry lands in a slot the new epoch governs and must be
  // stamped with the post-apply version — stamping it pre-apply makes
  // every receiver drop the frames as cross-epoch and strands the command
  // (an object-mode proposer has no ballot of its own to retry with).
  apply_contiguous();
  propose_pending();  // a decision frees pipeline-window budget
}

void RsmProcess::commit_own(const PendingCommand& pending, std::int32_t slot) {
  if (command_is_batch(pending.cmd)) {
    const auto it = own_batch_entries_.find(pending.cmd);
    if (it != own_batch_entries_.end()) {
      for (const auto& [cmd, submitted_at] : it->second) {
        ++commits_;
        if (on_commit) on_commit(cmd, submitted_at, slot);
      }
      own_batch_entries_.erase(it);
    }
  } else {
    ++commits_;
    if (on_commit) on_commit(pending.cmd, pending.submitted_at, slot);
  }
  if (!first_commit_reported_ && on_decide) {
    first_commit_reported_ = true;
    on_decide(Value{pending.cmd});
  }
}

std::optional<Command> RsmProcess::decision(std::int32_t slot) const {
  const auto it = decisions_.find(slot);
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

std::vector<Msg> RsmProcess::decide_messages() const {
  std::vector<Msg> out;
  out.reserve(decisions_.size());
  // Contents first: a peer must be able to expand every decision it is
  // about to learn without a fetch round-trip.
  for (const auto& [slot, cmd] : decisions_) {
    if (command_is_config(cmd)) {
      const auto it = config_contents_.find(cmd);
      if (it != config_contents_.end()) out.push_back(ConfigChangeMsg{cmd, it->second});
      continue;
    }
    if (!command_is_batch(cmd)) continue;
    const auto it = batch_contents_.find(cmd);
    if (it != batch_contents_.end()) out.push_back(BatchContentMsg{cmd, it->second});
  }
  for (const auto& [slot, cmd] : decisions_)
    out.push_back(
        SlotMsg{slot, governing_version(slot), core::Message{core::DecideMsg{consensus::Value{cmd}}}});
  return out;
}

SnapshotState RsmProcess::snapshot_state() const {
  SnapshotState s;
  s.floor = applied_;
  s.applied = applied_entries_;
  for (const auto& [slot, state] : slots_)
    if (slot >= s.floor) s.slots.emplace_back(slot, state.proc->acceptor_state());
  // A handle's contents are covered by the snapshot exactly when its only
  // decisions sit below the floor (the applied log already expands them).
  // Handles decided at/above the floor — or not decided anywhere we know,
  // so their slot is still open — must travel.
  std::set<Command> covered, live;
  for (const auto& [slot, cmd] : decisions_)
    if (command_is_batch(cmd)) (slot < s.floor ? covered : live).insert(cmd);
  for (const auto& [cmd, payloads] : batch_contents_)
    if (!covered.contains(cmd) || live.contains(cmd)) s.batches.emplace_back(cmd, payloads);
  // Same liveness rule for config contents; changes decided below the
  // floor are already folded into the epoch log.
  std::set<Command> ccovered, clive;
  for (const auto& [slot, cmd] : decisions_)
    if (command_is_config(cmd)) (slot < s.floor ? ccovered : clive).insert(cmd);
  for (const auto& [cmd, change] : config_contents_)
    if (!ccovered.contains(cmd) || clive.contains(cmd)) s.configs.emplace_back(cmd, change);
  s.epochs = epochs_;
  return s;
}

void RsmProcess::install_snapshot_state(const SnapshotState& s) {
  // The configuration first: everything below — restoring slots, adopting
  // decisions, replaying the applied suffix — depends on the governing
  // epoch.  Our epoch log is a prefix of the snapshot's (agreement: both
  // expand the same decided config sequence); adopt the missing suffix and
  // announce each adopted epoch so the host can dial/retire links.
  for (const auto& [cmd, change] : s.configs)
    if (!config_contents_.contains(cmd)) config_contents_.emplace(cmd, change);
  if (s.epochs.size() > epochs_.size()) {
    const std::size_t had = epochs_.size();
    for (std::size_t i = had; i < s.epochs.size(); ++i) epochs_.push_back(s.epochs[i]);
    rebuild_slots_from(epochs_[had].boundary);
    if (on_config) {
      for (std::size_t i = had; i < epochs_.size(); ++i)
        on_config(epochs_[i].boundary - 1, epochs_[i].change, epochs_[i]);
    }
  }

  // Batch contents next: neither the applied suffix nor a restored
  // decision may stall on a handle the snapshot itself can expand.
  for (const auto& [cmd, payloads] : s.batches)
    if (!batch_contents_.contains(cmd)) batch_contents_.emplace(cmd, payloads);

  // The applied log: ours is a prefix of the snapshot's (agreement — both
  // expand the same decided slot sequence), so apply exactly the suffix.
  for (std::size_t i = applied_entries_.size(); i < s.applied.size(); ++i) {
    applied_entries_.push_back(s.applied[i]);
    if (on_apply) on_apply(s.applied[i].first, s.applied[i].second);
  }
  if (applied_ < s.floor) applied_ = s.floor;

  // Live slots: restore the ones we have no instance for; for slots we
  // already participate in, adopt the snapshot's decision only — never its
  // promises (overwriting a live acceptor could roll back a commitment
  // this replica made to a quorum).
  for (const auto& [slot, st] : s.slots) {
    if (slot < s.floor) continue;
    if (!slots_.contains(slot)) {
      if (slot >= floor_) restore_slot(slot, st);
      continue;
    }
    if (!st.decided.is_bottom() && !decisions_.contains(slot)) slot_decided(slot, st.decided);
  }

  // Our commands stranded in summarized slots: those slots decided without
  // us, and the decision is not individually recoverable — re-queue, the
  // at-least-once contract client retries already rely on.
  bool requeued = false;
  for (auto& p : pending_) {
    if (p.slot >= 0 && p.slot < s.floor && !decisions_.contains(p.slot)) {
      p.slot = -1;
      requeued = true;
    }
  }

  compact_to(s.floor);
  if (requeued) propose_pending();
  apply_contiguous();
}

void RsmProcess::compact_to(std::int32_t floor) {
  floor = std::min(floor, applied_);  // never drop an undecided/unapplied slot
  if (floor <= floor_) return;        // the floor only rises
  floor_ = floor;
  if (submit_cursor_ < floor_) submit_cursor_ = floor_;

  // Timers routed to dropped slots would fire into nothing; cancel them.
  for (auto it = timer_routes_.begin(); it != timer_routes_.end();) {
    if (it->second.first < floor_) {
      env_.cancel_timer(it->second.second);
      it = timer_routes_.erase(it);
    } else {
      ++it;
    }
  }
  slots_.erase(slots_.begin(), slots_.lower_bound(floor_));
  dirty_slots_.erase(dirty_slots_.begin(), dirty_slots_.lower_bound(floor_));

  // Batch and config contents fall with their decision unless a surviving
  // decision still references the handle (at-least-once re-decides are
  // legal).  Folded-in config changes live on in the epoch log.
  std::set<Command> retained;
  for (auto it = decisions_.lower_bound(floor_); it != decisions_.end(); ++it)
    if (command_is_batch(it->second) || command_is_config(it->second))
      retained.insert(it->second);
  for (auto it = decisions_.begin(); it != decisions_.end() && it->first < floor_;) {
    const Command cmd = it->second;
    if (retained.contains(cmd)) {
      it = decisions_.erase(it);
      continue;
    }
    if (command_is_batch(cmd)) {
      batch_contents_.erase(cmd);
      own_batch_entries_.erase(cmd);
      dirty_batches_.erase(cmd);
    } else if (command_is_config(cmd)) {
      config_contents_.erase(cmd);
      dirty_configs_.erase(cmd);
    }
    it = decisions_.erase(it);
  }
}

void RsmProcess::rebuild_slots_from(std::int32_t boundary) {
  // Instances at/above the boundary were built under a smaller quorum
  // universe; recreate them under the new governing epoch, carrying their
  // acceptor state.  Promises and votes survive the rebuild, so a quorum
  // formed before the change still intersects every quorum after it (the
  // universe only grows and f/e are fixed: n0-2f >= 1 and n0-2e >= 1
  // common voters are guaranteed, and each votes identically).
  std::vector<std::pair<std::int32_t, core::TwoStepProcess::AcceptorState>> carry;
  for (auto it = slots_.lower_bound(boundary); it != slots_.end(); ++it)
    carry.emplace_back(it->first, it->second.proc->acceptor_state());
  for (const auto& [slot, state] : carry) {
    for (auto tit = timer_routes_.begin(); tit != timer_routes_.end();) {
      if (tit->second.first == slot) {
        env_.cancel_timer(tit->second.second);
        tit = timer_routes_.erase(tit);
      } else {
        ++tit;
      }
    }
    slots_.erase(slot);
    ensure_slot(slot).proc->restore(state);
    dirty_slots_.insert(slot);
  }
}

void RsmProcess::apply_config_change(std::int32_t slot, const ConfigChange& change) {
  {
    ConfigEpoch next = epochs_.back();
    next.version += 1;
    next.boundary = slot + 1;
    next.change = change;
    const auto mit = std::find(next.members.begin(), next.members.end(), change.replica);
    if (change.op == ConfigChange::Op::kAdd) {
      if (mit == next.members.end()) next.members.push_back(change.replica);
      next.universe = std::max(next.universe, change.replica + 1);
    } else {
      if (mit != next.members.end()) next.members.erase(mit);
      // The universe never shrinks: a removed replica is treated as
      // permanently crashed, which the resilience budget already covers.
    }
    std::sort(next.members.begin(), next.members.end());
    epochs_.push_back(std::move(next));
  }
  const ConfigEpoch& epoch = epochs_.back();
  if (epoch.universe != epochs_[epochs_.size() - 2].universe)
    rebuild_slots_from(epoch.boundary);
  if (on_config) on_config(slot, change, epoch);
}

void RsmProcess::apply_contiguous() {
  while (true) {
    const auto it = decisions_.find(applied_);
    if (it == decisions_.end()) return;
    const Command cmd = it->second;
    if (command_is_config(cmd)) {
      const auto cit = config_contents_.find(cmd);
      if (cit == config_contents_.end()) {
        // Decided config handle with unknown contents: stall and fetch,
        // exactly like a batch.
        request_config_contents(cmd);
        return;
      }
      // Config entries do not enter the applied (executor) log and fire
      // on_config instead of on_apply: the state machine the audit checks
      // carries client commands only.
      const ConfigChange change = cit->second;
      const std::int32_t slot = applied_;
      ++applied_;
      apply_config_change(slot, change);
      continue;
    }
    if (command_is_batch(cmd)) {
      const auto bit = batch_contents_.find(cmd);
      if (bit == batch_contents_.end()) {
        // Decided handle with unknown contents: stall the prefix and fetch.
        request_batch_contents(cmd);
        return;
      }
      const std::int64_t proxy_tag = static_cast<std::int64_t>(command_proxy(cmd)) << 40;
      for (const std::int64_t payload : bit->second) {
        applied_entries_.emplace_back(applied_, proxy_tag | payload);
        if (on_apply) on_apply(applied_, proxy_tag | payload);
      }
    } else {
      applied_entries_.emplace_back(applied_, cmd);
      if (on_apply) on_apply(applied_, cmd);
    }
    ++applied_;
  }
}

}  // namespace twostep::rsm
