#include "paxos/paxos.hpp"

#include <stdexcept>

namespace twostep::paxos {

using consensus::Ballot;
using consensus::ProcessId;
using consensus::TimerId;
using consensus::Value;

PaxosProcess::PaxosProcess(consensus::Env<Message>& env, consensus::SystemConfig config,
                           Options options)
    : env_(env), config_(config), options_(std::move(options)) {
  if (options_.delta <= 0) throw std::invalid_argument("PaxosProcess: delta must be > 0");
  if (obs::MetricsRegistry* reg = options_.probe.metrics) {
    stats_.decisions_fast = &reg->counter("decisions.fast");
    stats_.decisions_slow = &reg->counter("decisions.slow");
    stats_.ballots_started = &reg->counter("ballots.started");
    stats_.decision_latency = &reg->histogram("decision_latency");
  }
}

void PaxosProcess::start() {
  if (started_) return;
  started_ = true;
  if (options_.enable_ballot_timer) env_.set_timer(2 * options_.delta);
}

void PaxosProcess::propose(Value v) {
  if (v.is_bottom()) throw std::invalid_argument("propose: value must not be bottom");
  if (!my_value_.is_bottom()) return;
  my_value_ = v;
  // Ballot 0 is phase-1-free and owned by p0: the initial leader goes
  // straight to phase 2 with its own value.
  if (env_.self() == 0) {
    led_[0].sent_accept = true;
    env_.broadcast_all(AcceptMsg{0, v});
  }
}

ProcessId PaxosProcess::omega_leader() const {
  return options_.leader_of ? options_.leader_of() : ProcessId{0};
}

Ballot PaxosProcess::next_owned_ballot() const {
  const auto n = static_cast<Ballot>(config_.n);
  const auto self = static_cast<Ballot>(env_.self());
  const Ballot base = std::max<Ballot>(bal_, 0) + 1;
  const Ballot shift = ((self - base) % n + n) % n;
  return base + shift;
}

void PaxosProcess::on_timer(TimerId) {
  if (has_decided()) return;
  if (!options_.enable_ballot_timer) return;
  env_.set_timer(5 * options_.delta);
  if (omega_leader() != env_.self()) return;
  const Ballot b = next_owned_ballot();
  if (stats_.ballots_started) stats_.ballots_started->add();
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kBallotStart, .at = env_.now(),
                           .process = env_.self(), .ballot = b};
  });
  env_.broadcast_all(PrepareMsg{b});
}

void PaxosProcess::on_message(ProcessId from, const Message& m) {
  std::visit([&](const auto& msg) { handle(from, msg); }, m);
}

void PaxosProcess::handle(ProcessId from, const PrepareMsg& m) {
  if (m.b <= bal_) return;
  bal_ = m.b;
  env_.send(from, PromiseMsg{m.b, vbal_, vval_});
}

void PaxosProcess::handle(ProcessId from, const PromiseMsg& m) {
  if (m.b <= 0 || m.b % config_.n != static_cast<Ballot>(env_.self())) return;
  auto& led = led_[m.b];
  if (led.sent_accept) return;
  led.promises.emplace(from, m);
  if (static_cast<int>(led.promises.size()) < config_.classic_quorum()) return;

  // Classic rule: adopt the value voted at the highest ballot, else our own.
  Ballot best = -1;
  Value v;
  for (const auto& [q, p] : led.promises) {
    if (p.vbal > best && !p.vval.is_bottom()) {
      best = p.vbal;
      v = p.vval;
    }
  }
  if (v.is_bottom()) v = my_value_;
  if (v.is_bottom()) return;  // nothing to propose yet; wait for propose()
  led.sent_accept = true;
  env_.broadcast_all(AcceptMsg{m.b, v});
}

void PaxosProcess::handle(ProcessId, const AcceptMsg& m) {
  if (m.b < bal_) return;
  bal_ = m.b;
  vbal_ = m.b;
  vval_ = m.v;
  // Votes are broadcast so every process learns the decision directly.
  env_.broadcast_all(AcceptedMsg{m.b, m.v});
}

void PaxosProcess::handle(ProcessId from, const AcceptedMsg& m) {
  auto& voters = accepted_[{m.b, m.v}];
  voters.insert(from);
  if (static_cast<int>(voters.size()) >= config_.classic_quorum()) decide(m.b, m.v);
}

void PaxosProcess::decide(Ballot b, Value v) {
  if (decide_notified_) return;
  decided_ = v;
  decide_notified_ = true;
  // Ballot 0 is the phase-1-free 2Δ path — the closest Paxos has to a fast
  // path; anything later went through a timer-started ballot.
  obs::Counter* counter = b == 0 ? stats_.decisions_fast : stats_.decisions_slow;
  if (counter) counter->add();
  if (stats_.decision_latency) stats_.decision_latency->add(static_cast<double>(env_.now()));
  options_.probe.trace([&] {
    return obs::TraceEvent{.kind = obs::EventKind::kDecision, .at = env_.now(),
                           .process = env_.self(), .ballot = b, .value = v,
                           .label = b == 0 ? "fast" : "slow"};
  });
  if (on_decide) on_decide(v);
}

}  // namespace twostep::paxos
