// Classical single-decree Paxos (baseline).
//
// Leader-driven: ballot 0 is implicitly owned by p0 and phase-1-free (the
// usual "pre-prepared initial leader" optimization the paper alludes to:
// "if the system is synchronous and the initial leader process is correct,
// these protocols can decide within two message delays").  Acceptors
// broadcast their Accepted votes to everyone, so in a failure-free
// synchronous run every process decides at 2Δ — Paxos is 0-two-step.  It is
// *not* e-two-step for any e > 0: if the initial leader is in E, no process
// can decide before a new ballot is started by a timer (> 2Δ).  The F1
// latency bench and the two-step matrix tests exercise exactly this.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <variant>

#include "consensus/env.hpp"
#include "consensus/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace twostep::paxos {

struct PrepareMsg {  // phase 1a
  consensus::Ballot b = 0;
  friend bool operator==(const PrepareMsg&, const PrepareMsg&) = default;
};
struct PromiseMsg {  // phase 1b
  consensus::Ballot b = 0;
  consensus::Ballot vbal = -1;
  consensus::Value vval;
  friend bool operator==(const PromiseMsg&, const PromiseMsg&) = default;
};
struct AcceptMsg {  // phase 2a
  consensus::Ballot b = 0;
  consensus::Value v;
  friend bool operator==(const AcceptMsg&, const AcceptMsg&) = default;
};
struct AcceptedMsg {  // phase 2b, broadcast to all so everyone learns
  consensus::Ballot b = 0;
  consensus::Value v;
  friend bool operator==(const AcceptedMsg&, const AcceptedMsg&) = default;
};

using Message = std::variant<PrepareMsg, PromiseMsg, AcceptMsg, AcceptedMsg>;

/// Static message-type label (ADL-found by obs::message_label).
[[nodiscard]] constexpr const char* message_name(const Message& m) noexcept {
  switch (m.index()) {
    case 0: return "Prepare";
    case 1: return "Promise";
    case 2: return "Accept";
    default: return "Accepted";
  }
}

struct Options {
  sim::Tick delta = 1;
  std::function<consensus::ProcessId()> leader_of;  ///< Ω; defaults to p0
  bool enable_ballot_timer = true;
  obs::Probe probe;  ///< tracing + metrics; off by default
};

/// One Paxos process (proposer + acceptor + learner roles fused, as usual
/// for consensus deployments).
class PaxosProcess {
 public:
  using Message = paxos::Message;

  PaxosProcess(consensus::Env<Message>& env, consensus::SystemConfig config, Options options);

  void start();
  void propose(consensus::Value v);
  void on_message(consensus::ProcessId from, const Message& m);
  void on_timer(consensus::TimerId id);

  std::function<void(consensus::Value)> on_decide;

  [[nodiscard]] bool has_decided() const noexcept { return !decided_.is_bottom(); }
  [[nodiscard]] consensus::Value decided_value() const noexcept { return decided_; }
  [[nodiscard]] consensus::Ballot ballot() const noexcept { return bal_; }

 private:
  void handle(consensus::ProcessId from, const PrepareMsg& m);
  void handle(consensus::ProcessId from, const PromiseMsg& m);
  void handle(consensus::ProcessId from, const AcceptMsg& m);
  void handle(consensus::ProcessId from, const AcceptedMsg& m);
  void decide(consensus::Ballot b, consensus::Value v);
  [[nodiscard]] consensus::Ballot next_owned_ballot() const;
  [[nodiscard]] consensus::ProcessId omega_leader() const;

  consensus::Env<Message>& env_;
  consensus::SystemConfig config_;
  Options options_;

  consensus::Ballot bal_ = -1;   ///< highest ballot joined (promise)
  consensus::Ballot vbal_ = -1;  ///< ballot of last vote
  consensus::Value vval_;        ///< value of last vote
  consensus::Value my_value_;    ///< own proposal
  consensus::Value decided_;

  struct LedBallot {
    std::map<consensus::ProcessId, PromiseMsg> promises;
    bool sent_accept = false;
  };
  std::map<consensus::Ballot, LedBallot> led_;

  // (ballot, value) -> acceptors that voted; everyone learns this way.
  std::map<std::pair<consensus::Ballot, consensus::Value>, std::set<consensus::ProcessId>>
      accepted_;

  // Metric handles resolved once at construction (null when metrics off).
  struct {
    obs::Counter* decisions_fast = nullptr;  ///< decided at ballot 0 (2Δ path)
    obs::Counter* decisions_slow = nullptr;
    obs::Counter* ballots_started = nullptr;
    util::Summary* decision_latency = nullptr;
  } stats_;

  bool started_ = false;
  bool decide_notified_ = false;
};

}  // namespace twostep::paxos
