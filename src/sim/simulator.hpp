// Deterministic discrete-event simulator.
//
// The whole library executes on virtual time: a run is an ordered sequence of
// events, each a closure executed at a virtual instant.  Determinism is
// guaranteed by a strict total order on events: primary key is the virtual
// timestamp, ties broken by scheduling sequence number (FIFO).  Local
// computation is instantaneous, exactly matching the paper's model of
// E-faulty synchronous runs (Definition 2, item 4).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace twostep::sim {

/// Virtual time.  The unit is abstract; modules agree on a convention via
/// the network's `delta()` (one maximum message delay).  Benchmarks that
/// model WAN links interpret one tick as one millisecond.
using Tick = std::int64_t;

/// Handle for a scheduled event, usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

/// Single-threaded event loop over virtual time.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time.  Starts at 0.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedules `action` at absolute virtual time `when` (>= now()).
  EventId schedule_at(Tick when, Action action);

  /// Schedules `action` `delay` ticks from now (delay >= 0).
  EventId schedule_after(Tick delay, Action action);

  /// Cancels a pending event.  Returns true if the event had not yet fired
  /// and was successfully cancelled.
  bool cancel(EventId id);

  /// Executes the next pending event, advancing virtual time to it.
  /// Returns false when the queue is empty (quiescence).
  bool step();

  /// Runs until quiescence or until `max_events` more events have executed.
  /// Returns the number of events executed by this call.
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Executes all events with timestamp <= `deadline`, then advances the
  /// clock to `deadline` (so subsequent schedule_after calls are relative to
  /// it).  Returns the number of events executed.
  std::size_t run_until(Tick deadline, std::size_t max_events = kDefaultEventBudget);

  /// Requests that run()/run_until() return after the current event.
  void request_stop() noexcept { stop_requested_ = true; }

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

  /// Observability hook: when set, *cell is incremented once per executed
  /// event.  A raw count cell (rather than an obs:: type) keeps the
  /// simulator free of upper-layer dependencies; obs::Counter::cell() hands
  /// out exactly this pointer and the cluster harness wires it up.  The
  /// cell is atomic only because the counters it aliases are shared with
  /// cross-thread scrapers; the simulator itself is single-threaded and
  /// increments relaxed.
  void set_executed_cell(std::atomic<std::uint64_t>* cell) noexcept { executed_cell_ = cell; }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_ids_.size(); }

  /// Timestamp of the next pending event; `now()` if none.  Although const,
  /// this may drain lazily-cancelled queue tops via the mutable members, so
  /// concurrent calls on a shared Simulator are NOT safe; each thread must
  /// own its Simulator (as the parallel sweep tasks do).
  [[nodiscard]] Tick next_event_time() const;

  static constexpr std::size_t kDefaultEventBudget = 10'000'000;

 private:
  struct Entry {
    Tick when;
    std::uint64_t seq;
    // Shared-out-of-band storage would complicate cancellation; the action
    // lives in the queue entry and is moved out on execution.
    mutable Action action;

    // std::priority_queue is a max-heap; invert so the earliest (and, within
    // a tick, the first-scheduled) event is on top.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Entry& out);

  /// Pops lazily-cancelled entries off the queue top.  Shared by pop_next,
  /// run_until's deadline peek, and next_event_time; logically const (a
  /// cancelled entry is unobservable), hence the mutable members below.
  /// Because it mutates queue_/cancelled_, const methods that call it are
  /// not safe for concurrent use on a shared instance.
  void drain_cancelled_top() const;

  mutable std::priority_queue<Entry> queue_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_ids_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t executed_ = 0;
  std::atomic<std::uint64_t>* executed_cell_ = nullptr;
  bool stop_requested_ = false;
};

}  // namespace twostep::sim
