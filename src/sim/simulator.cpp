#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace twostep::sim {

EventId Simulator::schedule_at(Tick when, Action action) {
  if (when < now_) throw std::invalid_argument("Simulator: cannot schedule in the past");
  if (!action) throw std::invalid_argument("Simulator: empty action");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, std::move(action)});
  pending_ids_.insert(seq);
  return EventId{seq};
}

EventId Simulator::schedule_after(Tick delay, Action action) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  // Only events still in the queue can be cancelled; fired or already
  // cancelled events report failure.
  if (pending_ids_.erase(id.value) == 0) return false;
  // Lazy cancellation: remember the id and skip the entry when popped.
  cancelled_.insert(id.value);
  return true;
}

void Simulator::drain_cancelled_top() const {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::pop_next(Entry& out) {
  drain_cancelled_top();
  if (queue_.empty()) return false;
  // The action is moved out; Entry::action is mutable because
  // priority_queue::top() returns a const reference.
  out.when = queue_.top().when;
  out.seq = queue_.top().seq;
  out.action = std::move(queue_.top().action);
  queue_.pop();
  pending_ids_.erase(out.seq);
  return true;
}

bool Simulator::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  now_ = entry.when;
  ++executed_;
  if (executed_cell_) executed_cell_->fetch_add(1, std::memory_order_relaxed);
  entry.action();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (n < max_events && !stop_requested_ && step()) ++n;
  return n;
}

std::size_t Simulator::run_until(Tick deadline, std::size_t max_events) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (n < max_events && !stop_requested_) {
    Entry entry;
    // Peek: do not execute events beyond the deadline.
    drain_cancelled_top();
    if (queue_.empty() || queue_.top().when > deadline) break;
    entry.when = queue_.top().when;
    entry.seq = queue_.top().seq;
    entry.action = std::move(queue_.top().action);
    queue_.pop();
    pending_ids_.erase(entry.seq);
    now_ = entry.when;
    ++executed_;
    if (executed_cell_) executed_cell_->fetch_add(1, std::memory_order_relaxed);
    ++n;
    entry.action();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

Tick Simulator::next_event_time() const {
  // Lazily-cancelled entries may sit at the top; drop them first so the
  // reported time is exactly the next event that will actually execute.
  drain_cancelled_top();
  if (queue_.empty()) return now_;
  return queue_.top().when;
}

}  // namespace twostep::sim
