#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace twostep::obs {

void write_json(std::ostream& os, const HistogramSnapshot& s) {
  os << "{\"count\": " << s.count << ", \"mean\": " << json_number(s.mean)
     << ", \"min\": " << json_number(s.min) << ", \"max\": " << json_number(s.max)
     << ", \"p50\": " << json_number(s.p50) << ", \"p90\": " << json_number(s.p90)
     << ", \"p99\": " << json_number(s.p99) << ", \"p999\": " << json_number(s.p999) << "}";
}

double LogHistogram::mean() const noexcept {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

std::int64_t LogHistogram::min() const noexcept {
  const std::int64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::max() ? 0 : v;
}

std::int64_t LogHistogram::max() const noexcept {
  const std::int64_t v = max_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::min() ? 0 : v;
}

double LogHistogram::percentile(double q) const noexcept {
  // Copy the counts once so the walk sees one consistent-enough shape even
  // while writers are active.
  std::uint64_t counts[kBucketCount];
  std::uint64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Closest-rank: the smallest bucket whose cumulative count covers the
  // target rank (0-based, so q == 0 is the first sample, q == 1 the last).
  const auto target =
      static_cast<std::uint64_t>(std::llround(q * static_cast<double>(total - 1)));
  std::uint64_t cum = 0;
  int index = kBucketCount - 1;
  for (int i = 0; i < kBucketCount; ++i) {
    cum += counts[i];
    if (cum > target) {
      index = i;
      break;
    }
  }
  const double v = static_cast<double>(bucket_value(index));
  // The exact extremes are tracked: clamping makes single-sample and
  // tail quantiles exact instead of bucket-midpoint approximations.
  return std::clamp(v, static_cast<double>(min()), static_cast<double>(max()));
}

HistogramSnapshot LogHistogram::snapshot() const noexcept {
  HistogramSnapshot s;
  s.count = count();
  s.mean = mean();
  s.min = static_cast<double>(min());
  s.max = static_cast<double>(max());
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  s.p999 = percentile(0.999);
  return s;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  update_min(other.min());
  update_max(other.max());
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(), std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(), std::memory_order_relaxed);
}

}  // namespace twostep::obs
