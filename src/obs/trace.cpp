#include "obs/trace.hpp"

#include <stdexcept>

namespace twostep::obs {

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kMessageSend: return "message_send";
    case EventKind::kMessageDeliver: return "message_deliver";
    case EventKind::kMessageDrop: return "message_drop";
    case EventKind::kMessageDuplicate: return "message_duplicate";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kTimerFire: return "timer_fire";
    case EventKind::kBallotStart: return "ballot_start";
    case EventKind::kPhaseTransition: return "phase_transition";
    case EventKind::kSelectionVerdict: return "selection_verdict";
    case EventKind::kProposal: return "proposal";
    case EventKind::kDecision: return "decision";
  }
  return "?";
}

RunTracer::RunTracer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("RunTracer: capacity must be > 0");
  // The ring grows on demand up to capacity_ so short runs stay small.
}

void RunTracer::record(const TraceEvent& event) {
  if (sink_) sink_->on_event(event);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++recorded_;
}

std::vector<TraceEvent> RunTracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (size_ < capacity_) {
    // Ring never wrapped: slots [0, size_) are already chronological.
    out.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(size_));
    return out;
  }
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(next_ + i) % capacity_]);
  return out;
}

void RunTracer::clear() noexcept {
  ring_.clear();
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

}  // namespace twostep::obs
