// Fixed-memory log-bucketed latency histogram for live telemetry.
//
// util::Summary keeps every sample and answers exact percentiles — right
// for benchmark-scale data reduced after a run, wrong for a hot path that
// must absorb one sample per message forever.  LogHistogram is the
// telemetry-scale counterpart: a fixed array of relaxed-atomic bucket
// counters, wait-free to record into from any thread, with approximate
// quantiles (p50/p90/p99/p999) read out of the bucket shape.
//
// Bucket layout (HdrHistogram-style log-linear):
//   - values 0..31 get one bucket each (exact),
//   - every octave [2^k, 2^(k+1)) above that is split into 32 sub-buckets,
//     so the relative quantization error is bounded by 1/32 (~3%),
//   - values >= 2^kMaxTrackedBits land in one saturating overflow bucket
//     (the count is never lost; the quantile reports the tracked maximum).
// With microsecond samples the tracked range 0 .. 2^40 µs covers ~12 days;
// the whole histogram is ~9 KiB.
//
// Thread-safety: record() and merge() use relaxed atomics — safe against
// concurrent recorders and against a concurrent snapshot()/percentile()
// reader.  A snapshot taken while writers are active may be torn by a few
// in-flight samples (counts and sums read at slightly different instants);
// that is the usual, acceptable imprecision of live telemetry counters.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <ostream>

namespace twostep::obs {

/// Point-in-time reduction of one histogram: everything an exporter or a
/// bench table needs, copyable and free of atomics.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double p999 = 0;
};

/// Serializes one snapshot as a JSON object
/// {"count": .., "mean": .., "min": .., "max": .., "p50": .., ... "p999": ..}.
void write_json(std::ostream& os, const HistogramSnapshot& s);

class LogHistogram {
 public:
  static constexpr int kLinearBuckets = 32;    ///< one bucket per value 0..31
  static constexpr int kSubBuckets = 32;       ///< buckets per octave above that
  static constexpr int kMaxTrackedBits = 40;   ///< values < 2^40 are bucketed
  static constexpr int kOctaves = kMaxTrackedBits - 5;  ///< octaves [2^5, 2^40)
  static constexpr int kBucketCount = kLinearBuckets + kOctaves * kSubBuckets + 1;
  /// Quantile reported for samples in the saturating overflow bucket.
  static constexpr std::int64_t kOverflowValue = std::int64_t{1} << kMaxTrackedBits;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one sample.  Wait-free; safe from any thread.  Negative
  /// samples clamp to 0 (clock skew should not corrupt the layout).
  void record(std::int64_t v) noexcept {
    if (v < 0) v = 0;
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<std::uint64_t>(v), std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::int64_t min() const noexcept;
  [[nodiscard]] std::int64_t max() const noexcept;

  /// Approximate quantile (q in [0,1]) by closest-rank walk over the bucket
  /// counts; the result is clamped into [min, max], so single-sample and
  /// extreme quantiles are exact.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

  /// Adds every bucket of `other` into this histogram (relaxed reads —
  /// merging a live histogram folds in whatever it holds at that instant).
  void merge(const LogHistogram& other) noexcept;

  /// Forgets every sample.  Not atomic with respect to concurrent
  /// recorders; callers quiesce writers first (workload drivers reset
  /// between runs, not mid-run).
  void reset() noexcept;

  /// Bucket index for a sample (exposed for the bucket-math tests).
  [[nodiscard]] static constexpr int bucket_index(std::int64_t v) noexcept {
    if (v < kLinearBuckets) return static_cast<int>(v);
    if (v >= kOverflowValue) return kBucketCount - 1;
    const int exp = 64 - std::countl_zero(static_cast<std::uint64_t>(v)) - 6;
    const auto sub = static_cast<int>((static_cast<std::uint64_t>(v) >> exp) - kSubBuckets);
    return kLinearBuckets + exp * kSubBuckets + sub;
  }

  /// Midpoint value the quantile walk reports for a bucket.
  [[nodiscard]] static constexpr std::int64_t bucket_value(int index) noexcept {
    if (index < kLinearBuckets) return index;
    if (index >= kBucketCount - 1) return kOverflowValue;
    const int exp = (index - kLinearBuckets) / kSubBuckets;
    const int sub = (index - kLinearBuckets) % kSubBuckets;
    const std::int64_t lower = static_cast<std::int64_t>(kSubBuckets + sub) << exp;
    return lower + ((std::int64_t{1} << exp) >> 1);
  }

 private:
  void update_min(std::int64_t v) noexcept {
    std::int64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen && !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::int64_t v) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

}  // namespace twostep::obs
