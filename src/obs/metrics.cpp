#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace twostep::obs {

namespace {

/// JSON-safe rendering of a double: finite values with enough digits to
/// round-trip, non-finite values (empty summaries never produce them, but
/// belt and braces) as 0.
std::string json_number(double x) {
  if (!(x == x) || x > 1e308 || x < -1e308) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", x);
  return buf;
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

util::Summary& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), util::Summary{}).first->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    write_escaped(os, name);
    os << ": " << c.value();
  }
  os << "}, \"histograms\": {";
  first = true;
  for (auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    write_escaped(os, name);
    os << ": {\"count\": " << h.count() << ", \"mean\": " << json_number(h.mean())
       << ", \"min\": " << json_number(h.min()) << ", \"max\": " << json_number(h.max())
       << ", \"p50\": " << json_number(h.percentile(0.5))
       << ", \"p90\": " << json_number(h.percentile(0.9))
       << ", \"p99\": " << json_number(h.percentile(0.99)) << "}";
  }
  os << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
}

void MetricsRegistry::reset() {
  counters_.clear();
  histograms_.clear();
}

}  // namespace twostep::obs
