#include "obs/metrics.hpp"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

namespace twostep::obs {

std::string json_number(double x) {
  if (!(x == x) || x > 1e308 || x < -1e308) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", x);
  return buf;
}

void write_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept {
  const std::lock_guard<std::mutex> lock(other.mu_);
  counters_ = std::move(other.counters_);
  histograms_ = std::move(other.histograms_);
  log_histograms_ = std::move(other.log_histograms_);
}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this == &other) return *this;
  const std::scoped_lock lock(mu_, other.mu_);
  counters_ = std::move(other.counters_);
  histograms_ = std::move(other.histograms_);
  log_histograms_ = std::move(other.log_histograms_);
  return *this;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_[std::string(name)];
}

util::Summary& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), util::Summary{}).first->second;
}

LogHistogram& MetricsRegistry::log_histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = log_histograms_.find(name);
  if (it != log_histograms_.end()) return it->second;
  return log_histograms_[std::string(name)];
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

HistogramSnapshot MetricsRegistry::log_histogram_snapshot(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = log_histograms_.find(name);
  return it == log_histograms_.end() ? HistogramSnapshot{} : it->second.snapshot();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    write_json_escaped(os, name);
    os << ": " << c.value();
  }
  os << "}, \"histograms\": {";
  // Summary and LogHistogram entries share one sorted key space so readers
  // see a single deterministic "histograms" object.
  first = true;
  auto sit = histograms_.begin();
  auto lit = log_histograms_.begin();
  const auto emit = [&](const std::string& name, const HistogramSnapshot& s) {
    if (!first) os << ", ";
    first = false;
    write_json_escaped(os, name);
    os << ": ";
    obs::write_json(os, s);  // namespace-qualified: the member name shadows
  };
  const auto summary_snapshot = [](util::Summary& h) {
    return HistogramSnapshot{h.count(), h.mean(),           h.min(),
                             h.max(),   h.percentile(0.5),  h.percentile(0.9),
                             h.percentile(0.99), h.percentile(0.999)};
  };
  while (sit != histograms_.end() || lit != log_histograms_.end()) {
    if (lit == log_histograms_.end() ||
        (sit != histograms_.end() && sit->first <= lit->first)) {
      emit(sit->first, summary_snapshot(sit->second));
      ++sit;
    } else {
      emit(lit->first, lit->second.snapshot());
      ++lit;
    }
  }
  os << "}}";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot the other registry's nodes under its lock, then fold without
  // holding both locks at once (merge is not re-entrant on one registry).
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  std::vector<const std::pair<const std::string, LogHistogram>*> logs;
  std::vector<std::pair<std::string, util::Summary>> sums;
  {
    const std::lock_guard<std::mutex> lock(other.mu_);
    counts.reserve(other.counters_.size());
    for (const auto& [name, c] : other.counters_) counts.emplace_back(name, c.value());
    // Map nodes are stable and never erased mid-run, so the pointers stay
    // valid once the structure snapshot is taken.
    for (const auto& node : other.log_histograms_) logs.push_back(&node);
    sums.reserve(other.histograms_.size());
    for (const auto& [name, h] : other.histograms_) sums.emplace_back(name, h);
  }
  for (const auto& [name, v] : counts) counter(name).add(v);
  for (const auto* node : logs) log_histogram(node->first).merge(node->second);
  for (const auto& [name, h] : sums) histogram(name).merge(h);
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
  log_histograms_.clear();
}

}  // namespace twostep::obs
