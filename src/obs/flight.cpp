#include "obs/flight.hpp"

#include <time.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <limits>
#include <map>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace twostep::obs {

FlightRecorder::FlightRecorder(std::string process, std::uint64_t salt, std::size_t capacity)
    : process_(std::move(process)), salt_(salt & 0x7FFFFF), capacity_(capacity) {
  if (capacity_ == 0) capacity_ = 1;
  ring_.resize(capacity_);
}

std::int64_t FlightRecorder::now_us() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1000;
}

void FlightRecorder::record(const SpanRecord& span) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = span;
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++recorded_;
}

std::vector<SpanRecord> FlightRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  const std::size_t first = size_ < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(first + i) % capacity_]);
  return out;
}

std::size_t FlightRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - size_;
}

void FlightRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
}

void write_spans_jsonl(const FlightRecorder& recorder, std::ostream& os) {
  for (const SpanRecord& s : recorder.spans()) {
    os << "{\"process\": ";
    write_json_escaped(os, recorder.process());
    os << ", \"trace\": \"" << s.trace_id << "\", \"span\": \"" << s.span_id
       << "\", \"parent\": \"" << s.parent_span << "\", \"name\": ";
    write_json_escaped(os, s.name);
    os << ", \"start_us\": " << s.start_us << ", \"dur_us\": " << s.dur_us
       << ", \"detail\": " << s.detail << "}\n";
  }
}

namespace {

/// Minimal recursive-descent-free scanner for the flat JSONL span objects:
/// string values and integers only, exactly the shape write_spans_jsonl
/// produces.  Anything else is a malformed line.
class LineScanner {
 public:
  explicit LineScanner(std::string_view line) : s_(line) {}

  bool parse(MergedSpan& out) {
    skip_ws();
    if (!eat('{')) return false;
    bool first = true;
    for (;;) {
      skip_ws();
      if (eat('}')) break;
      if (!first && !eat(',')) return false;
      if (first && peek() == ',') return false;
      first = false;
      skip_ws();
      std::string key;
      if (!string_token(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value_for(key, out)) return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool string_token(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            if (std::from_chars(s_.data() + pos_, s_.data() + pos_ + 4, code, 16).ec !=
                std::errc{})
              return false;
            pos_ += 4;
            out.push_back(static_cast<char>(code & 0x7F));
            break;
          }
          default: return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated string
  }

  bool int_token(std::int64_t& out) {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (pos_ == begin) return false;
    return std::from_chars(s_.data() + begin, s_.data() + pos_, out).ec == std::errc{};
  }

  bool u64_string_token(std::uint64_t& out) {
    std::string digits;
    if (!string_token(digits)) return false;
    if (digits.empty()) return false;
    return std::from_chars(digits.data(), digits.data() + digits.size(), out).ec ==
           std::errc{};
  }

  bool value_for(const std::string& key, MergedSpan& out) {
    if (key == "process") return string_token(out.process);
    if (key == "name") return string_token(out.name);
    if (key == "trace") return u64_string_token(out.trace_id);
    if (key == "span") return u64_string_token(out.span_id);
    if (key == "parent") return u64_string_token(out.parent_span);
    if (key == "start_us") return int_token(out.start_us);
    if (key == "dur_us") return int_token(out.dur_us);
    if (key == "detail") return int_token(out.detail);
    return false;  // unknown key: not ours
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_spans_jsonl(std::istream& in, std::vector<MergedSpan>& out, std::string* error) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    MergedSpan span;
    if (!LineScanner{line}.parse(span)) {
      if (error) *error = "malformed span on line " + std::to_string(lineno);
      return false;
    }
    out.push_back(std::move(span));
  }
  return true;
}

void write_chrome_spans(const std::vector<MergedSpan>& spans, std::ostream& os) {
  // Stable pid per process label, in first-appearance order.
  std::vector<std::string> processes;
  std::unordered_map<std::string, int> pid_of;
  for (const MergedSpan& s : spans) {
    if (pid_of.emplace(s.process, static_cast<int>(processes.size()) + 1).second)
      processes.push_back(s.process);
  }
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  for (const MergedSpan& s : spans) t0 = std::min(t0, s.start_us);
  if (spans.empty()) t0 = 0;
  std::unordered_map<std::uint64_t, const MergedSpan*> by_span;
  for (const MergedSpan& s : spans)
    if (s.span_id != 0) by_span.emplace(s.span_id, &s);

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const std::string& p : processes) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << pid_of[p]
       << ", \"tid\": 1, \"name\": \"process_name\", \"args\": {\"name\": ";
    write_json_escaped(os, p);
    os << "}}";
  }
  for (const MergedSpan& s : spans) {
    sep();
    os << "{\"ph\": \"X\", \"pid\": " << pid_of[s.process] << ", \"tid\": 1, \"ts\": "
       << (s.start_us - t0) << ", \"dur\": " << s.dur_us << ", \"name\": ";
    write_json_escaped(os, s.name);
    os << ", \"args\": {\"trace\": \"" << s.trace_id << "\", \"span\": \"" << s.span_id
       << "\", \"parent\": \"" << s.parent_span << "\", \"detail\": " << s.detail << "}}";
  }
  // Flow arrows for causal edges that cross a process boundary.  The start
  // binds to the parent slice (clamped inside it), the finish to the head
  // of the child slice.
  for (const MergedSpan& s : spans) {
    if (s.parent_span == 0) continue;
    const auto it = by_span.find(s.parent_span);
    if (it == by_span.end() || it->second->process == s.process) continue;
    const MergedSpan& parent = *it->second;
    const std::int64_t at =
        std::clamp(s.start_us, parent.start_us, parent.start_us + parent.dur_us);
    sep();
    os << "{\"ph\": \"s\", \"pid\": " << pid_of[parent.process]
       << ", \"tid\": 1, \"ts\": " << (at - t0) << ", \"id\": \"" << s.span_id
       << "\", \"cat\": \"trace\", \"name\": \"causal\"}";
    sep();
    os << "{\"ph\": \"f\", \"bp\": \"e\", \"pid\": " << pid_of[s.process]
       << ", \"tid\": 1, \"ts\": " << (s.start_us - t0) << ", \"id\": \"" << s.span_id
       << "\", \"cat\": \"trace\", \"name\": \"causal\"}";
  }
  os << "\n]}\n";
}

}  // namespace twostep::obs
