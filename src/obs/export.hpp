// Exporters over a RunTracer's retained events.
//
// Two machine formats plus a human one:
//   * JSONL — one JSON object per event, one event per line; the format for
//     ad-hoc jq/pandas post-processing of runs.
//   * Chrome trace-event JSON — loadable in Perfetto (ui.perfetto.dev) and
//     chrome://tracing: each process is a track (tid), ballots render as
//     spans (a ballot-start opens a span on its leader's track, closed by
//     the leader's next ballot or the end of the trace), everything else as
//     instant events.  Timestamps are the simulator's virtual ticks.
//   * format_event — the single-line rendering used by `twostep_cli run
//     --trace`.
#pragma once

#include <ostream>
#include <string>

#include "obs/trace.hpp"

namespace twostep::obs {

/// One JSON object per line:
///   {"at":200,"kind":"decision","process":2,"peer":null,"ballot":0,
///    "value":102,"label":"fast","detail":0}
void write_jsonl(const RunTracer& tracer, std::ostream& os);

/// Chrome trace-event format (JSON Object Format, i.e. {"traceEvents":[..]}).
void write_chrome_trace(const RunTracer& tracer, std::ostream& os);

/// "[t=200] p2 decision fast v=102 (b=0)" — for terminal dumps.
[[nodiscard]] std::string format_event(const TraceEvent& event);

}  // namespace twostep::obs
