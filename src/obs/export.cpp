#include "obs/export.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace twostep::obs {

namespace {

/// Labels are static strings under our control, but escape defensively so
/// the emitted JSON is well-formed for any input.
void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_value(std::ostream& os, consensus::Value v) {
  if (v.is_bottom()) {
    os << "null";
  } else {
    os << v.get();
  }
}

/// Short display name for an event, e.g. `send 2A` or `decide fast`.
std::string display_name(const TraceEvent& e) {
  std::string name;
  switch (e.kind) {
    case EventKind::kMessageSend: name = "send "; break;
    case EventKind::kMessageDeliver: name = "recv "; break;
    case EventKind::kMessageDrop: name = "drop "; break;
    case EventKind::kMessageDuplicate: name = "dup "; break;
    case EventKind::kRetransmit: name = "retx "; break;
    case EventKind::kCrash: return "crash";
    case EventKind::kRestart: return "restart";
    case EventKind::kTimerFire: return "timer";
    case EventKind::kBallotStart: return "ballot " + std::to_string(e.ballot);
    case EventKind::kPhaseTransition: name = ""; break;
    case EventKind::kSelectionVerdict: name = "select "; break;
    case EventKind::kProposal: return "propose " + e.value.to_string();
    case EventKind::kDecision: name = "decide "; break;
  }
  return name + e.label;
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::kMessageSend:
    case EventKind::kMessageDeliver:
    case EventKind::kMessageDrop:
    case EventKind::kMessageDuplicate:
    case EventKind::kRetransmit: return "net";
    case EventKind::kCrash:
    case EventKind::kRestart: return "fault";
    case EventKind::kTimerFire: return "timer";
    case EventKind::kBallotStart:
    case EventKind::kPhaseTransition:
    case EventKind::kSelectionVerdict:
    case EventKind::kProposal:
    case EventKind::kDecision: return "consensus";
  }
  return "other";
}

}  // namespace

void write_jsonl(const RunTracer& tracer, std::ostream& os) {
  for (const TraceEvent& e : tracer.events()) {
    os << "{\"at\": " << e.at << ", \"kind\": \"" << kind_name(e.kind)
       << "\", \"process\": " << e.process << ", \"peer\": ";
    if (e.peer == consensus::kNoProcess) {
      os << "null";
    } else {
      os << e.peer;
    }
    os << ", \"ballot\": ";
    if (e.ballot < 0) {
      os << "null";
    } else {
      os << e.ballot;
    }
    os << ", \"value\": ";
    write_value(os, e.value);
    os << ", \"label\": ";
    write_escaped(os, e.label);
    os << ", \"detail\": " << e.detail << "}\n";
  }
}

void write_chrome_trace(const RunTracer& tracer, std::ostream& os) {
  const std::vector<TraceEvent> events = tracer.events();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const std::string& body) {
    if (!first) os << ",";
    first = false;
    os << "\n" << body;
  };

  // One track per process id seen anywhere in the trace.
  std::set<consensus::ProcessId> processes;
  sim::Tick end = 0;
  for (const TraceEvent& e : events) {
    if (e.process != consensus::kNoProcess) processes.insert(e.process);
    if (e.peer != consensus::kNoProcess) processes.insert(e.peer);
    end = std::max(end, e.at);
  }
  emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
       "\"args\": {\"name\": \"twostep run\"}}");
  for (const consensus::ProcessId p : processes) {
    std::ostringstream meta;
    meta << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": " << p
         << ", \"args\": {\"name\": \"p" << p << "\"}}";
    emit(meta.str());
  }

  // Ballots as spans: a ballot-start opens a duration slice on the leader's
  // track; the leader's next ballot (or the trace end) closes it.
  std::map<consensus::ProcessId, bool> open_span;
  const auto close_span = [&](consensus::ProcessId p, sim::Tick at) {
    if (!open_span[p]) return;
    open_span[p] = false;
    std::ostringstream ev;
    ev << "{\"ph\": \"E\", \"ts\": " << at << ", \"pid\": 0, \"tid\": " << p << "}";
    emit(ev.str());
  };

  for (const TraceEvent& e : events) {
    if (e.process == consensus::kNoProcess) continue;
    std::ostringstream ev;
    if (e.kind == EventKind::kBallotStart) {
      close_span(e.process, e.at);
      open_span[e.process] = true;
      ev << "{\"name\": ";
      write_escaped(ev, ("ballot " + std::to_string(e.ballot)).c_str());
      ev << ", \"cat\": \"consensus\", \"ph\": \"B\", \"ts\": " << e.at
         << ", \"pid\": 0, \"tid\": " << e.process << "}";
      emit(ev.str());
      continue;
    }
    ev << "{\"name\": ";
    write_escaped(ev, display_name(e).c_str());
    ev << ", \"cat\": \"" << category(e.kind) << "\", \"ph\": \"i\", \"ts\": " << e.at
       << ", \"pid\": 0, \"tid\": " << e.process << ", \"s\": \"t\", \"args\": {\"kind\": \""
       << kind_name(e.kind) << "\", \"peer\": " << e.peer << ", \"ballot\": " << e.ballot
       << ", \"value\": ";
    write_value(ev, e.value);
    ev << ", \"detail\": " << e.detail << "}}";
    emit(ev.str());
  }
  for (const auto& [p, open] : open_span) {
    if (open) close_span(p, end);
  }
  os << "\n]}\n";
}

std::string format_event(const TraceEvent& e) {
  std::ostringstream os;
  os << "[t=" << e.at << "] ";
  if (e.process != consensus::kNoProcess) os << "p" << e.process << " ";
  os << kind_name(e.kind);
  if (e.label[0] != '\0') os << " " << e.label;
  if (e.peer != consensus::kNoProcess) {
    os << (e.kind == EventKind::kMessageDeliver ? " from p" : " to p") << e.peer;
  }
  if (!e.value.is_bottom()) os << " v=" << e.value.to_string();
  if (e.ballot >= 0) os << " (b=" << e.ballot << ")";
  return os.str();
}

}  // namespace twostep::obs
