// Flight recorder: cross-process span tracing for the live cluster.
//
// The RunTracer records a *simulated* run against virtual time; the flight
// recorder records a *live* one against the machine's monotonic clock.  A
// client stamps each request with a TraceContext (trace id, its root span,
// origin timestamp); the runtime propagates that context inside wire
// frames, so every hop — leader serve, WAL fsync, acceptor deliver — lands
// as a span parented on the span of whichever process caused it.  One
// client command therefore yields a causally-linked span tree across the
// client, leader and acceptor processes.
//
// Each process dumps its recorder as JSONL (one span per line); the
// `twostep tracemerge` tool parses the per-process files and merges them
// into a single Chrome-trace JSON (chrome://tracing / Perfetto), with flow
// arrows across process boundaries.  Merging works because every span's
// timestamp comes from the same clock: raw CLOCK_MONOTONIC microseconds,
// which is system-wide on one machine (multi-machine clusters would need
// clock alignment; out of scope here, as for the bench topology).
//
// Same design constraints as the RunTracer: recording is a struct copy
// into a bounded ring (oldest evicted), span names are static strings, and
// a null recorder pointer means tracing is off and every site reduces to
// one pointer test.
#pragma once

#include <atomic>
#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace twostep::obs {

/// The context one process hands the next: which trace this work belongs
/// to, which span caused it (the receiver's parent), and when the root
/// request started (raw monotonic µs — lets any hop compute its offset
/// from the client's send without a round trip).
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no trace attached
  std::uint64_t parent_span = 0;
  std::int64_t origin_us = 0;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One completed span.  Fixed-size and trivially copyable; `name` must be
/// a static string (message labels, "serve", "wal.fsync", "client.call").
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 = root
  const char* name = "";
  std::int64_t start_us = 0;  ///< raw CLOCK_MONOTONIC µs
  std::int64_t dur_us = 0;
  std::int64_t detail = 0;  ///< site-specific: request id, sender, bytes
};

/// Bounded per-process span sink.  record() takes a mutex — tracing is an
/// opt-in diagnosis mode, not the null-probe hot path — which makes the
/// recorder safe to share between a runtime's loop thread and whatever
/// thread exports it.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// `process` labels every exported span ("client", "node-0"); `salt`
  /// namespaces span ids so ids minted by different processes never
  /// collide (use the replica id + 1, or a client-unique value).
  explicit FlightRecorder(std::string process, std::uint64_t salt,
                          std::size_t capacity = kDefaultCapacity);

  /// Mints a process-unique span id (atomic; any thread).
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return (salt_ << 40) | next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Raw CLOCK_MONOTONIC in µs — the shared span clock.
  [[nodiscard]] static std::int64_t now_us() noexcept;

  void record(const SpanRecord& span);

  [[nodiscard]] const std::string& process() const noexcept { return process_; }
  /// Retained spans in recording order.  Copies under the mutex.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::size_t size() const;
  /// Spans evicted from the ring since construction/clear.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  std::string process_;
  std::uint64_t salt_;
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

/// One span as parsed back from JSONL: the process label travels with it
/// and the name is owned (the static-string constraint only exists on the
/// recording side).
struct MergedSpan {
  std::string process;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
  std::int64_t detail = 0;
  friend bool operator==(const MergedSpan&, const MergedSpan&) = default;
};

/// Writes the recorder's retained spans as JSONL, one flat object per
/// line.  Ids are emitted as decimal *strings* (they carry high salt bits
/// and must survive readers that parse numbers as doubles).
void write_spans_jsonl(const FlightRecorder& recorder, std::ostream& os);

/// Parses JSONL produced by write_spans_jsonl (possibly concatenated from
/// several processes).  Appends to `out`; returns false and sets `error`
/// (if non-null) on the first malformed line.  Blank lines are skipped.
bool parse_spans_jsonl(std::istream& in, std::vector<MergedSpan>& out,
                       std::string* error = nullptr);

/// Merges spans from any number of processes into one Chrome-trace JSON:
/// one pid per process label, "X" complete events carrying
/// trace/span/parent ids in args, and "s"/"f" flow arrows for every
/// parent→child edge that crosses a process boundary.  Timestamps are
/// shifted so the earliest span starts at 0.
void write_chrome_spans(const std::vector<MergedSpan>& spans, std::ostream& os);

}  // namespace twostep::obs
