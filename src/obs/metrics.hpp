// Named counters and histograms for simulated and live runs.
//
// A MetricsRegistry is the quantitative companion of the RunTracer: where
// the tracer answers "what happened, in order", the registry answers "how
// often and how long" — messages by type, fast- vs slow-path decisions,
// ballots started, selection-rule branch frequencies, events executed, and
// decision-latency distributions.
//
// Two histogram flavors with different contracts:
//   - util::Summary (histogram()): exact percentiles over retained samples.
//     NOT thread-safe — single-threaded simulation or loop-thread-only use,
//     reduced after the run.
//   - obs::LogHistogram (log_histogram()): fixed-memory bucketed quantiles,
//     wait-free relaxed-atomic recording.  The live runtime's hot paths
//     write these from the event-loop thread while a scraper snapshots them
//     from anywhere.
//
// Thread-safety of the registry itself: counters are relaxed atomics and
// name registration is mutex-guarded, so concurrent add()s, registrations
// and write_json() calls are safe under TSan — with one carve-out: Summary
// histograms are only serialized/merged safely while nothing is add()ing
// to them (the live runtime confines Summary writes to the loop thread and
// scrapes on that same thread; cross-thread scrapes read the cached
// snapshot instead).
//
// Hot-path discipline: counter() / histogram() / log_histogram() do a
// string lookup and are meant to be called ONCE, at wiring time;
// instrumented code caches the returned reference (std::map nodes are
// stable) and pays a single relaxed add on the hot path.  Counter::cell()
// additionally exposes the raw atomic so the lowest layer (sim::Simulator)
// can be instrumented without depending on this header.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "util/stats.hpp"

namespace twostep::obs {

/// JSON-safe rendering of a double: finite values with enough digits to
/// round-trip, non-finite values as 0.  Shared by every JSON emitter in
/// the observability stack.
[[nodiscard]] std::string json_number(double x);

/// Writes `s` as a quoted JSON string with control characters escaped.
void write_json_escaped(std::ostream& os, std::string_view s);

/// Monotonic counter.  add() is a relaxed atomic increment — safe from any
/// thread, and on the null-probe path never reached at all.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Raw cell for dependency-free instrumentation (see header comment).
  [[nodiscard]] std::atomic<std::uint64_t>* cell() noexcept { return &value_; }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&& other) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it at zero on
  /// first use.  The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);

  /// Same contract for exact-percentile summaries (see the thread-safety
  /// carve-out in the header comment).
  util::Summary& histogram(std::string_view name);

  /// Same contract for fixed-memory bucketed histograms (thread-safe
  /// recording; the live runtime's flavor).
  LogHistogram& log_histogram(std::string_view name);

  /// Current value of a counter, 0 if it was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Raw map views for post-run inspection.  The references bypass the
  /// registration mutex: only use them while no other thread registers
  /// new names (after a run joins, in tests).
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, util::Summary, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, LogHistogram, std::less<>>& log_histograms()
      const noexcept {
    return log_histograms_;
  }

  /// Snapshot of a log histogram, all-zero if it was never registered.
  [[nodiscard]] HistogramSnapshot log_histogram_snapshot(std::string_view name) const;

  /// Serializes the registry as one JSON object:
  ///   {"counters": {name: value, ...},
  ///    "histograms": {name: {count, mean, min, max, p50, p90, p99, p999}, ...}}
  /// Summary and LogHistogram entries share the "histograms" namespace and
  /// emit the same fields.  Keys are emitted in sorted order, so the output
  /// is deterministic.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Adds every counter and histogram of `other` into this registry
  /// (creating names on first sight).  Parallel sweeps give each task its
  /// own registry and merge them after the join, in task-index order, so
  /// the aggregate is identical to what a single-threaded run would record.
  void merge(const MetricsRegistry& other);

  void reset();

 private:
  // std::map: node-based, so references handed out by the accessors
  // survive later registrations.  mu_ guards the map *structure* (lookup +
  // insert + iteration); the values themselves are either atomic (Counter,
  // LogHistogram) or covered by the Summary carve-out.  write_json is
  // const but Summary percentiles sort lazily, hence the mutable map.
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  mutable std::map<std::string, util::Summary, std::less<>> histograms_;
  std::map<std::string, LogHistogram, std::less<>> log_histograms_;
};

}  // namespace twostep::obs
