// Named counters and histograms for simulated runs.
//
// A MetricsRegistry is the quantitative companion of the RunTracer: where
// the tracer answers "what happened, in order", the registry answers "how
// often and how long" — messages by type, fast- vs slow-path decisions,
// ballots started, selection-rule branch frequencies, events executed, and
// decision-latency distributions (reusing util::Summary for exact
// percentiles).
//
// Hot-path discipline: counter() / histogram() do a string lookup and are
// meant to be called ONCE, at wiring time; instrumented code caches the
// returned reference (std::map nodes are stable) and pays a single add on
// the hot path.  Counter::cell() additionally exposes the raw count cell so
// the lowest layer (sim::Simulator) can be instrumented without depending
// on this header.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "util/stats.hpp"

namespace twostep::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  /// Raw cell for dependency-free instrumentation (see header comment).
  [[nodiscard]] std::uint64_t* cell() noexcept { return &value_; }

 private:
  std::uint64_t value_ = 0;
};

class MetricsRegistry {
 public:
  /// Returns the counter registered under `name`, creating it at zero on
  /// first use.  The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);

  /// Same contract for histograms.
  util::Summary& histogram(std::string_view name);

  /// Current value of a counter, 0 if it was never registered.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, util::Summary, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Serializes the registry as one JSON object:
  ///   {"counters": {name: value, ...},
  ///    "histograms": {name: {count, mean, min, max, p50, p90, p99}, ...}}
  /// Keys are emitted in sorted order, so the output is deterministic.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Adds every counter and histogram of `other` into this registry
  /// (creating names on first sight).  Parallel sweeps give each task its
  /// own registry and merge them after the join, in task-index order, so
  /// the aggregate is identical to what a single-threaded run would record.
  void merge(const MetricsRegistry& other);

  void reset();

 private:
  // std::map: node-based, so references handed out by counter()/histogram()
  // survive later registrations.  write_json is const but percentiles sort
  // lazily, hence the mutable histogram map.
  std::map<std::string, Counter, std::less<>> counters_;
  mutable std::map<std::string, util::Summary, std::less<>> histograms_;
};

}  // namespace twostep::obs
