// Structured run tracing.
//
// A RunTracer turns one simulated run into an inspectable artifact: every
// interesting transition — message send/deliver/drop, crash, timer fire,
// ballot start, phase transition, 1B-aggregation verdict, proposal,
// decision — is recorded as a typed TraceEvent against virtual time.  The
// paper's central question ("*why* did this run decide in two steps?") is
// answered by reading the event stream: which quorum formed, which branch of
// the value-selection rule fired, who crashed when.
//
// Design constraints, in order:
//   1. Zero overhead when disabled.  Instrumentation sites hold an
//      obs::Probe whose tracer/metrics pointers default to null; the emit
//      helper takes a lambda that *builds* the event and only invokes it
//      when a tracer is installed (same idiom as TWOSTEP_LOG's lazy
//      streaming).  Labels are static strings — recording never formats.
//   2. Bounded memory.  Events land in a ring buffer (oldest evicted) so
//      a tracer can stay attached to a long fuzzing or benchmark run.
//   3. Pluggable sinks.  A TraceSink observes every event as it is
//      recorded, before eviction can touch it — for streaming exporters or
//      test assertions.  Exporters over the retained buffer live in
//      obs/export.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "consensus/types.hpp"
#include "sim/simulator.hpp"

namespace twostep::obs {

class MetricsRegistry;

/// What happened.  Every protocol maps its transitions onto this shared
/// vocabulary so one exporter serves the simulator, the network and all
/// protocol modules.
enum class EventKind : std::uint8_t {
  kMessageSend,       ///< process -> peer, label = message type
  kMessageDeliver,    ///< process received from peer
  kMessageDrop,       ///< lost: crash, injected drop or partition (see label)
  kMessageDuplicate,  ///< fault plan scheduled an extra copy
  kRetransmit,        ///< reliable channel re-sent an unacked message
  kCrash,             ///< process crashed (crash-stop)
  kRestart,           ///< crashed process restarted (crash-recovery)
  kTimerFire,         ///< a protocol timer fired at process; detail = timer id
  kBallotStart,       ///< process starts leading `ballot`
  kPhaseTransition,   ///< label names the phase edge (join_ballot, accept, ...)
  kSelectionVerdict,  ///< 1B aggregation ran; label = selection branch
  kProposal,          ///< process entered `value` into the initial configuration
  kDecision,          ///< process decided `value`; label = fast|slow|learned
};

/// Stable lowercase name for an event kind (used by the exporters).
[[nodiscard]] const char* kind_name(EventKind kind) noexcept;

/// One recorded event.  Fixed-size and trivially copyable: recording is a
/// struct copy into the ring, never an allocation or a string format.
/// Fields not meaningful for a kind keep their defaults (kNoProcess, -1, ⊥).
struct TraceEvent {
  EventKind kind = EventKind::kMessageSend;
  sim::Tick at = 0;                                       ///< virtual time
  consensus::ProcessId process = consensus::kNoProcess;   ///< primary actor
  consensus::ProcessId peer = consensus::kNoProcess;      ///< counterpart (from/to)
  consensus::Ballot ballot = -1;                          ///< -1 when not applicable
  consensus::Value value;                                 ///< ⊥ when not applicable
  const char* label = "";  ///< static string: message type / phase / branch
  std::int64_t detail = 0; ///< kind-specific payload (message seq, timer id)
};

/// Observer of the live event stream.  on_event runs synchronously inside
/// the instrumented code path; implementations must be cheap and must not
/// re-enter the tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Bounded recorder: keeps the most recent `capacity` events and forwards
/// every event to the optional sink before it can ever be evicted.
class RunTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit RunTracer(std::size_t capacity = kDefaultCapacity);

  /// Installs (or, with nullptr, removes) the streaming sink.
  void set_sink(TraceSink* sink) noexcept { sink_ = sink; }

  void record(const TraceEvent& event);

  /// Retained events in chronological (recording) order.  Copies; intended
  /// for post-run export and test assertions, not hot paths.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded, including those evicted from the ring.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return recorded_ - size_; }

  void clear() noexcept;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< ring slot the next event lands in
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  TraceSink* sink_ = nullptr;
};

/// The handle instrumented code carries: a pair of optional pointers,
/// passed by value through Options structs and harness plumbing.  Both
/// null (the default) means observability is off and every emit site
/// reduces to one pointer test.
struct Probe {
  RunTracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  [[nodiscard]] bool tracing() const noexcept { return tracer != nullptr; }
  [[nodiscard]] bool enabled() const noexcept { return tracer != nullptr || metrics != nullptr; }

  /// Lazy emit: `build` must return a TraceEvent and is only invoked when a
  /// tracer is installed — the null-probe hot path does not construct,
  /// format or allocate anything.
  template <typename F>
  void trace(F&& build) const {
    if (tracer) tracer->record(build());
  }
};

/// Message-type label used by the network instrumentation.  Protocols
/// provide an ADL-found `message_name(const Msg&)` returning a static
/// string; message types without one (ad-hoc test payloads) fall back to
/// "msg".
template <typename Msg>
[[nodiscard]] const char* message_label(const Msg& m) {
  if constexpr (requires { { message_name(m) } -> std::convertible_to<const char*>; }) {
    return message_name(m);
  } else {
    return "msg";
  }
}

}  // namespace twostep::obs
