// Non-blocking I/O event loop for the live node runtime.
//
// A minimal epoll reactor: level-triggered fd callbacks, a monotonic-clock
// timer heap, and a thread-safe post() queue woken through an eventfd.  One
// loop = one thread: every callback runs on the thread inside run(); the
// only cross-thread entry points are post() and request_stop() (the latter
// additionally async-signal-safe, so a SIGINT handler can stop a server).
//
// Time is exposed as microseconds since loop construction, which is what the
// live consensus::Env reports as sim::Tick — the protocols run on the same
// integer clock in both worlds, only the unit convention changes (one tick =
// one microsecond instead of one abstract round unit).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hpp"

namespace twostep::transport {

/// Optional loop self-instrumentation.  All pointers null (the default)
/// costs one branch per loop iteration and zero clock reads; with
/// histograms installed, each wakeup records how long the loop blocked in
/// epoll_wait, how long the dispatch work took, and the timer/posted queue
/// depths it saw.  Install before run() starts; the histograms are
/// internally thread-safe.
struct LoopProbe {
  obs::LogHistogram* poll_us = nullptr;      ///< time blocked in epoll_wait
  obs::LogHistogram* work_us = nullptr;      ///< non-blocking dispatch time per wakeup
  obs::LogHistogram* timer_depth = nullptr;  ///< armed timers, sampled per iteration
  obs::LogHistogram* posted_depth = nullptr; ///< posted tasks drained per iteration
};

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Microseconds elapsed since construction (CLOCK_MONOTONIC).
  [[nodiscard]] std::int64_t now_us() const;

  /// Registers `fd` for the epoll event mask `events` (EPOLLIN/EPOLLOUT...).
  /// The callback runs on the loop thread for every ready notification and
  /// may call mod_fd/del_fd, including on its own fd.
  void add_fd(int fd, std::uint32_t events, FdCallback cb);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  /// Arms a one-shot timer `delay_us` microseconds from now; returns an id
  /// usable with cancel_timer.  Loop-thread only.
  std::uint64_t schedule_after(std::int64_t delay_us, Task fn);

  /// Cancels a pending timer; false if it already fired or is unknown.
  bool cancel_timer(std::uint64_t id);

  /// Enqueues `fn` to run on the loop thread.  Thread-safe; wakes the loop.
  void post(Task fn);

  /// Enqueues `fn` to run once at the end of the current dispatch round,
  /// before the loop blocks in epoll_wait again.  Loop-thread only.  The
  /// transport uses this to coalesce every frame queued during one round
  /// into a single vectored flush per connection.
  void at_round_end(Task fn);

  /// The epoll timeout the loop would use right now, in ms (-1 = no timer).
  /// Drains lazily-cancelled timer-heap entries first — the same fix the
  /// simulator's scheduler got in PR 2: a pile of cancelled timers at the
  /// top of the heap must not manufacture spurious zero-timeout wakeups.
  /// Exposed for regression tests.
  [[nodiscard]] int next_timeout_hint_ms() { return next_timeout_ms(); }

  /// Dispatches events until request_stop().  Runs posted tasks, due timers
  /// and fd callbacks; blocks in epoll_wait when idle.
  void run();

  /// Requests run() to return after the current dispatch round.  Safe from
  /// any thread and from signal handlers (atomic store + eventfd write).
  void request_stop() noexcept;

  /// Installs the self-instrumentation probe.  Call before run() starts.
  void set_probe(const LoopProbe& probe) noexcept { probe_ = probe; }

  /// True between run() entry and request_stop() taking effect.
  [[nodiscard]] bool stopped() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  struct TimerEntry {
    std::int64_t deadline_us;
    std::uint64_t id;
    bool operator>(const TimerEntry& o) const noexcept {
      return deadline_us != o.deadline_us ? deadline_us > o.deadline_us : id > o.id;
    }
  };

  void drain_wake_fd();
  void run_posted();
  void fire_due_timers();
  void run_round_end();
  /// Pops cancelled entries off the top of the timer heap so they cannot
  /// influence the epoll timeout.
  void drain_cancelled_timers();
  /// epoll_wait timeout until the next timer, in ms; -1 when no timer.
  [[nodiscard]] int next_timeout_ms();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::int64_t origin_ns_ = 0;

  // shared_ptr so a callback erasing its own (or another) fd mid-dispatch
  // cannot free the std::function currently executing.
  std::unordered_map<int, std::shared_ptr<FdCallback>> fds_;

  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timer_heap_;
  std::unordered_map<std::uint64_t, Task> timers_;  ///< armed (not cancelled)
  std::uint64_t next_timer_id_ = 1;

  std::mutex post_mu_;
  std::vector<Task> posted_;

  std::vector<Task> round_end_;  ///< loop-thread only; drained every round

  LoopProbe probe_;

  std::atomic<bool> stop_{false};
};

}  // namespace twostep::transport
