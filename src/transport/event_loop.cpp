#include "transport/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace twostep::transport {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

EventLoop::EventLoop() : origin_ns_(monotonic_ns()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    const int err = errno;
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw std::system_error(err, std::generic_category(), "epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::int64_t EventLoop::now_us() const { return (monotonic_ns() - origin_ns_) / 1000; }

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0)
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(add)");
  fds_[fd] = std::make_shared<FdCallback>(std::move(cb));
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0)
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(mod)");
}

void EventLoop::del_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);  // best-effort
  fds_.erase(fd);
}

std::uint64_t EventLoop::schedule_after(std::int64_t delay_us, Task fn) {
  if (delay_us < 0) delay_us = 0;
  const std::uint64_t id = next_timer_id_++;
  timer_heap_.push(TimerEntry{now_us() + delay_us, id});
  timers_.emplace(id, std::move(fn));
  return id;
}

bool EventLoop::cancel_timer(std::uint64_t id) { return timers_.erase(id) > 0; }

void EventLoop::post(Task fn) {
  {
    const std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  // EINTR/EAGAIN are benign: the eventfd is only a wakeup edge.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::request_stop() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wake_fd() {
  std::uint64_t buf = 0;
  while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::run_posted() {
  // Swap under the lock; tasks posted while running land in the next round.
  std::vector<Task> batch;
  {
    const std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  if (probe_.posted_depth) probe_.posted_depth->record(static_cast<std::int64_t>(batch.size()));
  for (Task& task : batch) task();
}

void EventLoop::fire_due_timers() {
  const std::int64_t now = now_us();
  while (!timer_heap_.empty() && timer_heap_.top().deadline_us <= now) {
    const std::uint64_t id = timer_heap_.top().id;
    timer_heap_.pop();
    const auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled
    Task fn = std::move(it->second);
    timers_.erase(it);
    fn();
  }
}

void EventLoop::drain_cancelled_timers() {
  // Skip over lazily-cancelled heap tops so a dead timer never wakes us.
  while (!timer_heap_.empty() && !timers_.contains(timer_heap_.top().id)) timer_heap_.pop();
}

void EventLoop::at_round_end(Task fn) { round_end_.push_back(std::move(fn)); }

void EventLoop::run_round_end() {
  // Swap first: a round-end task scheduling another round-end task (it
  // should not, but defensively) lands in the next round, not this loop.
  std::vector<Task> batch;
  batch.swap(round_end_);
  for (Task& task : batch) task();
}

int EventLoop::next_timeout_ms() {
  drain_cancelled_timers();
  if (timer_heap_.empty()) return -1;
  const std::int64_t delta_us = timer_heap_.top().deadline_us - now_us();
  if (delta_us <= 0) return 0;
  // Round up so we never spin on an almost-due timer.
  return static_cast<int>((delta_us + 999) / 1000);
}

void EventLoop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // Timing is only measured when the probe asks for it: the unprobed loop
  // reads no clocks beyond what dispatch itself needs.
  const bool timed = probe_.poll_us != nullptr || probe_.work_us != nullptr;
  std::int64_t work_start_us = timed ? now_us() : 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    run_posted();
    fire_due_timers();
    if (probe_.timer_depth) probe_.timer_depth->record(static_cast<std::int64_t>(timers_.size()));
    run_round_end();
    if (stop_.load(std::memory_order_relaxed)) break;
    const int timeout = next_timeout_ms();
    std::int64_t poll_start_us = 0;
    if (timed) {
      poll_start_us = now_us();
      if (probe_.work_us) probe_.work_us->record(poll_start_us - work_start_us);
    }
    const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (timed) {
      work_start_us = now_us();
      if (probe_.poll_us) probe_.poll_us->record(work_start_us - poll_start_us);
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "epoll_wait");
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wake_fd();
        continue;
      }
      // Look the callback up per event: an earlier callback in this batch
      // may have closed this fd (stale level-triggered events are skipped).
      const auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      const std::shared_ptr<FdCallback> cb = it->second;  // keep alive
      (*cb)(events[i].events);
    }
  }
}

}  // namespace twostep::transport
