#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace twostep::transport {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int make_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  return fd;
}

sockaddr_in make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
    throw std::system_error(EINVAL, std::generic_category(), "inet_pton: " + ep.host);
  return addr;
}

}  // namespace

int bind_listener(Endpoint& ep) {
  const int fd = make_socket();
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(ep);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "bind " + ep.to_string());
  }
  if (::listen(fd, 128) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "listen " + ep.to_string());
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    ep.port = ntohs(bound.sin_port);
  return fd;
}

int dial_nonblocking(const Endpoint& ep) {
  const int fd = make_socket();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = make_addr(ep);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    // Synchronous refusal (common on loopback): report as a failed dial,
    // not an exception — the caller's retry loop handles it.
    ::close(fd);
    return -1;
  }
  return fd;
}

// ---- Connection -----------------------------------------------------------

Connection::Connection(EventLoop& loop, int fd, TransportStats* stats)
    : loop_(loop), fd_(fd), stats_(stats) {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Connection::~Connection() {
  // No del_fd here: the loop's fd callback holds a shared_ptr to us, so if
  // fd_ is still open the destructor can only be running because that map
  // entry is itself being destroyed (close() already deregistered
  // otherwise) — touching the map again would double-free the node.
  // Closing the fd removes it from the epoll set automatically.
  if (fd_ >= 0) ::close(fd_);
}

void Connection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  auto self = shared_from_this();
  loop_.add_fd(fd_, EPOLLIN, [self](std::uint32_t events) { self->handle_events(events); });
}

void Connection::send_frame(FrameKind kind, std::span<const std::uint8_t> payload) {
  if (closed()) return;
  // Pack into the tail chunk; start a new one (recycling the spare) once
  // the tail reaches the chunk target.  A frame larger than the target
  // simply grows its chunk — the 1 MiB wire cap bounds the worst case.
  if (outbox_.empty() || outbox_.back().size() >= kChunkTarget) {
    spare_.clear();
    outbox_.push_back(std::move(spare_));
    spare_ = {};
    if (outbox_.back().capacity() < kChunkTarget) outbox_.back().reserve(kChunkTarget);
  }
  const std::size_t before = outbox_.back().size();
  append_frame(outbox_.back(), kind, payload);
  unsent_bytes_ += outbox_.back().size() - before;
  if (stats_) stats_->frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (stats_ && stats_->outbox_bytes)
    stats_->outbox_bytes->record(static_cast<std::int64_t>(unsent_bytes_));
  schedule_flush();
}

void Connection::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  auto self = shared_from_this();
  loop_.at_round_end([self] {
    self->flush_scheduled_ = false;
    if (self->closed()) return;
    if (!self->flush()) {
      self->fail();
      return;
    }
    self->update_interest();
  });
}

void Connection::close() {
  if (fd_ < 0) return;
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
}

void Connection::fail() {
  if (fd_ < 0) return;
  close();
  if (on_close_) {
    CloseHandler cb = std::move(on_close_);
    on_close_ = nullptr;
    cb();
  }
}

void Connection::handle_events(std::uint32_t events) {
  auto self = shared_from_this();
  if (closed()) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    fail();
    return;
  }
  if (events & EPOLLOUT) {
    if (!flush()) {
      fail();
      return;
    }
    update_interest();
  }
  if (events & EPOLLIN) handle_readable();
}

void Connection::handle_readable() {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (stats_) stats_->bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                                   std::memory_order_relaxed);
      if (!parser_.feed({buf, static_cast<std::size_t>(n)})) {
        fail();  // framing violation: cannot resync a byte stream
        return;
      }
      while (auto frame = parser_.next()) {
        if (stats_) stats_->frames_received.fetch_add(1, std::memory_order_relaxed);
        if (on_frame_) on_frame_(std::move(*frame));
        if (closed()) return;  // handler closed us
      }
      if (parser_.failed()) {
        fail();
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // EOF
      fail();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail();
    return;
  }
}

bool Connection::flush() {
  constexpr int kMaxIov = 64;
  while (unsent_bytes_ > 0) {
    iovec iov[kMaxIov];
    int cnt = 0;
    std::size_t off = head_sent_;
    for (auto it = outbox_.begin(); it != outbox_.end() && cnt < kMaxIov; ++it) {
      iov[cnt].iov_base = it->data() + off;
      iov[cnt].iov_len = it->size() - off;
      off = 0;
      ++cnt;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(cnt);
    const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      if (stats_) stats_->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                               std::memory_order_relaxed);
      unsent_bytes_ -= static_cast<std::size_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        auto& front = outbox_.front();
        const std::size_t avail = front.size() - head_sent_;
        if (left >= avail) {
          left -= avail;
          head_sent_ = 0;
          // Recycle one fully-drained chunk so the steady state allocates
          // nothing per round.
          if (spare_.capacity() == 0) {
            spare_ = std::move(front);
            spare_.clear();
          }
          outbox_.pop_front();
        } else {
          head_sent_ += left;
          left = 0;
        }
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void Connection::update_interest() {
  if (closed()) return;
  const bool want = unsent_bytes_ > 0;
  if (want == want_write_) return;
  want_write_ = want;
  loop_.mod_fd(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

// ---- PeerLink -------------------------------------------------------------

PeerLink::PeerLink(EventLoop& loop, consensus::ProcessId self, consensus::ProcessId peer,
                   Endpoint target, TransportStats* stats)
    : loop_(loop),
      self_(self),
      peer_(peer),
      target_(std::move(target)),
      stats_(stats),
      rng_(util::splitmix64(static_cast<std::uint64_t>(self) + 1,
                            static_cast<std::uint64_t>(peer) + 1)) {}

void PeerLink::start() { attempt_connect(); }

void PeerLink::send_frame(FrameKind kind, std::vector<std::uint8_t> payload) {
  if (stopped_) return;
  if (chaos_ != nullptr) {
    const faults::FaultPlan::Decision d = chaos_->decide(loop_.now_us(), peer_);
    if (d.dropped()) {
      if (stats_) stats_->chaos_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (int copy = 1; copy < d.copies; ++copy) {
      if (stats_) stats_->chaos_duplicated.fetch_add(1, std::memory_order_relaxed);
      enqueue_frame(kind, payload);
    }
    if (d.extra_delay > 0) {
      if (stats_) stats_->chaos_delayed.fetch_add(1, std::memory_order_relaxed);
      // Park the frame on the timer heap; it re-enters the normal pipeline
      // (connected send or bounded queue) when the delay elapses.  The
      // lambda may outlive the link's *connection* but never the link: a
      // Runtime joins the loop thread before tearing links down, and
      // enqueue_frame checks stopped_ for the post-shutdown case.
      loop_.schedule_after(d.extra_delay,
                           [this, kind, frame = std::move(payload)]() mutable {
                             enqueue_frame(kind, std::move(frame));
                           });
      return;
    }
  }
  enqueue_frame(kind, std::move(payload));
}

void PeerLink::enqueue_frame(FrameKind kind, std::vector<std::uint8_t> payload) {
  if (stopped_) return;
  if (conn_ && !conn_->closed()) {
    conn_->send_frame(kind, payload);
    return;
  }
  // Disconnected: keep a bounded tail of recent frames.  Dropping the
  // oldest is safe — the protocols' ballot timers retransmit intent.
  pending_.emplace_back(kind, std::move(payload));
  if (pending_.size() > kMaxPending) {
    pending_.pop_front();
    if (stats_) stats_->frames_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  if (stats_ && stats_->pending_frames)
    stats_->pending_frames->record(static_cast<std::int64_t>(pending_.size()));
}

void PeerLink::shutdown() {
  stopped_ = true;
  if (retry_timer_ != 0) {
    loop_.cancel_timer(retry_timer_);
    retry_timer_ = 0;
  }
  cancel_connect_timer();
  if (dial_fd_ >= 0) {
    loop_.del_fd(dial_fd_);
    ::close(dial_fd_);
    dial_fd_ = -1;
  }
  if (conn_) {
    conn_->close();
    conn_.reset();
  }
  up_.store(false, std::memory_order_relaxed);
  pending_.clear();
}

void PeerLink::attempt_connect() {
  if (stopped_) return;
  retry_timer_ = 0;
  const int fd = dial_nonblocking(target_);
  if (fd < 0) {
    schedule_retry();
    return;
  }
  dial_fd_ = fd;
  loop_.add_fd(fd, EPOLLOUT, [this, fd](std::uint32_t events) { on_dial_result(fd, events); });
  // A SYN into a blackhole (chaos partition, dead routing) would otherwise
  // sit in EINPROGRESS for the kernel's multi-minute default.
  connect_timer_ = loop_.schedule_after(kConnectTimeoutUs, [this] { on_dial_timeout(); });
}

void PeerLink::cancel_connect_timer() {
  if (connect_timer_ == 0) return;
  loop_.cancel_timer(connect_timer_);
  connect_timer_ = 0;
}

void PeerLink::on_dial_timeout() {
  connect_timer_ = 0;
  if (dial_fd_ < 0) return;
  loop_.del_fd(dial_fd_);
  ::close(dial_fd_);
  dial_fd_ = -1;
  if (stats_) stats_->connect_timeouts.fetch_add(1, std::memory_order_relaxed);
  schedule_retry();
}

void PeerLink::on_dial_result(int fd, std::uint32_t /*events*/) {
  cancel_connect_timer();
  loop_.del_fd(fd);
  dial_fd_ = -1;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) err = errno;
  if (err != 0) {
    ::close(fd);
    schedule_retry();
    return;
  }
  established(fd);
}

void PeerLink::established(int fd) {
  backoff_us_ = kBackoffMinUs;
  if (ever_connected_ && stats_) stats_->reconnects.fetch_add(1, std::memory_order_relaxed);
  ever_connected_ = true;
  conn_ = std::make_shared<Connection>(loop_, fd, stats_);
  up_.store(true, std::memory_order_relaxed);
  conn_->start(
      // This edge is write-only; a well-behaved peer never sends on it.
      [](Frame&&) {},
      [this] {
        up_.store(false, std::memory_order_relaxed);
        conn_.reset();
        schedule_retry();
      });
  const std::vector<std::uint8_t> hello = encode_hello(self_);
  conn_->send_frame(FrameKind::kHello, hello);
  while (conn_ && !conn_->closed() && !pending_.empty()) {
    auto [kind, payload] = std::move(pending_.front());
    pending_.pop_front();
    conn_->send_frame(kind, payload);
  }
  if (on_connected_ && conn_ && !conn_->closed()) on_connected_();
}

void PeerLink::schedule_retry() {
  if (stopped_ || retry_timer_ != 0) return;
  // Jittered exponential backoff, uniform in [backoff/2, backoff]: after a
  // restarted node comes back, its n-1 peers redial spread out instead of
  // in lockstep (they all observed the disconnect at the same instant).
  const std::int64_t low = backoff_us_ / 2;
  const std::int64_t delay =
      low + static_cast<std::int64_t>(
                rng_.next_below(static_cast<std::uint64_t>(backoff_us_ - low) + 1));
  retry_timer_ = loop_.schedule_after(delay, [this] { attempt_connect(); });
  backoff_us_ = std::min(backoff_us_ * 2, kBackoffMaxUs);
}

}  // namespace twostep::transport
