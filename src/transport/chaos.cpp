#include "transport/chaos.hpp"

#include "util/rng.hpp"

namespace twostep::transport {

ChaosInjector::ChaosInjector(const ChaosConfig& config, consensus::ProcessId self)
    : plan_(util::splitmix64(config.seed, static_cast<std::uint64_t>(self))), self_(self) {
  if (config.drop_rate > 0) plan_.drop(config.drop_rate);
  if (config.duplicate_rate > 0) plan_.duplicate(config.duplicate_rate);
  if (config.delay_rate > 0 && config.delay_max_us > 0)
    plan_.reorder(config.delay_rate, config.delay_max_us);
  for (const ChaosConfig::Partition& p : config.partitions)
    plan_.partition_cut(p.island, p.since_us, p.heal_us);
}

faults::FaultPlan::Decision ChaosInjector::decide(std::int64_t now_us,
                                                  consensus::ProcessId to) {
  return plan_.on_send(now_us, self_, to, nullptr);
}

}  // namespace twostep::transport
