#include "transport/chaos.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace twostep::transport {

ChaosInjector::ChaosInjector(const ChaosConfig& config, consensus::ProcessId self)
    : plan_(util::splitmix64(config.seed, static_cast<std::uint64_t>(self))),
      self_(self),
      geo_(config.geo),
      geo_regions_(config.geo_regions),
      geo_seed_(util::splitmix64(config.seed, static_cast<std::uint64_t>(self))) {
  if (config.drop_rate > 0) plan_.drop(config.drop_rate);
  if (config.duplicate_rate > 0) plan_.duplicate(config.duplicate_rate);
  if (config.delay_rate > 0) {
    // A positive delay rate with no delay budget used to silently disable
    // the rule — reject it so a mistyped config cannot masquerade as chaos.
    if (config.delay_max_us <= 0)
      throw std::invalid_argument(
          "ChaosConfig: delay_rate > 0 requires delay_max_us > 0 (got delay_max_us=" +
          std::to_string(config.delay_max_us) + ")");
    plan_.reorder(config.delay_rate, config.delay_max_us);
  }
  for (const ChaosConfig::Partition& p : config.partitions)
    plan_.partition_cut(p.island, p.since_us, p.heal_us);
  // Only the sender side injects chaos, so a blackhole whose `from` is not
  // this node lives in some other node's injector — skip it here.
  for (const ChaosConfig::Blackhole& b : config.blackholes) {
    if (b.from != self) continue;
    plan_.drop_if([b](sim::Tick now, consensus::ProcessId, consensus::ProcessId to) {
      return to == b.to && now >= b.since_us && (b.heal_us < 0 || now < b.heal_us);
    });
  }
  if (geo_ != nullptr && (self < 0 || static_cast<std::size_t>(self) >= geo_regions_.size()))
    throw std::invalid_argument("ChaosConfig: geo region map does not cover replica " +
                                std::to_string(self));
}

std::int64_t ChaosInjector::geo_base_delay_us(consensus::ProcessId to) const {
  if (geo_ == nullptr) return 0;
  if (to < 0 || static_cast<std::size_t>(to) >= geo_regions_.size())
    throw std::invalid_argument("ChaosConfig: geo region map does not cover replica " +
                                std::to_string(to));
  return geo_->one_way_us(geo_regions_[static_cast<std::size_t>(self_)],
                          geo_regions_[static_cast<std::size_t>(to)]);
}

faults::FaultPlan::Decision ChaosInjector::decide(std::int64_t now_us,
                                                  consensus::ProcessId to) {
  faults::FaultPlan::Decision d = plan_.on_send(now_us, self_, to, nullptr);
  if (geo_ == nullptr || d.dropped()) return d;
  std::int64_t delay = geo_base_delay_us(to);
  if (const std::int64_t jitter = geo_->jitter_us(); jitter > 0) {
    auto it = geo_jitter_.find(to);
    if (it == geo_jitter_.end())
      it = geo_jitter_
               .emplace(to, util::Rng{util::splitmix64(geo_seed_, static_cast<std::uint64_t>(to))})
               .first;
    delay += it->second.next_in(0, jitter);
  }
  d.extra_delay += delay;
  return d;
}

}  // namespace twostep::transport
