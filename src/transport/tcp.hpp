// Framed non-blocking TCP on top of the EventLoop.
//
// Three pieces:
//   - free helpers to bind a listener / start a non-blocking connect,
//   - Connection: one established socket speaking the wire.hpp framing,
//     with buffered non-blocking writes (EPOLLOUT armed only while a
//     backlog exists) and incremental reads through a FrameParser,
//   - PeerLink: the replica-to-replica edge.  It owns the *outbound*
//     connection to one peer, redialling forever with exponential backoff
//     (10 ms doubling to 1 s) and queueing a bounded number of frames
//     while disconnected.  Inbound connections from peers are accepted
//     separately by the node runtime and used only for receiving, so each
//     ordered stream has exactly one writer.
//
// Everything here is loop-thread-only except TransportStats, whose relaxed
// atomics may be read from any thread (the CLI prints them live).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consensus/types.hpp"
#include "obs/histogram.hpp"
#include "transport/chaos.hpp"
#include "transport/event_loop.hpp"
#include "transport/wire.hpp"
#include "util/rng.hpp"

namespace twostep::transport {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const { return host + ":" + std::to_string(port); }
};

/// Binds a non-blocking listening socket (SO_REUSEADDR, backlog 128).
/// Port 0 picks an ephemeral port; the actual port is written back into
/// `ep.port`.  Throws std::system_error on failure.
int bind_listener(Endpoint& ep);

/// Starts a non-blocking connect to `ep`.  Returns the fd; the connection
/// is usually still in progress (EINPROGRESS) — wait for EPOLLOUT and check
/// SO_ERROR.  Throws std::system_error only on immediate local failure.
int dial_nonblocking(const Endpoint& ep);

/// Relaxed-atomic transport counters, safe to read from any thread.
struct TransportStats {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> frames_dropped{0};  ///< overflow of a disconnected PeerLink queue
  std::atomic<std::uint64_t> connect_timeouts{0};  ///< dial attempts cut off by the timer
  std::atomic<std::uint64_t> chaos_dropped{0};     ///< frames eaten by the ChaosInjector
  std::atomic<std::uint64_t> chaos_duplicated{0};  ///< extra copies it sent
  std::atomic<std::uint64_t> chaos_delayed{0};     ///< frames it parked on a timer

  /// Optional occupancy probes (see obs/histogram.hpp; install before the
  /// loop runs, null = off).  Every queued frame samples the connection's
  /// unsent write-buffer bytes / the PeerLink's disconnected-queue depth,
  /// so a scrape can see backpressure building, not just throughput.
  obs::LogHistogram* outbox_bytes = nullptr;
  obs::LogHistogram* pending_frames = nullptr;
};

/// One established socket speaking the framed protocol.  Loop-thread only.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using FrameHandler = std::function<void(Frame&&)>;
  using CloseHandler = std::function<void()>;

  Connection(EventLoop& loop, int fd, TransportStats* stats);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers with the loop and starts dispatching.  `on_frame` fires per
  /// complete frame; `on_close` fires exactly once, on EOF, I/O error, or
  /// framing violation (not on an explicit local close()).
  void start(FrameHandler on_frame, CloseHandler on_close);

  /// Queues one frame into the chunked outbox.  The actual write is
  /// deferred to the end of the current loop round, so every frame queued
  /// during one dispatch round leaves in a single vectored flush
  /// (sendmsg over the chunk list) instead of one send() per frame.
  /// Encoding appends straight into the tail chunk — no per-frame buffer
  /// allocation on the steady-state path.  No-op after close.
  void send_frame(FrameKind kind, std::span<const std::uint8_t> payload);

  /// Deregisters and closes the socket.  Does NOT invoke on_close.
  void close();

  [[nodiscard]] bool closed() const noexcept { return fd_ < 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Bytes queued but not yet written to the socket.
  [[nodiscard]] std::size_t unsent_bytes() const noexcept { return unsent_bytes_; }

  /// Chunk granularity of the outbox: frames pack back-to-back into a
  /// chunk until it reaches this size, then a new chunk starts.
  static constexpr std::size_t kChunkTarget = 64 * 1024;

 private:
  void handle_events(std::uint32_t events);
  void handle_readable();
  /// Writes the backlog (vectored); returns false if the connection died.
  bool flush();
  /// Arms a round-end flush if one is not already scheduled.
  void schedule_flush();
  void update_interest();
  void fail();  ///< close + fire on_close once

  EventLoop& loop_;
  int fd_;
  TransportStats* stats_;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  FrameParser parser_;
  std::deque<std::vector<std::uint8_t>> outbox_;  ///< unsent chunks, frames packed
  std::size_t head_sent_ = 0;         ///< bytes of outbox_.front() already written
  std::size_t unsent_bytes_ = 0;      ///< total queued bytes not yet written
  std::vector<std::uint8_t> spare_;   ///< recycled chunk (steady-state: no alloc)
  bool flush_scheduled_ = false;      ///< round-end flush pending
  bool want_write_ = false;           ///< EPOLLOUT currently armed
};

/// Self-healing outbound link to one peer replica.  Loop-thread only.
class PeerLink {
 public:
  /// `self` is announced in the Hello frame after every (re)connect.
  PeerLink(EventLoop& loop, consensus::ProcessId self, consensus::ProcessId peer,
           Endpoint target, TransportStats* stats);

  /// Starts the first connection attempt.
  void start();

  /// Installs the chaos stage consulted by send_frame (null to disable).
  /// The injector must outlive the link.  Hello frames are not affected:
  /// they are sent by the link itself, below this entry point.
  void set_chaos(ChaosInjector* chaos) noexcept { chaos_ = chaos; }

  /// Invoked on the loop thread each time the outbound connection
  /// (re)establishes, after the queued frames have been flushed.  The
  /// disconnected-side queue is bounded, so anything broadcast during a
  /// long outage may be gone — this hook is where the owner resends state
  /// the peer must not miss (the runtime's Decide anti-entropy).
  void set_on_connected(std::function<void()> on_connected) {
    on_connected_ = std::move(on_connected);
  }

  /// Sends when connected; otherwise queues up to kMaxPending frames
  /// (oldest dropped first — consensus protocols tolerate loss, and
  /// retransmission is the ballot timer's job, not the transport's).
  /// With a ChaosInjector installed the frame may instead be dropped,
  /// duplicated, or parked on a timer before entering that pipeline.
  void send_frame(FrameKind kind, std::vector<std::uint8_t> payload);

  /// Stops reconnecting and closes any live connection.
  void shutdown();

  /// Whether the outbound connection is currently established.  The only
  /// PeerLink member safe to read off the loop thread (relaxed atomic) —
  /// tests and the CLI use it to wait for the mesh to form.
  [[nodiscard]] bool connected() const noexcept { return up_.load(std::memory_order_relaxed); }
  [[nodiscard]] consensus::ProcessId peer() const noexcept { return peer_; }

  static constexpr std::size_t kMaxPending = 1024;
  static constexpr std::int64_t kBackoffMinUs = 10'000;     ///< 10 ms
  static constexpr std::int64_t kBackoffMaxUs = 1'000'000;  ///< 1 s
  static constexpr std::int64_t kConnectTimeoutUs = 1'000'000;  ///< per dial attempt

 private:
  void attempt_connect();
  void on_dial_result(int fd, std::uint32_t events);
  void on_dial_timeout();
  void established(int fd);
  void schedule_retry();
  void cancel_connect_timer();
  /// The post-chaos pipeline: send on the live connection or queue.
  void enqueue_frame(FrameKind kind, std::vector<std::uint8_t> payload);

  EventLoop& loop_;
  consensus::ProcessId self_;
  consensus::ProcessId peer_;
  Endpoint target_;
  TransportStats* stats_;
  ChaosInjector* chaos_ = nullptr;
  std::shared_ptr<Connection> conn_;
  std::deque<std::pair<FrameKind, std::vector<std::uint8_t>>> pending_;
  std::int64_t backoff_us_ = kBackoffMinUs;
  int dial_fd_ = -1;        ///< connect in progress
  std::uint64_t retry_timer_ = 0;
  std::uint64_t connect_timer_ = 0;  ///< per-attempt dial timeout
  util::Rng rng_;  ///< backoff jitter; seeded from (self, peer)
  std::function<void()> on_connected_;
  std::atomic<bool> up_{false};
  bool stopped_ = false;
  bool ever_connected_ = false;
};

}  // namespace twostep::transport
