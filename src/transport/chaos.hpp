// Chaos injection for real TCP links.
//
// The simulator's fault vocabulary (faults::FaultPlan: seeded drop /
// duplicate / delay rates and timed partitions) applied verbatim to the
// live transport: every outbound protocol frame on a PeerLink is submitted
// to a per-node ChaosInjector before it reaches the socket, and the plan's
// Decision is executed with real means — a drop never writes, a duplicate
// writes extra copies, a delay parks the frame on the event-loop timer
// heap.  Times are loop microseconds (sim::Tick at 1 tick = 1 µs), so a
// partition window written for the simulator reads identically here.
//
// Only the *sender* side of each directed link injects (the inbound
// connection applies no chaos), so a drop rate r yields per-link loss r,
// not 1-(1-r)^2, and the numbers line up with the simulated R1 chaos runs.
// Hello frames are exempt: chaos models a lossy network, not a broken
// handshake — dropping the peer-id announcement would silently blind the
// receiving node to an otherwise healthy connection.
//
// Loop-thread only, like everything else on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "consensus/types.hpp"
#include "faults/fault_plan.hpp"
#include "geo/latency_matrix.hpp"
#include "util/rng.hpp"

namespace twostep::transport {

/// Declarative chaos parameters, shared by every node of a cluster; each
/// node derives its own deterministic stream with splitmix64(seed, self).
struct ChaosConfig {
  double drop_rate = 0;       ///< P(frame never sent)
  double duplicate_rate = 0;  ///< P(frame sent twice)
  double delay_rate = 0;      ///< P(frame delayed by uniform [1, delay_max_us])
  std::int64_t delay_max_us = 0;

  /// Timed cut partition: frames between `island` and its complement are
  /// dropped during [since_us, heal_us) of the sender's loop clock;
  /// heal_us < 0 never heals.
  struct Partition {
    std::vector<consensus::ProcessId> island;
    std::int64_t since_us = 0;
    std::int64_t heal_us = -1;
  };
  std::vector<Partition> partitions;

  /// Timed blackhole on ONE directed link: every frame from `from` to `to`
  /// is dropped during [since_us, heal_us) of the sender's loop clock;
  /// heal_us < 0 never heals.  The asymmetric sibling of Partition —
  /// `from` still hears `to`, so a suspicion raised through the dead
  /// direction must survive live traffic the other way.
  struct Blackhole {
    consensus::ProcessId from = 0;
    consensus::ProcessId to = 0;
    std::int64_t since_us = 0;
    std::int64_t heal_us = -1;
  };
  std::vector<Blackhole> blackholes;

  /// WAN emulation: every non-dropped frame from p to q gains the matrix's
  /// one-way delay geo->one_way_us(geo_regions[p], geo_regions[q]) plus a
  /// per-directed-link uniform jitter in [0, geo->jitter_us()].  The delay
  /// stacks on top of the probabilistic delay_rate rule.  geo_regions maps
  /// replica index -> region index and must cover every replica.
  std::shared_ptr<const geo::LatencyMatrix> geo;
  std::vector<int> geo_regions;

  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const noexcept {
    return drop_rate > 0 || duplicate_rate > 0 || delay_rate > 0 || !partitions.empty() ||
           !blackholes.empty() || geo != nullptr;
  }
};

/// One node's chaos decision stream: a seeded faults::FaultPlan consulted
/// by every outbound PeerLink of that node.  Loop-thread only.
class ChaosInjector {
 public:
  /// `self` salts the seed so each node draws an independent stream from
  /// the same ChaosConfig.  Throws std::invalid_argument for configs that
  /// would silently do nothing (delay_rate > 0 with delay_max_us <= 0) or
  /// a geo matrix whose region map does not cover `self`.
  ChaosInjector(const ChaosConfig& config, consensus::ProcessId self);

  /// The fate of one frame sent now from `self` to `to`.
  faults::FaultPlan::Decision decide(std::int64_t now_us, consensus::ProcessId to);

  /// The base (jitter-free) geo delay self -> to, 0 without a matrix.
  /// Throws std::invalid_argument if `to` is outside the region map.
  [[nodiscard]] std::int64_t geo_base_delay_us(consensus::ProcessId to) const;

 private:
  faults::FaultPlan plan_;
  consensus::ProcessId self_;
  std::shared_ptr<const geo::LatencyMatrix> geo_;
  std::vector<int> geo_regions_;
  std::uint64_t geo_seed_ = 0;  ///< splitmix64(seed, self): root of per-link jitter streams
  /// One jitter stream per destination, seeded splitmix64(geo_seed_, to):
  /// the delay sequence on a directed link is a pure function of
  /// (config, self, to), however traffic to other peers interleaves.
  std::unordered_map<consensus::ProcessId, util::Rng> geo_jitter_;
};

}  // namespace twostep::transport
