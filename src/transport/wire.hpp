// Versioned length-prefixed framing for the TCP transport.
//
// Every frame on the wire is an 8-byte header followed by a payload:
//
//   offset  size  field
//   0       2     magic "TS"
//   2       1     protocol version (currently 1)
//   3       1     frame kind (FrameKind)
//   4       4     payload length, u32 little-endian (<= kMaxPayload)
//
// The payload body of kCore/kSlot/kFastPaxos/kClientRequest/kClientReply
// frames is the corresponding codec encoding; kHello carries the sender's
// process id as a codec varint and is the first frame on every peer
// connection (it is how an accepting replica learns who dialled in).
//
// FrameParser is an incremental push parser: feed it whatever recv()
// returned and it emits zero or more complete frames.  Any violation
// (bad magic, unknown version, oversize length) is sticky — the caller
// must drop the connection, because stream framing cannot resync.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "consensus/types.hpp"

namespace twostep::transport {

inline constexpr std::uint8_t kMagic0 = 'T';
inline constexpr std::uint8_t kMagic1 = 'S';
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::size_t kMaxPayload = 1 << 20;  ///< 1 MiB frame cap

enum class FrameKind : std::uint8_t {
  kHello = 1,          ///< peer identification: varint process id
  kCore = 2,           ///< codec::encode(core::Message)
  kSlot = 3,           ///< codec::encode(rsm::SlotMsg)
  kFastPaxos = 4,      ///< codec::encode(fastpaxos::Message)
  kClientRequest = 5,  ///< codec::encode(codec::ClientRequest)
  kClientReply = 6,    ///< codec::encode(codec::ClientReply)
  kTraced = 7,         ///< codec::encode(codec::TracedFrame): trace-wrapped protocol frame
  kStatsRequest = 8,   ///< codec::encode(codec::StatsRequest): metrics scrape
  kStatsReply = 9,     ///< codec::encode(codec::StatsReply)
  kBatch = 10,         ///< codec::encode_batch(rsm batch sidecar message)
  kSnapshotOffer = 11,    ///< codec::encode(codec::SnapshotOffer): "I hold a snapshot"
  kSnapshotRequest = 12,  ///< codec::encode(codec::SnapshotRequest): chunked fetch
  kSnapshotChunk = 13,    ///< codec::encode(codec::SnapshotChunk)
  kEPaxos = 14,           ///< codec::encode(epaxos::Message)
  kConfig = 15,           ///< codec::encode_config(rsm config sidecar message)
  kHeartbeat = 16,        ///< codec::encode(codec::Heartbeat): failure-detector ping
  kHandover = 17,         ///< codec::encode(codec::Handover): leadership announcement
  kConfigCmd = 18,        ///< codec::encode(codec::ConfigCommand): admin join/leave verb
  kCatchup = 19,          ///< codec::encode(codec::Catchup): applied-prefix gossip
};

/// True iff `kind` is one of the FrameKind enumerators.
[[nodiscard]] bool frame_kind_valid(std::uint8_t kind) noexcept;

/// One parsed frame: kind + owning payload bytes.
struct Frame {
  FrameKind kind{};
  std::vector<std::uint8_t> payload;
};

/// Appends header + payload for one frame to `out` (scatter-free sends).
void append_frame(std::vector<std::uint8_t>& out, FrameKind kind,
                  std::span<const std::uint8_t> payload);

/// Convenience: a freshly allocated single frame.
[[nodiscard]] std::vector<std::uint8_t> make_frame(FrameKind kind,
                                                   std::span<const std::uint8_t> payload);

/// Body of a kHello frame.
[[nodiscard]] std::vector<std::uint8_t> encode_hello(consensus::ProcessId id);
[[nodiscard]] std::optional<consensus::ProcessId> decode_hello(
    std::span<const std::uint8_t> payload);

/// Incremental frame parser over a byte stream (one per connection).
class FrameParser {
 public:
  /// Appends raw stream bytes.  Returns false once the stream is corrupt
  /// (error() explains why); further feeds are ignored.
  bool feed(std::span<const std::uint8_t> data);

  /// Pops the next complete frame, if any.
  std::optional<Frame> next();

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  bool check_header();

  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  ///< bytes of buf_ already handed out
  bool failed_ = false;
  std::string error_;
};

}  // namespace twostep::transport
