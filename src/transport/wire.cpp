#include "transport/wire.hpp"

#include <limits>

#include "codec/codec.hpp"

namespace twostep::transport {

bool frame_kind_valid(std::uint8_t kind) noexcept {
  return kind >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kCatchup);
}

void append_frame(std::vector<std::uint8_t>& out, FrameKind kind,
                  std::span<const std::uint8_t> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + kHeaderSize + payload.size());
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> make_frame(FrameKind kind, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  append_frame(out, kind, payload);
  return out;
}

std::vector<std::uint8_t> encode_hello(consensus::ProcessId id) {
  codec::Writer w;
  w.put_i64(id);
  return std::move(w).take();
}

std::optional<consensus::ProcessId> decode_hello(std::span<const std::uint8_t> payload) {
  codec::Reader r{payload};
  const std::int64_t id = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (id < 0 || id > std::numeric_limits<consensus::ProcessId>::max()) return std::nullopt;
  return static_cast<consensus::ProcessId>(id);
}

bool FrameParser::feed(std::span<const std::uint8_t> data) {
  if (failed_) return false;
  // Compact once the consumed prefix dominates, so the buffer stays small
  // on long-lived connections.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
  return check_header();
}

bool FrameParser::check_header() {
  if (failed_) return false;
  if (buf_.size() - consumed_ < kHeaderSize) return true;
  const std::uint8_t* h = buf_.data() + consumed_;
  if (h[0] != kMagic0 || h[1] != kMagic1) {
    failed_ = true;
    error_ = "bad frame magic";
    return false;
  }
  if (h[2] != kWireVersion) {
    failed_ = true;
    error_ = "unsupported wire version " + std::to_string(int{h[2]});
    return false;
  }
  if (!frame_kind_valid(h[3])) {
    failed_ = true;
    error_ = "unknown frame kind " + std::to_string(int{h[3]});
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(h[4]) |
                            (static_cast<std::uint32_t>(h[5]) << 8) |
                            (static_cast<std::uint32_t>(h[6]) << 16) |
                            (static_cast<std::uint32_t>(h[7]) << 24);
  if (len > kMaxPayload) {
    failed_ = true;
    error_ = "frame payload " + std::to_string(len) + " exceeds cap";
    return false;
  }
  return true;
}

std::optional<Frame> FrameParser::next() {
  if (failed_) return std::nullopt;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + consumed_;
  const std::uint32_t len = static_cast<std::uint32_t>(h[4]) |
                            (static_cast<std::uint32_t>(h[5]) << 8) |
                            (static_cast<std::uint32_t>(h[6]) << 16) |
                            (static_cast<std::uint32_t>(h[7]) << 24);
  if (avail < kHeaderSize + len) return std::nullopt;
  Frame f;
  f.kind = static_cast<FrameKind>(h[3]);
  f.payload.assign(h + kHeaderSize, h + kHeaderSize + len);
  consumed_ += kHeaderSize + len;
  // Validate the header that is now at the front (sticky failure on junk).
  check_header();
  return f;
}

}  // namespace twostep::transport
