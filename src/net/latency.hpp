// Latency models for the simulated network.
//
// The paper's system model is partial synchrony (Dwork-Lynch-Stockmeyer):
// after an unknown global stabilization time GST, every message reaches its
// destination within a known bound Δ.  Its two-step definitions are stated
// over E-faulty *synchronous* runs (Definition 2) in which messages sent in
// round k are delivered precisely at the start of round k+1.  Each latency
// model below realizes one regime; the network asks the model for the
// absolute delivery time of every message.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "consensus/types.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace twostep::net {

/// Strategy interface deciding when a message sent now from `from` arrives
/// at `to`.  Implementations must return a time >= now (reliable links never
/// lose messages, so there is no "never" answer).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Absolute delivery time for a message sent at `now`.
  [[nodiscard]] virtual sim::Tick delivery_time(sim::Tick now, consensus::ProcessId from,
                                                consensus::ProcessId to,
                                                util::Rng& rng) const = 0;

  /// The post-GST bound Δ under this model, used by protocols to set timers
  /// and by monitors to evaluate the two-step condition (decide by 2Δ).
  [[nodiscard]] virtual sim::Tick delta() const = 0;
};

/// Definition 2 rounds: a message sent during [kΔ, (k+1)Δ) is delivered at
/// exactly (k+1)Δ.  Local computation is instantaneous, so in these runs
/// every process takes its round-k step at time kΔ.
class SynchronousRounds final : public LatencyModel {
 public:
  explicit SynchronousRounds(sim::Tick delta) : delta_(delta) {
    if (delta <= 0) throw std::invalid_argument("SynchronousRounds: delta must be > 0");
  }

  [[nodiscard]] sim::Tick delivery_time(sim::Tick now, consensus::ProcessId,
                                        consensus::ProcessId, util::Rng&) const override {
    return (now / delta_ + 1) * delta_;
  }

  [[nodiscard]] sim::Tick delta() const override { return delta_; }

 private:
  sim::Tick delta_;
};

/// Every message takes exactly `delay` ticks (delay <= Δ).
class FixedDelay final : public LatencyModel {
 public:
  explicit FixedDelay(sim::Tick delay, sim::Tick delta = 0)
      : delay_(delay), delta_(delta == 0 ? delay : delta) {
    if (delay <= 0 || delta_ < delay)
      throw std::invalid_argument("FixedDelay: need 0 < delay <= delta");
  }

  [[nodiscard]] sim::Tick delivery_time(sim::Tick now, consensus::ProcessId,
                                        consensus::ProcessId, util::Rng&) const override {
    return now + delay_;
  }

  [[nodiscard]] sim::Tick delta() const override { return delta_; }

 private:
  sim::Tick delay_;
  sim::Tick delta_;
};

/// Partial synchrony: before GST the adversary may delay a message up to
/// `chaos_max` ticks, but (per the DLS model) every message is delivered by
/// max(send_time, GST) + Δ.  After GST, delays are uniform in [1, Δ].
class PartialSynchrony final : public LatencyModel {
 public:
  PartialSynchrony(sim::Tick gst, sim::Tick delta, sim::Tick chaos_max)
      : gst_(gst), delta_(delta), chaos_max_(chaos_max) {
    if (gst < 0 || delta <= 0 || chaos_max < delta)
      throw std::invalid_argument("PartialSynchrony: need gst >= 0, delta > 0, chaos >= delta");
  }

  [[nodiscard]] sim::Tick delivery_time(sim::Tick now, consensus::ProcessId,
                                        consensus::ProcessId, util::Rng& rng) const override {
    if (now >= gst_) return now + rng.next_in(1, delta_);
    const sim::Tick chaotic = now + rng.next_in(1, chaos_max_);
    const sim::Tick bound = std::max(now, gst_) + delta_;
    return std::min(chaotic, bound);
  }

  [[nodiscard]] sim::Tick delta() const override { return delta_; }

 private:
  sim::Tick gst_;
  sim::Tick delta_;
  sim::Tick chaos_max_;
};

/// Wide-area deployment: a per-pair one-way latency matrix (ticks are
/// interpreted as milliseconds) plus bounded uniform jitter.  Used by the
/// WAN experiments that reproduce the paper's "hundreds of milliseconds per
/// command" motivation.
class WanMatrix final : public LatencyModel {
 public:
  /// `one_way[i][j]` is the base one-way latency from site i to site j.
  /// Diagonal entries model local loopback and may be small but must be >0.
  WanMatrix(std::vector<std::vector<sim::Tick>> one_way, sim::Tick jitter);

  [[nodiscard]] sim::Tick delivery_time(sim::Tick now, consensus::ProcessId from,
                                        consensus::ProcessId to, util::Rng& rng) const override;

  [[nodiscard]] sim::Tick delta() const override { return delta_; }

  [[nodiscard]] int sites() const noexcept { return static_cast<int>(one_way_.size()); }

  /// A 9-region matrix with realistic public-cloud inter-region one-way
  /// latencies (milliseconds), used by the WAN benches and examples.
  static WanMatrix nine_regions(sim::Tick jitter = 2);

  /// Restriction of this matrix to the given subset of sites.
  [[nodiscard]] WanMatrix restrict(const std::vector<int>& sites) const;

  /// The raw one-way table (ticks = milliseconds) and jitter bound; the geo
  /// subsystem converts these into live-link delay matrices so the emulated
  /// WAN and the simulated F2 runs share one set of numbers.
  [[nodiscard]] const std::vector<std::vector<sim::Tick>>& one_way() const noexcept {
    return one_way_;
  }
  [[nodiscard]] sim::Tick jitter() const noexcept { return jitter_; }

 private:
  std::vector<std::vector<sim::Tick>> one_way_;
  sim::Tick jitter_;
  sim::Tick delta_;
};

}  // namespace twostep::net
