// Reliable-link abstraction over a lossy simulated network.
//
// The paper's protocols assume Definition 2's reliable links; a
// faults::FaultPlan deliberately violates that assumption.  ReliableChannel
// restores it with the standard machinery real systems use: positive acks,
// retransmission on timeout with exponential backoff (plus deterministic
// jitter from its own seeded Rng, so synchronized senders do not stay in
// lock-step), and receiver-side duplicate suppression keyed on per-message
// sequence numbers — so every protocol runs unmodified under chaos.
//
// The channel wraps a Network<Msg> from the outside: data messages travel
// through Network::send_tagged (the identical fault/trace/latency pipeline,
// tagged with the channel's sequence number) and are handed back via the
// network's delivery tap.  Acks are simulator-internal control signals: they
// carry no payload, but their timing and their loss are governed by the same
// fault plan and latency model via Network::control_delivery_time, so an ack
// lost to a drop or partition triggers a (suppressed-as-duplicate)
// retransmission exactly as it would on a real link.
//
// Determinism: backoff jitter is the only randomness and comes from the
// channel's own Rng, seeded from the run seed — runs remain pure functions
// of (config, seed) with the channel engaged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"

namespace twostep::net {

/// Retransmission tuning.  Zero values are resolved against the network's
/// latency bound at construction, so the defaults adapt to the model.
struct ReliableConfig {
  sim::Tick rto = 0;        ///< initial retransmission timeout; 0 -> 2 * delta
  double backoff = 2.0;     ///< multiplier applied per retry
  sim::Tick rto_max = 0;    ///< backoff ceiling; 0 -> 16 * rto
  sim::Tick jitter = -1;    ///< max extra ticks per arm; -1 -> rto / 8, 0 -> none
  int max_retries = 12;     ///< give up (and count) after this many retransmits
  std::uint64_t seed = 0;   ///< jitter stream; 0 -> derived from the run seed
};

template <typename Msg>
class ReliableChannel {
 public:
  using Handler = typename Network<Msg>::Handler;

  ReliableChannel(Network<Msg>& net, ReliableConfig config = {})
      : net_(net),
        handlers_(static_cast<std::size_t>(net.size())),
        config_(config),
        rng_(config.seed == 0 ? 1 : config.seed) {
    if (config_.rto <= 0) config_.rto = 2 * net_.delta();
    if (config_.rto_max <= 0) config_.rto_max = 16 * config_.rto;
    if (config_.jitter < 0) config_.jitter = config_.rto / 8;
    if (config_.backoff < 1.0) throw std::invalid_argument("ReliableChannel: backoff must be >= 1");
    if (config_.max_retries < 0)
      throw std::invalid_argument("ReliableChannel: max_retries must be >= 0");
    net_.set_delivery_tap([this](consensus::ProcessId from, consensus::ProcessId to,
                                 const Msg& msg, std::uint64_t tag) {
      on_data(from, to, msg, tag);
    });
  }

  /// Installs the receive handler for process p.  Also forwards to the
  /// underlying network so untagged (raw) sends keep working side by side.
  void set_handler(consensus::ProcessId p, Handler h) {
    handlers_.at(static_cast<std::size_t>(p)) = h;
    net_.set_handler(p, std::move(h));
  }

  /// Sends msg from -> to with at-least-once retransmission and
  /// exactly-once delivery to the receiver's handler.
  void send(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg) {
    const std::uint64_t seq = ++next_seq_;
    auto [it, fresh] = outstanding_.emplace(seq, Pending{from, to, msg, config_.rto, 0});
    (void)fresh;
    net_.send_tagged(from, to, msg, seq);
    arm(seq, it->second.rto);
  }

  [[nodiscard]] const ReliableConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t retransmits() const noexcept { return retransmits_; }
  [[nodiscard]] std::uint64_t acks_delivered() const noexcept { return acks_; }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept { return dup_suppressed_; }
  /// Messages abandoned after max_retries (receiver crashed or unreachable).
  [[nodiscard]] std::uint64_t gave_up() const noexcept { return gave_up_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return outstanding_.size(); }

 private:
  struct Pending {
    consensus::ProcessId from;
    consensus::ProcessId to;
    Msg msg;
    sim::Tick rto;
    int retries;
  };

  void arm(std::uint64_t seq, sim::Tick rto) {
    const sim::Tick extra = config_.jitter > 0 ? rng_.next_in(0, config_.jitter) : 0;
    net_.simulator().schedule_after(rto + extra, [this, seq] { on_timeout(seq); });
  }

  void on_timeout(std::uint64_t seq) {
    const auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;  // acked while the timer was armed
    Pending& p = it->second;
    if (net_.crashed(p.from) || p.retries >= config_.max_retries) {
      ++gave_up_;
      if (net_.probe().metrics) net_.probe().metrics->counter("reliable.gave_up").add();
      outstanding_.erase(it);
      return;
    }
    ++p.retries;
    ++retransmits_;
    const obs::Probe& probe = net_.probe();
    if (probe.metrics) probe.metrics->counter("reliable.retransmits").add();
    probe.trace([&] {
      return obs::TraceEvent{obs::EventKind::kRetransmit, net_.simulator().now(), p.from, p.to,
                             -1,       {},       obs::message_label(p.msg),
                             static_cast<std::int64_t>(p.retries)};
    });
    net_.send_tagged(p.from, p.to, p.msg, seq);
    p.rto = std::min(config_.rto_max,
                     static_cast<sim::Tick>(static_cast<double>(p.rto) * config_.backoff));
    arm(seq, p.rto);
  }

  /// Delivery tap: runs at the receiver for every arriving (possibly
  /// duplicated, possibly retransmitted) copy.  Always acks — the sender may
  /// have missed an earlier ack — but hands only the first copy to the
  /// application handler.
  void on_data(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg,
               std::uint64_t seq) {
    const bool fresh = seen_.insert(seq).second;
    if (!fresh) {
      ++dup_suppressed_;
      if (net_.probe().metrics) net_.probe().metrics->counter("reliable.dup_suppressed").add();
    }
    // Ack travels the reverse path under the same faults and latency.
    if (const auto when = net_.control_delivery_time(to, from)) {
      net_.simulator().schedule_at(*when, [this, seq] {
        if (outstanding_.erase(seq) > 0) {
          ++acks_;
          if (net_.probe().metrics) net_.probe().metrics->counter("reliable.acks").add();
        }
      });
    }
    if (fresh) {
      auto& handler = handlers_.at(static_cast<std::size_t>(to));
      if (handler) handler(from, msg);
    }
  }

  Network<Msg>& net_;
  std::vector<Handler> handlers_;
  ReliableConfig config_;
  util::Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, Pending> outstanding_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t gave_up_ = 0;
};

}  // namespace twostep::net
