#include "net/latency.hpp"

#include <algorithm>

namespace twostep::net {

WanMatrix::WanMatrix(std::vector<std::vector<sim::Tick>> one_way, sim::Tick jitter)
    : one_way_(std::move(one_way)), jitter_(jitter) {
  if (one_way_.empty()) throw std::invalid_argument("WanMatrix: empty matrix");
  if (jitter_ < 0) throw std::invalid_argument("WanMatrix: negative jitter");
  sim::Tick max_latency = 0;
  for (const auto& row : one_way_) {
    if (row.size() != one_way_.size())
      throw std::invalid_argument("WanMatrix: matrix must be square");
    for (const sim::Tick cell : row) {
      if (cell <= 0) throw std::invalid_argument("WanMatrix: latencies must be > 0");
      max_latency = std::max(max_latency, cell);
    }
  }
  delta_ = max_latency + jitter_;
}

sim::Tick WanMatrix::delivery_time(sim::Tick now, consensus::ProcessId from,
                                   consensus::ProcessId to, util::Rng& rng) const {
  const auto n = static_cast<consensus::ProcessId>(one_way_.size());
  if (from < 0 || from >= n || to < 0 || to >= n)
    throw std::out_of_range("WanMatrix: site index out of range");
  const sim::Tick base = one_way_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  const sim::Tick jitter = jitter_ > 0 ? rng.next_in(0, jitter_) : 0;
  return now + base + jitter;
}

WanMatrix WanMatrix::nine_regions(sim::Tick jitter) {
  // One-way latencies (ms) between nine public-cloud regions, ordered:
  // 0 us-east (Virginia), 1 us-west (Oregon), 2 eu-west (Ireland),
  // 3 eu-central (Frankfurt), 4 ap-northeast (Tokyo), 5 ap-southeast
  // (Singapore), 6 ap-south (Mumbai), 7 sa-east (Sao Paulo),
  // 8 au-southeast (Sydney).  Values are RTT/2 rounded from published
  // inter-region measurements; exact numbers only shape magnitudes.
  const std::vector<std::vector<sim::Tick>> m = {
      //  use  usw  euw  euc  jpn  sgp  ind  bra  aus
      {1, 35, 38, 45, 75, 105, 91, 57, 100},   // us-east
      {35, 1, 65, 72, 50, 82, 110, 87, 70},    // us-west
      {38, 65, 1, 12, 105, 87, 60, 92, 130},   // eu-west
      {45, 72, 12, 1, 112, 80, 55, 100, 137},  // eu-central
      {75, 50, 105, 112, 1, 35, 60, 128, 52},  // ap-northeast
      {105, 82, 87, 80, 35, 1, 27, 160, 46},   // ap-southeast
      {91, 110, 60, 55, 60, 27, 1, 150, 72},   // ap-south
      {57, 87, 92, 100, 128, 160, 150, 1, 157},// sa-east
      {100, 70, 130, 137, 52, 46, 72, 157, 1}, // au-southeast
  };
  return WanMatrix(m, jitter);
}

WanMatrix WanMatrix::restrict(const std::vector<int>& sites) const {
  std::vector<std::vector<sim::Tick>> sub(sites.size(), std::vector<sim::Tick>(sites.size()));
  for (std::size_t i = 0; i < sites.size(); ++i)
    for (std::size_t j = 0; j < sites.size(); ++j) {
      const auto a = static_cast<std::size_t>(sites[i]);
      const auto b = static_cast<std::size_t>(sites[j]);
      if (a >= one_way_.size() || b >= one_way_.size())
        throw std::out_of_range("WanMatrix::restrict: site out of range");
      sub[i][j] = one_way_[a][b];
    }
  return WanMatrix(std::move(sub), jitter_);
}

}  // namespace twostep::net
