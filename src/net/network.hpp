// Simulated message-passing network.
//
// Network<Msg> connects n endpoints through a LatencyModel on top of the
// discrete-event simulator.  It implements crash-stop failures (a crashed
// process neither sends nor receives) with optional restarts, full message
// tracing (used by the lower-bound splicing harness), and a first-class
// fault-injection stage: a faults::FaultPlan attached at construction sees
// every message before it is scheduled and may drop it, duplicate it, delay
// it past later messages, or sever it with a partition.  Links are reliable
// exactly when no plan is attached (the paper's Definition 2 regime); under
// a lossy plan, net::ReliableChannel restores the reliable-link abstraction
// via retransmission (see net/reliable.hpp).
//
// Configuration is passed at construction via NetworkConfig; the only
// supported post-construction mutation is reattach_probe (dynamic probe
// swaps mid-run).
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consensus/types.hpp"
#include "faults/fault_plan.hpp"
#include "net/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace twostep::net {

/// One traced message.  `deliver_time < 0` with `drop == kNone` means the
/// message was still in flight when the run ended; `drop` otherwise records
/// why it was lost (recipient crash, injected drop, partition).  Messages
/// whose *sender* was already crashed are not traced at all (they never
/// reached the network).
template <typename Msg>
struct TraceEntry {
  sim::Tick send_time = 0;
  sim::Tick deliver_time = -1;
  consensus::ProcessId from = consensus::kNoProcess;
  consensus::ProcessId to = consensus::kNoProcess;
  faults::DropReason drop = faults::DropReason::kNone;
  Msg payload{};
};

/// Construction-time network configuration.
struct NetworkConfig {
  /// Fault-injection stage; null keeps links reliable and costs one pointer
  /// test per send.  Shared so the caller can keep a handle for statistics
  /// and scheduled partitions.
  std::shared_ptr<faults::FaultPlan> faults;

  /// Structured observability: send/deliver/drop events to the probe's
  /// tracer, per-message-type counters (net.sent.<Type> etc.) to its
  /// registry.  Default (null) probe keeps observability off.
  obs::Probe probe{};

  /// Payload tracing (off by default: traces copy every message).
  bool trace = false;
};

template <typename Msg>
class Network {
 public:
  using Handler = std::function<void(consensus::ProcessId from, const Msg&)>;

  /// Observer for tagged sends (the reliable channel's data path): invoked
  /// at delivery time instead of the per-process handler, with the opaque
  /// tag the sender attached.
  using DeliveryTap =
      std::function<void(consensus::ProcessId from, consensus::ProcessId to, const Msg&,
                         std::uint64_t tag)>;

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> model, int n,
          std::uint64_t seed = 1, NetworkConfig config = {})
      : simulator_(simulator),
        model_(std::move(model)),
        handlers_(static_cast<std::size_t>(n)),
        crashed_(static_cast<std::size_t>(n), false),
        rng_(seed),
        faults_(std::move(config.faults)),
        probe_(config.probe),
        tracing_(config.trace) {
    if (!model_) throw std::invalid_argument("Network: null latency model");
    if (n < 1) throw std::invalid_argument("Network: need at least one process");
  }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(handlers_.size()); }
  [[nodiscard]] sim::Tick delta() const { return model_->delta(); }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] const obs::Probe& probe() const noexcept { return probe_; }
  [[nodiscard]] faults::FaultPlan* fault_plan() const noexcept { return faults_.get(); }

  /// Installs the receive handler for process p.  Must be set before any
  /// message destined to p is delivered.
  void set_handler(consensus::ProcessId p, Handler h) { handlers_.at(index(p)) = std::move(h); }

  /// Installs the tagged-delivery observer (see send_tagged).
  void set_delivery_tap(DeliveryTap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const std::vector<TraceEntry<Msg>>& trace() const { return trace_; }

  /// Swaps the probe mid-run (a default-constructed probe detaches).
  void reattach_probe(obs::Probe probe) {
    probe_ = probe;
    type_counters_.clear();
  }

  /// Sends msg from -> to.  Sending from or to a crashed process silently
  /// drops the message (crash-stop semantics).  Self-sends go through the
  /// latency model like any other message: Definition 2 delivers ALL
  /// messages sent in round k at the start of round k+1, and a protocol that
  /// wants instant access to its own state reads it locally instead of
  /// mailing itself (e.g. the fast path's |P ∪ {p_i}| counts self without a
  /// message).
  void send(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg) {
    dispatch(from, to, msg, 0, /*tagged=*/false);
  }

  /// Like send(), but delivered copies invoke the delivery tap with `tag`
  /// instead of the per-process handler.  The reliable channel uses this to
  /// correlate deliveries with its sequence numbers; tags are opaque here.
  void send_tagged(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg,
                   std::uint64_t tag) {
    dispatch(from, to, msg, tag, /*tagged=*/true);
  }

  /// Fault-adjusted delivery time for an internal control signal (the
  /// reliable channel's acks): applies the plan's partitions, drop rules
  /// and reordering plus the latency model, without counting or tracing a
  /// message.  nullopt when the signal is lost (fault or crashed endpoint).
  [[nodiscard]] std::optional<sim::Tick> control_delivery_time(consensus::ProcessId from,
                                                               consensus::ProcessId to) {
    if (crashed_.at(index(from)) || crashed_.at(index(to))) return std::nullopt;
    sim::Tick extra = 0;
    if (faults_) {
      const auto d = faults_->on_send(simulator_.now(), from, to, nullptr);
      if (d.dropped()) return std::nullopt;
      if (d.forced_time) return *d.forced_time;
      extra = d.extra_delay;
    }
    return model_->delivery_time(simulator_.now(), from, to, rng_) + extra;
  }

  /// Crashes p immediately: all undelivered messages to p are lost and p
  /// sends nothing from now on.
  void crash(consensus::ProcessId p) { crashed_.at(index(p)) = true; }

  /// Schedules a crash of p at absolute time `when`.
  void crash_at(sim::Tick when, consensus::ProcessId p) {
    simulator_.schedule_at(when, [this, p] { crash(p); });
  }

  /// Restarts a crashed p: it receives and sends again from now on.  The
  /// simulated process resumes with its retained state (crash-recovery with
  /// durable state); messages addressed to p while it was down stay lost
  /// unless a ReliableChannel retransmits them.
  void restart(consensus::ProcessId p) { crashed_.at(index(p)) = false; }

  [[nodiscard]] bool crashed(consensus::ProcessId p) const { return crashed_.at(index(p)); }

  [[nodiscard]] int crashed_count() const {
    int k = 0;
    for (const bool c : crashed_) k += c ? 1 : 0;
    return k;
  }

  [[nodiscard]] std::size_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::size_t messages_delivered() const noexcept { return delivered_; }

 private:
  static constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

  [[nodiscard]] std::size_t index(consensus::ProcessId p) const {
    if (p < 0 || p >= size()) throw std::out_of_range("Network: bad process id");
    return static_cast<std::size_t>(p);
  }

  void dispatch(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg,
                std::uint64_t tag, bool tagged) {
    (void)index(to);  // validate eagerly, not at delivery time
    ++sent_;
    const char* label = probe_.enabled() ? obs::message_label(msg) : nullptr;
    std::uint64_t seq = 0;
    if (label) {
      seq = ++obs_seq_;
      if (probe_.metrics) counters_for(label).sent->add();
    }
    if (crashed_.at(index(from))) {
      if (label) {
        if (probe_.metrics) counters_for(label).dropped->add();
        probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kMessageDrop, simulator_.now(), from, to, -1,
                                 {}, label, static_cast<std::int64_t>(seq)};
        });
      }
      return;
    }
    if (label) {
      probe_.trace([&] {
        return obs::TraceEvent{obs::EventKind::kMessageSend, simulator_.now(), from, to, -1,
                               {}, label, static_cast<std::int64_t>(seq)};
      });
    }
    // Fault-injection stage: one pointer test when no plan is attached.
    faults::FaultPlan::Decision fate;
    if (faults_) fate = faults_->on_send(simulator_.now(), from, to, &msg);
    if (fate.dropped()) {
      if (tracing_) {
        TraceEntry<Msg> entry{simulator_.now(), -1, from, to, fate.drop, msg};
        trace_.push_back(std::move(entry));
      }
      if (label) {
        if (probe_.metrics) {
          counters_for(label).dropped->add();
          probe_.metrics->counter("faults.drops").add();
        }
        probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kMessageDrop, simulator_.now(), from, to, -1,
                                 {}, faults::drop_event_label(fate.drop),
                                 static_cast<std::int64_t>(seq)};
        });
      }
      return;
    }
    for (int copy = 0; copy < fate.copies; ++copy) {
      if (copy > 0 && label) {
        if (probe_.metrics) probe_.metrics->counter("faults.duplicates").add();
        probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kMessageDuplicate, simulator_.now(), from, to,
                                 -1, {}, label, static_cast<std::int64_t>(seq)};
        });
      }
      const sim::Tick when =
          fate.forced_time
              ? *fate.forced_time
              : model_->delivery_time(simulator_.now(), from, to, rng_) + fate.extra_delay;
      std::size_t trace_slot = kNoSlot;
      if (tracing_) {
        trace_.push_back(TraceEntry<Msg>{simulator_.now(), -1, from, to,
                                         faults::DropReason::kNone, msg});
        trace_slot = trace_.size() - 1;
      }
      simulator_.schedule_at(when, [this, from, to, msg, trace_slot, seq, tag, tagged] {
        deliver(from, to, msg, trace_slot, seq, tag, tagged);
      });
    }
  }

  void deliver(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg,
               std::size_t trace_slot, std::uint64_t seq, std::uint64_t tag, bool tagged) {
    // Re-derive the label: the probe may have been (de)attached while the
    // message was in flight.
    const char* label = probe_.enabled() ? obs::message_label(msg) : nullptr;
    if (crashed_.at(index(to))) {
      if (trace_slot != kNoSlot) trace_.at(trace_slot).drop = faults::DropReason::kCrashed;
      if (label) {
        if (probe_.metrics) counters_for(label).dropped->add();
        probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kMessageDrop, simulator_.now(), to, from, -1,
                                 {}, label, static_cast<std::int64_t>(seq)};
        });
      }
      return;
    }
    ++delivered_;
    if (label) {
      if (probe_.metrics) counters_for(label).delivered->add();
      probe_.trace([&] {
        return obs::TraceEvent{obs::EventKind::kMessageDeliver, simulator_.now(), to, from, -1,
                               {}, label, static_cast<std::int64_t>(seq)};
      });
    }
    if (trace_slot != kNoSlot) trace_.at(trace_slot).deliver_time = simulator_.now();
    if (tagged && tap_) {
      tap_(from, to, msg, tag);
      return;
    }
    auto& handler = handlers_.at(index(to));
    if (handler) handler(from, msg);
  }

  /// Per-message-type counters, resolved once per (probe, type): the string
  /// concatenation happens on the first message of each type only, keyed on
  /// the label's (static) address afterwards.  Call only with metrics set.
  struct TypeCounters {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
  };
  TypeCounters& counters_for(const char* label) {
    const auto it = type_counters_.find(label);
    if (it != type_counters_.end()) return it->second;
    const std::string name(label);
    TypeCounters c{&probe_.metrics->counter("net.sent." + name),
                   &probe_.metrics->counter("net.delivered." + name),
                   &probe_.metrics->counter("net.dropped." + name)};
    return type_counters_.emplace(label, c).first->second;
  }

  sim::Simulator& simulator_;
  std::unique_ptr<LatencyModel> model_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  util::Rng rng_;
  std::shared_ptr<faults::FaultPlan> faults_;
  obs::Probe probe_;
  DeliveryTap tap_;
  std::unordered_map<const char*, TypeCounters> type_counters_;
  std::uint64_t obs_seq_ = 0;  ///< per-message id linking send/deliver events
  bool tracing_ = false;
  std::vector<TraceEntry<Msg>> trace_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace twostep::net
