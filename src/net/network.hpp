// Simulated message-passing network over reliable links.
//
// Network<Msg> connects n endpoints through a LatencyModel on top of the
// discrete-event simulator.  It implements crash-stop failures (a crashed
// process neither sends nor receives), full message tracing (used by the
// lower-bound splicing harness), and an optional interception hook that lets
// adversarial drivers override delivery times of individual messages while
// keeping links reliable.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "consensus/types.hpp"
#include "net/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace twostep::net {

/// One traced message.  `deliver_time < 0` means the message was addressed
/// to (or sent by) a crashed process and never delivered.
template <typename Msg>
struct TraceEntry {
  sim::Tick send_time = 0;
  sim::Tick deliver_time = -1;
  consensus::ProcessId from = consensus::kNoProcess;
  consensus::ProcessId to = consensus::kNoProcess;
  Msg payload{};
};

template <typename Msg>
class Network {
 public:
  using Handler = std::function<void(consensus::ProcessId from, const Msg&)>;

  /// Interception hook: given (now, from, to, msg) may return an absolute
  /// delivery time overriding the latency model, or nullopt to defer to it.
  using Interceptor = std::function<std::optional<sim::Tick>(
      sim::Tick, consensus::ProcessId, consensus::ProcessId, const Msg&)>;

  Network(sim::Simulator& simulator, std::unique_ptr<LatencyModel> model, int n,
          std::uint64_t seed = 1)
      : simulator_(simulator),
        model_(std::move(model)),
        handlers_(static_cast<std::size_t>(n)),
        crashed_(static_cast<std::size_t>(n), false),
        rng_(seed) {
    if (!model_) throw std::invalid_argument("Network: null latency model");
    if (n < 1) throw std::invalid_argument("Network: need at least one process");
  }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(handlers_.size()); }
  [[nodiscard]] sim::Tick delta() const { return model_->delta(); }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

  /// Installs the receive handler for process p.  Must be set before any
  /// message destined to p is delivered.
  void set_handler(consensus::ProcessId p, Handler h) { handlers_.at(index(p)) = std::move(h); }

  void set_interceptor(Interceptor i) { interceptor_ = std::move(i); }

  /// Enables/disables payload tracing (disabled by default: traces copy
  /// every message).
  void enable_trace(bool on = true) { tracing_ = on; }
  [[nodiscard]] const std::vector<TraceEntry<Msg>>& trace() const { return trace_; }

  /// Attaches structured observability: send/deliver/drop events go to the
  /// probe's tracer, per-message-type counters (net.sent.<Type> etc.) to
  /// its registry.  A default-constructed probe detaches; with no probe the
  /// send path costs one pointer test and formats nothing.
  void set_probe(obs::Probe probe) {
    probe_ = probe;
    type_counters_.clear();
  }

  /// Sends msg from -> to.  Sending from or to a crashed process silently
  /// drops the message (crash-stop semantics).  Self-sends go through the
  /// latency model like any other message: Definition 2 delivers ALL
  /// messages sent in round k at the start of round k+1, and a protocol that
  /// wants instant access to its own state reads it locally instead of
  /// mailing itself (e.g. the fast path's |P ∪ {p_i}| counts self without a
  /// message).
  void send(consensus::ProcessId from, consensus::ProcessId to, const Msg& msg) {
    (void)index(to);  // validate eagerly, not at delivery time
    ++sent_;
    const char* label = probe_.enabled() ? obs::message_label(msg) : nullptr;
    std::uint64_t seq = 0;
    if (label) {
      seq = ++obs_seq_;
      if (probe_.metrics) counters_for(label).sent->add();
    }
    if (crashed_.at(index(from))) {
      if (label) {
        if (probe_.metrics) counters_for(label).dropped->add();
        probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kMessageDrop, simulator_.now(), from, to, -1,
                                 {}, label, static_cast<std::int64_t>(seq)};
        });
      }
      return;
    }
    if (label) {
      probe_.trace([&] {
        return obs::TraceEvent{obs::EventKind::kMessageSend, simulator_.now(), from, to, -1,
                               {}, label, static_cast<std::int64_t>(seq)};
      });
    }
    std::optional<sim::Tick> forced;
    if (interceptor_) forced = interceptor_(simulator_.now(), from, to, msg);
    const sim::Tick when =
        forced ? *forced : model_->delivery_time(simulator_.now(), from, to, rng_);
    std::size_t trace_slot = 0;
    if (tracing_) {
      trace_.push_back(TraceEntry<Msg>{simulator_.now(), -1, from, to, msg});
      trace_slot = trace_.size() - 1;
    }
    simulator_.schedule_at(when, [this, from, to, msg, trace_slot, seq] {
      // Re-derive the label: the probe may have been (de)attached while the
      // message was in flight.
      const char* label = probe_.enabled() ? obs::message_label(msg) : nullptr;
      if (crashed_.at(index(to))) {
        if (label) {
          if (probe_.metrics) counters_for(label).dropped->add();
          probe_.trace([&] {
            return obs::TraceEvent{obs::EventKind::kMessageDrop, simulator_.now(), to, from,
                                   -1, {}, label, static_cast<std::int64_t>(seq)};
          });
        }
        return;
      }
      ++delivered_;
      if (label) {
        if (probe_.metrics) counters_for(label).delivered->add();
        probe_.trace([&] {
          return obs::TraceEvent{obs::EventKind::kMessageDeliver, simulator_.now(), to, from,
                                 -1, {}, label, static_cast<std::int64_t>(seq)};
        });
      }
      if (tracing_) trace_.at(trace_slot).deliver_time = simulator_.now();
      auto& handler = handlers_.at(index(to));
      if (handler) handler(from, msg);
    });
  }

  /// Crashes p immediately: all undelivered messages to p are lost and p
  /// sends nothing from now on.
  void crash(consensus::ProcessId p) { crashed_.at(index(p)) = true; }

  /// Schedules a crash of p at absolute time `when`.
  void crash_at(sim::Tick when, consensus::ProcessId p) {
    simulator_.schedule_at(when, [this, p] { crash(p); });
  }

  [[nodiscard]] bool crashed(consensus::ProcessId p) const { return crashed_.at(index(p)); }

  [[nodiscard]] int crashed_count() const {
    int k = 0;
    for (const bool c : crashed_) k += c ? 1 : 0;
    return k;
  }

  [[nodiscard]] std::size_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::size_t messages_delivered() const noexcept { return delivered_; }

 private:
  [[nodiscard]] std::size_t index(consensus::ProcessId p) const {
    if (p < 0 || p >= size()) throw std::out_of_range("Network: bad process id");
    return static_cast<std::size_t>(p);
  }

  /// Per-message-type counters, resolved once per (probe, type): the string
  /// concatenation happens on the first message of each type only, keyed on
  /// the label's (static) address afterwards.  Call only with metrics set.
  struct TypeCounters {
    obs::Counter* sent = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
  };
  TypeCounters& counters_for(const char* label) {
    const auto it = type_counters_.find(label);
    if (it != type_counters_.end()) return it->second;
    const std::string name(label);
    TypeCounters c{&probe_.metrics->counter("net.sent." + name),
                   &probe_.metrics->counter("net.delivered." + name),
                   &probe_.metrics->counter("net.dropped." + name)};
    return type_counters_.emplace(label, c).first->second;
  }

  sim::Simulator& simulator_;
  std::unique_ptr<LatencyModel> model_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  util::Rng rng_;
  Interceptor interceptor_;
  obs::Probe probe_;
  std::unordered_map<const char*, TypeCounters> type_counters_;
  std::uint64_t obs_seq_ = 0;  ///< per-message id linking send/deliver events
  bool tracing_ = false;
  std::vector<TraceEntry<Msg>> trace_;
  std::size_t sent_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace twostep::net
