#include "codec/codec.hpp"

#include <limits>

namespace twostep::codec {

using consensus::Value;

namespace {

constexpr std::uint8_t kTagPropose = 1;
constexpr std::uint8_t kTagOneA = 2;
constexpr std::uint8_t kTagOneB = 3;
constexpr std::uint8_t kTagTwoA = 4;
constexpr std::uint8_t kTagTwoB = 5;
constexpr std::uint8_t kTagDecide = 6;

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace

void Writer::put_i64(std::int64_t value) {
  std::uint64_t u = zigzag(value);
  while (u >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(u) | 0x80);
    u >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(u));
}

void Writer::put_value(Value v) {
  if (v.is_bottom()) {
    put_u8(0);
  } else {
    put_u8(1);
    put_i64(v.get());
  }
}

void Writer::put_string(std::string_view s) {
  put_i64(static_cast<std::int64_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint8_t Reader::get_u8() {
  if (!ok_ || pos_ >= data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::int64_t Reader::get_i64() {
  std::uint64_t u = 0;
  int shift = 0;
  for (;;) {
    if (!ok_ || pos_ >= data_.size() || shift > 63) {
      ok_ = false;
      return 0;
    }
    const std::uint8_t byte = data_[pos_++];
    u |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return unzigzag(u);
}

std::string Reader::get_string() {
  const std::int64_t len = get_i64();
  if (!ok_ || len < 0 || static_cast<std::uint64_t>(len) > data_.size() - pos_) {
    ok_ = false;
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

Value Reader::get_value() {
  const std::uint8_t present = get_u8();
  if (!ok_) return Value::bottom();
  if (present == 0) return Value::bottom();
  if (present != 1) {
    ok_ = false;
    return Value::bottom();
  }
  return Value{get_i64()};
}

std::vector<std::uint8_t> encode(const core::Message& m) {
  Writer w;
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, core::ProposeMsg>) {
          w.put_u8(kTagPropose);
          w.put_value(msg.v);
        } else if constexpr (std::is_same_v<T, core::OneAMsg>) {
          w.put_u8(kTagOneA);
          w.put_i64(msg.b);
        } else if constexpr (std::is_same_v<T, core::OneBMsg>) {
          w.put_u8(kTagOneB);
          w.put_i64(msg.b);
          w.put_i64(msg.vbal);
          w.put_value(msg.val);
          w.put_i64(msg.proposer);
          w.put_value(msg.decided);
          w.put_value(msg.initial);
        } else if constexpr (std::is_same_v<T, core::TwoAMsg>) {
          w.put_u8(kTagTwoA);
          w.put_i64(msg.b);
          w.put_value(msg.v);
        } else if constexpr (std::is_same_v<T, core::TwoBMsg>) {
          w.put_u8(kTagTwoB);
          w.put_i64(msg.b);
          w.put_value(msg.v);
        } else {
          w.put_u8(kTagDecide);
          w.put_value(msg.v);
        }
      },
      m);
  return std::move(w).take();
}

std::optional<core::Message> decode(std::span<const std::uint8_t> data) {
  Reader r{data};
  const std::uint8_t tag = r.get_u8();
  std::optional<core::Message> out;
  switch (tag) {
    case kTagPropose: {
      core::ProposeMsg m;
      m.v = r.get_value();
      out = core::Message{m};
      break;
    }
    case kTagOneA: {
      core::OneAMsg m;
      m.b = r.get_i64();
      out = core::Message{m};
      break;
    }
    case kTagOneB: {
      core::OneBMsg m;
      m.b = r.get_i64();
      m.vbal = r.get_i64();
      m.val = r.get_value();
      m.proposer = static_cast<consensus::ProcessId>(r.get_i64());
      m.decided = r.get_value();
      m.initial = r.get_value();
      out = core::Message{m};
      break;
    }
    case kTagTwoA: {
      core::TwoAMsg m;
      m.b = r.get_i64();
      m.v = r.get_value();
      out = core::Message{m};
      break;
    }
    case kTagTwoB: {
      core::TwoBMsg m;
      m.b = r.get_i64();
      m.v = r.get_value();
      out = core::Message{m};
      break;
    }
    case kTagDecide: {
      core::DecideMsg m;
      m.v = r.get_value();
      out = core::Message{m};
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> encode(const rsm::SlotMsg& m) {
  Writer w;
  w.put_i64(m.slot);
  w.put_i64(m.cfg);
  std::vector<std::uint8_t> out = std::move(w).take();
  const std::vector<std::uint8_t> inner = encode(m.inner);
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

std::optional<rsm::SlotMsg> decode_slot(std::span<const std::uint8_t> data) {
  Reader r{data};
  const std::int64_t slot = r.get_i64();
  const std::int64_t cfg = r.get_i64();
  if (!r.ok()) return std::nullopt;
  if (slot < std::numeric_limits<std::int32_t>::min() ||
      slot > std::numeric_limits<std::int32_t>::max())
    return std::nullopt;
  if (cfg < 0 || cfg > std::numeric_limits<std::int32_t>::max()) return std::nullopt;
  // The inner decoder consumes the remainder and enforces exhaustion.
  auto inner = decode(data.subspan(r.position()));
  if (!inner) return std::nullopt;
  return rsm::SlotMsg{static_cast<std::int32_t>(slot), static_cast<std::int32_t>(cfg),
                      std::move(*inner)};
}

namespace {

// Batch-sidecar tag space (the kBatch frame's own).
constexpr std::uint8_t kTagBatchContent = 1;
constexpr std::uint8_t kTagBatchFetch = 2;

}  // namespace

std::vector<std::uint8_t> encode_batch(const rsm::Msg& m) {
  Writer w;
  if (const auto* c = std::get_if<rsm::BatchContentMsg>(&m)) {
    w.put_u8(kTagBatchContent);
    w.put_i64(c->cmd);
    w.put_i64(static_cast<std::int64_t>(c->payloads.size()));
    for (const std::int64_t p : c->payloads) w.put_i64(p);
  } else {
    w.put_u8(kTagBatchFetch);
    w.put_i64(std::get<rsm::BatchFetchMsg>(m).cmd);
  }
  return std::move(w).take();
}

std::optional<rsm::Msg> decode_batch(std::span<const std::uint8_t> data) {
  Reader r{data};
  const std::uint8_t tag = r.get_u8();
  switch (tag) {
    case kTagBatchContent: {
      rsm::BatchContentMsg m;
      m.cmd = r.get_i64();
      const std::int64_t count = r.get_i64();
      // Every payload varint takes at least one byte, so a count beyond the
      // remaining bytes is malformed — reject before reserving memory.
      if (!r.ok() || count < 0 || static_cast<std::uint64_t>(count) > data.size())
        return std::nullopt;
      m.payloads.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) m.payloads.push_back(r.get_i64());
      if (!r.ok() || !r.exhausted()) return std::nullopt;
      return rsm::Msg{std::move(m)};
    }
    case kTagBatchFetch: {
      rsm::BatchFetchMsg m;
      m.cmd = r.get_i64();
      if (!r.ok() || !r.exhausted()) return std::nullopt;
      return rsm::Msg{m};
    }
    default:
      return std::nullopt;
  }
}

namespace {

// Config-sidecar tag space (the kConfig frame's own).
constexpr std::uint8_t kTagConfigChange = 1;
constexpr std::uint8_t kTagConfigFetch = 2;

/// Shared by the sidecar and the admin verb: op byte + replica + endpoint.
void put_config_change(Writer& w, const rsm::ConfigChange& c) {
  w.put_u8(static_cast<std::uint8_t>(c.op));
  w.put_i64(c.replica);
  w.put_string(c.host);
  w.put_i64(c.port);
}

std::optional<rsm::ConfigChange> get_config_change(Reader& r) {
  const std::uint8_t op = r.get_u8();
  const std::int64_t replica = r.get_i64();
  std::string host = r.get_string();
  const std::int64_t port = r.get_i64();
  if (!r.ok()) return std::nullopt;
  if (op > static_cast<std::uint8_t>(rsm::ConfigChange::Op::kRemove)) return std::nullopt;
  if (replica < 0 || replica > std::numeric_limits<consensus::ProcessId>::max())
    return std::nullopt;
  if (port < 0 || port > 65535) return std::nullopt;
  rsm::ConfigChange c;
  c.op = static_cast<rsm::ConfigChange::Op>(op);
  c.replica = static_cast<consensus::ProcessId>(replica);
  c.host = std::move(host);
  c.port = static_cast<std::uint16_t>(port);
  return c;
}

}  // namespace

std::vector<std::uint8_t> encode_config(const rsm::Msg& m) {
  Writer w;
  if (const auto* c = std::get_if<rsm::ConfigChangeMsg>(&m)) {
    w.put_u8(kTagConfigChange);
    w.put_i64(c->cmd);
    put_config_change(w, c->change);
  } else {
    w.put_u8(kTagConfigFetch);
    w.put_i64(std::get<rsm::ConfigFetchMsg>(m).cmd);
  }
  return std::move(w).take();
}

std::optional<rsm::Msg> decode_config(std::span<const std::uint8_t> data) {
  Reader r{data};
  const std::uint8_t tag = r.get_u8();
  switch (tag) {
    case kTagConfigChange: {
      rsm::ConfigChangeMsg m;
      m.cmd = r.get_i64();
      auto change = get_config_change(r);
      if (!change || !r.exhausted()) return std::nullopt;
      m.change = std::move(*change);
      return rsm::Msg{std::move(m)};
    }
    case kTagConfigFetch: {
      rsm::ConfigFetchMsg m;
      m.cmd = r.get_i64();
      if (!r.ok() || !r.exhausted()) return std::nullopt;
      return rsm::Msg{m};
    }
    default:
      return std::nullopt;
  }
}

std::vector<std::uint8_t> encode(const Heartbeat& m) {
  Writer w;
  w.put_i64(m.from);
  w.put_i64(m.version);
  return std::move(w).take();
}

std::optional<Heartbeat> decode_heartbeat(std::span<const std::uint8_t> data) {
  Reader r{data};
  Heartbeat m;
  const std::int64_t from = r.get_i64();
  const std::int64_t version = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (from < 0 || from > std::numeric_limits<consensus::ProcessId>::max()) return std::nullopt;
  if (version < 0 || version > std::numeric_limits<std::int32_t>::max()) return std::nullopt;
  m.from = static_cast<consensus::ProcessId>(from);
  m.version = static_cast<std::int32_t>(version);
  return m;
}

std::vector<std::uint8_t> encode(const Catchup& m) {
  Writer w;
  w.put_i64(m.from);
  w.put_i64(m.applied);
  return std::move(w).take();
}

std::optional<Catchup> decode_catchup(std::span<const std::uint8_t> data) {
  Reader r{data};
  Catchup m;
  const std::int64_t from = r.get_i64();
  const std::int64_t applied = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (from < 0 || from > std::numeric_limits<consensus::ProcessId>::max()) return std::nullopt;
  if (applied < 0) return std::nullopt;
  m.from = static_cast<consensus::ProcessId>(from);
  m.applied = applied;
  return m;
}

std::vector<std::uint8_t> encode(const Handover& m) {
  Writer w;
  w.put_i64(m.from);
  w.put_i64(m.version);
  return std::move(w).take();
}

std::optional<Handover> decode_handover(std::span<const std::uint8_t> data) {
  Reader r{data};
  Handover m;
  const std::int64_t from = r.get_i64();
  const std::int64_t version = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (from < 0 || from > std::numeric_limits<consensus::ProcessId>::max()) return std::nullopt;
  if (version < 0 || version > std::numeric_limits<std::int32_t>::max()) return std::nullopt;
  m.from = static_cast<consensus::ProcessId>(from);
  m.version = static_cast<std::int32_t>(version);
  return m;
}

std::vector<std::uint8_t> encode(const ConfigCommand& m) {
  Writer w;
  w.put_i64(m.id);
  put_config_change(w, m.change);
  return std::move(w).take();
}

std::optional<ConfigCommand> decode_config_command(std::span<const std::uint8_t> data) {
  Reader r{data};
  ConfigCommand m;
  m.id = r.get_i64();
  auto change = get_config_change(r);
  if (!change || !r.exhausted()) return std::nullopt;
  if (m.id < 0) return std::nullopt;
  m.change = std::move(*change);
  return m;
}

namespace {

// Fast Paxos tag space (independent of the core protocol's).
constexpr std::uint8_t kTagFastPropose = 1;
constexpr std::uint8_t kTagPrepare = 2;
constexpr std::uint8_t kTagPromise = 3;
constexpr std::uint8_t kTagAccept = 4;
constexpr std::uint8_t kTagAccepted = 5;

}  // namespace

std::vector<std::uint8_t> encode(const fastpaxos::Message& m) {
  Writer w;
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, fastpaxos::FastProposeMsg>) {
          w.put_u8(kTagFastPropose);
          w.put_value(msg.v);
        } else if constexpr (std::is_same_v<T, fastpaxos::PrepareMsg>) {
          w.put_u8(kTagPrepare);
          w.put_i64(msg.b);
        } else if constexpr (std::is_same_v<T, fastpaxos::PromiseMsg>) {
          w.put_u8(kTagPromise);
          w.put_i64(msg.b);
          w.put_i64(msg.vbal);
          w.put_value(msg.vval);
          w.put_value(msg.initial);
        } else if constexpr (std::is_same_v<T, fastpaxos::AcceptMsg>) {
          w.put_u8(kTagAccept);
          w.put_i64(msg.b);
          w.put_value(msg.v);
        } else {
          w.put_u8(kTagAccepted);
          w.put_i64(msg.b);
          w.put_value(msg.v);
        }
      },
      m);
  return std::move(w).take();
}

std::optional<fastpaxos::Message> decode_fastpaxos(std::span<const std::uint8_t> data) {
  Reader r{data};
  const std::uint8_t tag = r.get_u8();
  std::optional<fastpaxos::Message> out;
  switch (tag) {
    case kTagFastPropose: {
      fastpaxos::FastProposeMsg m;
      m.v = r.get_value();
      out = fastpaxos::Message{m};
      break;
    }
    case kTagPrepare: {
      fastpaxos::PrepareMsg m;
      m.b = r.get_i64();
      out = fastpaxos::Message{m};
      break;
    }
    case kTagPromise: {
      fastpaxos::PromiseMsg m;
      m.b = r.get_i64();
      m.vbal = r.get_i64();
      m.vval = r.get_value();
      m.initial = r.get_value();
      out = fastpaxos::Message{m};
      break;
    }
    case kTagAccept: {
      fastpaxos::AcceptMsg m;
      m.b = r.get_i64();
      m.v = r.get_value();
      out = fastpaxos::Message{m};
      break;
    }
    case kTagAccepted: {
      fastpaxos::AcceptedMsg m;
      m.b = r.get_i64();
      m.v = r.get_value();
      out = fastpaxos::Message{m};
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return out;
}

namespace {

constexpr std::uint8_t kTagEpPreAccept = 1;
constexpr std::uint8_t kTagEpPreAcceptReply = 2;
constexpr std::uint8_t kTagEpAccept = 3;
constexpr std::uint8_t kTagEpAcceptReply = 4;
constexpr std::uint8_t kTagEpCommit = 5;
constexpr std::uint8_t kTagEpPrepare = 6;
constexpr std::uint8_t kTagEpPrepareReply = 7;

void put_ep_instance(Writer& w, const epaxos::InstanceId& id) {
  w.put_i64(id.replica);
  w.put_i64(id.index);
}

epaxos::InstanceId get_ep_instance(Reader& r) {
  epaxos::InstanceId id;
  const std::int64_t replica = r.get_i64();
  const std::int64_t index = r.get_i64();
  // A negative or oversize id cannot name a real instance; leave the
  // default (invalid) id, which the caller's validity check rejects.
  if (!r.ok() || replica < 0 || replica > std::numeric_limits<consensus::ProcessId>::max() ||
      index < 0 || index > std::numeric_limits<std::int32_t>::max())
    return id;
  id.replica = static_cast<consensus::ProcessId>(replica);
  id.index = static_cast<std::int32_t>(index);
  return id;
}

void put_ep_deps(Writer& w, const epaxos::DepSet& deps) {
  w.put_i64(static_cast<std::int64_t>(deps.size()));
  for (const epaxos::InstanceId& dep : deps) put_ep_instance(w, dep);
}

bool get_ep_deps(Reader& r, std::span<const std::uint8_t> data, epaxos::DepSet& out) {
  const std::int64_t count = r.get_i64();
  // Each dependency costs at least two bytes, so any plausible count is
  // bounded by the buffer size — rejects huge counts before allocating.
  if (!r.ok() || count < 0 || static_cast<std::uint64_t>(count) > data.size()) return false;
  for (std::int64_t i = 0; i < count; ++i) {
    const epaxos::InstanceId dep = get_ep_instance(r);
    if (!r.ok() || !dep.valid()) return false;
    out.insert(dep);
  }
  return r.ok();
}

void put_ep_command(Writer& w, const epaxos::Command& cmd) {
  w.put_i64(cmd.key);
  w.put_i64(cmd.payload);
}

epaxos::Command get_ep_command(Reader& r) {
  epaxos::Command cmd;
  cmd.key = r.get_i64();
  cmd.payload = r.get_i64();
  return cmd;
}

}  // namespace

std::vector<std::uint8_t> encode(const epaxos::Message& m) {
  Writer w;
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, epaxos::PreAcceptMsg>) {
          w.put_u8(kTagEpPreAccept);
          put_ep_instance(w, msg.instance);
          w.put_i64(msg.ballot);
          put_ep_command(w, msg.cmd);
          put_ep_deps(w, msg.deps);
          w.put_i64(msg.seq);
        } else if constexpr (std::is_same_v<T, epaxos::PreAcceptReplyMsg>) {
          w.put_u8(kTagEpPreAcceptReply);
          put_ep_instance(w, msg.instance);
          w.put_i64(msg.ballot);
          put_ep_deps(w, msg.deps);
          w.put_i64(msg.seq);
          w.put_u8(msg.changed ? 1 : 0);
        } else if constexpr (std::is_same_v<T, epaxos::AcceptMsg>) {
          w.put_u8(kTagEpAccept);
          put_ep_instance(w, msg.instance);
          w.put_i64(msg.ballot);
          put_ep_command(w, msg.cmd);
          put_ep_deps(w, msg.deps);
          w.put_i64(msg.seq);
        } else if constexpr (std::is_same_v<T, epaxos::AcceptReplyMsg>) {
          w.put_u8(kTagEpAcceptReply);
          put_ep_instance(w, msg.instance);
          w.put_i64(msg.ballot);
        } else if constexpr (std::is_same_v<T, epaxos::CommitMsg>) {
          w.put_u8(kTagEpCommit);
          put_ep_instance(w, msg.instance);
          put_ep_command(w, msg.cmd);
          put_ep_deps(w, msg.deps);
          w.put_i64(msg.seq);
        } else if constexpr (std::is_same_v<T, epaxos::PrepareMsg>) {
          w.put_u8(kTagEpPrepare);
          put_ep_instance(w, msg.instance);
          w.put_i64(msg.ballot);
        } else {
          w.put_u8(kTagEpPrepareReply);
          put_ep_instance(w, msg.instance);
          w.put_i64(msg.ballot);
          w.put_u8(static_cast<std::uint8_t>(msg.status));
          put_ep_command(w, msg.cmd);
          put_ep_deps(w, msg.deps);
          w.put_i64(msg.seq);
        }
      },
      m);
  return std::move(w).take();
}

std::optional<epaxos::Message> decode_epaxos(std::span<const std::uint8_t> data) {
  Reader r{data};
  const std::uint8_t tag = r.get_u8();
  std::optional<epaxos::Message> out;
  switch (tag) {
    case kTagEpPreAccept: {
      epaxos::PreAcceptMsg m;
      m.instance = get_ep_instance(r);
      m.ballot = r.get_i64();
      m.cmd = get_ep_command(r);
      if (!get_ep_deps(r, data, m.deps)) return std::nullopt;
      m.seq = r.get_i64();
      out = epaxos::Message{m};
      break;
    }
    case kTagEpPreAcceptReply: {
      epaxos::PreAcceptReplyMsg m;
      m.instance = get_ep_instance(r);
      m.ballot = r.get_i64();
      if (!get_ep_deps(r, data, m.deps)) return std::nullopt;
      m.seq = r.get_i64();
      const std::uint8_t changed = r.get_u8();
      if (changed > 1) return std::nullopt;
      m.changed = changed == 1;
      out = epaxos::Message{m};
      break;
    }
    case kTagEpAccept: {
      epaxos::AcceptMsg m;
      m.instance = get_ep_instance(r);
      m.ballot = r.get_i64();
      m.cmd = get_ep_command(r);
      if (!get_ep_deps(r, data, m.deps)) return std::nullopt;
      m.seq = r.get_i64();
      out = epaxos::Message{m};
      break;
    }
    case kTagEpAcceptReply: {
      epaxos::AcceptReplyMsg m;
      m.instance = get_ep_instance(r);
      m.ballot = r.get_i64();
      out = epaxos::Message{m};
      break;
    }
    case kTagEpCommit: {
      epaxos::CommitMsg m;
      m.instance = get_ep_instance(r);
      m.cmd = get_ep_command(r);
      if (!get_ep_deps(r, data, m.deps)) return std::nullopt;
      m.seq = r.get_i64();
      out = epaxos::Message{m};
      break;
    }
    case kTagEpPrepare: {
      epaxos::PrepareMsg m;
      m.instance = get_ep_instance(r);
      m.ballot = r.get_i64();
      out = epaxos::Message{m};
      break;
    }
    case kTagEpPrepareReply: {
      epaxos::PrepareReplyMsg m;
      m.instance = get_ep_instance(r);
      m.ballot = r.get_i64();
      const std::uint8_t status = r.get_u8();
      if (status > static_cast<std::uint8_t>(epaxos::Status::kExecuted)) return std::nullopt;
      m.status = static_cast<epaxos::Status>(status);
      m.cmd = get_ep_command(r);
      if (!get_ep_deps(r, data, m.deps)) return std::nullopt;
      m.seq = r.get_i64();
      out = epaxos::Message{m};
      break;
    }
    default:
      return std::nullopt;
  }
  const bool instance_ok = std::visit([](const auto& msg) { return msg.instance.valid(); }, *out);
  if (!r.ok() || !r.exhausted() || !instance_ok) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> encode(const ClientRequest& m) {
  Writer w;
  w.put_i64(m.id);
  w.put_i64(m.payload);
  w.put_i64(m.client_id);
  if (m.trace.active()) {
    w.put_u8(1);
    put_trace(w, m.trace);
  } else {
    w.put_u8(0);
  }
  return std::move(w).take();
}

std::optional<ClientRequest> decode_client_request(std::span<const std::uint8_t> data) {
  Reader r{data};
  ClientRequest m;
  m.id = r.get_i64();
  m.payload = r.get_i64();
  m.client_id = r.get_i64();
  const std::uint8_t traced = r.get_u8();
  if (traced > 1) return std::nullopt;
  if (traced == 1) {
    m.trace = get_trace(r);
    if (!m.trace.active()) return std::nullopt;  // present-but-inactive: malformed
  }
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode(const ClientReply& m) {
  Writer w;
  w.put_i64(m.id);
  w.put_i64(m.value);
  w.put_i64(m.slot);
  w.put_u8(m.ok ? 1 : 0);
  return std::move(w).take();
}

std::optional<ClientReply> decode_client_reply(std::span<const std::uint8_t> data) {
  Reader r{data};
  ClientReply m;
  m.id = r.get_i64();
  m.value = r.get_i64();
  const std::int64_t slot = r.get_i64();
  const std::uint8_t ok_byte = r.get_u8();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (slot < std::numeric_limits<std::int32_t>::min() ||
      slot > std::numeric_limits<std::int32_t>::max())
    return std::nullopt;
  if (ok_byte > 1) return std::nullopt;
  m.slot = static_cast<std::int32_t>(slot);
  m.ok = ok_byte == 1;
  return m;
}

void put_trace(Writer& w, const obs::TraceContext& t) {
  w.put_i64(static_cast<std::int64_t>(t.trace_id));
  w.put_i64(static_cast<std::int64_t>(t.parent_span));
  w.put_i64(t.origin_us);
}

obs::TraceContext get_trace(Reader& r) {
  obs::TraceContext t;
  t.trace_id = static_cast<std::uint64_t>(r.get_i64());
  t.parent_span = static_cast<std::uint64_t>(r.get_i64());
  t.origin_us = r.get_i64();
  if (!r.ok()) return obs::TraceContext{};
  return t;
}

std::vector<std::uint8_t> encode(const TracedFrame& m) {
  Writer w;
  w.put_u8(m.inner_kind);
  put_trace(w, m.trace);
  std::vector<std::uint8_t> out = std::move(w).take();
  out.insert(out.end(), m.inner.begin(), m.inner.end());
  return out;
}

std::optional<TracedFrame> decode_traced(std::span<const std::uint8_t> data) {
  Reader r{data};
  TracedFrame m;
  m.inner_kind = r.get_u8();
  m.trace = get_trace(r);
  if (!r.ok()) return std::nullopt;
  if (m.inner_kind == 0 || !m.trace.active()) return std::nullopt;
  // The inner payload is the remainder; its own decoder enforces exhaustion.
  const auto rest = data.subspan(r.position());
  m.inner.assign(rest.begin(), rest.end());
  return m;
}

std::vector<std::uint8_t> encode(const StatsRequest& m) {
  Writer w;
  w.put_i64(m.id);
  return std::move(w).take();
}

std::optional<StatsRequest> decode_stats_request(std::span<const std::uint8_t> data) {
  Reader r{data};
  StatsRequest m;
  m.id = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode(const StatsReply& m) {
  Writer w;
  w.put_i64(m.id);
  w.put_string(m.json);
  return std::move(w).take();
}

std::optional<StatsReply> decode_stats_reply(std::span<const std::uint8_t> data) {
  Reader r{data};
  StatsReply m;
  m.id = r.get_i64();
  m.json = r.get_string();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode(const SnapshotOffer& m) {
  Writer w;
  w.put_i64(m.floor);
  w.put_i64(m.bytes);
  return std::move(w).take();
}

std::optional<SnapshotOffer> decode_snapshot_offer(std::span<const std::uint8_t> data) {
  Reader r{data};
  SnapshotOffer m;
  m.floor = r.get_i64();
  m.bytes = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (m.floor < 0 || m.bytes < 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode(const SnapshotRequest& m) {
  Writer w;
  w.put_i64(m.floor);
  w.put_i64(m.offset);
  return std::move(w).take();
}

std::optional<SnapshotRequest> decode_snapshot_request(std::span<const std::uint8_t> data) {
  Reader r{data};
  SnapshotRequest m;
  m.floor = r.get_i64();
  m.offset = r.get_i64();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (m.floor < 0 || m.offset < 0) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> encode(const SnapshotChunk& m) {
  Writer w;
  w.put_i64(m.floor);
  w.put_i64(m.offset);
  w.put_i64(m.total_bytes);
  w.put_i64(m.crc);
  w.put_string({reinterpret_cast<const char*>(m.data.data()), m.data.size()});
  return std::move(w).take();
}

std::optional<SnapshotChunk> decode_snapshot_chunk(std::span<const std::uint8_t> data) {
  Reader r{data};
  SnapshotChunk m;
  m.floor = r.get_i64();
  m.offset = r.get_i64();
  m.total_bytes = r.get_i64();
  m.crc = r.get_i64();
  const std::string bytes = r.get_string();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (m.floor < 0 || m.offset < 0 || m.total_bytes < 0) return std::nullopt;
  // A chunk must lie inside the payload it claims to be part of.
  if (m.offset + static_cast<std::int64_t>(bytes.size()) > m.total_bytes) return std::nullopt;
  m.data.assign(bytes.begin(), bytes.end());
  return m;
}

}  // namespace twostep::codec
