// Compact binary wire codec for the core protocol's messages.
//
// In-process simulation passes messages by value, but a credible release
// needs a wire format: the CLI tool uses it for trace dumps, and it is the
// seam a real UDP/TCP transport would plug into.  The format is a 1-byte
// message tag followed by the fields in declaration order; integers are
// zigzag varints, Values are a presence byte + varint.  decode() is total:
// any malformed input yields nullopt, never UB — fuzzed in the tests.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "consensus/types.hpp"
#include "core/messages.hpp"

namespace twostep::codec {

/// Append-only byte sink with varint primitives.
class Writer {
 public:
  void put_u8(std::uint8_t byte) { bytes_.push_back(byte); }

  /// Zigzag + LEB128 varint; encodes any int64 in 1-10 bytes.
  void put_i64(std::int64_t value);

  /// Presence byte (0 = bottom) + payload varint.
  void put_value(consensus::Value v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked cursor over an encoded buffer.  All getters return
/// defaults once `ok()` turns false; callers check ok() at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::int64_t get_i64();
  consensus::Value get_value();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True iff every byte has been consumed (trailing garbage is an error).
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Serializes one core-protocol message.
std::vector<std::uint8_t> encode(const core::Message& m);

/// Parses one core-protocol message; nullopt on any malformed input
/// (unknown tag, truncation, oversize varint, trailing bytes).
std::optional<core::Message> decode(std::span<const std::uint8_t> data);

}  // namespace twostep::codec
