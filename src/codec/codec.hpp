// Compact binary wire codec for every message that crosses the wire.
//
// In-process simulation passes messages by value, but the live TCP transport
// (src/transport, src/node) serializes through here: the core protocol's
// messages, the RSM's slot-tagged messages, Fast Paxos's messages, and the
// client request/reply frames.  The format is a 1-byte message tag followed
// by the fields in declaration order; integers are zigzag varints, Values
// are a presence byte + varint.  Every decoder is total: any malformed
// input (unknown tag, truncation, oversize varint, trailing bytes) yields
// nullopt, never UB — fuzzed in the tests and exercised under ASan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "consensus/types.hpp"
#include "core/messages.hpp"
#include "epaxos/epaxos.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "obs/flight.hpp"
#include "rsm/rsm.hpp"

namespace twostep::codec {

/// Append-only byte sink with varint primitives.
class Writer {
 public:
  void put_u8(std::uint8_t byte) { bytes_.push_back(byte); }

  /// Zigzag + LEB128 varint; encodes any int64 in 1-10 bytes.
  void put_i64(std::int64_t value);

  /// Presence byte (0 = bottom) + payload varint.
  void put_value(consensus::Value v);

  /// Length-prefixed byte string: varint length + raw bytes.
  void put_string(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked cursor over an encoded buffer.  All getters return
/// defaults once `ok()` turns false; callers check ok() at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::int64_t get_i64();
  consensus::Value get_value();
  /// Length-prefixed byte string; fails on a length that overruns the
  /// buffer (so truncation can never allocate unbounded memory).
  std::string get_string();

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// True iff every byte has been consumed (trailing garbage is an error).
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  /// Bytes consumed so far — lets composite decoders (SlotMsg) hand the
  /// remainder of the buffer to a nested decoder.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Serializes one core-protocol message.
std::vector<std::uint8_t> encode(const core::Message& m);

/// Parses one core-protocol message; nullopt on any malformed input
/// (unknown tag, truncation, oversize varint, trailing bytes).
std::optional<core::Message> decode(std::span<const std::uint8_t> data);

/// Serializes one slot-tagged RSM message: slot varint + inner encoding.
std::vector<std::uint8_t> encode(const rsm::SlotMsg& m);

/// Parses one slot-tagged RSM message; nullopt on malformed input.
std::optional<rsm::SlotMsg> decode_slot(std::span<const std::uint8_t> data);

/// Serializes one batch sidecar message (BatchContentMsg / BatchFetchMsg)
/// for the kBatch frame: 1-byte tag + handle + (contents only) the payload
/// list.  Precondition: `m` holds a batch alternative, not a SlotMsg —
/// slot traffic travels in kSlot frames unchanged.
std::vector<std::uint8_t> encode_batch(const rsm::Msg& m);

/// Parses one batch sidecar message; nullopt on malformed input.
std::optional<rsm::Msg> decode_batch(std::span<const std::uint8_t> data);

/// Serializes one config sidecar message (ConfigChangeMsg / ConfigFetchMsg)
/// for the kConfig frame: 1-byte tag + handle + (contents only) the change.
/// Precondition: `m` holds a config alternative.
std::vector<std::uint8_t> encode_config(const rsm::Msg& m);

/// Parses one config sidecar message; nullopt on malformed input.
std::optional<rsm::Msg> decode_config(std::span<const std::uint8_t> data);

/// Serializes one Fast Paxos message (its own 1-byte tag space).
std::vector<std::uint8_t> encode(const fastpaxos::Message& m);

/// Parses one Fast Paxos message; nullopt on malformed input.
std::optional<fastpaxos::Message> decode_fastpaxos(std::span<const std::uint8_t> data);

/// Serializes one EPaxos message (its own 1-byte tag space; instance ids
/// are (replica, index) varint pairs, dependency sets a count + pairs).
std::vector<std::uint8_t> encode(const epaxos::Message& m);

/// Parses one EPaxos message; nullopt on malformed input (unknown tag,
/// truncation, invalid instance id, implausible dependency count, unknown
/// status byte, trailing bytes).
std::optional<epaxos::Message> decode_epaxos(std::span<const std::uint8_t> data);

// ---- client frames (the request/reply path of the live node runtime) ----

/// A client command: `id` correlates the reply, `payload` is the proposed
/// value (single-shot protocols) or the RSM command payload (< 2^40).
/// `client_id` names the session across reconnects: a failover client
/// resends under the same (client_id, id) pair, and the server's dedup
/// table uses it to answer retries idempotently.  0 means "no session"
/// (no dedup; the pre-failover behavior).
/// `trace` is the optional flight-recorder context (see obs/flight.hpp):
/// trace_id == 0 (the default) encodes as a single absent byte, so
/// untraced requests pay one byte and no trace machinery.
struct ClientRequest {
  std::int64_t id = 0;
  std::int64_t payload = 0;
  std::int64_t client_id = 0;
  obs::TraceContext trace;
  friend bool operator==(const ClientRequest&, const ClientRequest&) = default;
};

/// The server's answer: `value` is the decided value (single-shot) or the
/// committed command (RSM), `slot` the RSM log position (-1 for single-shot
/// consensus), `ok` false when the request was rejected (e.g. an RSM
/// payload outside the 40-bit command range).
struct ClientReply {
  std::int64_t id = 0;
  std::int64_t value = 0;
  std::int32_t slot = -1;
  bool ok = true;
  friend bool operator==(const ClientReply&, const ClientReply&) = default;
};

std::vector<std::uint8_t> encode(const ClientRequest& m);
std::optional<ClientRequest> decode_client_request(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode(const ClientReply& m);
std::optional<ClientReply> decode_client_reply(std::span<const std::uint8_t> data);

// ---- trace-context propagation (the flight recorder's wire format) ----

/// Appends a TraceContext (3 varints).  Paired with get_trace.
void put_trace(Writer& w, const obs::TraceContext& t);

/// Reads a TraceContext; on malformed input the reader's ok() turns false
/// and a default context is returned.
obs::TraceContext get_trace(Reader& r);

/// A protocol frame with a trace context attached: the runtime wraps its
/// regular frame payload (`inner`, whose FrameKind is `inner_kind`) rather
/// than extending every protocol codec.  Decoding requires an active
/// context (trace_id != 0) — an inactive one would never be sent wrapped.
struct TracedFrame {
  std::uint8_t inner_kind = 0;
  obs::TraceContext trace;
  std::vector<std::uint8_t> inner;
  friend bool operator==(const TracedFrame&, const TracedFrame&) = default;
};

std::vector<std::uint8_t> encode(const TracedFrame& m);
std::optional<TracedFrame> decode_traced(std::span<const std::uint8_t> data);

// ---- stats scrape frames (`twostep stats <endpoint>`) ----

/// Asks a running node for a metrics snapshot; `id` correlates the reply.
struct StatsRequest {
  std::int64_t id = 0;
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

/// The node's answer: the JSON snapshot produced on its loop thread.
struct StatsReply {
  std::int64_t id = 0;
  std::string json;
  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

std::vector<std::uint8_t> encode(const StatsRequest& m);
std::optional<StatsRequest> decode_stats_request(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode(const StatsReply& m);
std::optional<StatsReply> decode_stats_reply(std::span<const std::uint8_t> data);

// ---- snapshot state transfer (kSnapshotOffer/Request/Chunk frames) ----

/// Announcement that the sender holds a durable snapshot with compaction
/// floor `floor`, `bytes` payload bytes long.  Broadcast after every new
/// snapshot and resent on link (re)establishment; a replica whose applied
/// prefix is below the floor answers with a SnapshotRequest.
struct SnapshotOffer {
  std::int64_t floor = 0;
  std::int64_t bytes = 0;
  friend bool operator==(const SnapshotOffer&, const SnapshotOffer&) = default;
};

/// Chunked fetch of the offered snapshot.  `floor` names the snapshot
/// generation being fetched (a stale request against a newer snapshot is
/// answered with the newer offer instead); `offset` is the first payload
/// byte wanted — retries resume from the bytes already received.
struct SnapshotRequest {
  std::int64_t floor = 0;
  std::int64_t offset = 0;
  friend bool operator==(const SnapshotRequest&, const SnapshotRequest&) = default;
};

/// One chunk of the snapshot payload.  `total_bytes` and `crc` (CRC-32 of
/// the *complete* payload) repeat in every chunk so the receiver can
/// verify the assembled blob no matter which chunk arrives last.
struct SnapshotChunk {
  std::int64_t floor = 0;
  std::int64_t offset = 0;
  std::int64_t total_bytes = 0;
  std::int64_t crc = 0;
  std::vector<std::uint8_t> data;
  friend bool operator==(const SnapshotChunk&, const SnapshotChunk&) = default;
};

std::vector<std::uint8_t> encode(const SnapshotOffer& m);
std::optional<SnapshotOffer> decode_snapshot_offer(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode(const SnapshotRequest& m);
std::optional<SnapshotRequest> decode_snapshot_request(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode(const SnapshotChunk& m);
std::optional<SnapshotChunk> decode_snapshot_chunk(std::span<const std::uint8_t> data);

// ---- failure-detector frames (live Ω hosting) ----

/// Periodic liveness beacon.  `from` is the sender (the frame can arrive
/// before the Hello handshake names the inbound side) and `version` its
/// current config version — a peer that sees a higher version than its own
/// knows it is behind.
struct Heartbeat {
  consensus::ProcessId from = 0;
  std::int32_t version = 0;
  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Leadership announcement: `from` considers itself the Ω leader (lowest
/// unsuspected member) under config `version`.  Receivers adopt the claim
/// when it is consistent with their own suspicions.
struct Handover {
  consensus::ProcessId from = 0;
  std::int32_t version = 0;
  friend bool operator==(const Handover&, const Handover&) = default;
};

std::vector<std::uint8_t> encode(const Heartbeat& m);
std::optional<Heartbeat> decode_heartbeat(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode(const Handover& m);
std::optional<Handover> decode_handover(std::span<const std::uint8_t> data);

/// Applied-prefix gossip, sent on a slow timer.  A peer whose own applied
/// prefix is ahead answers with its snapshot offer plus a Decide resend —
/// the periodic arm of anti-entropy, for holes punched by frame loss on a
/// connection that never re-establishes (reconnect anti-entropy never
/// fires) after the last checkpoint (no fresh snapshot offer either).
struct Catchup {
  consensus::ProcessId from = 0;
  std::int64_t applied = 0;
  friend bool operator==(const Catchup&, const Catchup&) = default;
};

std::vector<std::uint8_t> encode(const Catchup& m);
std::optional<Catchup> decode_catchup(std::span<const std::uint8_t> data);

// ---- admin frames (`twostep join` / `twostep leave`) ----

/// Asks the receiving node to drive a membership change through the log;
/// `id` correlates the ClientReply-style acknowledgement.
struct ConfigCommand {
  std::int64_t id = 0;
  rsm::ConfigChange change;
  friend bool operator==(const ConfigCommand&, const ConfigCommand&) = default;
};

std::vector<std::uint8_t> encode(const ConfigCommand& m);
std::optional<ConfigCommand> decode_config_command(std::span<const std::uint8_t> data);

}  // namespace twostep::codec
