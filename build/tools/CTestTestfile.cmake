# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_bounds "/root/repo/build/tools/twostep_cli" "bounds")
set_tests_properties(cli_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_object "/root/repo/build/tools/twostep_cli" "run" "--protocol" "object" "--e" "2" "--f" "2" "--crash" "3,4" "--propose" "0=42")
set_tests_properties(cli_run_object PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_paxos "/root/repo/build/tools/twostep_cli" "run" "--protocol" "paxos" "--f" "1" "--e" "0")
set_tests_properties(cli_run_paxos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_attack "/root/repo/build/tools/twostep_cli" "attack" "--target" "task" "--e" "2" "--f" "2")
set_tests_properties(cli_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fuzz "/root/repo/build/tools/twostep_cli" "fuzz" "--e" "1" "--f" "1" "--traces" "500")
set_tests_properties(cli_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
