# Empty dependencies file for twostep_cli.
# This may be replaced when dependencies are built.
