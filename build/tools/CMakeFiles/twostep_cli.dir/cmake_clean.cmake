file(REMOVE_RECURSE
  "CMakeFiles/twostep_cli.dir/twostep_cli.cpp.o"
  "CMakeFiles/twostep_cli.dir/twostep_cli.cpp.o.d"
  "twostep_cli"
  "twostep_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
