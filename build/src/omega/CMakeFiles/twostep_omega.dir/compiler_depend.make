# Empty compiler generated dependencies file for twostep_omega.
# This may be replaced when dependencies are built.
