file(REMOVE_RECURSE
  "libtwostep_omega.a"
)
