file(REMOVE_RECURSE
  "CMakeFiles/twostep_omega.dir/omega.cpp.o"
  "CMakeFiles/twostep_omega.dir/omega.cpp.o.d"
  "libtwostep_omega.a"
  "libtwostep_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
