file(REMOVE_RECURSE
  "CMakeFiles/twostep_rsm.dir/rsm.cpp.o"
  "CMakeFiles/twostep_rsm.dir/rsm.cpp.o.d"
  "libtwostep_rsm.a"
  "libtwostep_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
