# Empty compiler generated dependencies file for twostep_rsm.
# This may be replaced when dependencies are built.
