file(REMOVE_RECURSE
  "libtwostep_rsm.a"
)
