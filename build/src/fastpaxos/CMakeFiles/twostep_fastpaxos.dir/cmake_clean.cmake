file(REMOVE_RECURSE
  "CMakeFiles/twostep_fastpaxos.dir/fast_paxos.cpp.o"
  "CMakeFiles/twostep_fastpaxos.dir/fast_paxos.cpp.o.d"
  "libtwostep_fastpaxos.a"
  "libtwostep_fastpaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_fastpaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
