# Empty dependencies file for twostep_fastpaxos.
# This may be replaced when dependencies are built.
