file(REMOVE_RECURSE
  "libtwostep_fastpaxos.a"
)
