# Empty dependencies file for twostep_paxos.
# This may be replaced when dependencies are built.
