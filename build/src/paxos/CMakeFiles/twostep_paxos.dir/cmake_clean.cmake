file(REMOVE_RECURSE
  "CMakeFiles/twostep_paxos.dir/paxos.cpp.o"
  "CMakeFiles/twostep_paxos.dir/paxos.cpp.o.d"
  "libtwostep_paxos.a"
  "libtwostep_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
