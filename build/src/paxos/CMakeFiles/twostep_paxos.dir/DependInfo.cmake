
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paxos/paxos.cpp" "src/paxos/CMakeFiles/twostep_paxos.dir/paxos.cpp.o" "gcc" "src/paxos/CMakeFiles/twostep_paxos.dir/paxos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/twostep_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twostep_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/twostep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
