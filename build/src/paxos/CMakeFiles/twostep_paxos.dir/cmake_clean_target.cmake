file(REMOVE_RECURSE
  "libtwostep_paxos.a"
)
