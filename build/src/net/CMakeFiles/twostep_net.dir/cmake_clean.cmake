file(REMOVE_RECURSE
  "CMakeFiles/twostep_net.dir/latency.cpp.o"
  "CMakeFiles/twostep_net.dir/latency.cpp.o.d"
  "libtwostep_net.a"
  "libtwostep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
