file(REMOVE_RECURSE
  "libtwostep_net.a"
)
