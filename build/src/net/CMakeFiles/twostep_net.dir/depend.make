# Empty dependencies file for twostep_net.
# This may be replaced when dependencies are built.
