
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/latency.cpp" "src/net/CMakeFiles/twostep_net.dir/latency.cpp.o" "gcc" "src/net/CMakeFiles/twostep_net.dir/latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/twostep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twostep_util.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/twostep_consensus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
