file(REMOVE_RECURSE
  "libtwostep_core.a"
)
