file(REMOVE_RECURSE
  "CMakeFiles/twostep_core.dir/messages.cpp.o"
  "CMakeFiles/twostep_core.dir/messages.cpp.o.d"
  "CMakeFiles/twostep_core.dir/selection.cpp.o"
  "CMakeFiles/twostep_core.dir/selection.cpp.o.d"
  "CMakeFiles/twostep_core.dir/two_step.cpp.o"
  "CMakeFiles/twostep_core.dir/two_step.cpp.o.d"
  "CMakeFiles/twostep_core.dir/with_omega.cpp.o"
  "CMakeFiles/twostep_core.dir/with_omega.cpp.o.d"
  "libtwostep_core.a"
  "libtwostep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
