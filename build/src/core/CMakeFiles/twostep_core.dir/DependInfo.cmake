
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/twostep_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/twostep_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/twostep_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/twostep_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/two_step.cpp" "src/core/CMakeFiles/twostep_core.dir/two_step.cpp.o" "gcc" "src/core/CMakeFiles/twostep_core.dir/two_step.cpp.o.d"
  "/root/repo/src/core/with_omega.cpp" "src/core/CMakeFiles/twostep_core.dir/with_omega.cpp.o" "gcc" "src/core/CMakeFiles/twostep_core.dir/with_omega.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/consensus/CMakeFiles/twostep_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/twostep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/twostep_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twostep_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/twostep_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
