# Empty dependencies file for twostep_core.
# This may be replaced when dependencies are built.
