# Empty dependencies file for twostep_epaxos.
# This may be replaced when dependencies are built.
