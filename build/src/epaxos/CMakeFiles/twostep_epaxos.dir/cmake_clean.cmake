file(REMOVE_RECURSE
  "CMakeFiles/twostep_epaxos.dir/epaxos.cpp.o"
  "CMakeFiles/twostep_epaxos.dir/epaxos.cpp.o.d"
  "libtwostep_epaxos.a"
  "libtwostep_epaxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_epaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
