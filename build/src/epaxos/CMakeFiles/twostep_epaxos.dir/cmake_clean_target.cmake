file(REMOVE_RECURSE
  "libtwostep_epaxos.a"
)
