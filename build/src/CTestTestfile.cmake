# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("net")
subdirs("consensus")
subdirs("omega")
subdirs("core")
subdirs("paxos")
subdirs("fastpaxos")
subdirs("epaxos")
subdirs("rsm")
subdirs("lowerbound")
subdirs("modelcheck")
subdirs("harness")
subdirs("codec")
