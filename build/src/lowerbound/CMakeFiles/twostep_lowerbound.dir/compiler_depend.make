# Empty compiler generated dependencies file for twostep_lowerbound.
# This may be replaced when dependencies are built.
