file(REMOVE_RECURSE
  "libtwostep_lowerbound.a"
)
