file(REMOVE_RECURSE
  "CMakeFiles/twostep_lowerbound.dir/scenarios.cpp.o"
  "CMakeFiles/twostep_lowerbound.dir/scenarios.cpp.o.d"
  "libtwostep_lowerbound.a"
  "libtwostep_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
