# CMake generated Testfile for 
# Source directory: /root/repo/src/modelcheck
# Build directory: /root/repo/build/src/modelcheck
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
