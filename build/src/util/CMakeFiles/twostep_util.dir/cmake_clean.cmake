file(REMOVE_RECURSE
  "CMakeFiles/twostep_util.dir/log.cpp.o"
  "CMakeFiles/twostep_util.dir/log.cpp.o.d"
  "CMakeFiles/twostep_util.dir/table.cpp.o"
  "CMakeFiles/twostep_util.dir/table.cpp.o.d"
  "libtwostep_util.a"
  "libtwostep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
