# Empty dependencies file for twostep_util.
# This may be replaced when dependencies are built.
