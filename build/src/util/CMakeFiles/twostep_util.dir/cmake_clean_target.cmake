file(REMOVE_RECURSE
  "libtwostep_util.a"
)
