# Empty dependencies file for twostep_codec.
# This may be replaced when dependencies are built.
