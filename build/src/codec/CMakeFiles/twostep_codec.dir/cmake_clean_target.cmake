file(REMOVE_RECURSE
  "libtwostep_codec.a"
)
