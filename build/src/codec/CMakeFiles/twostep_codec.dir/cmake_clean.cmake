file(REMOVE_RECURSE
  "CMakeFiles/twostep_codec.dir/codec.cpp.o"
  "CMakeFiles/twostep_codec.dir/codec.cpp.o.d"
  "libtwostep_codec.a"
  "libtwostep_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
