# Empty dependencies file for twostep_sim.
# This may be replaced when dependencies are built.
