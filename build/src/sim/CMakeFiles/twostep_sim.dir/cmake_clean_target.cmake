file(REMOVE_RECURSE
  "libtwostep_sim.a"
)
