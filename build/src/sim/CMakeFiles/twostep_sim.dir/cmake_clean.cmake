file(REMOVE_RECURSE
  "CMakeFiles/twostep_sim.dir/simulator.cpp.o"
  "CMakeFiles/twostep_sim.dir/simulator.cpp.o.d"
  "libtwostep_sim.a"
  "libtwostep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
