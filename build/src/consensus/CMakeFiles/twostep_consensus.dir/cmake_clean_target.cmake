file(REMOVE_RECURSE
  "libtwostep_consensus.a"
)
