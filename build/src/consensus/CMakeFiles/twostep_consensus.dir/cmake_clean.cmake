file(REMOVE_RECURSE
  "CMakeFiles/twostep_consensus.dir/monitor.cpp.o"
  "CMakeFiles/twostep_consensus.dir/monitor.cpp.o.d"
  "libtwostep_consensus.a"
  "libtwostep_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twostep_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
