# Empty compiler generated dependencies file for twostep_consensus.
# This may be replaced when dependencies are built.
