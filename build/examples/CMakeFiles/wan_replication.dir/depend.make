# Empty dependencies file for wan_replication.
# This may be replaced when dependencies are built.
