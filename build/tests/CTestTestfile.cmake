# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_types[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_selection[1]_include.cmake")
include("/root/repo/build/tests/test_core_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_paxos[1]_include.cmake")
include("/root/repo/build/tests/test_fastpaxos[1]_include.cmake")
include("/root/repo/build/tests/test_omega[1]_include.cmake")
include("/root/repo/build/tests/test_twostep_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_lowerbound[1]_include.cmake")
include("/root/repo/build/tests/test_modelcheck[1]_include.cmake")
include("/root/repo/build/tests/test_epaxos[1]_include.cmake")
include("/root/repo/build/tests/test_rsm[1]_include.cmake")
include("/root/repo/build/tests/test_with_omega[1]_include.cmake")
include("/root/repo/build/tests/test_codec[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
