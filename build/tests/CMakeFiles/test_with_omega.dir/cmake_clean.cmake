file(REMOVE_RECURSE
  "CMakeFiles/test_with_omega.dir/test_with_omega.cpp.o"
  "CMakeFiles/test_with_omega.dir/test_with_omega.cpp.o.d"
  "test_with_omega"
  "test_with_omega.pdb"
  "test_with_omega[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_with_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
