# Empty compiler generated dependencies file for test_with_omega.
# This may be replaced when dependencies are built.
