# Empty dependencies file for test_core_protocol.
# This may be replaced when dependencies are built.
