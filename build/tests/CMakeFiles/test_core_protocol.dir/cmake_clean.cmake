file(REMOVE_RECURSE
  "CMakeFiles/test_core_protocol.dir/test_core_protocol.cpp.o"
  "CMakeFiles/test_core_protocol.dir/test_core_protocol.cpp.o.d"
  "test_core_protocol"
  "test_core_protocol.pdb"
  "test_core_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
