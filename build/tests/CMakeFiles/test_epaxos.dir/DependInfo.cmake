
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_epaxos.cpp" "tests/CMakeFiles/test_epaxos.dir/test_epaxos.cpp.o" "gcc" "tests/CMakeFiles/test_epaxos.dir/test_epaxos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/twostep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/paxos/CMakeFiles/twostep_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/fastpaxos/CMakeFiles/twostep_fastpaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/twostep_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/epaxos/CMakeFiles/twostep_epaxos.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/twostep_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/twostep_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/twostep_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/twostep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/omega/CMakeFiles/twostep_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/twostep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/twostep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
