# Empty compiler generated dependencies file for test_epaxos.
# This may be replaced when dependencies are built.
