file(REMOVE_RECURSE
  "CMakeFiles/test_epaxos.dir/test_epaxos.cpp.o"
  "CMakeFiles/test_epaxos.dir/test_epaxos.cpp.o.d"
  "test_epaxos"
  "test_epaxos.pdb"
  "test_epaxos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epaxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
