file(REMOVE_RECURSE
  "CMakeFiles/test_twostep_matrix.dir/test_twostep_matrix.cpp.o"
  "CMakeFiles/test_twostep_matrix.dir/test_twostep_matrix.cpp.o.d"
  "test_twostep_matrix"
  "test_twostep_matrix.pdb"
  "test_twostep_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twostep_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
