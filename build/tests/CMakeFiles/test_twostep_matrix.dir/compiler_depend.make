# Empty compiler generated dependencies file for test_twostep_matrix.
# This may be replaced when dependencies are built.
