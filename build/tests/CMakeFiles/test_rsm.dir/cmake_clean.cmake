file(REMOVE_RECURSE
  "CMakeFiles/test_rsm.dir/test_rsm.cpp.o"
  "CMakeFiles/test_rsm.dir/test_rsm.cpp.o.d"
  "test_rsm"
  "test_rsm.pdb"
  "test_rsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
