file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_rsm.dir/bench_f4_rsm.cpp.o"
  "CMakeFiles/bench_f4_rsm.dir/bench_f4_rsm.cpp.o.d"
  "bench_f4_rsm"
  "bench_f4_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
