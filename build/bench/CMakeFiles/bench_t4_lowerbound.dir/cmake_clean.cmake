file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_lowerbound.dir/bench_t4_lowerbound.cpp.o"
  "CMakeFiles/bench_t4_lowerbound.dir/bench_t4_lowerbound.cpp.o.d"
  "bench_t4_lowerbound"
  "bench_t4_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
