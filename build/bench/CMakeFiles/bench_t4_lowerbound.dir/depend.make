# Empty dependencies file for bench_t4_lowerbound.
# This may be replaced when dependencies are built.
