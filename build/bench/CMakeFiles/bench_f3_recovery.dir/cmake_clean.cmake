file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_recovery.dir/bench_f3_recovery.cpp.o"
  "CMakeFiles/bench_f3_recovery.dir/bench_f3_recovery.cpp.o.d"
  "bench_f3_recovery"
  "bench_f3_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
