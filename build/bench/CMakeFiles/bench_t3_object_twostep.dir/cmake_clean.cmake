file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_object_twostep.dir/bench_t3_object_twostep.cpp.o"
  "CMakeFiles/bench_t3_object_twostep.dir/bench_t3_object_twostep.cpp.o.d"
  "bench_t3_object_twostep"
  "bench_t3_object_twostep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_object_twostep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
