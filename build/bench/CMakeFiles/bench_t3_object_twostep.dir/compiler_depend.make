# Empty compiler generated dependencies file for bench_t3_object_twostep.
# This may be replaced when dependencies are built.
