file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_task_twostep.dir/bench_t2_task_twostep.cpp.o"
  "CMakeFiles/bench_t2_task_twostep.dir/bench_t2_task_twostep.cpp.o.d"
  "bench_t2_task_twostep"
  "bench_t2_task_twostep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_task_twostep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
