# Empty dependencies file for bench_t2_task_twostep.
# This may be replaced when dependencies are built.
