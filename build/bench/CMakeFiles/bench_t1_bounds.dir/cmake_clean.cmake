file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_bounds.dir/bench_t1_bounds.cpp.o"
  "CMakeFiles/bench_t1_bounds.dir/bench_t1_bounds.cpp.o.d"
  "bench_t1_bounds"
  "bench_t1_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
