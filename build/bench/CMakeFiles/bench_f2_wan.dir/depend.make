# Empty dependencies file for bench_f2_wan.
# This may be replaced when dependencies are built.
