file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_wan.dir/bench_f2_wan.cpp.o"
  "CMakeFiles/bench_f2_wan.dir/bench_f2_wan.cpp.o.d"
  "bench_f2_wan"
  "bench_f2_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
