#!/usr/bin/env python3
"""CI validator for the observability artifacts (PR 6).

Two sub-commands, both exiting non-zero with a diagnostic on any
malformed artifact:

  check_obs_artifacts.py trace MERGED.json [--min-processes N]
      Validates a `twostep tracemerge` Chrome-trace: well-formed JSON,
      process-name metadata, complete ("X") span events from at least
      N distinct processes, every non-root parent id resolving to a
      recorded span, at least one cross-process causal flow arrow, and
      a WAL-fsync span (the acceptance criterion for wire-propagated
      tracing).

  check_obs_artifacts.py bench FILE.json [--require FIELD ...]
      Validates a BENCH_*.json artifact against the twostep-bench/1
      schema documented in EXPERIMENTS.md: schema tag, bench name,
      non-empty `rows` of flat objects, and (optionally) required row
      fields such as rtt_p50_us / rtt_p99_us.

  check_obs_artifacts.py n3 FILE.json [--min-speedup X]
      Validates BENCH_n3_saturation.json (the N3 saturation curve):
      twostep-bench/1 framing plus the curve's own shape — exactly one
      `baseline` row with a positive closed-loop rate, at least three
      `point` rows each carrying offered/achieved rates and an RTT
      histogram, and one `summary` row whose knee and speedup fields are
      consistent with the points.  With --min-speedup, additionally
      require summary.speedup >= X (the >= 50x acceptance gate; leave it
      off on shared CI runners, whose fsync behavior varies wildly).

  check_obs_artifacts.py n4 FILE.json [--min-placements N]
      Validates BENCH_n4_geo.json (per-region commit latency under
      emulated WAN links): twostep-bench/1 framing, rows for all four
      protocols (task/object/fastpaxos/epaxos) across at least N geo
      placements, each measured both with and without conflicts, every
      decided row carrying ordered rtt_p50/p90/p99 quantiles, and every
      (protocol, placement, conflict) cell deciding in at least one
      region.

  check_obs_artifacts.py n5 FILE.json [--max-rejoin-ratio X]
      Validates BENCH_n5_rejoin.json (wiped-replica rejoin: snapshot
      state transfer vs genesis decide replay): twostep-bench/1 framing,
      exactly one genesis_baseline / snapshot_rejoin / summary row, both
      runs clean with the applied-log audit passing, the snapshot run
      actually snapshotting + truncating + installing a transfer, and the
      snapshot rejoin strictly faster than genesis replay.  With
      --max-rejoin-ratio, additionally require summary.rejoin_ratio <= X.

  check_obs_artifacts.py n6 FILE.json [--max-unavailability-us U]
      Validates BENCH_n6_reconfig.json (live membership reconfiguration
      + leader failover under a closed-loop client): twostep-bench/1
      framing, exactly one steady / join / remove / leader_kill / summary
      row, every phase committing at least one command, the summary
      clean (ok, joiner_healed, audit_ok all true, client_lost == 0),
      and summary.unavailability_us consistent with the phase gaps.
      With --max-unavailability-us, additionally require the worst
      change-induced gap to stay under U microseconds.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_artifacts: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def check_trace(path: str, min_processes: int) -> None:
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents")

    named_pids = set()
    span_pids = {}  # span id -> pid
    parents = {}  # span id -> parent id
    names = set()
    flow_starts = flow_finishes = 0
    for ev in events:
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"{path}: event without a phase: {ev!r}")
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev["pid"])
        elif ph == "X":
            args = ev.get("args", {})
            if "dur" not in ev or "ts" not in ev:
                fail(f"{path}: X event without ts/dur: {ev!r}")
            span = args.get("span")
            if not isinstance(span, str):
                fail(f"{path}: X event span id must be a decimal string: {ev!r}")
            span_pids[span] = ev["pid"]
            parents[span] = args.get("parent", "0")
            names.add(ev.get("name"))
        elif ph == "s":
            flow_starts += 1
        elif ph == "f":
            flow_finishes += 1

    if len(named_pids) < min_processes:
        fail(f"{path}: only {len(named_pids)} named processes, need {min_processes}")
    pids_with_spans = set(span_pids.values())
    if len(pids_with_spans) < min_processes:
        fail(f"{path}: spans from only {len(pids_with_spans)} processes, need {min_processes}")
    if "wal.fsync" not in names:
        fail(f"{path}: no wal.fsync span (storage tracing is broken)")
    dangling = [s for s, p in parents.items() if p != "0" and p not in span_pids]
    if dangling:
        fail(f"{path}: spans with dangling parents: {dangling[:5]}")
    cross = [s for s, p in parents.items() if p != "0" and span_pids[p] != span_pids[s]]
    if not cross:
        fail(f"{path}: no cross-process parent link — trace contexts did not propagate")
    if flow_starts == 0 or flow_starts != flow_finishes:
        fail(f"{path}: unbalanced causal flow arrows ({flow_starts} s / {flow_finishes} f)")
    print(
        f"{path}: OK — {len(span_pids)} spans, {len(pids_with_spans)} processes, "
        f"{len(cross)} cross-process links, {flow_starts} flow arrows"
    )


def check_bench(path: str, required: list) -> None:
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != "twostep-bench/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, expected 'twostep-bench/1'")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(f"{path}: missing bench name")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: missing or empty rows")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"{path}: row {i} is not an object")
        for field in required:
            if field not in row:
                fail(f"{path}: row {i} is missing required field {field!r}")
            if isinstance(row[field], str):
                fail(f"{path}: row {i} field {field!r} should be numeric, got a string")
    print(f"{path}: OK — bench {doc['bench']!r}, {len(rows)} rows")


def _numeric(path, row, i, field):
    v = row.get(field)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(f"{path}: row {i} field {field!r} must be numeric, got {v!r}")
    return v


def check_n3(path: str, min_speedup: float) -> None:
    doc = load(path)
    if not isinstance(doc, dict) or doc.get("schema") != "twostep-bench/1":
        fail(f"{path}: schema is {doc.get('schema') if isinstance(doc, dict) else doc!r}, "
             "expected 'twostep-bench/1'")
    if doc.get("bench") != "n3_saturation":
        fail(f"{path}: bench is {doc.get('bench')!r}, expected 'n3_saturation'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: missing or empty rows")

    baselines = [r for r in rows if isinstance(r, dict) and r.get("kind") == "baseline"]
    points = [r for r in rows if isinstance(r, dict) and r.get("kind") == "point"]
    summaries = [r for r in rows if isinstance(r, dict) and r.get("kind") == "summary"]
    if len(baselines) != 1:
        fail(f"{path}: expected exactly one baseline row, found {len(baselines)}")
    if len(points) < 3:
        fail(f"{path}: expected >= 3 curve points, found {len(points)}")
    if len(summaries) != 1:
        fail(f"{path}: expected exactly one summary row, found {len(summaries)}")

    base = baselines[0]
    base_rate = _numeric(path, base, "baseline", "closed_loop_rate")
    if base_rate <= 0:
        fail(f"{path}: baseline closed_loop_rate is {base_rate}, must be > 0")
    if base.get("ok") is not True:
        fail(f"{path}: baseline run did not complete cleanly (ok={base.get('ok')!r})")

    for i, row in enumerate(points):
        offered = _numeric(path, row, i, "offered_rate")
        achieved = _numeric(path, row, i, "achieved_rate")
        _numeric(path, row, i, "offered_target")
        _numeric(path, row, i, "lost")
        if offered <= 0:
            fail(f"{path}: point {i} offered_rate is {offered}, must be > 0")
        if achieved < 0 or achieved > offered * 1.5:
            fail(f"{path}: point {i} achieved_rate {achieved} implausible vs offered {offered}")
        if "rtt_us_p99" not in row and "rtt_us" not in row:
            fail(f"{path}: point {i} has no RTT histogram fields")

    summary = summaries[0]
    knee = _numeric(path, summary, "summary", "knee_achieved")
    speedup = _numeric(path, summary, "summary", "speedup")
    _numeric(path, summary, "summary", "knee_offered")
    best = max(p["achieved_rate"] for p in points)
    if knee > best * 1.01:
        fail(f"{path}: summary knee_achieved {knee} exceeds best point {best}")
    if abs(speedup - knee / base_rate) > 0.1 * max(1.0, speedup):
        fail(f"{path}: summary speedup {speedup} inconsistent with knee/baseline "
             f"{knee / base_rate:.2f}")
    if speedup < min_speedup:
        fail(f"{path}: speedup {speedup:.1f}x below the required {min_speedup}x")
    print(
        f"{path}: OK — baseline {base_rate:.0f} cmds/s, {len(points)} points, "
        f"knee {knee:.0f} cmds/s ({speedup:.1f}x)"
    )


def check_n4(path: str, min_placements: int) -> None:
    doc = load(path)
    if not isinstance(doc, dict) or doc.get("schema") != "twostep-bench/1":
        fail(f"{path}: schema is {doc.get('schema') if isinstance(doc, dict) else doc!r}, "
             "expected 'twostep-bench/1'")
    if doc.get("bench") != "n4_geo":
        fail(f"{path}: bench is {doc.get('bench')!r}, expected 'n4_geo'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: missing or empty rows")

    protocols = {"task", "object", "fastpaxos", "epaxos"}
    cells = {}  # (protocol, placement, conflict) -> decided sample count
    placements = set()
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"{path}: row {i} is not an object")
        protocol = row.get("protocol")
        placement = row.get("placement")
        conflict = row.get("conflict")
        if protocol not in protocols:
            fail(f"{path}: row {i} has unknown protocol {protocol!r}")
        if not isinstance(placement, str) or not placement:
            fail(f"{path}: row {i} missing placement")
        if not isinstance(conflict, bool):
            fail(f"{path}: row {i} conflict must be a boolean, got {conflict!r}")
        if not isinstance(row.get("region"), str) or not row["region"]:
            fail(f"{path}: row {i} missing region")
        if _numeric(path, row, i, "n") < 3:
            fail(f"{path}: row {i} cluster size {row['n']} too small")
        _numeric(path, row, i, "undecided")
        samples = _numeric(path, row, i, "samples")
        if samples > 0:
            p50 = _numeric(path, row, i, "rtt_p50_us")
            p90 = _numeric(path, row, i, "rtt_p90_us")
            p99 = _numeric(path, row, i, "rtt_p99_us")
            if not 0 < p50 <= p90 <= p99:
                fail(f"{path}: row {i} quantiles not ordered: "
                     f"p50={p50} p90={p90} p99={p99}")
        placements.add(placement)
        key = (protocol, placement, conflict)
        cells[key] = cells.get(key, 0) + (1 if samples > 0 else 0)

    if len(placements) < min_placements:
        fail(f"{path}: found {len(placements)} placement(s) {sorted(placements)}, "
             f"need >= {min_placements}")
    for protocol in sorted(protocols):
        for placement in sorted(placements):
            for conflict in (False, True):
                key = (protocol, placement, conflict)
                if key not in cells:
                    fail(f"{path}: missing cell protocol={protocol} "
                         f"placement={placement} conflict={conflict}")
                if cells[key] == 0:
                    fail(f"{path}: cell protocol={protocol} placement={placement} "
                         f"conflict={conflict} decided nothing in any region")
    print(
        f"{path}: OK — {len(rows)} rows, {len(placements)} placements, "
        f"all {len(protocols)} protocols measured with and without conflicts"
    )


def check_n5(path: str, max_rejoin_ratio: float) -> None:
    doc = load(path)
    if not isinstance(doc, dict) or doc.get("schema") != "twostep-bench/1":
        fail(f"{path}: schema is {doc.get('schema') if isinstance(doc, dict) else doc!r}, "
             "expected 'twostep-bench/1'")
    if doc.get("bench") != "n5_rejoin":
        fail(f"{path}: bench is {doc.get('bench')!r}, expected 'n5_rejoin'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: missing or empty rows")

    by_kind = {}
    for r in rows:
        if isinstance(r, dict):
            by_kind.setdefault(r.get("kind"), []).append(r)
    for kind in ("genesis_baseline", "snapshot_rejoin", "summary"):
        if len(by_kind.get(kind, [])) != 1:
            fail(f"{path}: expected exactly one {kind!r} row, "
                 f"found {len(by_kind.get(kind, []))}")

    genesis = by_kind["genesis_baseline"][0]
    snap = by_kind["snapshot_rejoin"][0]
    summary = by_kind["summary"][0]
    for name, row in (("genesis_baseline", genesis), ("snapshot_rejoin", snap)):
        if row.get("ok") is not True or row.get("audit_ok") is not True:
            fail(f"{path}: {name} run not clean (ok={row.get('ok')!r}, "
                 f"audit_ok={row.get('audit_ok')!r})")
        if _numeric(path, row, name, "commands") <= 0:
            fail(f"{path}: {name} applied no commands")
        if _numeric(path, row, name, "rejoin_us") <= 0:
            fail(f"{path}: {name} has no rejoin measurement")

    # The snapshot run must actually have exercised the machinery: real
    # checkpoints, real WAL truncation, and a real state transfer — else
    # the comparison silently degenerates to two genesis replays.
    if _numeric(path, snap, "snapshot_rejoin", "snapshots_written") <= 0:
        fail(f"{path}: snapshot run wrote no snapshots")
    if _numeric(path, snap, "snapshot_rejoin", "wal_truncated_records") <= 0:
        fail(f"{path}: snapshot run truncated no WAL records")
    if _numeric(path, snap, "snapshot_rejoin", "transfers_installed") <= 0:
        fail(f"{path}: reborn replica never installed a snapshot transfer")

    genesis_us = _numeric(path, summary, "summary", "genesis_rejoin_us")
    snap_us = _numeric(path, summary, "summary", "snapshot_rejoin_us")
    ratio = _numeric(path, summary, "summary", "rejoin_ratio")
    if summary.get("ok") is not True or summary.get("audit_ok") is not True:
        fail(f"{path}: summary not clean (ok={summary.get('ok')!r}, "
             f"audit_ok={summary.get('audit_ok')!r})")
    if genesis_us <= 0 or abs(ratio - snap_us / genesis_us) > 0.01 * max(1.0, ratio):
        fail(f"{path}: summary rejoin_ratio {ratio} inconsistent with "
             f"{snap_us}/{genesis_us}")
    if ratio >= 1.0:
        fail(f"{path}: snapshot rejoin ({snap_us:.0f} us) is not strictly faster "
             f"than genesis replay ({genesis_us:.0f} us)")
    if max_rejoin_ratio > 0 and ratio > max_rejoin_ratio:
        fail(f"{path}: rejoin_ratio {ratio:.3f} above the required "
             f"{max_rejoin_ratio}")
    print(
        f"{path}: OK — genesis {genesis_us / 1000:.0f} ms, snapshot "
        f"{snap_us / 1000:.0f} ms (ratio {ratio:.3f}), "
        f"{snap.get('snapshots_written')} snapshots, "
        f"{snap.get('transfer_bytes')} transfer bytes, audit clean"
    )


def check_n6(path: str, max_unavailability_us: float) -> None:
    doc = load(path)
    if not isinstance(doc, dict) or doc.get("schema") != "twostep-bench/1":
        fail(f"{path}: schema is {doc.get('schema') if isinstance(doc, dict) else doc!r}, "
             "expected 'twostep-bench/1'")
    if doc.get("bench") != "n6_reconfig":
        fail(f"{path}: bench is {doc.get('bench')!r}, expected 'n6_reconfig'")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: missing or empty rows")

    by_kind = {}
    for r in rows:
        if isinstance(r, dict):
            by_kind.setdefault(r.get("kind"), []).append(r)
    phases = ("steady", "join", "remove", "leader_kill")
    for kind in phases + ("summary",):
        if len(by_kind.get(kind, [])) != 1:
            fail(f"{path}: expected exactly one {kind!r} row, "
                 f"found {len(by_kind.get(kind, []))}")

    # Every phase must have seen real traffic — a silent client (crashed,
    # never connected) would otherwise report a perfect zero-gap run.
    for kind in phases:
        row = by_kind[kind][0]
        if _numeric(path, row, kind, "commits") <= 0:
            fail(f"{path}: phase {kind!r} committed nothing")
        _numeric(path, row, kind, "max_gap_us")

    summary = by_kind["summary"][0]
    for flag in ("ok", "joiner_healed", "audit_ok"):
        if summary.get(flag) is not True:
            fail(f"{path}: summary.{flag} is {summary.get(flag)!r}, expected true")
    if _numeric(path, summary, "summary", "client_lost") != 0:
        fail(f"{path}: client lost {summary.get('client_lost')} request(s)")

    unavailability_us = _numeric(path, summary, "summary", "unavailability_us")
    worst_change_gap = max(
        _numeric(path, by_kind[k][0], k, "max_gap_us")
        for k in ("join", "remove", "leader_kill"))
    if unavailability_us != worst_change_gap:
        fail(f"{path}: summary.unavailability_us {unavailability_us} inconsistent "
             f"with worst phase gap {worst_change_gap}")
    if max_unavailability_us > 0 and unavailability_us > max_unavailability_us:
        fail(f"{path}: unavailability {unavailability_us:.0f} us above the required "
             f"{max_unavailability_us:.0f} us")
    print(
        f"{path}: OK — join gap {by_kind['join'][0].get('max_gap_us') / 1000:.0f} ms, "
        f"remove gap {by_kind['remove'][0].get('max_gap_us') / 1000:.0f} ms, "
        f"leader kill gap {by_kind['leader_kill'][0].get('max_gap_us') / 1000:.0f} ms, "
        f"joiner healed, audit clean"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    t = sub.add_parser("trace", help="validate a merged Chrome trace")
    t.add_argument("file")
    t.add_argument("--min-processes", type=int, default=3)
    b = sub.add_parser("bench", help="validate a BENCH_*.json artifact")
    b.add_argument("file")
    b.add_argument("--require", nargs="*", default=[])
    n = sub.add_parser("n3", help="validate the N3 saturation-curve artifact")
    n.add_argument("file")
    n.add_argument("--min-speedup", type=float, default=0.0)
    n4 = sub.add_parser("n4", help="validate the N4 per-region geo-latency artifact")
    n4.add_argument("file")
    n4.add_argument("--min-placements", type=int, default=2)
    n5 = sub.add_parser("n5", help="validate the N5 wiped-replica rejoin artifact")
    n5.add_argument("file")
    n5.add_argument("--max-rejoin-ratio", type=float, default=0.0)
    n6 = sub.add_parser("n6", help="validate the N6 reconfig + failover artifact")
    n6.add_argument("file")
    n6.add_argument("--max-unavailability-us", type=float, default=0.0)
    args = parser.parse_args()
    if args.cmd == "trace":
        check_trace(args.file, args.min_processes)
    elif args.cmd == "n3":
        check_n3(args.file, args.min_speedup)
    elif args.cmd == "n4":
        check_n4(args.file, args.min_placements)
    elif args.cmd == "n5":
        check_n5(args.file, args.max_rejoin_ratio)
    elif args.cmd == "n6":
        check_n6(args.file, args.max_unavailability_us)
    else:
        check_bench(args.file, args.require)


if __name__ == "__main__":
    main()
