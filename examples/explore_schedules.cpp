// Adversarial exploration: see the lower bound with your own eyes.
//
//   $ ./explore_schedules
//
// Part 1 replays the Appendix B.1 run-splicing construction against the
// task protocol one process below its Theorem 5 bound and prints the
// round-by-round narrative ending in an Agreement violation; then it shows
// the same attack defeated at the bound.
//
// Part 2 lets the schedule fuzzer rediscover a violation from random
// schedules alone, and verifies the found schedule replays.
#include <cstdio>

#include "core/two_step.hpp"
#include "lowerbound/scenarios.hpp"
#include "modelcheck/explorer.hpp"

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

int main() {
  std::printf("== Part 1: the Appendix B.1 construction (e=2, f=2) ==\n\n");
  const auto attack = lowerbound::task_below_bound_violation(2, 2);
  std::printf("task protocol at n = %d (one below the bound %d):\n", attack.n,
              SystemConfig::min_processes_task(2, 2));
  for (const auto& line : attack.narrative) std::printf("  %s\n", line.c_str());

  const auto defense = lowerbound::task_at_bound_defense(2, 2);
  std::printf("\nsame attack at n = %d (the bound):\n", defense.n);
  for (const auto& line : defense.narrative) std::printf("  %s\n", line.c_str());

  std::printf("\n== Part 2: the fuzzer finds a violation on its own ==\n\n");
  const SystemConfig cfg{5, 2, 2};  // 2e+f-1
  modelcheck::Scenario<core::TwoStepProcess> scenario;
  scenario.config = cfg;
  scenario.factory = [cfg](consensus::Env<core::Message>& env, ProcessId) {
    core::Options o;
    o.mode = core::Mode::kTask;
    o.delta = 100;
    o.leader_of = [] { return ProcessId{0}; };
    return std::make_unique<core::TwoStepProcess>(env, cfg, o);
  };
  scenario.setup = [](modelcheck::DirectDrive<core::TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
  };
  scenario.may_crash = {0, 1, 2, 3, 4};
  scenario.crash_budget = 2;

  const auto result = modelcheck::Explorer<core::TwoStepProcess>::fuzz(
      scenario, /*traces=*/50000, /*seed=*/3, /*max_steps=*/250);
  if (!result.violation) {
    std::printf("no violation found in %ld random schedules (unexpected)\n", result.traces);
    return 1;
  }
  std::printf("violation after %ld random schedules: %s\n", result.traces,
              result.what.c_str());
  std::printf("offending schedule has %zu adversary choices; replaying...\n",
              result.schedule.size());
  auto replay = modelcheck::Explorer<core::TwoStepProcess>::replay_schedule(scenario,
                                                                            result.schedule);
  std::printf("replay verdict: %s\n",
              replay->monitor().safe() ? "SAFE (replay mismatch!)" : "violation reproduced");
  return replay->monitor().safe() ? 1 : 0;
}
