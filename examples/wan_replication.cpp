// Geo-replicated state machine: the paper's practical motivation, end to
// end.  Five replicas in five cloud regions run the RSM built on the
// two-step consensus object; clients in each region submit commands to
// their local proxy and we report the proxy-side commit latency.
//
//   $ ./wan_replication
//
// Compare the "fast path" commits (two one-way delays to the 2 nearest of 4
// remote regions) with what a 7-replica Fast Paxos deployment would need
// (run bench_f2_wan for the full comparison).
#include <cstdio>

#include "harness/run_spec.hpp"
#include "util/stats.hpp"

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

int main() {
  const SystemConfig config{5, /*f=*/2, /*e=*/2};
  const char* region[] = {"us-east", "us-west", "eu-west", "eu-central", "tokyo"};

  auto model = std::make_unique<net::WanMatrix>(
      net::WanMatrix::nine_regions(2).restrict({0, 1, 2, 3, 4}));
  const sim::Tick delta = model->delta();
  auto runner = harness::RunSpec(config).model(std::move(model)).seed(2026).rsm();

  // Each proxy records its own commit latencies.
  std::vector<util::Summary> latency(5);
  for (ProcessId p = 0; p < config.n; ++p) {
    runner->cluster().process(p).on_commit =
        [&latency, &runner, p](rsm::Command, sim::Tick submitted, std::int32_t) {
          latency[static_cast<std::size_t>(p)].add(
              static_cast<double>(runner->cluster().now() - submitted));
        };
  }

  runner->cluster().start_all();

  // One client per region, three commands each, spaced well apart so the
  // fast path is contention-free (the common case for a sharded workload).
  std::int64_t payload = 1;
  sim::Tick at = 0;
  for (int round = 0; round < 3; ++round) {
    for (ProcessId p = 0; p < config.n; ++p) {
      const std::int64_t this_payload = payload++;
      runner->cluster().simulator().schedule_at(at, [&runner, p, this_payload] {
        runner->cluster().process(p).submit(this_payload);
      });
      at += 4 * delta;  // quiesce between commands
    }
  }
  runner->cluster().run();

  std::printf("geo-replicated RSM over two-step consensus (n=5, e=2, f=2)\n");
  std::printf("delta (worst link + jitter) = %lld ms\n\n", static_cast<long long>(delta));
  std::printf("%-12s %10s %10s\n", "proxy", "commits", "mean ms");
  for (ProcessId p = 0; p < config.n; ++p) {
    auto& s = latency[static_cast<std::size_t>(p)];
    std::printf("%-12s %10zu %10.0f\n", region[p], s.count(), s.mean());
  }

  // Logs must be identical at all replicas.
  const auto prefix = runner->cluster().process(0).applied_prefix();
  bool identical = true;
  for (ProcessId p = 1; p < config.n; ++p)
    for (std::int32_t slot = 0; slot < prefix; ++slot)
      identical = identical && runner->cluster().process(p).decision(slot) ==
                                   runner->cluster().process(0).decision(slot);
  std::printf("\nreplicated log: %d slots, %s at all replicas\n", prefix,
              identical ? "identical" : "DIVERGENT");
  return identical ? 0 : 1;
}
