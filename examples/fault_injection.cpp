// Fault injection: watch the slow path save a fast decision.
//
//   $ ./fault_injection
//
// A proposer wins the fast path and crashes before anyone learns its
// decision; the Ω-elected leader runs a ballot, and the value-selection
// rule (Figure 1 lines 22-31) re-derives the decided value from the
// surviving votes.  The full message trace is printed.
#include <cstdio>

#include "core/messages.hpp"
#include "harness/runners.hpp"

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

int main() {
  const SystemConfig config{3, /*f=*/1, /*e=*/1};  // the task bound for e=1, f=1
  const sim::Tick delta = 100;

  auto runner = harness::make_core_runner(config, core::Mode::kTask, delta);
  runner->cluster().network().enable_trace();

  runner->cluster().start_all();
  // p2 proposes the highest value and crashes right after broadcasting.
  runner->cluster().propose(2, Value{9});
  runner->cluster().crash(2);
  runner->cluster().propose(0, Value{1});
  runner->cluster().propose(1, Value{2});
  runner->cluster().run();

  std::printf("message trace (send -> deliver, '-' = lost to a crash):\n");
  for (const auto& entry : runner->cluster().network().trace()) {
    std::printf("  t=%4lld  p%d -> p%d  %-40s  %s\n",
                static_cast<long long>(entry.send_time), entry.from, entry.to,
                core::to_string(entry.payload).c_str(),
                entry.deliver_time < 0
                    ? "-"
                    : ("delivered t=" + std::to_string(entry.deliver_time)).c_str());
  }

  const auto& monitor = runner->monitor();
  std::printf("\np2 proposed 9, got votes from p0 and p1, and crashed.\n");
  for (ProcessId p = 0; p < 2; ++p) {
    std::printf("p%d decided %s at t=%lld (fast path would have been t=%lld)\n", p,
                monitor.decision(p)->to_string().c_str(),
                static_cast<long long>(*monitor.decision_time(p)),
                static_cast<long long>(2 * delta));
  }
  const bool recovered = monitor.decision(0) == Value{9};
  std::printf("the crashed proposer's value was %s by the slow path\n",
              recovered ? "RECOVERED" : "LOST");
  return monitor.safe() && recovered ? 0 : 1;
}
