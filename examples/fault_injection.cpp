// Fault injection: watch the slow path save a fast decision, then watch a
// ReliableChannel carry consensus through a lossy, partitioned network.
//
//   $ ./fault_injection
//
// Part 1 — crash recovery: a proposer wins the fast path and crashes before
// anyone learns its decision; the Ω-elected leader runs a ballot, and the
// value-selection rule (Figure 1 lines 22-31) re-derives the decided value
// from the surviving votes.  The full message trace is printed, with the
// DropReason of every lost message.
//
// Part 2 — chaos: the same protocol runs under a deterministic FaultPlan
// (20% message drop, duplication, a partition that heals) with a
// ReliableChannel restoring the reliable-link abstraction the paper's
// Definition 2 assumes.  Safety holds, everyone decides, and the
// retransmission statistics are printed.
#include <cstdio>
#include <memory>

#include "core/messages.hpp"
#include "faults/fault_plan.hpp"
#include "harness/run_spec.hpp"

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

namespace {

bool crash_recovery_demo() {
  const SystemConfig config{3, /*f=*/1, /*e=*/1};  // the task bound for e=1, f=1
  const sim::Tick delta = 100;

  auto runner = harness::RunSpec(config).delta(delta).trace().core(core::Mode::kTask);

  runner->cluster().start_all();
  // p2 proposes the highest value and crashes right after broadcasting.
  runner->cluster().propose(2, Value{9});
  runner->cluster().crash(2);
  runner->cluster().propose(0, Value{1});
  runner->cluster().propose(1, Value{2});
  runner->cluster().run();

  std::printf("message trace (send -> deliver):\n");
  for (const auto& entry : runner->cluster().network().trace()) {
    std::printf("  t=%4lld  p%d -> p%d  %-40s  %s\n",
                static_cast<long long>(entry.send_time), entry.from, entry.to,
                core::to_string(entry.payload).c_str(),
                entry.deliver_time < 0
                    ? ("lost: " + std::string(faults::drop_reason_name(entry.drop))).c_str()
                    : ("delivered t=" + std::to_string(entry.deliver_time)).c_str());
  }

  const auto& monitor = runner->monitor();
  std::printf("\np2 proposed 9, got votes from p0 and p1, and crashed.\n");
  for (ProcessId p = 0; p < 2; ++p) {
    std::printf("p%d decided %s at t=%lld (fast path would have been t=%lld)\n", p,
                monitor.decision(p)->to_string().c_str(),
                static_cast<long long>(*monitor.decision_time(p)),
                static_cast<long long>(2 * delta));
  }
  const bool recovered = monitor.decision(0) == Value{9};
  std::printf("the crashed proposer's value was %s by the slow path\n\n",
              recovered ? "RECOVERED" : "LOST");
  return monitor.safe() && recovered;
}

bool chaos_demo() {
  const SystemConfig config{5, /*f=*/2, /*e=*/2};  // the object bound for e=2, f=2
  const sim::Tick delta = 100;

  // Deterministic adversary: 20% drop, 10% duplication, and a partition
  // isolating {p0, p1} during [150, 500).  Same seed, same faults — always.
  auto plan = std::make_shared<faults::FaultPlan>(/*seed=*/2026);
  plan->drop(0.20).duplicate(0.10).partition_cut({0, 1}, 150, 500);

  auto runner = harness::RunSpec(config)
                    .delta(delta)
                    .seed(2026)
                    .fault_plan(plan)
                    .reliable()  // acks + retransmission + dedup
                    .core(core::Mode::kObject);

  runner->cluster().start_all();
  for (ProcessId p = 0; p < config.n; ++p) runner->cluster().propose(p, Value{100 + p});
  runner->cluster().run();

  const auto& monitor = runner->monitor();
  const auto* channel = runner->cluster().reliable_channel();
  std::printf("chaos run: %llu drops injected, %llu duplicates injected\n",
              static_cast<unsigned long long>(plan->injected_drops()),
              static_cast<unsigned long long>(plan->injected_duplicates()));
  std::printf("reliable channel: %llu retransmissions, %llu duplicate deliveries suppressed\n",
              static_cast<unsigned long long>(channel->retransmits()),
              static_cast<unsigned long long>(channel->duplicates_suppressed()));
  bool all_decided = true;
  for (ProcessId p = 0; p < config.n; ++p) {
    const auto v = monitor.decision(p);
    if (v) {
      std::printf("p%d decided %s at t=%lld\n", p, v->to_string().c_str(),
                  static_cast<long long>(*monitor.decision_time(p)));
    } else {
      all_decided = false;
      std::printf("p%d did not decide\n", p);
    }
  }
  std::printf("safety under chaos: %s\n", monitor.safe() ? "ok" : "VIOLATED");
  return monitor.safe() && all_decided;
}

}  // namespace

int main() {
  const bool part1 = crash_recovery_demo();
  const bool part2 = chaos_demo();
  return part1 && part2 ? 0 : 1;
}
