// Quickstart: run one instance of the paper's two-step consensus object on
// a simulated cluster and watch it decide in two message delays.
//
//   $ ./quickstart
//
// Five processes (the Theorem 6 bound for e=2, f=2), one proposer.  The
// proposer decides at exactly 2Δ even though two processes are down.
#include <cstdio>

#include "harness/run_spec.hpp"

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

int main() {
  // e = 2 crashes may not delay the fast path; f = 2 crashes are survivable.
  // Theorem 6: an object needs only max{2e+f-1, 2f+1} = 5 processes.
  const SystemConfig config{5, /*f=*/2, /*e=*/2};
  const sim::Tick delta = 100;  // the known post-GST message delay bound

  auto runner = harness::RunSpec(config).delta(delta).core(core::Mode::kObject);

  // Crash two processes at time zero — the maximum the fast path tolerates.
  runner->cluster().crash(3);
  runner->cluster().crash(4);

  // p0 is the proxy: it proposes value 42 on behalf of a client.
  runner->cluster().start_all();
  runner->cluster().propose(0, Value{42});
  runner->cluster().run();

  const auto& monitor = runner->monitor();
  std::printf("cluster: n=%d f=%d e=%d, delta=%lld\n", config.n, config.f, config.e,
              static_cast<long long>(delta));
  for (ProcessId p = 0; p < config.n; ++p) {
    if (runner->cluster().crashed(p)) {
      std::printf("  p%d: crashed\n", p);
      continue;
    }
    const auto v = monitor.decision(p);
    const auto t = monitor.decision_time(p);
    std::printf("  p%d: decided %s at t=%lld%s\n", p,
                v ? v->to_string().c_str() : "nothing",
                t ? static_cast<long long>(*t) : -1,
                (t && *t <= 2 * delta) ? "  <-- two-step!" : "");
  }
  std::printf("safety: %s\n", monitor.safe() ? "ok" : monitor.violations().front().c_str());
  std::printf("messages sent: %zu\n", runner->cluster().network().messages_sent());
  return monitor.safe() ? 0 : 1;
}
