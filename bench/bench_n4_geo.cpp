// N4 — Per-region commit latency under emulated WAN links (live cluster).
//
// The geo subsystem (geo::LatencyMatrix + the transport's chaos delay
// stage) turns an n-replica loopback cluster into an n-site multi-region
// deployment: every peer frame from replica p to q gains the one-way delay
// between their regions plus seeded jitter, while client connections stay
// local — a client pinned to replica r observes exactly what a client in
// r's region would.  This bench sweeps
//
//   protocol   task | object | fastpaxos | epaxos   (one replica per region)
//   placement  us-eu (4 regions) | global (5 regions)
//   conflict   off | on
//
// and reports the client-observed commit latency quantiles per region.
// The story under test: the leader/proxy protocols answer fast only near
// the quorum's center of mass, while leaderless EPaxos commits from every
// region at its local fast-quorum RTT — until commands interfere, which
// buys its slow path back.
//
// Conflict dials per protocol family:
//   - one-shot protocols (task/object/fastpaxos): every region proposes
//     concurrently; without conflict all propose the same value (the
//     unanimous pattern the fast path carries), with conflict each region
//     proposes its own value.
//   - epaxos: per-region closed-loop clients run concurrently; without
//     conflict commands live on globally distinct keys (no interference),
//     with conflict every command shares one key (total interference).
//
// WAN delays are scaled down (TWOSTEP_BENCH_N4_SCALE, default 0.02: 75 ms
// links become 1.5 ms) so CI finishes in seconds; the topology's *shape* —
// who is near which quorum — is scale-invariant.  Artifact:
// BENCH_n4_geo.json (schema twostep-bench/1), one row per
// (protocol, placement, conflict, region).
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "core/two_step.hpp"
#include "epaxos/host.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "geo/latency_matrix.hpp"
#include "node/client.hpp"
#include "node/local_cluster.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr int kE = 1;
constexpr int kF = 1;
/// Live Δ: far above any scaled WAN round trip, so retries never pollute
/// the latency samples.
constexpr sim::Tick kLiveDeltaUs = 400'000;
constexpr int kOneShotReps = 6;
constexpr std::int64_t kEpaxosCommandsPerRegion = 25;

double env_scale() {
  const char* v = std::getenv("TWOSTEP_BENCH_N4_SCALE");
  if (v == nullptr || *v == '\0') return 0.02;
  const double parsed = std::atof(v);
  return parsed > 0 ? parsed : 0.02;
}

/// One replica per region of the placement preset, with the matrix wired
/// into the cluster's chaos stage.
node::ClusterOptions geo_cluster_options(const std::string& placement, double scale) {
  auto matrix = std::make_shared<const geo::LatencyMatrix>(
      geo::LatencyMatrix::preset(placement, scale));
  node::ClusterOptions options;
  options.chaos.geo_regions =
      geo::round_robin_placement(static_cast<int>(matrix->size()), *matrix);
  options.chaos.geo = std::move(matrix);
  options.chaos.seed = 1;
  return options;
}

/// Per-region outcome of one sweep cell.
struct RegionLatency {
  obs::HistogramSnapshot rtt;     ///< client-observed commit latency (µs)
  std::int64_t undecided = 0;     ///< calls with no usable decision
};

/// One-shot cell: kOneShotReps fresh clusters; per repetition every region
/// proposes concurrently (same value without conflict, distinct values
/// with), and each client's RTT is its region's sample.
template <typename P, typename MakeProc>
std::vector<RegionLatency> one_shot_cell(int n, const MakeProc& make,
                                         const node::ClusterOptions& options, bool conflict) {
  std::vector<obs::LogHistogram> rtt(static_cast<std::size_t>(n));
  std::vector<RegionLatency> out(static_cast<std::size_t>(n));
  for (int rep = 0; rep < kOneShotReps; ++rep) {
    node::LocalCluster<P> cluster(n, make, options);
    if (!cluster.wait_for_mesh()) {
      for (auto& r : out) ++r.undecided;
      continue;
    }
    std::vector<std::thread> clients;
    for (int r = 0; r < n; ++r) {
      clients.emplace_back([&, r] {
        obs::MetricsRegistry metrics;
        node::ClientSession client(cluster.endpoints()[static_cast<std::size_t>(r)],
                                   &metrics);
        const std::int64_t value = conflict ? 1000 + r : 1000;
        bool decided = false;
        if (client.connect()) {
          const auto reply = client.call(value);
          decided = reply.has_value() && reply->ok;
        }
        if (decided) {
          const auto sample = metrics.log_histogram_snapshot("client.rtt_us");
          if (sample.count > 0)
            rtt[static_cast<std::size_t>(r)].record(static_cast<std::int64_t>(sample.max));
        } else {
          ++out[static_cast<std::size_t>(r)].undecided;
        }
      });
    }
    for (auto& c : clients) c.join();
    cluster.stop();
  }
  for (int r = 0; r < n; ++r)
    out[static_cast<std::size_t>(r)].rtt = rtt[static_cast<std::size_t>(r)].snapshot();
  return out;
}

/// EPaxos cell: one cluster, one concurrent closed-loop client per region.
/// Payloads are globally unique (region * 2^20 + i); the conflict dial is
/// the host's key policy (see epaxos::HostOptions::key_mod).
std::vector<RegionLatency> epaxos_cell(int n, const node::ClusterOptions& options,
                                       bool conflict) {
  const SystemConfig config{n, kF, kE};
  std::vector<RegionLatency> out(static_cast<std::size_t>(n));
  node::LocalCluster<epaxos::EPaxosRsm> cluster(
      n,
      [=](consensus::Env<epaxos::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
        epaxos::HostOptions host;
        host.protocol.delta = kLiveDeltaUs;
        host.protocol.probe.metrics = &reg;
        // No crashes in this bench; keys on a wide modulus are collision-
        // free because every payload is below it and globally unique.
        host.key_mod = conflict ? 0 : (std::int64_t{1} << 30);
        return std::make_unique<epaxos::EPaxosRsm>(env, config, host);
      },
      options);
  if (!cluster.wait_for_mesh()) {
    for (auto& r : out) r.undecided = kEpaxosCommandsPerRegion;
    return out;
  }
  std::vector<std::thread> clients;
  for (int r = 0; r < n; ++r) {
    clients.emplace_back([&, r] {
      obs::MetricsRegistry metrics;
      node::ClientSession client(cluster.endpoints()[static_cast<std::size_t>(r)], &metrics);
      if (!client.connect()) {
        out[static_cast<std::size_t>(r)].undecided = kEpaxosCommandsPerRegion;
        return;
      }
      const auto result = client.run_closed_loop(
          kEpaxosCommandsPerRegion,
          [r](std::int64_t i) { return static_cast<std::int64_t>(r) * (1 << 20) + i; });
      out[static_cast<std::size_t>(r)].rtt = result.rtt;
      out[static_cast<std::size_t>(r)].undecided = result.lost + result.rejected;
    });
  }
  for (auto& c : clients) c.join();
  cluster.stop();
  return out;
}

std::vector<RegionLatency> run_cell(const std::string& protocol, int n,
                                    const node::ClusterOptions& options, bool conflict) {
  const SystemConfig config{n, kF, kE};
  if (protocol == "epaxos") return epaxos_cell(n, options, conflict);
  if (protocol == "fastpaxos") {
    return one_shot_cell<fastpaxos::FastPaxosProcess>(
        n,
        [=](consensus::Env<fastpaxos::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
          fastpaxos::Options opt;
          opt.delta = kLiveDeltaUs;
          opt.leader_of = [] { return ProcessId{0}; };
          opt.probe.metrics = &reg;
          return std::make_unique<fastpaxos::FastPaxosProcess>(env, config, opt);
        },
        options, conflict);
  }
  const core::Mode mode = protocol == "task" ? core::Mode::kTask : core::Mode::kObject;
  return one_shot_cell<core::TwoStepProcess>(
      n,
      [=](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
        core::Options opt;
        opt.mode = mode;
        opt.delta = kLiveDeltaUs;
        opt.leader_of = [] { return ProcessId{0}; };
        opt.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, opt);
      },
      options, conflict);
}

void print_tables() {
  const double scale = env_scale();
  const std::vector<std::string> protocols = {"task", "object", "fastpaxos", "epaxos"};
  const std::vector<std::string> placements = {"us-eu", "global"};

  util::Table t({"protocol", "placement", "conflict", "region", "samples", "p50", "p90",
                 "p99", "undecided"});
  char title[160];
  std::snprintf(title, sizeof(title),
                "N4 — per-region commit latency, emulated WAN links (e=1 f=1, scale %.3g)",
                scale);
  t.set_title(title);
  bench::BenchArtifact artifact("n4_geo");

  // Live clusters spawn one event-loop thread per replica plus one client
  // thread per region; cells run sequentially so samples never contend
  // with a sibling cluster for cores.
  for (const std::string& placement : placements) {
    const node::ClusterOptions options = geo_cluster_options(placement, scale);
    const int n = static_cast<int>(options.chaos.geo->size());
    for (const std::string& protocol : protocols) {
      for (const bool conflict : {false, true}) {
        const auto regions = run_cell(protocol, n, options, conflict);
        for (int r = 0; r < n; ++r) {
          const RegionLatency& cell = regions[static_cast<std::size_t>(r)];
          const std::string& region =
              options.chaos.geo->regions()[static_cast<std::size_t>(
                  options.chaos.geo_regions[static_cast<std::size_t>(r)])];
          t.add_row({protocol, placement, conflict ? "on" : "off", region,
                     std::to_string(cell.rtt.count),
                     cell.rtt.count == 0 ? "-" : util::Table::num(cell.rtt.p50, 0) + " us",
                     cell.rtt.count == 0 ? "-" : util::Table::num(cell.rtt.p90, 0) + " us",
                     cell.rtt.count == 0 ? "-" : util::Table::num(cell.rtt.p99, 0) + " us",
                     std::to_string(cell.undecided)});
          artifact.add_row()
              .str("protocol", protocol)
              .str("placement", placement)
              .flag("conflict", conflict)
              .str("region", region)
              .num("n", n)
              .num("scale", scale)
              .num("samples", cell.rtt.count)
              .num("rtt_p50_us", cell.rtt.p50)
              .num("rtt_p90_us", cell.rtt.p90)
              .num("rtt_p99_us", cell.rtt.p99)
              .hist("rtt_us", cell.rtt)
              .num("undecided", cell.undecided);
        }
      }
    }
  }
  twostep::bench::emit(t);
  artifact.write();
}

void BM_GeoEpaxosClosedLoop(benchmark::State& state) {
  const node::ClusterOptions options = geo_cluster_options("us-eu", env_scale());
  const int n = static_cast<int>(options.chaos.geo->size());
  for (auto _ : state) {
    const auto regions = epaxos_cell(n, options, /*conflict=*/false);
    benchmark::DoNotOptimize(regions.size());
  }
}
BENCHMARK(BM_GeoEpaxosClosedLoop)->Unit(benchmark::kMillisecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
