// F3 — Slow-path recovery: what the ballot machinery costs and that it
// preserves fast decisions (Lemma 7 / C.2).
//
// Scenarios, per (e, f) at the task bound:
//   crashed-proposer   the fast proposer crashes right after broadcasting;
//                      its value was voted by everyone and MUST be recovered
//   contended          conflicting proposals, crashes kill the fast path;
//                      the Ω leader's ballot decides
//   decide-then-crash  the proposer decides and crashes mid-Decide: the
//                      survivors re-derive the decided value
// The reported latency is the survivors' decision time in Δ (fast path = 2).
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "lowerbound/scenarios.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SyncScenario;
using consensus::SystemConfig;
using consensus::Value;

constexpr sim::Tick kDelta = 100;

struct Outcome {
  double latency = -1;   // max decision time over correct processes, in Δ
  bool recovered = true; // recovered value == the fast proposer's value
  bool safe = true;
};

Outcome crashed_proposer(int e, int f) {
  const SystemConfig cfg{SystemConfig::min_processes_task(e, f), f, e};
  auto r = harness::RunSpec(cfg).delta(kDelta).core(core::Mode::kTask);
  const ProcessId proposer = static_cast<ProcessId>(cfg.n - 1);
  r->cluster().start_all();
  r->cluster().propose(proposer, Value{1000});
  r->cluster().crash(proposer);
  for (ProcessId p = 0; p + 1 < cfg.n; ++p) r->cluster().propose(p, Value{100 + p});
  r->cluster().run();
  Outcome out;
  out.safe = r->monitor().safe();
  for (ProcessId p = 0; p + 1 < cfg.n; ++p) {
    const auto t = r->monitor().decision_time(p);
    if (!t) return {};
    out.latency = std::max(out.latency, static_cast<double>(*t) / kDelta);
    out.recovered = out.recovered && r->monitor().decision(p) == Value{1000};
  }
  return out;
}

Outcome contended(int e, int f) {
  const SystemConfig cfg{SystemConfig::min_processes_object(e, f), f, e};
  auto r = harness::RunSpec(cfg).delta(kDelta).core(core::Mode::kObject);
  SyncScenario s;
  // Crash the highest e processes; two surviving proposers conflict.
  for (int k = 0; k < e; ++k) s.crashes.push_back(cfg.n - 1 - k);
  s.proposals = {{0, Value{10}}, {1, Value{20}}};
  r->run(s);
  Outcome out;
  out.safe = r->monitor().safe();
  out.recovered = true;  // nothing was fast-decided; any proposal is fine
  for (ProcessId p = 0; p < cfg.n; ++p) {
    if (r->cluster().crashed(p)) continue;
    const auto t = r->monitor().decision_time(p);
    if (!t) return {};
    out.latency = std::max(out.latency, static_cast<double>(*t) / kDelta);
  }
  return out;
}

Outcome decide_then_crash(int e, int f) {
  // The T4 "defended" scenario measured as a latency figure: the proposer
  // decides at 2Δ, crashes suppressing Decide; the survivors re-derive its
  // value on the slow path.
  const auto attack = lowerbound::task_at_bound_defense(e, f);
  Outcome out;
  out.safe = !attack.agreement_violated;
  out.recovered = attack.late_decision == attack.fast_decision;
  out.latency = out.safe && out.recovered ? -2 : -1;  // step-driven: no wall clock
  return out;
}

void print_tables() {
  util::Table t({"scenario", "e", "f", "n", "survivor latency (Δ)", "value recovered",
                 "safe"});
  t.set_title("F3 — slow-path recovery latency and fidelity");
  for (const auto& [e, f] : std::vector<std::pair<int, int>>{{1, 1}, {1, 2}, {2, 2}, {2, 3}}) {
    const Outcome a = crashed_proposer(e, f);
    t.add_row({"crashed proposer", std::to_string(e), std::to_string(f),
               std::to_string(SystemConfig::min_processes_task(e, f)),
               util::Table::num(a.latency, 0), a.recovered ? "yes" : "NO",
               a.safe ? "yes" : "NO"});
    const Outcome b = contended(e, f);
    t.add_row({"contended proposals", std::to_string(e), std::to_string(f),
               std::to_string(SystemConfig::min_processes_object(e, f)),
               util::Table::num(b.latency, 0), "n/a", b.safe ? "yes" : "NO"});
  }
  for (const auto& [e, f] : std::vector<std::pair<int, int>>{{2, 2}, {3, 3}}) {
    const Outcome c = decide_then_crash(e, f);
    t.add_row({"decide-then-crash (spliced)", std::to_string(e), std::to_string(f),
               std::to_string(SystemConfig::min_processes_task(e, f)), "step-driven",
               c.recovered ? "yes" : "NO", c.safe ? "yes" : "NO"});
  }
  twostep::bench::emit(t);
}

void BM_CrashedProposerRecovery(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(crashed_proposer(2, 2).latency);
}
BENCHMARK(BM_CrashedProposerRecovery)->Unit(benchmark::kMicrosecond);

void BM_ContendedRecovery(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(contended(2, 2).latency);
}
BENCHMARK(BM_ContendedRecovery)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
