// T2 — Task two-step obligation matrix (Definition 4 at the Theorem 5
// bound).  For each (e, f) the table reports, per obligation, the number of
// witness runs constructed (all crash sets x canonical configurations /
// correct witnesses) and how many satisfied the obligation.  A final column
// runs the same sweep one process below the bound: the obligations still
// hold there — the lower bound manifests as a safety violation under
// asynchrony (see T4), which is the paper's key subtlety.
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "consensus/twostep_eval.hpp"

namespace {

using namespace twostep;
using consensus::EvalVerdict;
using consensus::SystemConfig;
using consensus::TwoStepEvaluator;
using harness::RunSpec;

EvalVerdict run_item(int e, int f, int n, int item) {
  const SystemConfig cfg{n, f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return RunSpec(cfg).core(core::Mode::kTask); }};
  return item == 1 ? eval.check_task_item1() : eval.check_task_item2();
}

std::string cell(const EvalVerdict& v) {
  return std::to_string(v.satisfied) + "/" + std::to_string(v.runs) +
         (v.ok() ? "" : " FAIL");
}

void print_tables() {
  util::Table t({"e", "f", "n", "item1 (some proc 2-step)", "item2 (same value, each proc)",
                 "item1 @ n-1", "item2 @ n-1"});
  t.set_title("T2 — Definition 4 obligations for the task protocol");
  const std::vector<std::pair<int, int>> configs = {{1, 1}, {1, 2}, {2, 2}, {1, 3}, {2, 3}};
  const auto rows = twostep::bench::sweep_rows<std::vector<std::string>>(
      configs.size(), [&configs](std::size_t i) {
        const auto [e, f] = configs[i];
        const int n = SystemConfig::min_processes_task(e, f);
        return std::vector<std::string>{
            std::to_string(e), std::to_string(f), std::to_string(n),
            cell(run_item(e, f, n, 1)), cell(run_item(e, f, n, 2)),
            cell(run_item(e, f, n - 1, 1)), cell(run_item(e, f, n - 1, 2))};
      });
  for (const auto& row : rows) t.add_row(row);
  twostep::bench::emit(t);
}

void BM_Item1Sweep(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_item(2, 2, 6, 1).runs);
}
BENCHMARK(BM_Item1Sweep)->Unit(benchmark::kMillisecond);

void BM_SingleSynchronousRun(benchmark::State& state) {
  const SystemConfig cfg{6, 2, 2};
  for (auto _ : state) {
    auto r = RunSpec(cfg).core(core::Mode::kTask);
    consensus::SyncScenario s;
    s.proposals = consensus::priority_order(twostep::bench::witness_config(6, 5), 5);
    r->run(s);
    benchmark::DoNotOptimize(r->monitor().decided_count());
  }
}
BENCHMARK(BM_SingleSynchronousRun)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
