// N3 — Saturating the live RSM: the throughput/latency curve of an n=3
// loopback cluster under open-loop load, with the full hot-path stack on:
//
//   - command batching: many client commands share one consensus slot
//     (leader-side size/time knob; the slot carries a batch handle, the
//     contents ride a sidecar frame),
//   - slot pipelining: the proxy proposes a configurable window of slots
//     ahead of the decisions,
//   - group-commit WAL: one fdatasync barrier amortized over every
//     protocol entry in the window, persist-before-send preserved per
//     barrier,
//   - vectored transport writes: every frame queued in one event-loop
//     round leaves in a single sendmsg flush.
//
// The first row is the closed-loop single-client baseline — the shape N1
// measures, whose throughput is 1/RTT by construction (~800 cmds/s at
// fsync'd n=3).  The sweep then offers fixed arrival rates through
// node::OpenLoopLoadgen and reports offered vs achieved cmds/s plus the
// RTT distribution per point.  The *knee* is the highest offered rate the
// cluster still serves at >= 90% — the capacity claim under test is that
// batching + pipelining + group commit buy >= 50x the closed-loop
// baseline before the knee.
//
// Artifact: BENCH_n3_saturation.json (schema twostep-bench/1), one row per
// curve point plus the baseline and a summary row (kind = "baseline" /
// "point" / "summary"), validated by scripts/check_obs_artifacts.py.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "node/client.hpp"
#include "node/loadgen.hpp"
#include "node/local_cluster.hpp"
#include "rsm/rsm.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr int kN = 3, kE = 1, kF = 1;
constexpr sim::Tick kLiveDeltaUs = 100'000;
constexpr std::int64_t kBaselineCommands = 300;

// Saturation stack knobs (the sweep's cluster configuration).
constexpr int kBatchMax = 64;
constexpr sim::Tick kBatchLingerUs = 200;
constexpr int kPipelineWindow = 64;
constexpr int kGroupCommitUs = 200;

// Offered rates swept (cmds/s).  The top rates are far past any plausible
// knee so the curve visibly bends.
constexpr std::int64_t kRates[] = {2'000, 8'000, 16'000, 32'000, 48'000, 64'000, 96'000};
constexpr std::int64_t kPointDurationMs = 2'500;
constexpr std::int64_t kPointDrainMs = 2'000;
constexpr int kSessions = 512;
constexpr int kConnections = 8;

struct Point {
  std::int64_t offered_target = 0;  ///< 0 = closed-loop baseline
  node::LoadResult result;          ///< loadgen points
  double closed_loop_rate = 0;      ///< baseline only
  obs::HistogramSnapshot rtt;
  double batch_fill_mean = 0;
  std::uint64_t wal_syncs = 0;
  std::uint64_t wal_barriers = 0;
  bool ok = false;
};

node::LocalCluster<rsm::RsmProcess>::Factory make_factory(const SystemConfig& config,
                                                          bool saturation_stack) {
  return [config, saturation_stack](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg,
                                    ProcessId) {
    rsm::Options options;
    options.delta = kLiveDeltaUs;
    options.leader_of = [] { return ProcessId{0}; };
    options.probe.metrics = &reg;
    if (saturation_stack) {
      options.batch_max = kBatchMax;
      options.batch_linger = kBatchLingerUs;
      options.pipeline_window = kPipelineWindow;
      options.batch_fill = &reg.log_histogram("rsm.batch_fill");
    }
    return std::make_unique<rsm::RsmProcess>(env, config, options);
  };
}

std::string fresh_storage_dir(const char* tag) {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / (std::string("twostep-n3-") + tag + "-XXXXXX"))
          .string();
  if (!::mkdtemp(tmpl.data())) return {};
  return tmpl;
}

void fold_cluster_metrics(Point& out, obs::MetricsRegistry& merged) {
  auto& fill = merged.log_histogram("rsm.batch_fill");
  if (fill.count() > 0) out.batch_fill_mean = fill.mean();
  out.wal_syncs = merged.counter_value("wal.syncs");
  out.wal_barriers = merged.counter_value("wal.barriers");
}

/// Closed-loop single-client baseline: the N1 shape, fsync'd storage, no
/// batching/pipelining/group commit.  Throughput here is 1/RTT.
Point run_baseline() {
  Point out;
  const SystemConfig config{kN, kF, kE};
  const std::string dir = fresh_storage_dir("base");
  if (dir.empty()) return out;
  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = dir;
  cluster_options.storage.fsync = true;
  node::LocalCluster<rsm::RsmProcess> cluster(kN, make_factory(config, false),
                                              cluster_options);
  if (cluster.wait_for_mesh()) {
    obs::MetricsRegistry client_metrics;
    node::ClientSession client(cluster.endpoints()[0], &client_metrics);
    if (client.connect()) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = client.run_closed_loop(kBaselineCommands);
      const double elapsed_us = static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      out.ok = result.ok == kBaselineCommands;
      out.closed_loop_rate = elapsed_us > 0 ? result.ok * 1e6 / elapsed_us : 0;
      out.rtt = result.rtt;
    }
  }
  cluster.stop();
  obs::MetricsRegistry merged = cluster.merged_metrics();
  fold_cluster_metrics(out, merged);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return out;
}

/// One saturation-curve point: fresh cluster with the full stack on, one
/// open-loop window at `rate` cmds/s.
Point run_point(std::int64_t rate) {
  Point out;
  out.offered_target = rate;
  const SystemConfig config{kN, kF, kE};
  const std::string dir = fresh_storage_dir("sat");
  if (dir.empty()) return out;
  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = dir;
  cluster_options.storage.fsync = true;
  cluster_options.storage.group_commit_us = kGroupCommitUs;
  node::LocalCluster<rsm::RsmProcess> cluster(kN, make_factory(config, true), cluster_options);
  if (cluster.wait_for_mesh()) {
    node::LoadgenOptions gen_options;
    gen_options.rate = rate;
    gen_options.sessions = kSessions;
    gen_options.connections = kConnections;
    gen_options.duration_ms = kPointDurationMs;
    gen_options.drain_ms = kPointDrainMs;
    gen_options.poisson = true;
    gen_options.seed = static_cast<std::uint64_t>(rate);
    node::OpenLoopLoadgen gen(cluster.endpoints(), gen_options);
    out.result = gen.run();
    out.rtt = out.result.rtt;
    out.ok = out.result.rejected == 0;
  }
  cluster.stop();
  obs::MetricsRegistry merged = cluster.merged_metrics();
  fold_cluster_metrics(out, merged);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return out;
}

void print_tables() {
  std::printf("N3: open-loop saturation of the live n=%d RSM (batch-max=%d, linger=%lld us, "
              "pipeline-window=%d, group-commit=%d us, fsync on)\n",
              kN, kBatchMax, static_cast<long long>(kBatchLingerUs), kPipelineWindow,
              kGroupCommitUs);

  const Point baseline = run_baseline();
  bench::BenchArtifact artifact("n3_saturation");
  artifact.add_row()
      .str("kind", "baseline")
      .num("closed_loop_rate", baseline.closed_loop_rate)
      .flag("ok", baseline.ok)
      .hist("rtt_us", baseline.rtt);

  util::Table t({"offered cmds/s", "achieved cmds/s", "ok", "lost", "rtt p50", "rtt p99",
                 "batch fill", "wal syncs"});
  t.set_title("N3 saturation curve (closed-loop baseline: " +
              std::to_string(static_cast<long>(baseline.closed_loop_rate)) + " cmds/s)");

  double knee_achieved = 0;
  std::int64_t knee_offered = 0;
  for (const std::int64_t rate : kRates) {
    const Point p = run_point(rate);
    const double offered = p.result.offered_rate();
    const double achieved = p.result.achieved_rate();
    if (offered > 0 && achieved >= 0.9 * offered && achieved > knee_achieved) {
      knee_achieved = achieved;
      knee_offered = rate;
    }
    char fill[32];
    std::snprintf(fill, sizeof(fill), "%.1f", p.batch_fill_mean);
    t.add_row({std::to_string(rate), std::to_string(static_cast<long>(achieved)),
               std::to_string(p.result.ok), std::to_string(p.result.lost),
               std::to_string(static_cast<long>(p.rtt.p50)) + " us",
               std::to_string(static_cast<long>(p.rtt.p99)) + " us", fill,
               std::to_string(p.wal_syncs)});
    artifact.add_row()
        .str("kind", "point")
        .num("offered_target", rate)
        .num("offered_rate", offered)
        .num("achieved_rate", achieved)
        .num("ok", p.result.ok)
        .num("lost", p.result.lost)
        .num("rejected", p.result.rejected)
        .num("batch_fill_mean", p.batch_fill_mean)
        .num("wal_syncs", static_cast<std::int64_t>(p.wal_syncs))
        .num("wal_barriers", static_cast<std::int64_t>(p.wal_barriers))
        .flag("ok_point", p.ok)
        .hist("rtt_us", p.rtt);
  }
  bench::emit(t);

  const double speedup =
      baseline.closed_loop_rate > 0 ? knee_achieved / baseline.closed_loop_rate : 0;
  std::printf("knee: %lld cmds/s offered, %.0f achieved — %.1fx the closed-loop baseline\n",
              static_cast<long long>(knee_offered), knee_achieved, speedup);
  artifact.add_row()
      .str("kind", "summary")
      .num("knee_offered", knee_offered)
      .num("knee_achieved", knee_achieved)
      .num("baseline_rate", baseline.closed_loop_rate)
      .num("speedup", speedup);
  artifact.write();
}

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
