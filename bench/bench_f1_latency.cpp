// F1 — Decision latency (in message delays Δ) versus the number of crashed
// processes, for every protocol at its own minimal cluster size (e=2, f=2):
//
//   paxos       n=5   fast only when the initial leader survives
//   fast paxos  n=7   two-step under any k <= e crashes (Lamport's bound)
//   task        n=6   two-step with one process fewer (Theorem 5)
//   object      n=5   two-step with two processes fewer (Theorem 6)
//
// The latency is measured at the "witness" proxy (the highest-id process,
// holding the maximum proposal with top delivery priority) in an E-faulty
// synchronous run with E = {p0..p_{k-1}}.  A second table reports message
// counts for the same runs.
#include <string>
#include <vector>

#include "bench_support.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SyncScenario;
using consensus::SystemConfig;
using consensus::Value;

constexpr sim::Tick kDelta = 100;
constexpr int kE = 2;
constexpr int kF = 2;

struct RunResult {
  double latency_delta = -1;  // decision latency at witness, in Δ units
  std::size_t messages = 0;
};

template <typename Runner>
RunResult measure(Runner& runner, int n, int crashes, bool lone_proposer) {
  const ProcessId witness = static_cast<ProcessId>(n - 1);
  SyncScenario s;
  for (int k = 0; k < crashes; ++k) s.crashes.push_back(k);
  if (lone_proposer) {
    // Object semantics (the proxy model): one client command at a time,
    // proposed by its proxy alone (Definition A.1, item 1).
    s.proposals = {{witness, Value{1000}}};
  } else {
    s.proposals =
        consensus::priority_order(twostep::bench::witness_config(n, witness), witness);
  }
  runner.run(s);
  RunResult out;
  out.messages = runner.cluster().network().messages_sent();
  const auto t = runner.monitor().decision_time(witness);
  if (t && runner.monitor().safe()) out.latency_delta = static_cast<double>(*t) / kDelta;
  return out;
}

RunResult run_protocol(const std::string& name, int crashes,
                       obs::MetricsRegistry* metrics = nullptr) {
  const obs::Probe probe{nullptr, metrics};
  if (name == "paxos") {
    const SystemConfig cfg{2 * kF + 1, kF, 0};
    auto r = harness::RunSpec(cfg).delta(kDelta).probe(probe).paxos();
    return measure(*r, cfg.n, crashes, false);
  }
  if (name == "fast paxos") {
    const SystemConfig cfg{SystemConfig::min_processes_fast_paxos(kE, kF), kF, kE};
    auto r = harness::RunSpec(cfg).delta(kDelta).probe(probe).fastpaxos();
    return measure(*r, cfg.n, crashes, false);
  }
  if (name == "task") {
    const SystemConfig cfg{SystemConfig::min_processes_task(kE, kF), kF, kE};
    auto r = harness::RunSpec(cfg).delta(kDelta).probe(probe).core(core::Mode::kTask);
    return measure(*r, cfg.n, crashes, false);
  }
  const SystemConfig cfg{SystemConfig::min_processes_object(kE, kF), kF, kE};
  auto r = harness::RunSpec(cfg).delta(kDelta).probe(probe).core(core::Mode::kObject);
  return measure(*r, cfg.n, crashes, true);
}

int protocol_n(const std::string& name) {
  if (name == "paxos") return 2 * kF + 1;
  if (name == "fast paxos") return SystemConfig::min_processes_fast_paxos(kE, kF);
  if (name == "task") return SystemConfig::min_processes_task(kE, kF);
  return SystemConfig::min_processes_object(kE, kF);
}

void print_tables() {
  const std::vector<std::string> protocols = {"paxos", "fast paxos", "task", "object"};

  util::Table t({"protocol", "n", "k=0 crashes", "k=1", "k=2"});
  t.set_title("F1 — witness decision latency (in Δ) vs crashed processes (e=2, f=2)");
  util::Table m({"protocol", "n", "k=0 msgs", "k=1", "k=2"});
  m.set_title("F1b — messages sent in the same runs");

  // One task per protocol; each task owns a private MetricsRegistry, and
  // the registries are merged/emitted after the join so stdout stays
  // deterministic under any TWOSTEP_BENCH_JOBS.
  struct ProtocolRows {
    std::vector<std::string> lat_row, msg_row;
    std::vector<RunResult> runs;  ///< per crash count k = 0..kE
    obs::MetricsRegistry merged;
  };
  const auto results = twostep::bench::sweep_rows<ProtocolRows>(
      protocols.size(), [&protocols](std::size_t i) {
        const std::string& name = protocols[i];
        ProtocolRows out;
        out.lat_row = {name, std::to_string(protocol_n(name))};
        out.msg_row = out.lat_row;
        for (int k = 0; k <= kE; ++k) {
          // Opt-in per-run metrics dump (TWOSTEP_BENCH_METRICS=1).
          obs::MetricsRegistry registry;
          const RunResult r = run_protocol(
              name, k, twostep::bench::metrics_enabled() ? &registry : nullptr);
          out.merged.merge(registry);
          out.runs.push_back(r);
          out.lat_row.push_back(r.latency_delta < 0 ? "-"
                                                    : util::Table::num(r.latency_delta, 0));
          out.msg_row.push_back(std::to_string(r.messages));
        }
        return out;
      });
  twostep::bench::BenchArtifact artifact("f1_latency");
  for (std::size_t i = 0; i < results.size(); ++i) {
    twostep::bench::emit_metrics(protocols[i] + " k<=" + std::to_string(kE),
                                 results[i].merged);
    t.add_row(results[i].lat_row);
    m.add_row(results[i].msg_row);
    for (std::size_t k = 0; k < results[i].runs.size(); ++k)
      artifact.add_row()
          .str("protocol", protocols[i])
          .num("n", protocol_n(protocols[i]))
          .num("crashes", static_cast<int>(k))
          .num("latency_delta", results[i].runs[k].latency_delta)
          .num("messages", static_cast<std::uint64_t>(results[i].runs[k].messages));
  }
  twostep::bench::emit(t);
  twostep::bench::emit(m);
  artifact.write();
}

void BM_ObjectFastPathRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_protocol("object", kE).latency_delta);
}
BENCHMARK(BM_ObjectFastPathRun)->Unit(benchmark::kMicrosecond);

void BM_PaxosLeaderFailoverRun(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_protocol("paxos", 1).latency_delta);
}
BENCHMARK(BM_PaxosLeaderFailoverRun)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
