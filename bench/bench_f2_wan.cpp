// F2 — Wide-area deployment: the practical significance of the bounds.
//
// The paper's motivation: "contacting an additional process may incur a
// cost of hundreds of milliseconds per command" in wide-area deployments.
// At e=2, f=2 the object protocol runs in n=5 regions while Fast Paxos
// needs n=7; both decide on a fast quorum of n-e acceptors, so Fast Paxos
// must hear from 5 regions where the object protocol needs 3.  This bench
// places replicas in public-cloud regions (one-way latency matrix) and
// measures the commit latency at each proxy region for a lone proposal.
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "util/stats.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

constexpr int kE = 2;
constexpr int kF = 2;
constexpr int kSeeds = 20;

const char* kRegion[] = {"us-east", "us-west", "eu-west", "eu-central", "tokyo",
                         "singapore", "mumbai", "sao-paulo", "sydney"};

/// Commit latency (ms) at the proxy for a lone proposal, paper protocol.
/// nullopt when the run ended without a decision at the proxy — the caller
/// must skip (and count) it, never average it: a -1 sentinel inside a mean
/// silently *improves* the reported latency.
std::optional<double> object_latency(int n, ProcessId proxy, std::uint64_t seed) {
  const SystemConfig cfg{n, kF, kE};
  auto model = std::make_unique<net::WanMatrix>(
      net::WanMatrix::nine_regions(2).restrict([n] {
        std::vector<int> sites(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) sites[static_cast<std::size_t>(i)] = i;
        return sites;
      }()));
  auto r = harness::RunSpec(cfg).model(std::move(model)).seed(seed).core(core::Mode::kObject);
  consensus::SyncScenario s;
  s.proposals = {{proxy, Value{7}}};
  r->run(s);
  const auto t = r->monitor().decision_time(proxy);
  if (!t) return std::nullopt;
  return static_cast<double>(*t);
}

/// Commit latency (ms) at the proxy for a lone proposal, Fast Paxos.
std::optional<double> fastpaxos_latency(int n, ProcessId proxy, std::uint64_t seed) {
  const SystemConfig cfg{n, kF, kE};
  auto model = std::make_unique<net::WanMatrix>(
      net::WanMatrix::nine_regions(2).restrict([n] {
        std::vector<int> sites(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) sites[static_cast<std::size_t>(i)] = i;
        return sites;
      }()));
  auto r = harness::RunSpec(cfg).model(std::move(model)).seed(seed).fastpaxos();
  consensus::SyncScenario s;
  s.proposals = {{proxy, Value{7}}};
  r->run(s);
  const auto t = r->monitor().decision_time(proxy);
  if (!t) return std::nullopt;
  return static_cast<double>(*t);
}

void print_tables() {
  const int n_object = SystemConfig::min_processes_object(kE, kF);      // 5
  const int n_fast = SystemConfig::min_processes_fast_paxos(kE, kF);    // 7

  util::Table t({"proxy region", "object n=5 (ms)", "fast paxos n=7 (ms)", "saving (ms)"});
  t.set_title("F2 — WAN commit latency at the proxy, e=2 f=2 (lone proposal, mean over " +
              std::to_string(kSeeds) + " jitter seeds)");

  // One task per proxy region: each returns its own summaries plus its
  // contribution to the aggregate, merged after the join in proxy order so
  // the printed statistics match a sequential run exactly.  Undecided runs
  // are excluded from every summary and surfaced as an explicit count —
  // both in the table (when non-zero) and in the artifact row.
  struct ProxyResult {
    std::vector<std::string> row;
    util::Summary object, fast;
    util::Summary all_object, all_fast;
    std::int64_t undecided_object = 0, undecided_fast = 0;
  };
  const auto results = twostep::bench::sweep_rows<ProxyResult>(
      static_cast<std::size_t>(n_object), [n_object, n_fast](std::size_t i) {
        const auto proxy = static_cast<ProcessId>(i);
        ProxyResult out;
        for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
          if (const auto obj = object_latency(n_object, proxy, seed)) {
            out.object.add(*obj);
            out.all_object.add(out.object.max());
          } else {
            ++out.undecided_object;
          }
          if (const auto fp = fastpaxos_latency(n_fast, proxy, seed)) {
            out.fast.add(*fp);
            out.all_fast.add(out.fast.max());
          } else {
            ++out.undecided_fast;
          }
        }
        out.row = {kRegion[proxy], util::Table::num(out.object.mean(), 0),
                   util::Table::num(out.fast.mean(), 0),
                   util::Table::num(out.fast.mean() - out.object.mean(), 0)};
        return out;
      });
  util::Summary all_object, all_fast;
  std::int64_t undecided = 0;
  twostep::bench::BenchArtifact artifact("f2_wan");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ProxyResult& r = results[i];
    t.add_row(r.row);
    all_object.merge(r.all_object);
    all_fast.merge(r.all_fast);
    undecided += r.undecided_object + r.undecided_fast;
    artifact.add_row()
        .str("proxy_region", kRegion[i])
        .num("seeds", std::int64_t{kSeeds})
        .num("object_decided", static_cast<std::int64_t>(r.object.count()))
        .num("object_undecided", r.undecided_object)
        .num("object_mean_ms", r.object.mean())
        .num("fastpaxos_decided", static_cast<std::int64_t>(r.fast.count()))
        .num("fastpaxos_undecided", r.undecided_fast)
        .num("fastpaxos_mean_ms", r.fast.mean())
        .num("saving_ms", r.fast.mean() - r.object.mean());
  }
  twostep::bench::emit(t);
  if (undecided > 0)
    std::printf("F2: %lld undecided run(s) excluded from the latency means\n",
                static_cast<long long>(undecided));

  util::Table s({"metric", "object n=5", "fast paxos n=7"});
  s.set_title("F2b — aggregate over all proxy regions");
  s.add_row({"mean (ms)", util::Table::num(all_object.mean(), 0),
             util::Table::num(all_fast.mean(), 0)});
  s.add_row({"p99 (ms)", util::Table::num(all_object.percentile(0.99), 0),
             util::Table::num(all_fast.percentile(0.99), 0)});
  twostep::bench::emit(s);
  artifact.write();
}

void BM_WanObjectCommit(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(object_latency(5, 0, seed++));
}
BENCHMARK(BM_WanObjectCommit)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
