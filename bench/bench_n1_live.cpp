// N1 — Client-observed two-step latency over real loopback TCP, next to the
// simulator's abstract Δ-latency for the same runs (e=1, f=1, each protocol
// at its own minimal cluster size):
//
//   task        n=3   one-shot decision, lone proposer
//   object      n=3   one-shot decision, lone proposer (the proxy model)
//   fast paxos  n=4   one-shot decision, lone proposer
//   rsm         n=3   closed-loop client, one object-mode instance per slot
//
// Every live sample is an end-to-end request over a real socket against a
// node::Runtime cluster — the exact code path `twostep localcluster` and a
// multi-process deployment use.  A client sends its value to replica 0; the
// reply arrives when that replica decides, so the RTT is the client-observed
// decision latency.  One-shot protocols get a fresh cluster per repetition
// (consensus is consumed by the first decision); the RSM amortises one
// cluster across the whole command stream.  "fast fraction" counts the share
// of *voting* decisions taken on the two-step path (learned decisions are
// excluded) — the claim under test is that the paper's fast path survives
// real sockets, not just the simulator's lockstep rounds.
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/two_step.hpp"
#include "fastpaxos/fast_paxos.hpp"
#include "node/client.hpp"
#include "node/local_cluster.hpp"
#include "rsm/rsm.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SyncScenario;
using consensus::SystemConfig;
using consensus::Value;

constexpr int kE = 1;
constexpr int kF = 1;
constexpr sim::Tick kSimDelta = 100;
/// Live Δ: large enough that a loopback round trip never races the
/// new-ballot timer, so any slow-path decision is a real protocol event.
constexpr sim::Tick kLiveDeltaUs = 100'000;
constexpr int kOneShotReps = 15;
constexpr std::int64_t kRsmCommands = 200;

struct LiveResult {
  obs::HistogramSnapshot rtt;  ///< client-observed request RTTs (µs)
  std::uint64_t fast = 0;      ///< decisions taken on the two-step path
  std::uint64_t voted = 0;     ///< fast + slow (learned decisions excluded)
  bool ok = true;
};

void fold_decisions(LiveResult& out, obs::MetricsRegistry& merged) {
  out.fast += merged.counter_value("decisions.fast");
  out.voted +=
      merged.counter_value("decisions.fast") + merged.counter_value("decisions.slow");
}

/// One live one-shot repetition: fresh cluster, one client request against
/// replica 0, the reply RTT is the sample (recorded into `rtt`).
template <typename P, typename MakeProc>
void live_one_shot_rep(int n, const MakeProc& make, obs::LogHistogram& rtt, LiveResult& out) {
  node::LocalCluster<P> cluster(n, make);
  if (!cluster.wait_for_mesh()) {
    out.ok = false;
    return;
  }
  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints()[0], &client_metrics);
  if (!client.connect()) {
    out.ok = false;
    return;
  }
  const auto reply = client.call(1000);
  if (!reply || !reply->ok || reply->value != 1000) out.ok = false;
  cluster.stop();
  obs::MetricsRegistry merged = cluster.merged_metrics();
  fold_decisions(out, merged);
  // Exactly one call landed in the client's histogram; max is that sample.
  const auto sample = client_metrics.log_histogram_snapshot("client.rtt_us");
  if (sample.count > 0) rtt.record(static_cast<std::int64_t>(sample.max));
}

template <typename P, typename MakeProc>
LiveResult live_one_shot(int n, const MakeProc& make) {
  LiveResult out;
  obs::LogHistogram rtt;
  for (int rep = 0; rep < kOneShotReps; ++rep) live_one_shot_rep<P>(n, make, rtt, out);
  out.rtt = rtt.snapshot();
  return out;
}

LiveResult live_rsm(int n) {
  const SystemConfig config{n, kF, kE};
  LiveResult out;
  node::LocalCluster<rsm::RsmProcess> cluster(
      n, [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, config, options);
      });
  if (!cluster.wait_for_mesh()) {
    out.ok = false;
    return out;
  }
  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints()[0], &client_metrics);
  if (!client.connect()) {
    out.ok = false;
    return out;
  }
  const auto result = client.run_closed_loop(kRsmCommands);
  out.ok = result.ok == kRsmCommands;
  cluster.stop();
  obs::MetricsRegistry merged = cluster.merged_metrics();
  fold_decisions(out, merged);
  out.rtt = result.rtt;  // the closed-loop window's histogram snapshot
  return out;
}

/// Simulated decision latency (in Δ) at replica 0 for the same lone-proposer
/// pattern the live runs use.  The RSM reuses the object-mode number: it
/// runs one object-mode core instance per slot.
double sim_latency_delta(const std::string& name, int n) {
  const SystemConfig config{n, kF, kE};
  SyncScenario s;
  s.proposals = {{0, Value{1000}}};
  auto run = [&](auto runner) {
    runner->run(s);
    const auto t = runner->monitor().decision_time(0);
    return t && runner->monitor().safe() ? static_cast<double>(*t) / kSimDelta : -1.0;
  };
  if (name == "task")
    return run(harness::RunSpec(config).delta(kSimDelta).core(core::Mode::kTask));
  if (name == "fast paxos") return run(harness::RunSpec(config).delta(kSimDelta).fastpaxos());
  return run(harness::RunSpec(config).delta(kSimDelta).core(core::Mode::kObject));
}

int protocol_n(const std::string& name) {
  if (name == "task") return SystemConfig::min_processes_task(kE, kF);
  if (name == "fast paxos") return SystemConfig::min_processes_fast_paxos(kE, kF);
  return SystemConfig::min_processes_object(kE, kF);  // object and rsm
}

LiveResult live_protocol(const std::string& name, int n) {
  const SystemConfig config{n, kF, kE};
  if (name == "rsm") return live_rsm(n);
  if (name == "fast paxos") {
    return live_one_shot<fastpaxos::FastPaxosProcess>(
        n, [=](consensus::Env<fastpaxos::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
          fastpaxos::Options options;
          options.delta = kLiveDeltaUs;
          options.leader_of = [] { return ProcessId{0}; };
          options.probe.metrics = &reg;
          return std::make_unique<fastpaxos::FastPaxosProcess>(env, config, options);
        });
  }
  const core::Mode mode = name == "task" ? core::Mode::kTask : core::Mode::kObject;
  return live_one_shot<core::TwoStepProcess>(
      n, [=](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg, ProcessId) {
        core::Options options;
        options.mode = mode;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<core::TwoStepProcess>(env, config, options);
      });
}

void print_tables() {
  const std::vector<std::string> protocols = {"task", "object", "fast paxos", "rsm"};
  util::Table t({"protocol", "n", "samples", "sim fast path (delta)", "live p50", "live p99",
                 "fast fraction"});
  t.set_title("N1 — client-observed latency: loopback TCP cluster vs simulator (e=1, f=1)");
  bench::BenchArtifact artifact("n1_live");
  // Live runs spawn n event-loop threads each; keep them sequential so the
  // samples never contend with a sibling cluster for cores.
  for (const std::string& name : protocols) {
    const int n = protocol_n(name);
    const double sim_delta = sim_latency_delta(name, n);
    LiveResult live = live_protocol(name, n);
    const double frac = live.voted == 0
                            ? 0
                            : static_cast<double>(live.fast) / static_cast<double>(live.voted);
    t.add_row({name + (live.ok ? "" : " (INCOMPLETE)"), std::to_string(n),
               std::to_string(live.rtt.count), sim_delta < 0 ? "-" : util::Table::num(sim_delta, 0),
               live.rtt.count == 0 ? "-" : util::Table::num(live.rtt.p50, 0) + " us",
               live.rtt.count == 0 ? "-" : util::Table::num(live.rtt.p99, 0) + " us",
               live.voted == 0 ? "-" : util::Table::num(frac, 2)});
    artifact.add_row()
        .str("protocol", name)
        .num("n", n)
        .num("samples", live.rtt.count)
        .num("sim_fast_path_delta", sim_delta)
        .num("rtt_p50_us", live.rtt.p50)
        .num("rtt_p99_us", live.rtt.p99)
        .hist("rtt_us", live.rtt)
        .num("fast_fraction", frac)
        .flag("ok", live.ok);
  }
  twostep::bench::emit(t);
  artifact.write();
}

void BM_LiveObjectOneShotDecision(benchmark::State& state) {
  const int n = protocol_n("object");
  const SystemConfig config{n, kF, kE};
  const auto make = [=](consensus::Env<core::Message>& env, obs::MetricsRegistry& reg,
                        ProcessId) {
    core::Options options;
    options.mode = core::Mode::kObject;
    options.delta = kLiveDeltaUs;
    options.leader_of = [] { return ProcessId{0}; };
    options.probe.metrics = &reg;
    return std::make_unique<core::TwoStepProcess>(env, config, options);
  };
  obs::LogHistogram rtt;
  for (auto _ : state) {
    LiveResult out;
    live_one_shot_rep<core::TwoStepProcess>(n, make, rtt, out);
    benchmark::DoNotOptimize(out.voted);
  }
}
BENCHMARK(BM_LiveObjectOneShotDecision)->Unit(benchmark::kMillisecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
