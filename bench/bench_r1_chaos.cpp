// R1 — Consensus under chaos: fast-path survival and recovery latency as a
// function of the message-drop rate.
//
// A single proposer (p0) runs the object protocol at its bound (n = 5,
// e = 2, f = 2) over a network governed by a seeded FaultPlan, with a
// ReliableChannel restoring Definition 2's reliable links through
// retransmission.  Per drop rate we run many seeded trials and report how
// often the fast path (decision at 2Δ) survives the losses, the latency of
// the slow-path recovery when it does not, and what the reliability layer
// paid in retransmissions.  Safety must hold in every run at every rate.
//
// Determinism: trial k at rate index r uses seed splitmix64(kBaseSeed,
// r * 1000 + k) for both the fault plan and the run, so the table is
// byte-identical across hosts and TWOSTEP_BENCH_JOBS values.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "faults/fault_plan.hpp"
#include "util/rng.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;

constexpr sim::Tick kDelta = 100;
constexpr std::uint64_t kBaseSeed = 2026;
constexpr int kTrialsPerRate = 50;
const std::vector<double> kDropRates = {0.0, 0.05, 0.10, 0.20};

struct Trial {
  bool safe = true;
  bool decided = false;    // every correct process decided
  bool fast = false;       // the proposer decided at <= 2Δ
  double latency = 0;      // max decision time over correct processes, in Δ
  std::uint64_t retransmits = 0;
};

Trial run_trial(double drop_rate, std::uint64_t seed) {
  const SystemConfig cfg{5, 2, 2};  // the object bound for e=2, f=2
  auto plan = std::make_shared<faults::FaultPlan>(seed);
  if (drop_rate > 0) plan->drop(drop_rate);
  auto r = harness::RunSpec(cfg)
               .delta(kDelta)
               .seed(seed)
               .fault_plan(plan)
               .reliable()
               .core(core::Mode::kObject);
  r->cluster().start_all();
  r->cluster().propose(0, Value{1000});  // uncontended: the fast path is live
  r->cluster().run();

  Trial t;
  t.safe = r->monitor().safe();
  t.decided = true;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    const auto when = r->monitor().decision_time(p);
    if (!when) {
      t.decided = false;
      continue;
    }
    t.latency = std::max(t.latency, static_cast<double>(*when) / kDelta);
    if (p == 0) t.fast = *when <= 2 * kDelta;
  }
  t.retransmits = r->cluster().reliable_channel()->retransmits();
  return t;
}

struct Row {
  double rate = 0;
  int decided = 0;
  int fast = 0;
  double mean_latency = 0;
  double p99_latency = 0;
  double mean_retransmits = 0;
  bool safe = true;
};

Row measure_rate(std::size_t rate_index) {
  Row row;
  row.rate = kDropRates[rate_index];
  std::vector<double> latencies;
  std::uint64_t retransmits = 0;
  for (int k = 0; k < kTrialsPerRate; ++k) {
    const std::uint64_t seed =
        util::splitmix64(kBaseSeed, static_cast<std::uint64_t>(rate_index) * 1000 +
                                        static_cast<std::uint64_t>(k));
    const Trial t = run_trial(row.rate, seed);
    row.safe = row.safe && t.safe;
    if (t.decided) {
      ++row.decided;
      latencies.push_back(t.latency);
    }
    if (t.fast) ++row.fast;
    retransmits += t.retransmits;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    for (double l : latencies) row.mean_latency += l;
    row.mean_latency /= static_cast<double>(latencies.size());
    const std::size_t p99 =
        std::min(latencies.size() - 1, (latencies.size() * 99 + 99) / 100);
    row.p99_latency = latencies[p99];
  }
  row.mean_retransmits = static_cast<double>(retransmits) / kTrialsPerRate;
  return row;
}

void print_tables() {
  util::Table t({"drop rate", "runs", "decided", "fast path", "mean latency (Δ)",
                 "p99 latency (Δ)", "mean retransmits", "safe"});
  t.set_title("R1 — chaos: fast-path rate and recovery latency vs message loss "
              "(object protocol, n=5 e=2 f=2, single proposer, reliable channel)");
  const std::vector<Row> rows =
      twostep::bench::sweep_rows<Row>(kDropRates.size(), measure_rate);
  for (const Row& row : rows) {
    t.add_row({util::Table::num(row.rate, 2), std::to_string(kTrialsPerRate),
               std::to_string(row.decided), std::to_string(row.fast),
               util::Table::num(row.mean_latency, 2), util::Table::num(row.p99_latency, 2),
               util::Table::num(row.mean_retransmits, 1), row.safe ? "yes" : "NO"});
  }
  twostep::bench::emit(t);
}

void BM_ChaosRunDrop20(benchmark::State& state) {
  std::uint64_t seed = kBaseSeed;
  for (auto _ : state) benchmark::DoNotOptimize(run_trial(0.20, ++seed).latency);
}
BENCHMARK(BM_ChaosRunDrop20)->Unit(benchmark::kMicrosecond);

void BM_FaultFreeRunNoPlan(benchmark::State& state) {
  // Baseline for the "no FaultPlan = one pointer test" claim: the same run
  // with no plan attached.
  const SystemConfig cfg{5, 2, 2};
  for (auto _ : state) {
    auto r = harness::RunSpec(cfg).delta(kDelta).core(core::Mode::kObject);
    r->cluster().start_all();
    r->cluster().propose(0, Value{1000});
    r->cluster().run();
    benchmark::DoNotOptimize(r->monitor().has_decided(0));
  }
}
BENCHMARK(BM_FaultFreeRunNoPlan)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
