// A1 — Ablation: the novel ingredients of the slow-ballot value-selection
// rule (Figure 1, lines 26-29) are load-bearing.
//
// Three deliberately weakened selection policies run against (a) scripted
// scenarios that target each ingredient and (b) the schedule fuzzer at the
// protocol's tight bound.  The paper rule survives everything; every mutant
// is caught.
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "lowerbound/scenarios.hpp"
#include "modelcheck/direct_drive.hpp"
#include "modelcheck/explorer.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;
using core::SelectionPolicy;

const char* policy_name(SelectionPolicy p) {
  switch (p) {
    case SelectionPolicy::kPaper: return "paper rule";
    case SelectionPolicy::kNoProposerExclusion: return "no R-exclusion (line 26)";
    case SelectionPolicy::kNoMaxTieBreak: return "min instead of max (line 29)";
    case SelectionPolicy::kNoThresholdBranch: return "no =n-f-e branch (line 28)";
  }
  return "?";
}

/// Fuzz the task protocol at its bound under the given policy; returns the
/// number of traces until a violation (0 = none found).
long fuzz_policy(SelectionPolicy policy, int traces) {
  const SystemConfig cfg{6, 2, 2};
  modelcheck::Scenario<core::TwoStepProcess> s;
  s.config = cfg;
  s.factory = [cfg, policy](consensus::Env<core::Message>& env, ProcessId) {
    core::Options o;
    o.mode = core::Mode::kTask;
    o.delta = 100;
    o.selection_policy = policy;
    o.leader_of = [] { return ProcessId{0}; };
    return std::make_unique<core::TwoStepProcess>(env, cfg, o);
  };
  s.setup = [](modelcheck::DirectDrive<core::TwoStepProcess>& d) {
    d.start_all();
    for (ProcessId p = 0; p < 6; ++p) d.propose(p, Value{p + 1});
  };
  s.may_crash = {0, 1, 2, 3, 4, 5};
  s.crash_budget = 2;
  const auto r = modelcheck::Explorer<core::TwoStepProcess>::fuzz(s, traces, 11, 250);
  return r.violation ? r.traces : 0;
}

void print_tables() {
  util::Table t({"selection policy", "tie scenario (e=2,f=2,n=6)",
                 "exclusion scenario (object n=5)", "fuzzer @ bound"});
  t.set_title("A1 — selection-rule ablation: scripted scenarios + fuzzing");

  const std::vector<SelectionPolicy> policies = {
      SelectionPolicy::kPaper, SelectionPolicy::kNoProposerExclusion,
      SelectionPolicy::kNoMaxTieBreak, SelectionPolicy::kNoThresholdBranch};
  // One task per policy (the outer parallelism); the fuzz inside each task
  // stays single-threaded so worker counts do not multiply.
  const auto rows = twostep::bench::sweep_rows<std::vector<std::string>>(
      policies.size(), [&policies](std::size_t i) {
        const SelectionPolicy policy = policies[i];
        const auto tie = lowerbound::task_at_bound_with_policy(2, 2, policy);
        const auto excl = lowerbound::object_exclusion_ablation(policy);
        const long fuzz_traces = fuzz_policy(policy, 8000);
        return std::vector<std::string>{
            policy_name(policy),
            tie.agreement_violated ? "VIOLATED" : "safe",
            excl.agreement_violated ? "VIOLATED" : "safe",
            fuzz_traces == 0
                ? std::string("no violation")
                : "violated after " + std::to_string(fuzz_traces) + " traces"};
      });
  for (const auto& row : rows) t.add_row(row);
  twostep::bench::emit(t);
}

void BM_FuzzPaperPolicy(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(fuzz_policy(SelectionPolicy::kPaper, 200));
}
BENCHMARK(BM_FuzzPaperPolicy)->Unit(benchmark::kMillisecond);

void BM_ScriptedTieScenario(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        lowerbound::task_at_bound_with_policy(2, 2, SelectionPolicy::kPaper)
            .agreement_violated);
}
BENCHMARK(BM_ScriptedTieScenario)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
