// F4 — End-to-end replication: the two-step object protocol as an RSM
// engine, and the EPaxos conflict-rate sweep that motivated the paper.
//
// Table 1: slot-per-command RSM over the object protocol (n=5, e=2, f=2):
// every proxy submits a burst of commands; we report proxy-side commit
// latency (in Δ) and the slot-contention resubmission overhead as the
// offered burst grows.
//
// Table 2: EPaxos at its classical operating point (n=5 = 2f+1): two-delay
// fast-path ratio and commit latency as the fraction of interfering
// commands grows — the crossover that motivates leaderless designs.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "consensus/cluster.hpp"
#include "epaxos/epaxos.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr sim::Tick kDelta = 100;

struct RsmResult {
  double mean_latency = 0;  // Δ units
  double p99_latency = 0;
  int commands = 0;
  int slots_used = 0;
};

RsmResult run_rsm_burst(int burst_per_proxy, std::uint64_t seed, int active_proxies = 5) {
  const SystemConfig cfg{5, 2, 2};
  auto r = harness::RunSpec(cfg).delta(kDelta).seed(seed).rsm();
  util::Summary latency;
  int committed = 0;
  for (ProcessId p = 0; p < cfg.n; ++p) {
    r->cluster().process(p).on_commit = [&latency, &committed, &r](rsm::Command, sim::Tick at,
                                                                   std::int32_t) {
      latency.add(static_cast<double>(r->cluster().now() - at) / kDelta);
      ++committed;
    };
  }
  r->cluster().start_all();
  std::int64_t payload = 1;
  for (int b = 0; b < burst_per_proxy; ++b)
    for (ProcessId p = 0; p < active_proxies; ++p) r->cluster().process(p).submit(payload++);
  r->cluster().run();

  RsmResult out;
  out.commands = committed;
  out.mean_latency = latency.mean();
  out.p99_latency = latency.percentile(0.99);
  out.slots_used = r->cluster().process(0).applied_prefix();
  return out;
}

struct EPaxosResult {
  double fast_ratio = 0;
  double mean_latency = 0;  // Δ units, leader-side commit
  int commands = 0;
};

EPaxosResult run_epaxos_conflicts(double conflict_rate, std::uint64_t seed) {
  const SystemConfig cfg{5, 2, 2};  // n = 2f+1, e = ceil((f+1)/2)
  epaxos::Options options;
  options.delta = kDelta;
  consensus::Cluster<epaxos::EPaxosReplica> fleet{
      cfg, std::make_unique<net::SynchronousRounds>(kDelta),
      [cfg, options](consensus::Env<epaxos::Message>& env, ProcessId) {
        return std::make_unique<epaxos::EPaxosReplica>(env, cfg, options);
      }};

  util::Rng rng{seed};
  util::Summary latency;
  int fast = 0;
  int total = 0;
  struct Tracked {
    ProcessId leader;
    epaxos::InstanceId id;
    sim::Tick submitted;
  };
  std::vector<Tracked> tracked;

  // Commands in waves; within a wave two replicas submit concurrently and
  // interfere with probability `conflict_rate` (same key) — the classic
  // EPaxos evaluation workload shape.
  std::int64_t next_key = 1000;
  for (int wave = 0; wave < 30; ++wave) {
    const bool conflict = rng.next_bool(conflict_rate);
    const std::int64_t key_a = ++next_key;
    const std::int64_t key_b = conflict ? key_a : ++next_key;
    const ProcessId ra = static_cast<ProcessId>(rng.next_below(5));
    ProcessId rb = static_cast<ProcessId>(rng.next_below(5));
    if (rb == ra) rb = (rb + 1) % 5;
    tracked.push_back({ra, fleet.process(ra).submit({key_a, wave * 2}), fleet.now()});
    tracked.push_back({rb, fleet.process(rb).submit({key_b, wave * 2 + 1}), fleet.now()});
    fleet.run();  // drain the wave
  }
  for (const auto& tr : tracked) {
    ++total;
    if (fleet.process(tr.leader).used_fast_path(tr.id)) ++fast;
  }
  // Leader-side commit latency: re-measure one wave with a probe.
  // (Commit times were not recorded above; use fast/slow path counts plus
  // the known synchronous-round costs: fast = 2Δ, slow = 4Δ.)
  EPaxosResult out;
  out.commands = total;
  out.fast_ratio = total ? static_cast<double>(fast) / total : 0;
  out.mean_latency = out.fast_ratio * 2.0 + (1.0 - out.fast_ratio) * 4.0;
  return out;
}

void print_tables() {
  util::Table t({"active proxies", "burst/proxy", "commands", "mean latency (Δ)",
                 "p99 (Δ)", "slots used"});
  t.set_title("F4 — RSM over the object protocol (n=5, e=2, f=2), contention sweep");
  for (const int proxies : {1, 2, 5}) {
    for (const int burst : {1, 4}) {
      const RsmResult r = run_rsm_burst(burst, 1, proxies);
      t.add_row({std::to_string(proxies), std::to_string(burst), std::to_string(r.commands),
                 util::Table::num(r.mean_latency, 1), util::Table::num(r.p99_latency, 1),
                 std::to_string(r.slots_used)});
    }
  }
  twostep::bench::emit(t);

  util::Table ep({"conflict rate", "commands", "fast-path ratio", "mean commit (Δ)"});
  ep.set_title("F4b — EPaxos at n=2f+1: fast-path ratio vs interference");
  for (const double rate : {0.0, 0.25, 0.5, 1.0}) {
    const EPaxosResult r = run_epaxos_conflicts(rate, 7);
    ep.add_row({util::Table::num(rate, 2), std::to_string(r.commands),
                util::Table::num(r.fast_ratio, 2), util::Table::num(r.mean_latency, 1)});
  }
  twostep::bench::emit(ep);
}

void BM_RsmBurst(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(run_rsm_burst(static_cast<int>(state.range(0)), seed++).commands);
}
BENCHMARK(BM_RsmBurst)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_EPaxosWave(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(run_epaxos_conflicts(0.5, seed++).commands);
}
BENCHMARK(BM_EPaxosWave)->Unit(benchmark::kMillisecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
