// Shared helpers for the benchmark harness binaries.  Every bench prints
// the markdown rows of the table/figure it regenerates (collected into
// EXPERIMENTS.md) and then runs its registered google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "consensus/types.hpp"
#include "exec/parallel_sweep.hpp"
#include "harness/run_spec.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace twostep::bench {

/// Prints a finished experiment table to stdout with a blank line around it.
inline void emit(const util::Table& table) {
  std::printf("\n%s\n", table.to_string().c_str());
}

/// True when the TWOSTEP_BENCH_METRICS environment variable is set and
/// non-empty: benches then attach a MetricsRegistry to their experiment runs
/// and dump it via emit_metrics.  Off by default so timings stay clean.
inline bool metrics_enabled() {
  const char* v = std::getenv("TWOSTEP_BENCH_METRICS");
  return v != nullptr && *v != '\0';
}

/// Opt-in metrics dump (no-op unless TWOSTEP_BENCH_METRICS is set): one
/// line of JSON labelled with the experiment/run name.
inline void emit_metrics(const std::string& name, const obs::MetricsRegistry& registry) {
  if (!metrics_enabled()) return;
  std::printf("metrics[%s] %s\n", name.c_str(), registry.to_json().c_str());
}

/// Worker threads for table generation: the TWOSTEP_BENCH_JOBS environment
/// variable, defaulting to 0 (= all hardware threads).  Tables are
/// byte-identical for any value — see exec::parallel_sweep.
inline int bench_jobs() {
  const char* v = std::getenv("TWOSTEP_BENCH_JOBS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0 || parsed > 4096) {
    std::fprintf(stderr,
                 "bench: ignoring malformed TWOSTEP_BENCH_JOBS=%s "
                 "(using all hardware threads)\n",
                 v);
    return 0;
  }
  return static_cast<int>(parsed);
}

/// Computes `count` independent results (typically table rows) across
/// bench_jobs() workers and returns them in index order, so emitted tables
/// do not depend on thread count or scheduling.
template <typename Result, typename Fn>
inline std::vector<Result> sweep_rows(std::size_t count, Fn&& fn) {
  exec::SweepOptions options;
  options.jobs = bench_jobs();
  return exec::parallel_sweep<Result>(
      count, [&fn](const exec::SweepTask& task) { return fn(task.index); }, options);
}

/// Canonical all-distinct proposal layout: p proposes 100+p, except the
/// designated witness, who proposes the maximum.
inline std::map<consensus::ProcessId, consensus::Value> witness_config(
    int n, consensus::ProcessId witness) {
  std::map<consensus::ProcessId, consensus::Value> initial;
  for (consensus::ProcessId p = 0; p < n; ++p) initial[p] = consensus::Value{100 + p};
  initial[witness] = consensus::Value{1000};
  return initial;
}

/// The standard bench entry point: print the experiment tables, then run
/// benchmark timings.
#define TWOSTEP_BENCH_MAIN(print_tables)                   \
  int main(int argc, char** argv) {                        \
    print_tables();                                        \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

}  // namespace twostep::bench
