// Shared helpers for the benchmark harness binaries.  Every bench prints
// the markdown rows of the table/figure it regenerates (collected into
// EXPERIMENTS.md) and then runs its registered google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "consensus/types.hpp"
#include "exec/parallel_sweep.hpp"
#include "harness/run_spec.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace twostep::bench {

/// Prints a finished experiment table to stdout with a blank line around it.
inline void emit(const util::Table& table) {
  std::printf("\n%s\n", table.to_string().c_str());
}

/// True when the TWOSTEP_BENCH_METRICS environment variable is set and
/// non-empty: benches then attach a MetricsRegistry to their experiment runs
/// and dump it via emit_metrics.  Off by default so timings stay clean.
inline bool metrics_enabled() {
  const char* v = std::getenv("TWOSTEP_BENCH_METRICS");
  return v != nullptr && *v != '\0';
}

/// Opt-in metrics dump (no-op unless TWOSTEP_BENCH_METRICS is set): one
/// line of JSON labelled with the experiment/run name.
inline void emit_metrics(const std::string& name, const obs::MetricsRegistry& registry) {
  if (!metrics_enabled()) return;
  std::printf("metrics[%s] %s\n", name.c_str(), registry.to_json().c_str());
}

/// Worker threads for table generation: the TWOSTEP_BENCH_JOBS environment
/// variable, defaulting to 0 (= all hardware threads).  Tables are
/// byte-identical for any value — see exec::parallel_sweep.
inline int bench_jobs() {
  const char* v = std::getenv("TWOSTEP_BENCH_JOBS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0 || parsed > 4096) {
    std::fprintf(stderr,
                 "bench: ignoring malformed TWOSTEP_BENCH_JOBS=%s "
                 "(using all hardware threads)\n",
                 v);
    return 0;
  }
  return static_cast<int>(parsed);
}

/// Computes `count` independent results (typically table rows) across
/// bench_jobs() workers and returns them in index order, so emitted tables
/// do not depend on thread count or scheduling.
template <typename Result, typename Fn>
inline std::vector<Result> sweep_rows(std::size_t count, Fn&& fn) {
  exec::SweepOptions options;
  options.jobs = bench_jobs();
  return exec::parallel_sweep<Result>(
      count, [&fn](const exec::SweepTask& task) { return fn(task.index); }, options);
}

// --- Machine-readable bench artifacts (schema twostep-bench/1) ---
//
// A bench mirrors its printed table into one JSON document
//   {"schema": "twostep-bench/1", "bench": "<name>", "rows": [{...}, ...]}
// written as BENCH_<name>.json into $TWOSTEP_BENCH_OUT (or the working
// directory).  Rows are flat objects of numbers, strings, bools and nested
// histogram snapshots, in insertion order — the stable surface scripts and
// CI validate against (see EXPERIMENTS.md "Machine-readable artifacts").

/// One artifact row, built field by field.
class JsonRow {
 public:
  JsonRow& num(std::string_view key, double v) { return field(key, obs::json_number(v)); }
  JsonRow& num(std::string_view key, std::int64_t v) { return field(key, std::to_string(v)); }
  JsonRow& num(std::string_view key, std::uint64_t v) { return field(key, std::to_string(v)); }
  JsonRow& num(std::string_view key, int v) { return field(key, std::to_string(v)); }
  JsonRow& str(std::string_view key, std::string_view v) {
    std::ostringstream os;
    obs::write_json_escaped(os, v);
    return field(key, os.str());
  }
  JsonRow& flag(std::string_view key, bool v) { return field(key, v ? "true" : "false"); }
  /// Nested {"count": .., "mean": .., .., "p999": ..} object.
  JsonRow& hist(std::string_view key, const obs::HistogramSnapshot& s) {
    std::ostringstream os;
    obs::write_json(os, s);
    return field(key, os.str());
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += fields_[i].first + ":" + fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonRow& field(std::string_view key, std::string rendered) {
    std::ostringstream k;
    obs::write_json_escaped(k, key);
    fields_.emplace_back(k.str(), std::move(rendered));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Artifact output directory: $TWOSTEP_BENCH_OUT, defaulting to the cwd.
inline std::string artifact_dir() {
  const char* v = std::getenv("TWOSTEP_BENCH_OUT");
  return (v != nullptr && *v != '\0') ? std::string(v) : std::string(".");
}

/// Accumulates rows for one bench and writes BENCH_<name>.json.
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name) : name_(std::move(name)) {}

  /// Appends an empty row and returns it for building.  References stay
  /// valid across further add_row calls (deque storage).
  JsonRow& add_row() { return rows_.emplace_back(); }

  /// Writes the document; prints the path on success, a stderr note on
  /// failure.  Never throws — an unwritable artifact must not sink a bench.
  bool write() const {
    const std::string path = artifact_dir() + "/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (out) {
      std::ostringstream header;
      obs::write_json_escaped(header, name_);
      out << "{\"schema\":\"twostep-bench/1\",\"bench\":" << header.str() << ",\"rows\":[";
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (i > 0) out << ",";
        out << rows_[i].to_json();
      }
      out << "]}\n";
      out.flush();
    }
    if (!out) {
      std::fprintf(stderr, "bench: could not write artifact %s\n", path.c_str());
      return false;
    }
    std::printf("bench artifact: %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::deque<JsonRow> rows_;
};

/// Canonical all-distinct proposal layout: p proposes 100+p, except the
/// designated witness, who proposes the maximum.
inline std::map<consensus::ProcessId, consensus::Value> witness_config(
    int n, consensus::ProcessId witness) {
  std::map<consensus::ProcessId, consensus::Value> initial;
  for (consensus::ProcessId p = 0; p < n; ++p) initial[p] = consensus::Value{100 + p};
  initial[witness] = consensus::Value{1000};
  return initial;
}

/// The standard bench entry point: print the experiment tables, then run
/// benchmark timings.
#define TWOSTEP_BENCH_MAIN(print_tables)                   \
  int main(int argc, char** argv) {                        \
    print_tables();                                        \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

}  // namespace twostep::bench
