// T4 — Lower-bound demonstrations (Appendix B, "only if" directions).
//
// Each row executes one adversarial run-splicing construction.  Below the
// bound the attack yields a concrete Agreement violation with at most f
// crashes; at the bound the identical attack shape is defeated (the crash
// budget forces a bridge process to survive and the selection rule recovers
// the fast decision).  The final rows let the schedule fuzzer rediscover
// the below-bound violations without being told the construction.
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "lowerbound/scenarios.hpp"
#include "modelcheck/direct_drive.hpp"
#include "modelcheck/explorer.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;
using consensus::Value;
using lowerbound::AttackOutcome;

std::string row_outcome(const AttackOutcome& out) {
  return out.agreement_violated ? "VIOLATED" : "safe";
}

std::vector<std::string> attack_row(const std::string& name, const AttackOutcome& out,
                                    int bound) {
  return {name, std::to_string(out.n),
          out.n < bound ? "below" : "at bound", std::to_string(out.crashes_used),
          out.fast_decision.to_string(), out.late_decision.to_string(),
          row_outcome(out)};
}

void print_tables() {
  util::Table t({"construction", "n", "position", "crashes", "fast decision",
                 "recovery decision", "agreement"});
  t.set_title("T4 — executable lower-bound constructions (Appendix B)");

  // Row specs first, then one parallel sweep: every construction replays an
  // independent drive, so the rows compute concurrently and print in order.
  struct RowSpec {
    std::string name;
    std::function<AttackOutcome()> run;
    int bound;
  };
  std::vector<RowSpec> specs;
  for (const auto& [e, f] : std::vector<std::pair<int, int>>{{2, 2}, {3, 3}}) {
    const int bound = SystemConfig::min_processes_task(e, f);
    specs.push_back({"task B.1  e=" + std::to_string(e) + " f=" + std::to_string(f),
                     [e, f] { return lowerbound::task_below_bound_violation(e, f); }, bound});
    specs.push_back({"task B.1  (defended)",
                     [e, f] { return lowerbound::task_at_bound_defense(e, f); }, bound});
  }
  for (const auto& [e, f] : std::vector<std::pair<int, int>>{{3, 3}, {4, 4}}) {
    const int bound = SystemConfig::min_processes_object(e, f);
    specs.push_back({"object B.2 e=" + std::to_string(e) + " f=" + std::to_string(f),
                     [e, f] { return lowerbound::object_below_bound_violation(e, f); },
                     bound});
    specs.push_back({"object B.2 (defended)",
                     [e, f] { return lowerbound::object_at_bound_defense(e, f); }, bound});
  }
  for (const auto& [e, f] : std::vector<std::pair<int, int>>{{1, 1}, {2, 2}}) {
    const int bound = SystemConfig::min_processes_fast_paxos(e, f);
    specs.push_back({"fast paxos e=" + std::to_string(e) + " f=" + std::to_string(f),
                     [e, f] { return lowerbound::fastpaxos_below_bound_violation(e, f); },
                     bound});
    specs.push_back({"fast paxos (defended)",
                     [e, f] { return lowerbound::fastpaxos_at_bound_defense(e, f); }, bound});
  }
  const auto rows = twostep::bench::sweep_rows<std::vector<std::string>>(
      specs.size(), [&specs](std::size_t i) {
        return attack_row(specs[i].name, specs[i].run(), specs[i].bound);
      });
  for (const auto& row : rows) t.add_row(row);
  twostep::bench::emit(t);

  // Fuzzer rediscovery: random schedules against the below-bound task
  // protocol, no construction knowledge.
  util::Table fz({"target", "n", "random traces until violation", "found"});
  fz.set_title("T4b — schedule fuzzer rediscovers the violations");
  {
    const SystemConfig cfg{5, 2, 2};  // 2e+f-1
    modelcheck::Scenario<core::TwoStepProcess> s;
    s.config = cfg;
    s.factory = [cfg](consensus::Env<core::Message>& env, ProcessId) {
      core::Options o;
      o.mode = core::Mode::kTask;
      o.delta = 100;
      o.leader_of = [] { return ProcessId{0}; };
      return std::make_unique<core::TwoStepProcess>(env, cfg, o);
    };
    s.setup = [](modelcheck::DirectDrive<core::TwoStepProcess>& d) {
      d.start_all();
      for (ProcessId p = 0; p < 5; ++p) d.propose(p, Value{p + 1});
    };
    s.may_crash = {0, 1, 2, 3, 4};
    s.crash_budget = 2;
    const auto r = modelcheck::Explorer<core::TwoStepProcess>::fuzz(
        s, 50000, 7, 250, twostep::bench::bench_jobs());
    fz.add_row({"task protocol below bound", "5", std::to_string(r.traces),
                r.violation ? "yes" : "no"});
  }
  twostep::bench::emit(fz);

  // Narrative of the canonical construction, for EXPERIMENTS.md.
  std::printf("Narrative (task B.1, e=2, f=2, n=5):\n");
  for (const auto& line : lowerbound::task_below_bound_violation(2, 2).narrative)
    std::printf("  - %s\n", line.c_str());
}

void BM_TaskAttack(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(lowerbound::task_below_bound_violation(2, 2).agreement_violated);
}
BENCHMARK(BM_TaskAttack)->Unit(benchmark::kMicrosecond);

void BM_ObjectAttack(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        lowerbound::object_below_bound_violation(3, 3).agreement_violated);
}
BENCHMARK(BM_ObjectAttack)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
