// N6 — Survive change: client-observed availability while the cluster is
// reconfigured and loses its leader, on a live n=5 loopback RSM.
//
// One closed-loop client runs the whole experiment while the orchestrator
// walks four phases:
//
//   steady       nothing happens — the baseline gap between consecutive
//                successful commits is one RTT.
//   join         a brand-new replica (id 5) is admitted through the config
//                log and healed by snapshot state transfer; the client
//                should barely notice (the change costs one slot).
//   remove       the highest founder is retired (treat-as-crashed); again
//                one slot of the log, no availability cliff.
//   leader_kill  the Ω leader is killed outright and restarted 1 s later.
//                With the failure detector armed the survivors suspect it
//                within one jittered timeout, hand leadership to the next
//                member, and re-propose the stranded slots — so the client
//                sees a bounded gap (suspicion window + client failover),
//                not a 5Δ-per-slot ballot crawl.
//
// Per phase the artifact reports the maximum gap between consecutive
// successful commits (the unavailability window, phase edges included) and
// the RTT distribution.  After the run the chaossoak audit must hold
// across the change: every live member's applied log slot-aligns with the
// survivors' (the joiner starts at its snapshot floor), and the joiner
// must have caught up to the founders' applied head.
//
// The claim under test (EXPERIMENTS.md § N6): membership changes cost one
// consensus slot, not an outage — and a dead leader costs one bounded
// suspicion window.  The summary's unavailability_us (worst gap across the
// join/remove/leader_kill phases) is gated in CI by
// scripts/check_obs_artifacts.py n6 [--max-unavailability-us U].
//
// Artifact: BENCH_n6_reconfig.json (schema twostep-bench/1), one row per
// phase plus a "summary" row.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "node/client.hpp"
#include "node/local_cluster.hpp"
#include "rsm/rsm.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr int kN = 5, kE = 1, kF = 2;
constexpr int kVictim = kN - 1;   // the founder retired in the remove phase
constexpr int kLeader = 0;        // killed in the leader_kill phase
constexpr sim::Tick kLiveDeltaUs = 50'000;

// Phase boundaries, microseconds from workload start.
constexpr std::int64_t kJoinAtUs = 2'000'000;
constexpr std::int64_t kRemoveAtUs = 4'500'000;
constexpr std::int64_t kKillAtUs = 6'500'000;
constexpr std::int64_t kLeaderDownUs = 1'000'000;
constexpr std::int64_t kEndAtUs = 9'500'000;

// Snapshots must be on: the joiner is healed by state transfer, and the
// survivors' compaction keeps the transferred image small.
constexpr std::uint64_t kSnapshotEvery = 2'048;
constexpr std::uint64_t kWalSegmentBytes = 512 * 1024;

// The client's per-attempt budget bounds its contribution to the
// unavailability window: a dead proxy costs at most this long before the
// session redials the next replica and resends.
constexpr std::int64_t kAttemptTimeoutMs = 250;

struct PhaseResult {
  const char* name = "";
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  std::int64_t ok = 0;           ///< successful commits inside the window
  std::int64_t max_gap_us = 0;   ///< longest commit-free interval, edges included
  obs::HistogramSnapshot rtt;
};

std::string fresh_storage_dir() {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "twostep-n6-XXXXXX").string();
  if (!::mkdtemp(tmpl.data())) return {};
  return tmpl;
}

node::LocalCluster<rsm::RsmProcess>::Factory make_factory(const SystemConfig& config) {
  return [config](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, ProcessId) {
    rsm::Options options;
    options.delta = kLiveDeltaUs;
    options.leader_of = [] { return ProcessId{0}; };
    options.probe.metrics = &reg;
    return std::make_unique<rsm::RsmProcess>(env, config, options);
  };
}

void print_tables() {
  std::printf(
      "N6: live reconfiguration + leader failover on the n=%d RSM — replace a replica "
      "and kill the leader under a closed-loop client, measure the availability gaps\n",
      kN);

  const SystemConfig config{kN, kF, kE};
  const std::string dir = fresh_storage_dir();
  if (dir.empty()) {
    std::printf("n6: mkdtemp failed\n");
    return;
  }

  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = dir;
  cluster_options.storage.fsync = true;
  cluster_options.storage.group_commit_us = 200;
  cluster_options.storage.snapshot_every = kSnapshotEvery;
  cluster_options.storage.wal_segment_bytes = kWalSegmentBytes;
  cluster_options.failover.enabled = true;
  cluster_options.failover.period_us = 25'000;
  node::LocalCluster<rsm::RsmProcess> cluster(kN, make_factory(config), cluster_options);
  if (!cluster.wait_for_mesh()) {
    std::printf("n6: mesh did not form\n");
    cluster.stop();
    return;
  }

  // Closed-loop client: one command at a time across the whole experiment,
  // logging (completion offset, rtt) for every success.  Joined before the
  // samples are read, so no locking.
  std::atomic<bool> stop{false};
  std::vector<std::pair<std::int64_t, std::int64_t>> commits;  // (offset_us, rtt_us)
  commits.reserve(1 << 16);
  std::int64_t client_lost = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const auto offset_us = [&t0] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  obs::MetricsRegistry client_metrics;
  std::thread client_thread([&] {
    node::ClientOptions options;
    options.attempt_timeout_ms = kAttemptTimeoutMs;
    options.request_timeout_ms = 5'000;
    node::ClientSession client(cluster.endpoints(), &client_metrics, options);
    if (!client.connect()) return;
    for (std::int64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      const std::int64_t before = offset_us();
      const auto reply = client.call(i);
      if (reply && reply->ok)
        commits.emplace_back(offset_us(), offset_us() - before);
      else
        ++client_lost;
    }
  });

  // Orchestrator: walk the phase timeline against the same clock.
  const auto sleep_until_offset = [&](std::int64_t at_us) {
    std::this_thread::sleep_until(t0 + std::chrono::microseconds(at_us));
  };
  sleep_until_offset(kJoinAtUs);
  const int joiner = cluster.add_replica();
  sleep_until_offset(kRemoveAtUs);
  const bool removed = cluster.remove_replica(kVictim);
  sleep_until_offset(kKillAtUs);
  cluster.kill(kLeader);
  sleep_until_offset(kKillAtUs + kLeaderDownUs);
  cluster.restart(kLeader);
  sleep_until_offset(kEndAtUs);
  stop.store(true, std::memory_order_relaxed);
  client_thread.join();

  // Post-run audit: every live member drains to a common applied head (the
  // joiner from its snapshot floor), and the overlaps agree slot for slot.
  bool joiner_healed = false;
  const auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (std::chrono::steady_clock::now() < drain_deadline) {
    std::int32_t founder_head = -1;
    std::int32_t joiner_head = -1;
    for (int p = 0; p <= joiner; ++p) {
      if (p == kVictim || !cluster.alive(p)) continue;
      const auto log = cluster.node(p).applied_log();
      const std::int32_t head = log.empty() ? -1 : log.back().first;
      if (p == joiner)
        joiner_head = head;
      else
        founder_head = std::max(founder_head, head);
    }
    joiner_healed = joiner >= 0 && joiner_head >= 0 && joiner_head >= founder_head;
    if (joiner_healed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bool audit_ok = joiner >= 0;
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> logs;
  for (int p = 0; p <= joiner && p >= 0; ++p)
    logs.push_back(cluster.alive(p)
                       ? cluster.node(p).applied_log()
                       : std::vector<std::pair<std::int32_t, std::int64_t>>{});
  cluster.stop();
  for (std::size_t p = 1; audit_ok && p < logs.size(); ++p) {
    const auto& a = logs[0];
    const auto& b = logs[p];
    if (a.empty() || b.empty()) continue;
    std::size_t i = 0, j = 0;
    if (a.front().first < b.front().first)
      while (i < a.size() && a[i].first < b.front().first) ++i;
    else
      while (j < b.size() && b[j].first < a.front().first) ++j;
    const std::size_t m = std::min(a.size() - i, b.size() - j);
    for (std::size_t k = 0; k < m; ++k)
      if (a[i + k] != b[j + k]) {
        audit_ok = false;
        break;
      }
  }

  // Slice the commit stream into the phase windows.
  const PhaseResult phases_init[] = {
      {"steady", 0, kJoinAtUs, 0, 0, {}},
      {"join", kJoinAtUs, kRemoveAtUs, 0, 0, {}},
      {"remove", kRemoveAtUs, kKillAtUs, 0, 0, {}},
      {"leader_kill", kKillAtUs, kEndAtUs, 0, 0, {}},
  };
  std::vector<PhaseResult> phases(std::begin(phases_init), std::end(phases_init));
  for (PhaseResult& phase : phases) {
    obs::LogHistogram rtt;
    std::int64_t last = phase.begin_us;
    for (const auto& [at, rtt_us] : commits) {
      if (at < phase.begin_us || at >= phase.end_us) continue;
      ++phase.ok;
      phase.max_gap_us = std::max(phase.max_gap_us, at - last);
      last = at;
      rtt.record(rtt_us);
    }
    phase.max_gap_us = std::max(phase.max_gap_us, phase.end_us - last);
    phase.rtt = rtt.snapshot();
  }

  util::Table t({"phase", "commits", "max gap ms", "rtt p50 us", "rtt p99 us"});
  t.set_title("N6 reconfig + failover: client availability per phase");
  for (const PhaseResult& phase : phases)
    t.add_row({phase.name, std::to_string(phase.ok),
               std::to_string(phase.max_gap_us / 1000),
               std::to_string(static_cast<long>(phase.rtt.p50)),
               std::to_string(static_cast<long>(phase.rtt.p99))});
  bench::emit(t);

  const std::int64_t unavailability_us =
      std::max({phases[1].max_gap_us, phases[2].max_gap_us, phases[3].max_gap_us});
  const bool ok = joiner >= 0 && removed && joiner_healed && audit_ok && client_lost == 0 &&
                  phases[0].ok > 0 && phases[3].ok > 0;
  std::printf("n6: joiner %d %s, victim %d removed=%s, leader killed/restarted, "
              "worst unavailability %lld ms, audit %s\n",
              joiner, joiner_healed ? "healed" : "NOT HEALED", kVictim,
              removed ? "yes" : "NO", static_cast<long long>(unavailability_us / 1000),
              audit_ok ? "clean" : "DIRTY");

  bench::BenchArtifact artifact("n6_reconfig");
  for (const PhaseResult& phase : phases)
    artifact.add_row()
        .str("kind", phase.name)
        .num("commits", phase.ok)
        .num("max_gap_us", phase.max_gap_us)
        .hist("rtt_us", phase.rtt);
  artifact.add_row()
      .str("kind", "summary")
      .num("unavailability_us", unavailability_us)
      .num("leader_kill_gap_us", phases[3].max_gap_us)
      .num("client_lost", client_lost)
      .flag("joiner_healed", joiner_healed)
      .flag("audit_ok", audit_ok)
      .flag("ok", ok);
  artifact.write();

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
