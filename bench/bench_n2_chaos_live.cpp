// N2 — RSM throughput and client-observed latency on a real loopback TCP
// cluster while replicas crash, recover from their write-ahead logs, and the
// network misbehaves (n=3, e=1, f=1, fixed leader 0):
//
//   baseline      no storage, no faults — the undisturbed closed loop
//   wal           durable acceptor WAL on every replica, no faults — the
//                 price of the persist-before-send discipline
//   kills         WAL + a seeded kill/restart schedule (<= f down at once);
//                 the client fails over when its proxy dies
//   kills+chaos   kills + seeded frame drop/duplicate/delay on every link
//
// Every config runs the same seeded command stream with a small think time
// so crash rounds land mid-stream.  "recovered slots" counts per-slot
// acceptor records replayed from WALs across all restarts — the proof the
// reborn replicas rejoined from disk rather than cold.  "violations" is the
// agreement check (pairwise applied-log prefix comparison) plus the
// durability check (every acked command present in the longest log); the
// paper's safety claims require it to be 0 in every row.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "node/client.hpp"
#include "node/local_cluster.hpp"
#include "rsm/rsm.hpp"
#include "storage/wal.hpp"
#include "util/stats.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr int kN = 3;
constexpr int kE = 1;
constexpr int kF = 1;
constexpr sim::Tick kLiveDeltaUs = 100'000;
constexpr std::int64_t kCommands = 400;
constexpr std::int64_t kThinkUs = 1'000;
constexpr std::uint64_t kSeed = 7;
constexpr std::int64_t kKillPeriodMs = 250;
constexpr std::int64_t kDownMs = 100;

struct Config {
  std::string name;
  bool storage = false;
  bool kills = false;
  transport::ChaosConfig chaos;
};

struct Row {
  std::string name;
  std::int64_t ok = 0;
  std::int64_t lost = 0;
  double elapsed_s = 0;
  obs::HistogramSnapshot rtt;  ///< client-observed RTTs (µs)
  std::uint64_t failovers = 0;
  std::uint64_t kills = 0;
  std::uint64_t recovered_slots = 0;
  std::uint64_t wal_syncs = 0;
  int violations = 0;
};

class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "twostep-n2-XXXXXX").string();
    dir_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return dir_; }

 private:
  std::string dir_;
};

Row run_config(const Config& config) {
  Row row;
  row.name = config.name;
  const SystemConfig system{kN, kF, kE};
  TempDir tmp;

  node::ClusterOptions cluster_options;
  if (config.storage) {
    cluster_options.storage.dir = tmp.path();
    cluster_options.storage.fsync = false;  // protocol cost of logging, not the device's
  }
  cluster_options.chaos = config.chaos;
  node::LocalCluster<rsm::RsmProcess> cluster(
      kN,
      [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, ProcessId) {
        rsm::Options options;
        options.delta = kLiveDeltaUs;
        options.leader_of = [] { return ProcessId{0}; };
        options.probe.metrics = &reg;
        return std::make_unique<rsm::RsmProcess>(env, system, options);
      },
      cluster_options);
  if (!cluster.wait_for_mesh()) {
    row.name += " (NO MESH)";
    return row;
  }

  // Crash driver: replays the seeded schedule until the workload finishes,
  // always restarting what it killed so the run ends fully replicated.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> kill_count{0};
  std::thread driver;
  if (config.kills) {
    const auto schedule = node::CrashSchedule::generate(
        kSeed, kN, kF, /*duration_ms=*/10 * 60 * 1000, kKillPeriodMs, kDownMs);
    driver = std::thread([&cluster, &done, &kill_count, schedule] {
      const auto start = std::chrono::steady_clock::now();
      for (const node::CrashRound& round : schedule.rounds) {
        const auto at = start + std::chrono::milliseconds(round.at_ms);
        while (std::chrono::steady_clock::now() < at) {
          if (done.load(std::memory_order_relaxed)) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        for (const int r : round.replicas) cluster.kill(r);
        kill_count.fetch_add(round.replicas.size(), std::memory_order_relaxed);
        const auto up = at + std::chrono::milliseconds(round.down_ms);
        while (std::chrono::steady_clock::now() < up)
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        for (const int r : round.replicas) cluster.restart(r);
        if (done.load(std::memory_order_relaxed)) return;
      }
    });
  }

  obs::MetricsRegistry client_metrics;
  node::ClientSession client(cluster.endpoints(), &client_metrics);
  std::set<std::int64_t> acked;
  const auto start = std::chrono::steady_clock::now();
  if (client.connect()) {
    for (std::int64_t c = 0; c < kCommands; ++c) {
      if (kThinkUs > 0) std::this_thread::sleep_for(std::chrono::microseconds(kThinkUs));
      const auto reply = client.call(c);
      if (!reply) {
        ++row.lost;
        if (!client.connect()) break;
        continue;
      }
      if (reply->ok) {
        ++row.ok;
        acked.insert(c);
      }
    }
  } else {
    row.name += " (NO CLIENT)";
  }
  row.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  done.store(true, std::memory_order_relaxed);
  if (driver.joinable()) driver.join();

  // Let the reborn replicas catch up before the safety audit.
  const auto settle = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    bool all = true;
    for (int p = 0; p < kN; ++p)
      if (!cluster.alive(p) ||
          cluster.node(p).applied_log().size() < static_cast<std::size_t>(row.ok))
        all = false;
    if (all || std::chrono::steady_clock::now() >= settle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Safety audit: agreement (pairwise prefix) + durability (every acked
  // command is in the longest log; payload == command & (2^40 - 1)).
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> logs;
  for (int p = 0; p < kN; ++p)
    logs.push_back(cluster.alive(p) ? cluster.node(p).applied_log()
                                    : std::vector<std::pair<std::int32_t, std::int64_t>>{});
  for (int p = 1; p < kN; ++p) {
    const std::size_t m = std::min(logs[0].size(), logs[static_cast<std::size_t>(p)].size());
    for (std::size_t i = 0; i < m; ++i)
      if (logs[0][i] != logs[static_cast<std::size_t>(p)][i]) ++row.violations;
  }
  std::size_t longest = 0;
  for (std::size_t p = 1; p < logs.size(); ++p)
    if (logs[p].size() > logs[longest].size()) longest = p;
  std::set<std::int64_t> applied;
  for (const auto& [slot, cmd] : logs[longest])
    applied.insert(rsm::RsmProcess::command_payload(cmd));
  for (const std::int64_t c : acked)
    if (!applied.contains(c)) ++row.violations;

  cluster.stop();
  obs::MetricsRegistry merged = cluster.merged_metrics();
  row.rtt = client_metrics.log_histogram_snapshot("client.rtt_us");
  row.failovers = client_metrics.counter_value("client.failovers");
  row.kills = kill_count.load(std::memory_order_relaxed);
  row.recovered_slots = merged.counter_value("recover.slots");
  row.wal_syncs = merged.counter_value("wal.syncs");
  bench::emit_metrics("n2_" + config.name, merged);
  return row;
}

void print_tables() {
  transport::ChaosConfig chaos;
  chaos.drop_rate = 0.02;
  chaos.duplicate_rate = 0.02;
  chaos.delay_rate = 0.05;
  chaos.delay_max_us = 2'000;
  chaos.seed = kSeed;
  const std::vector<Config> configs = {
      {"baseline", false, false, {}},
      {"wal", true, false, {}},
      {"kills", true, true, {}},
      {"kills+chaos", true, true, chaos},
  };

  util::Table t({"config", "acked", "lost", "cmds/s", "rtt p50", "rtt p99", "failovers",
                 "kills", "recovered slots", "wal syncs", "violations"});
  t.set_title("N2 — live RSM under crash-recovery chaos: loopback TCP, n=3, e=1, f=1, " +
              std::to_string(kCommands) + " closed-loop commands");
  bench::BenchArtifact artifact("n2_chaos_live");
  // Sequential on purpose: each run spawns n event-loop threads plus a crash
  // driver, and the RTT samples must not contend with a sibling cluster.
  for (const Config& config : configs) {
    Row row = run_config(config);
    const double rate = row.elapsed_s > 0 ? static_cast<double>(row.ok) / row.elapsed_s : 0;
    t.add_row({row.name, std::to_string(row.ok), std::to_string(row.lost),
               util::Table::num(rate, 0),
               row.rtt.count == 0 ? "-" : util::Table::num(row.rtt.p50, 0) + " us",
               row.rtt.count == 0 ? "-" : util::Table::num(row.rtt.p99, 0) + " us",
               std::to_string(row.failovers), std::to_string(row.kills),
               std::to_string(row.recovered_slots), std::to_string(row.wal_syncs),
               std::to_string(row.violations)});
    artifact.add_row()
        .str("config", row.name)
        .num("acked", row.ok)
        .num("lost", row.lost)
        .num("cmds_per_s", rate)
        .num("rtt_p50_us", row.rtt.p50)
        .num("rtt_p99_us", row.rtt.p99)
        .hist("rtt_us", row.rtt)
        .num("failovers", row.failovers)
        .num("kills", row.kills)
        .num("recovered_slots", row.recovered_slots)
        .num("wal_syncs", row.wal_syncs)
        .num("violations", row.violations);
  }
  bench::emit(t);
  artifact.write();
}

/// Raw WAL cost: one append+sync per iteration (fsync off — the protocol
/// overhead of the logging discipline, not the device barrier).
void BM_WalAppendSync(benchmark::State& state) {
  TempDir tmp;
  storage::Wal wal(tmp.path() + "/bench.wal", storage::WalOptions{.fsync = false});
  const std::vector<std::uint8_t> record(64, 0xAB);
  for (auto _ : state) {
    wal.append(record);
    wal.sync();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WalAppendSync);

/// One full kill + WAL-recovery + catch-up cycle on a live 3-replica RSM
/// cluster with a closed-loop client running throughout.
void BM_LiveKillRecoverCycle(benchmark::State& state) {
  const SystemConfig system{kN, kF, kE};
  for (auto _ : state) {
    state.PauseTiming();
    TempDir tmp;
    node::ClusterOptions options;
    options.storage.dir = tmp.path();
    options.storage.fsync = false;
    node::LocalCluster<rsm::RsmProcess> cluster(
        kN,
        [&](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, ProcessId) {
          rsm::Options rsm_options;
          rsm_options.delta = kLiveDeltaUs;
          rsm_options.leader_of = [] { return ProcessId{0}; };
          rsm_options.probe.metrics = &reg;
          return std::make_unique<rsm::RsmProcess>(env, system, rsm_options);
        },
        options);
    if (!cluster.wait_for_mesh()) continue;
    node::ClientSession client(cluster.endpoints(), nullptr);
    if (!client.connect()) continue;
    for (std::int64_t c = 0; c < 20; ++c) client.call(c);
    state.ResumeTiming();
    cluster.kill(1);
    for (std::int64_t c = 20; c < 40; ++c) client.call(c);
    cluster.restart(1);
    // Post-restart traffic is what triggers the reborn replica's gap fill —
    // same shape as the LiveRecovery conformance test.
    for (std::int64_t c = 40; c < 60; ++c) client.call(c);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (cluster.node(1).applied_log().size() < 60 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    state.PauseTiming();
    cluster.stop();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_LiveKillRecoverCycle)->Unit(benchmark::kMillisecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
