// N5 — Rejoin cost of a wiped replica: snapshot state transfer vs genesis
// replay on a live n=5 loopback cluster.
//
// The scenario both runs share: bring up five replicas, kill one, pump a
// large open-loop workload (~100k commands) through the survivors, wipe
// the dead replica's storage directory, restart it, and time how long it
// takes to hold the complete applied log again.
//
//   - Genesis baseline (snapshot-every = 0): the survivors retain their
//     full WAL, and the reborn replica is healed by decide anti-entropy —
//     every peer re-streams each decided slot from slot 0.  The rejoin
//     cost is proportional to the entire history.
//   - Snapshot run (snapshot-every = kSnapshotEvery, small WAL segments):
//     the survivors checkpoint and truncate while the replica is down, so
//     on reconnect they cannot replay from genesis even in principle —
//     they offer their latest snapshot instead.  The reborn replica
//     installs it over kSnapshotChunk frames and replays only the tail
//     above the snapshot floor.  The rejoin cost is proportional to the
//     snapshot size + tail, not the history length.
//
// The claim under test (EXPERIMENTS.md "Snapshots & rejoin"): the
// snapshot rejoin is bounded and strictly faster than genesis replay
// (rejoin_ratio = snapshot_us / genesis_us < 1), with the applied-log
// audit clean — the reborn replica's log is byte-identical to a
// survivor's.
//
// Artifact: BENCH_n5_rejoin.json (schema twostep-bench/1), one row per
// run (kind = "genesis_baseline" / "snapshot_rejoin") plus a "summary"
// row carrying rejoin_ratio, validated by
// scripts/check_obs_artifacts.py n5 [--max-rejoin-ratio X].
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "node/loadgen.hpp"
#include "node/local_cluster.hpp"
#include "rsm/rsm.hpp"

namespace {

using namespace twostep;
using consensus::ProcessId;
using consensus::SystemConfig;

constexpr int kN = 5, kE = 1, kF = 2;
constexpr int kVictim = 4;  // never the leader (leader_of == 0)
constexpr sim::Tick kLiveDeltaUs = 100'000;

// Saturation stack, tuned for this scenario: modest batches so the
// ~100k-command history spans >= ~10k consensus slots — genesis replay
// must stream (and the reborn replica must re-log) a history that is
// honestly proportional to the command count, not 1.5k mega-batches.
constexpr int kBatchMax = 8;
constexpr sim::Tick kBatchLingerUs = 200;
constexpr int kPipelineWindow = 64;
constexpr int kGroupCommitUs = 200;

// Workload: ~100k commands offered while the victim is down.
constexpr std::int64_t kRate = 20'000;
constexpr std::int64_t kDurationMs = 5'000;
constexpr std::int64_t kDrainMs = 2'000;
constexpr int kSessions = 512;
constexpr int kConnections = 8;

// Snapshot-run knobs: checkpoint often (the trigger counts WAL records,
// a few per slot) and roll segments aggressively so the survivors'
// compaction floor races far past the wiped replica.
constexpr std::uint64_t kSnapshotEvery = 4'096;
constexpr std::uint64_t kWalSegmentBytes = 512 * 1024;

constexpr std::int64_t kRejoinTimeoutMs = 120'000;

struct RunResult {
  bool ok = false;             ///< workload + rejoin + audit all clean
  bool audit_ok = false;       ///< reborn log == survivor log, exactly
  std::int64_t commands = 0;   ///< acked commands in the applied log
  double rejoin_us = 0;        ///< restart() -> full applied log
  obs::HistogramSnapshot rtt;  ///< workload RTT while the victim is down
  std::uint64_t snapshots_written = 0;
  std::uint64_t wal_truncated_records = 0;
  std::uint64_t transfers_installed = 0;
  std::uint64_t transfer_bytes = 0;
  std::uint64_t transfer_chunks = 0;
};

node::LocalCluster<rsm::RsmProcess>::Factory make_factory(const SystemConfig& config) {
  return [config](consensus::Env<rsm::Msg>& env, obs::MetricsRegistry& reg, ProcessId) {
    rsm::Options options;
    options.delta = kLiveDeltaUs;
    options.leader_of = [] { return ProcessId{0}; };
    options.probe.metrics = &reg;
    options.batch_max = kBatchMax;
    options.batch_linger = kBatchLingerUs;
    options.pipeline_window = kPipelineWindow;
    return std::make_unique<rsm::RsmProcess>(env, config, options);
  };
}

std::string fresh_storage_dir(const char* tag) {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / (std::string("twostep-n5-") + tag + "-XXXXXX"))
          .string();
  if (!::mkdtemp(tmpl.data())) return {};
  return tmpl;
}

/// One full kill/load/wipe/restart cycle.  `snapshots` selects the run:
/// false = genesis baseline, true = checkpoint + truncate while down.
RunResult run_cycle(bool snapshots) {
  RunResult out;
  const SystemConfig config{kN, kF, kE};
  const std::string dir = fresh_storage_dir(snapshots ? "snap" : "genesis");
  if (dir.empty()) return out;

  node::ClusterOptions cluster_options;
  cluster_options.storage.dir = dir;
  cluster_options.storage.fsync = true;
  cluster_options.storage.group_commit_us = kGroupCommitUs;
  if (snapshots) {
    cluster_options.storage.snapshot_every = kSnapshotEvery;
    cluster_options.storage.wal_segment_bytes = kWalSegmentBytes;
  }
  node::LocalCluster<rsm::RsmProcess> cluster(kN, make_factory(config), cluster_options);
  if (!cluster.wait_for_mesh()) {
    cluster.stop();
    return out;
  }

  // Down the victim, then pump the workload through the survivors only.
  cluster.kill(kVictim);
  std::vector<transport::Endpoint> survivors(cluster.endpoints().begin(),
                                             cluster.endpoints().end() - 1);
  node::LoadgenOptions gen_options;
  gen_options.rate = kRate;
  gen_options.sessions = kSessions;
  gen_options.connections = kConnections;
  gen_options.duration_ms = kDurationMs;
  gen_options.drain_ms = kDrainMs;
  gen_options.poisson = true;
  gen_options.seed = snapshots ? 7 : 11;
  node::OpenLoopLoadgen gen(survivors, gen_options);
  const node::LoadResult result = gen.run();
  out.rtt = result.rtt;
  out.commands = result.ok;
  const bool load_ok = result.ok > 0 && result.lost == 0;

  // Let every survivor finish applying, and fix the rejoin target: the
  // leader's applied log is the history the reborn replica must recover.
  const auto settle = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::size_t target = 0;
  for (;;) {
    bool all = true;
    target = cluster.node(0).applied_log().size();
    for (int p = 0; p < kN; ++p)
      if (p != kVictim && cluster.node(p).applied_log().size() < target) all = false;
    if ((all && target >= static_cast<std::size_t>(result.ok)) ||
        std::chrono::steady_clock::now() > settle)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Wipe the victim's storage so both runs rejoin from nothing, then time
  // the restart until its applied log holds the full history.
  std::error_code ec;
  std::filesystem::remove_all(dir + "/r" + std::to_string(kVictim), ec);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.restart(kVictim);
  const auto deadline = t0 + std::chrono::milliseconds(kRejoinTimeoutMs);
  bool rejoined = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cluster.node(kVictim).applied_log().size() >= target) {
      rejoined = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  out.rejoin_us = static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());

  // Audit: the reborn replica's applied log must match the leader's
  // exactly over the rejoin target — prefix agreement with no gaps.
  const auto log0 = cluster.node(0).applied_log();
  const auto logv = cluster.node(kVictim).applied_log();
  out.audit_ok = rejoined && logv.size() >= target && log0.size() >= target;
  if (out.audit_ok)
    for (std::size_t k = 0; k < target; ++k)
      if (log0[k] != logv[k]) {
        out.audit_ok = false;
        break;
      }

  cluster.stop();
  obs::MetricsRegistry merged = cluster.merged_metrics();
  out.snapshots_written = merged.counter_value("snapshot.written");
  out.wal_truncated_records = merged.counter_value("wal.truncated_records");
  out.transfers_installed = merged.counter_value("transfer.installed");
  out.transfer_bytes = merged.counter_value("transfer.bytes_sent");
  out.transfer_chunks = merged.counter_value("transfer.chunks_sent");
  out.ok = load_ok && rejoined && out.audit_ok;
  std::filesystem::remove_all(dir, ec);
  return out;
}

void add_run_row(bench::BenchArtifact& artifact, const char* kind, const RunResult& r) {
  artifact.add_row()
      .str("kind", kind)
      .num("commands", r.commands)
      .num("rejoin_us", r.rejoin_us)
      .num("snapshots_written", static_cast<std::int64_t>(r.snapshots_written))
      .num("wal_truncated_records", static_cast<std::int64_t>(r.wal_truncated_records))
      .num("transfers_installed", static_cast<std::int64_t>(r.transfers_installed))
      .num("transfer_bytes", static_cast<std::int64_t>(r.transfer_bytes))
      .num("transfer_chunks", static_cast<std::int64_t>(r.transfer_chunks))
      .flag("ok", r.ok)
      .flag("audit_ok", r.audit_ok)
      .hist("rtt_us", r.rtt);
}

void print_tables() {
  std::printf("N5: wiped-replica rejoin on the live n=%d RSM — snapshot state transfer "
              "(every %llu cmds, %llu-byte segments) vs genesis decide replay\n",
              kN, static_cast<unsigned long long>(kSnapshotEvery),
              static_cast<unsigned long long>(kWalSegmentBytes));

  const RunResult genesis = run_cycle(false);
  const RunResult snap = run_cycle(true);

  util::Table t({"run", "commands", "rejoin ms", "snapshots", "truncated recs",
                 "transfers in", "transfer KiB", "ok", "audit"});
  t.set_title("N5 rejoin: snapshot transfer vs genesis replay");
  const auto row = [&](const char* name, const RunResult& r) {
    t.add_row({name, std::to_string(r.commands),
               std::to_string(static_cast<long>(r.rejoin_us / 1000.0)),
               std::to_string(r.snapshots_written), std::to_string(r.wal_truncated_records),
               std::to_string(r.transfers_installed),
               std::to_string(r.transfer_bytes / 1024), r.ok ? "yes" : "NO",
               r.audit_ok ? "clean" : "DIRTY"});
  };
  row("genesis replay", genesis);
  row("snapshot rejoin", snap);
  bench::emit(t);

  const double ratio = genesis.rejoin_us > 0 ? snap.rejoin_us / genesis.rejoin_us : 0;
  std::printf("rejoin: genesis %.0f ms, snapshot %.0f ms — ratio %.2f "
              "(snapshot run wrote %llu snapshots, truncated %llu records)\n",
              genesis.rejoin_us / 1000.0, snap.rejoin_us / 1000.0, ratio,
              static_cast<unsigned long long>(snap.snapshots_written),
              static_cast<unsigned long long>(snap.wal_truncated_records));

  bench::BenchArtifact artifact("n5_rejoin");
  add_run_row(artifact, "genesis_baseline", genesis);
  add_run_row(artifact, "snapshot_rejoin", snap);
  artifact.add_row()
      .str("kind", "summary")
      .num("genesis_rejoin_us", genesis.rejoin_us)
      .num("snapshot_rejoin_us", snap.rejoin_us)
      .num("rejoin_ratio", ratio)
      .flag("ok", genesis.ok && snap.ok)
      .flag("audit_ok", genesis.audit_ok && snap.audit_ok);
  artifact.write();
}

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
