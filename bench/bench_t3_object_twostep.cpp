// T3 — Object two-step obligation matrix (Definition A.1 at the Theorem 6
// bound), including the e=2, f=2 point where the object protocol runs with
// one process fewer than the task protocol.
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "consensus/twostep_eval.hpp"

namespace {

using namespace twostep;
using consensus::EvalVerdict;
using consensus::SystemConfig;
using consensus::TwoStepEvaluator;
using harness::RunSpec;

EvalVerdict run_item(int e, int f, int n, int item) {
  const SystemConfig cfg{n, f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return RunSpec(cfg).core(core::Mode::kObject); }};
  return item == 1 ? eval.check_object_item1() : eval.check_object_item2();
}

std::string cell(const EvalVerdict& v) {
  return std::to_string(v.satisfied) + "/" + std::to_string(v.runs) +
         (v.ok() ? "" : " FAIL");
}

void print_tables() {
  util::Table t({"e", "f", "n=max{2e+f-1,2f+1}", "task would need",
                 "item1 (lone proposer)", "item2 (same value)"});
  t.set_title("T3 — Definition A.1 obligations for the object protocol");
  const std::vector<std::pair<int, int>> configs = {{1, 1}, {1, 2}, {2, 2}, {2, 3}, {3, 3}};
  const auto rows = twostep::bench::sweep_rows<std::vector<std::string>>(
      configs.size(), [&configs](std::size_t i) {
        const auto [e, f] = configs[i];
        const int n = SystemConfig::min_processes_object(e, f);
        return std::vector<std::string>{
            std::to_string(e), std::to_string(f), std::to_string(n),
            std::to_string(SystemConfig::min_processes_task(e, f)),
            cell(run_item(e, f, n, 1)), cell(run_item(e, f, n, 2))};
      });
  for (const auto& row : rows) t.add_row(row);
  twostep::bench::emit(t);
}

void BM_ObjectItem1(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_item(2, 2, 5, 1).runs);
}
BENCHMARK(BM_ObjectItem1)->Unit(benchmark::kMillisecond);

void BM_LoneProposerFastPath(benchmark::State& state) {
  const SystemConfig cfg{5, 2, 2};
  for (auto _ : state) {
    auto r = RunSpec(cfg).core(core::Mode::kObject);
    consensus::SyncScenario s;
    s.proposals = {{2, consensus::Value{7}}};
    r->run(s);
    benchmark::DoNotOptimize(r->monitor().decided_count());
  }
}
BENCHMARK(BM_LoneProposerFastPath)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
