// T1 — Tight bounds table (Theorems 5 and 6 vs the classical bounds).
//
// For each (e, f) the table reports, per formulation, the theoretical
// minimum number of processes and two empirical verdicts obtained from this
// library:
//   * "ok@n"    — at the bound every Definition 4 / A.1 obligation is met
//                 over all crash sets and canonical initial configurations;
//   * "broken@n-1" — one process below the bound, the Appendix B splicing
//                 attack produces a concrete Agreement violation (where the
//                 attack's side conditions apply).
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "consensus/twostep_eval.hpp"
#include "lowerbound/scenarios.hpp"

namespace {

using namespace twostep;
using consensus::SystemConfig;
using consensus::TwoStepEvaluator;
using harness::RunSpec;

bool task_ok_at(int e, int f, int n) {
  const SystemConfig cfg{n, f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return RunSpec(cfg).core(core::Mode::kTask); }};
  return eval.check_task_item1().ok() && eval.check_task_item2().ok();
}

bool object_ok_at(int e, int f, int n) {
  const SystemConfig cfg{n, f, e};
  TwoStepEvaluator<core::TwoStepProcess, core::Options> eval{
      cfg, [&] { return RunSpec(cfg).core(core::Mode::kObject); }};
  return eval.check_object_item1().ok() && eval.check_object_item2().ok();
}

bool fastpaxos_ok_at(int e, int f, int n) {
  const SystemConfig cfg{n, f, e};
  TwoStepEvaluator<fastpaxos::FastPaxosProcess, fastpaxos::Options> eval{
      cfg, [&] { return RunSpec(cfg).fastpaxos(); }};
  return eval.check_task_item1().ok() && eval.check_task_item2().ok();
}

std::string verdict(int bound, bool ok, bool attack_applies, bool attack_violates) {
  std::string s = std::to_string(bound);
  s += ok ? " ok" : " FAIL";
  if (attack_applies) s += attack_violates ? ", n-1 broken" : ", n-1 SURVIVES?";
  return s;
}

void print_tables() {
  util::Table t({"e", "f", "task n=max{2e+f,2f+1}", "object n=max{2e+f-1,2f+1}",
                 "fast paxos n=max{2e+f+1,2f+1}", "paxos n=2f+1 (e=0 only)"});
  t.set_title("T1 — minimal processes for f-resilient e-two-step consensus");

  std::vector<std::pair<int, int>> configs;
  for (int e = 1; e <= 3; ++e)
    for (int f = e; f <= 4; ++f)
      if (SystemConfig::min_processes_fast_paxos(e, f) <= 9)  // keep sweeps tractable
        configs.emplace_back(e, f);

  // Every (e, f) point is independent: compute the rows across
  // TWOSTEP_BENCH_JOBS workers, emit in deterministic order.
  const auto rows = twostep::bench::sweep_rows<std::vector<std::string>>(
      configs.size(), [&configs](std::size_t i) {
        const auto [e, f] = configs[i];
        const int nt = SystemConfig::min_processes_task(e, f);
        const int no = SystemConfig::min_processes_object(e, f);
        const int nf = SystemConfig::min_processes_fast_paxos(e, f);

        const bool task_attack = f >= 2 && 2 * e >= f + 2;
        const bool object_attack = f >= 2 && 2 * e >= f + 3;
        const bool task_broken =
            task_attack && lowerbound::task_below_bound_violation(e, f).agreement_violated;
        const bool object_broken =
            object_attack &&
            lowerbound::object_below_bound_violation(e, f).agreement_violated;
        const bool fp_broken =
            lowerbound::fastpaxos_below_bound_violation(e, f).agreement_violated;

        return std::vector<std::string>{
            std::to_string(e), std::to_string(f),
            verdict(nt, task_ok_at(e, f, nt), task_attack, task_broken),
            verdict(no, object_ok_at(e, f, no), object_attack, object_broken),
            verdict(nf, fastpaxos_ok_at(e, f, nf), true, fp_broken),
            std::to_string(2 * f + 1)};
      });
  for (const auto& row : rows) t.add_row(row);
  twostep::bench::emit(t);
}

void BM_TaskObligationSweep(benchmark::State& state) {
  const int e = static_cast<int>(state.range(0));
  const int f = static_cast<int>(state.range(1));
  const int n = SystemConfig::min_processes_task(e, f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(task_ok_at(e, f, n));
  }
}
BENCHMARK(BM_TaskObligationSweep)->Args({1, 1})->Args({2, 2})->Unit(benchmark::kMillisecond);

void BM_SplicingAttack(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lowerbound::task_below_bound_violation(2, 2).agreement_violated);
  }
}
BENCHMARK(BM_SplicingAttack)->Unit(benchmark::kMicrosecond);

}  // namespace

TWOSTEP_BENCH_MAIN(print_tables)
